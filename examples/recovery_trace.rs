//! Recovery with tracing: a driver-domain crash mid-stream, recorded as
//! structured events and exported as a Chrome-trace JSON with one track
//! per domain, covering the whole kill → detect → reboot → reconnect →
//! first-byte window. The run validates its own export (parses, zero
//! dropped events, monotonic timestamps per track) and asserts the
//! recovery milestones appear in causal order.
//!
//! ```text
//! cargo run --release --example recovery_trace            # temp-dir output
//! cargo run --release --example recovery_trace -- out.json
//! ```
//!
//! Open the file at <https://ui.perfetto.dev>.

use kite::sim::Nanos;
use kite::system::{addrs, BackendOs, NetSystem, Side};
use kite::trace::DEFAULT_CAPACITY;
use kite::xen::FaultPlan;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("kite_recovery_trace.json")
            .to_string_lossy()
            .into_owned()
    });

    let mut sys = NetSystem::new(BackendOs::Kite, 11);
    sys.enable_tracing(DEFAULT_CAPACITY);
    // 30 s of guest→client traffic at 4 msg/s, driver killed at 2 s.
    for i in 0..120u64 {
        sys.send_udp_at(
            Nanos::from_millis(1 + 250 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1234,
            vec![i as u8; 1400],
        );
    }
    sys.inject_faults(FaultPlan::seeded(11).with_kill_at(Nanos::from_secs(2)));
    sys.run_to_quiescence();

    // The trace must hold the full recovery story, in causal order.
    let seq_of = |what: &str| {
        sys.hv
            .trace
            .query()
            .milestone(what)
            .unwrap_or_else(|| panic!("milestone {what:?} missing"))
            .seq
    };
    let (kill, detect, reboot, reconnect, first_byte) = (
        seq_of("kill"),
        seq_of("detect"),
        seq_of("reboot"),
        seq_of("reconnect"),
        seq_of("first_byte"),
    );
    assert!(
        kill < detect && detect < reboot && reboot < reconnect && reconnect < first_byte,
        "milestones out of order: {kill} {detect} {reboot} {reconnect} {first_byte}"
    );
    assert_eq!(sys.hv.trace.dropped(), 0, "trace ring must not overflow");
    let outage = sys
        .hv
        .trace
        .query()
        .span_between("kill", "first_byte")
        .expect("span");

    let doc = sys.hv.export_chrome_trace();
    let events = kite::trace::chrome::validate(&doc).expect("export must validate");
    std::fs::write(&out, &doc).expect("write trace");

    let mut snap = sys.metrics_snapshot("recovery_trace/kite");
    snap.push_int("trace_events", "count", events as u64);
    snap.push_int("kill_to_first_byte", "ns", outage.as_nanos());
    print!("{}", snap.render_text());
    println!("wrote Chrome trace to {out}");
}
