//! Daemon-VM example (§5.5): the unikernelized DHCP server answering real
//! DORA exchanges through the Kite network domain, plus a direct look at
//! the lease table.
//!
//! ```text
//! cargo run --release --example dhcp_daemon_vm
//! ```

use kite::core::{DhcpConfig, DhcpServer};
use kite::net::{DhcpMessage, DhcpMessageType, MacAddr};
use kite::sim::Nanos;
use kite::workloads::perfdhcp::{self, DaemonOs};

fn main() {
    // Protocol-level demonstration: one client's full lifecycle.
    let mut server = DhcpServer::new(DhcpConfig::default());
    let now = Nanos::ZERO;
    let mac = MacAddr::local(0xbeef);

    let discover = DhcpMessage::client(DhcpMessageType::Discover, 1, mac);
    let offer = server.handle(&discover, now).expect("offer");
    println!(
        "DISCOVER -> OFFER {} (lease {}s)",
        offer.yiaddr,
        offer.lease_secs.unwrap()
    );

    let mut request = DhcpMessage::client(DhcpMessageType::Request, 1, mac);
    request.requested_ip = Some(offer.yiaddr);
    let ack = server.handle(&request, now).expect("ack");
    println!("REQUEST  -> ACK   {}", ack.yiaddr);
    println!("active leases: {}", server.active_leases(now));

    let release = DhcpMessage::client(DhcpMessageType::Release, 2, mac);
    server.handle(&release, now);
    println!("after RELEASE: {} active leases", server.active_leases(now));

    // Full-path measurement, exactly what perfdhcp reports in the paper.
    println!("\nperfdhcp through the Kite network domain:");
    for daemon in [DaemonOs::Rumprun, DaemonOs::Linux] {
        let r = perfdhcp::run(daemon, 200, 400, 42);
        println!(
            "  {:8} Discover→Offer {:.2} ms, Request→Ack {:.2} ms ({} sessions)",
            daemon.name(),
            r.discover_offer_ms,
            r.request_ack_ms,
            r.sessions
        );
    }
    println!("  (paper §5.5: ≈0.78 ms and ≈0.70 ms, rumprun ≈ Linux)");
}
