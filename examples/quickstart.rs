//! Quickstart: boot a Kite network driver domain, connect a guest, and
//! push one request/response through the whole PV path.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --trace out.json
//! cargo run --release --example quickstart -- --queues 4 --trace out.json
//! cargo run --release --example quickstart -- --gso
//! ```
//!
//! With `--trace <path>`, the run records every hypercall, notify,
//! xenbus transition and ring drain, and exports a Chrome-trace JSON
//! (open it at <https://ui.perfetto.dev>). With `--queues <n>`, the
//! vif pair negotiates `n` queues on an `n`-vCPU driver domain and the
//! trace shows one ring-drain track per queue. With `--gso`, the pair
//! negotiates `feature-gso-tcpv4`, the echo payload grows to a 40KB
//! super-frame, and the snapshot shows the descriptor chains that
//! carried it.

use std::cell::RefCell;
use std::rc::Rc;

use kite::sim::Nanos;
use kite::system::{addrs, BackendOs, Reply, Side, SystemConfig};
use kite::xen::QueueMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace needs a path").clone());
    let queues: u32 = args
        .iter()
        .position(|a| a == "--queues")
        .map(|i| {
            args.get(i + 1)
                .expect("--queues needs a count")
                .parse()
                .expect("--queues takes a number")
        })
        .unwrap_or(1);
    let gso = args.iter().any(|a| a == "--gso");
    let mode = if queues <= 1 {
        QueueMode::Single
    } else {
        QueueMode::Multi(queues)
    };

    // One call assembles the paper's Figure 2: Dom0, a Kite driver domain
    // with the NIC passed through, a 22-vCPU guest with netfront, and an
    // external client — with the xenbus handshake already at Connected.
    let mut cfg = SystemConfig::new(BackendOs::Kite, /* seed */ 42).queue_mode(mode);
    if gso {
        cfg = cfg.gso(true);
    }
    if trace_path.is_some() {
        cfg = cfg.tracing(kite::trace::DEFAULT_CAPACITY);
    }
    let mut sys = cfg.build_net();

    // The guest runs a tiny echo server.
    sys.set_guest_app(Box::new(|_, msg| {
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: msg.dst_port,
            payload: msg.payload.clone(),
            cost: Nanos::from_micros(5),
        }]
    }));

    // The client prints what comes back.
    let echoed = Rc::new(RefCell::new(Vec::new()));
    let sink = echoed.clone();
    sys.set_client_app(Box::new(move |now, msg| {
        sink.borrow_mut().push((now, msg.payload.len()));
        Vec::new()
    }));

    // Send one message per flow and run the event loop to quiescence.
    // Multi-queue runs use several flows per queue (distinct source
    // ports) so Toeplitz steering lands traffic on every ring.
    let flows: u16 = if queues <= 1 { 1 } else { queues as u16 * 8 };
    // With offload negotiated, a 40KB payload rides the rings as one
    // descriptor chain each way instead of ~28 MTU-sized slots.
    let payload: Vec<u8> = if gso {
        (0..40_000u32).map(|i| i as u8).collect()
    } else {
        b"hello through the driver domain".to_vec()
    };
    for f in 0..flows {
        sys.send_udp_at(
            Nanos::from_millis(1 + u64::from(f)),
            Side::Client,
            addrs::GUEST,
            7,
            40000 + f,
            payload.clone(),
        );
    }
    sys.run_to_quiescence();

    let echoed = echoed.borrow();
    for (t, len) in echoed.iter() {
        println!(
            "echo at {t}: {len} bytes (round trip {})",
            *t - Nanos::from_millis(1)
        );
    }
    // All reporting goes through the shared snapshot rendering.
    let mut snap = sys.metrics_snapshot("quickstart/echo");
    snap.push_int("queues", "count", sys.queue_count() as u64);
    snap.push_int("echo_replies", "count", echoed.len() as u64);
    snap.push_int("gso_negotiated", "bool", u64::from(sys.gso_negotiated()));
    let nb = sys.netback_stats();
    snap.push_int("gso_tx_frames", "count", nb.gso_tx_frames);
    snap.push_int("lro_rx_frames", "count", nb.lro_rx_frames);
    snap.push_int(
        "driver_hypercalls",
        "count",
        sys.hv.meter(sys.driver_domain()).total_count(),
    );
    print!("{}", snap.render_text());
    assert_eq!(echoed.len(), flows as usize, "every echo must arrive");
    if gso {
        assert!(
            nb.gso_tx_frames > 0 && nb.lro_rx_frames > 0,
            "offload run must move super-frames both ways"
        );
    }

    if let Some(path) = trace_path {
        let doc = sys.hv.export_chrome_trace();
        let events = kite::trace::chrome::validate(&doc).expect("trace must validate");
        std::fs::write(&path, &doc).expect("write trace");
        println!("wrote Chrome trace to {path} ({events} events)");
    }
}
