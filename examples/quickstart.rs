//! Quickstart: boot a Kite network driver domain, connect a guest, and
//! push one request/response through the whole PV path.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use kite::sim::Nanos;
use kite::system::{addrs, BackendOs, NetSystem, Reply, Side};

fn main() {
    // One call assembles the paper's Figure 2: Dom0, a Kite driver domain
    // with the NIC passed through, a 22-vCPU guest with netfront, and an
    // external client — with the xenbus handshake already at Connected.
    let mut sys = NetSystem::new(BackendOs::Kite, /* seed */ 42);

    // The guest runs a tiny echo server.
    sys.set_guest_app(Box::new(|_, msg| {
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: msg.dst_port,
            payload: msg.payload.clone(),
            cost: Nanos::from_micros(5),
        }]
    }));

    // The client prints what comes back.
    let echoed = Rc::new(RefCell::new(Vec::new()));
    let sink = echoed.clone();
    sys.set_client_app(Box::new(move |now, msg| {
        sink.borrow_mut().push((now, msg.payload.len()));
        Vec::new()
    }));

    // Send one message and run the event loop to quiescence.
    sys.send_udp_at(
        Nanos::from_millis(1),
        Side::Client,
        addrs::GUEST,
        7,
        40000,
        b"hello through the driver domain".to_vec(),
    );
    sys.run_to_quiescence();

    let echoed = echoed.borrow();
    println!("echo replies: {}", echoed.len());
    for (t, len) in echoed.iter() {
        println!(
            "  at {t}: {len} bytes (round trip {})",
            *t - Nanos::from_millis(1)
        );
    }
    let st = sys.netback_stats();
    println!(
        "netback: {} pkts guest→world ({} B), {} pkts world→guest ({} B)",
        st.tx_packets, st.tx_bytes, st.rx_packets, st.rx_bytes
    );
    println!(
        "driver domain hypercalls: {} total",
        sys.hv.meter(sys.driver_domain()).total_count()
    );
    assert_eq!(echoed.len(), 1, "the echo must arrive");
}
