//! Storage domain walkthrough: write a file system image through blkfront
//! → Kite blkback → NVMe, read it back with verification, and show the
//! effect of the paper's §3.3 optimizations (batching, persistent grants,
//! indirect segments) via an ablation.
//!
//! ```text
//! cargo run --release --example storage_domain
//! cargo run --release --example storage_domain -- --rings 4 --trace out.json
//! ```
//!
//! `--rings N` runs the backend with `N` ring pairs on an `N`-vCPU
//! driver domain (each ring gets its own NVMe queue pair); `--trace
//! PATH` writes the first pass's Chrome trace to PATH, which
//! `scripts/verify.sh` diffs across runs as a determinism gate.

use std::cell::RefCell;
use std::rc::Rc;

use kite::core::BlkbackTuning;
use kite::sim::Nanos;
use kite::system::{BackendOs, IoKind, IoOp, SystemConfig};
use kite::xen::QueueMode;

fn sequential_write_read(tuning: BlkbackTuning, label: &str, rings: u32, trace: Option<&str>) {
    let mode = if rings <= 1 {
        QueueMode::Single
    } else {
        QueueMode::Multi(rings)
    };
    let mut cfg = SystemConfig::new(BackendOs::Kite, 7)
        .tuning(tuning)
        .queue_mode(mode);
    if trace.is_some() {
        cfg = cfg.tracing(1 << 18);
    }
    let mut sys = cfg.build_stor();
    // 16 MiB of patterned data in 128 KiB logical writes.
    const CHUNK: usize = 128 * 1024;
    const TOTAL: usize = 16 * 1024 * 1024;
    let mut t = Nanos::from_micros(100);
    for i in 0..(TOTAL / CHUNK) {
        let data: Vec<u8> = (0..CHUNK).map(|b| ((b + i) % 251) as u8).collect();
        sys.submit_at(
            t,
            IoOp {
                tag: i as u64,
                kind: IoKind::Write {
                    sector: (i * CHUNK / 512) as u64,
                    data,
                },
            },
        );
        t += Nanos::from_micros(50);
    }
    sys.run_to_quiescence();
    let write_done = sys.now();

    // Read everything back and verify bytes.
    let failures = Rc::new(RefCell::new(0u32));
    let f2 = failures.clone();
    sys.set_handler(Box::new(move |_, done| {
        let data = done.data.as_ref().expect("read data");
        let i = done.tag as usize;
        let ok = data
            .iter()
            .enumerate()
            .all(|(b, &v)| v == ((b + i) % 251) as u8);
        if !ok {
            *f2.borrow_mut() += 1;
        }
        Vec::new()
    }));
    let mut t = write_done + Nanos::from_millis(1);
    for i in 0..(TOTAL / CHUNK) {
        sys.submit_at(
            t,
            IoOp {
                tag: i as u64,
                kind: IoKind::Read {
                    sector: (i * CHUNK / 512) as u64,
                    len: CHUNK,
                },
            },
        );
        t += Nanos::from_micros(50);
    }
    sys.run_to_quiescence();

    // All reporting goes through the shared snapshot rendering.
    let st = sys.blkback_stats();
    let mut snap = sys.metrics_snapshot(format!("storage_domain/{label}"));
    snap.push_int("elapsed", "ns", sys.now().as_nanos());
    snap.push_float(
        "batching_merge_ratio",
        "ratio",
        st.requests as f64 / st.device_ops.max(1) as f64,
    );
    snap.push_int("verify_failures", "count", *failures.borrow() as u64);
    print!("{}", snap.render_text());
    assert_eq!(*failures.borrow(), 0, "data must round-trip intact");

    if let Some(path) = trace {
        assert_eq!(sys.hv.trace.dropped(), 0, "trace ring must not overflow");
        std::fs::write(path, sys.hv.export_chrome_trace()).expect("write trace");
        println!("wrote Chrome trace to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let rings: u32 = flag("--rings").map_or(1, |v| v.parse().expect("--rings N"));
    let trace = flag("--trace");

    sequential_write_read(
        BlkbackTuning::default(),
        "all optimizations on",
        rings,
        trace.as_deref(),
    );
    sequential_write_read(
        BlkbackTuning {
            batching: false,
            persistent_grants: false,
            indirect_segments: true,
            persistent_cap: 0,
            ..BlkbackTuning::default()
        },
        "batching + persistent grants off (batched grant copies)",
        rings,
        None,
    );
    sequential_write_read(
        BlkbackTuning {
            indirect_segments: false,
            ..BlkbackTuning::default()
        },
        "indirect segments off (11-seg / 44KiB requests)",
        rings,
        None,
    );
}
