//! Security audit example: the paper's §5.1 analyses as a library call —
//! syscall surfaces, CVE mitigation, gadget counts and the combined
//! attack-surface report.
//!
//! ```text
//! cargo run --release --example security_audit
//! ```

use kite::security::{analyze, figure5_profiles, surface_report, table3_cves, DomainSurface};

fn main() {
    println!("== attack surface (Figure 4) ==");
    for row in surface_report() {
        println!(
            "{:<16} syscalls {:>4}  image {:>6.1} MiB  boot {:>5.1}s  CVEs mitigated {}/11",
            row.name,
            row.syscalls,
            row.image_bytes as f64 / (1024.0 * 1024.0),
            row.boot_secs,
            row.cves_mitigated,
        );
    }

    println!("\n== Table 3: per-CVE verdicts ==");
    let cves = table3_cves();
    let kite = DomainSurface::kite_network();
    let ubuntu = DomainSurface::ubuntu();
    for c in &cves {
        println!(
            "{:<16} kite:{:<5} ubuntu:{:<5} — {}",
            c.id,
            if kite.mitigates(c) { "safe" } else { "HIT" },
            if ubuntu.mitigates(c) { "safe" } else { "HIT" },
            c.description,
        );
    }

    println!("\n== ROP gadgets (Figure 5, Kite vs default kernel) ==");
    let profiles = figure5_profiles();
    for p in profiles.iter().take(2) {
        let counts = analyze(p, 42);
        println!("{:<10} total gadgets ≈ {}", p.name, counts.total());
    }
}
