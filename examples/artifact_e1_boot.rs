//! Artifact experiment E1 (claim C1): boot-time comparison, following the
//! appendix workflow with the `xl`-style toolstack.
//!
//! ```text
//! # xl pci-assignable-add 03:00.0
//! # xl create -c config/network/ubuntu_dd.cfg   (measure to login)
//! # xl destroy ubuntu-dd
//! # xl create -c config/network/kite_dd.cfg     (measure to 'ready')
//! ```
//!
//! Expected: "Kite should exhibit at least 10x faster boot time."

use kite::core::Xl;
use kite::sim::Pcg;
use kite::xen::{DomainKind, Hypervisor, PciClass, PciDevice};

const KITE_CFG: &str = r#"
    name = "netbackend"
    kind = "network"
    memory = 1024
    vcpus = 1
    pci = ["03:00.0,permissive=1"]
"#;

const UBUNTU_CFG: &str = r#"
    name = "ubuntu-dd"
    kind = "network"
    memory = 2048
    vcpus = 1
    pci = ["03:00.0,permissive=1"]
"#;

fn main() {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
    hv.pci.add_device(PciDevice {
        bdf: "03:00.0".parse().unwrap(),
        class: PciClass::Network,
        name: "Intel 82599ES 10-Gigabit SFI/SFP+".into(),
    });
    let mut xl = Xl::new();
    let mut rng = Pcg::seeded(1);

    // # xl pci-assignable-add 03:00.0
    xl.pci_assignable_add(&mut hv, "03:00.0").unwrap();

    // Ubuntu driver domain first (the appendix's order).
    xl.create(&mut hv, UBUNTU_CFG).unwrap();
    let ubuntu_seq = kite::linux::ubuntu_boot();
    let ubuntu = ubuntu_seq.sample(&mut rng);
    println!("# xl create -c config/network/ubuntu_dd.cfg");
    for st in &ubuntu_seq.stages {
        println!("    [{:>7.2}s] {}", st.duration.as_secs_f64(), st.name);
    }
    println!("ubuntu-dd: login after {:.1}s", ubuntu.as_secs_f64());
    println!("# xl destroy ubuntu-dd");
    xl.destroy(&mut hv, "ubuntu-dd").unwrap();

    // Kite network domain.
    xl.create(&mut hv, KITE_CFG).unwrap();
    let kite_seq = kite::rumprun::kite_boot();
    let kite = kite_seq.sample(&mut rng);
    println!("\n# xl create -c config/network/kite_dd.cfg");
    for st in &kite_seq.stages {
        println!("    [{:>7.2}s] {}", st.duration.as_secs_f64(), st.name);
    }
    println!(
        "netbackend: 'Network domain is ready' after {:.1}s",
        kite.as_secs_f64()
    );

    println!("\n# xl list");
    print!("{}", xl.list(&hv));

    let speedup = ubuntu.as_secs_f64() / kite.as_secs_f64();
    println!("\nclaim C1: Kite boots {speedup:.1}x faster (paper requires ≥10x)");
    assert!(speedup >= 10.0);
}
