//! The Linux driver-domain baseline.
//!
//! Every figure in the paper compares Kite against an Ubuntu 18.04 driver
//! domain. This crate models that baseline: its syscall surface (171 in
//! use, Figure 4a), its kernel+modules image (≈10x Kite, Figure 4b), its
//! ≈75 s boot (Figure 4c), and the [`profile::linux_profile`] OS-overhead
//! parameters that the shared backend mechanism in `kite-core` runs under
//! when the scenario selects Linux.

pub mod boot;
pub mod image;
pub mod profile;
pub mod syscalls;

pub use boot::ubuntu_boot;
pub use image::{
    ubuntu_image_bytes, ubuntu_image_parts, ubuntu_userspace_components, LinuxImagePart,
};
pub use profile::linux_profile;
pub use syscalls::{linux_total_syscall_count, ubuntu_driver_domain_syscalls};
