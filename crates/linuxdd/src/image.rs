//! Linux driver-domain image model (Figure 4b).
//!
//! The paper measures only the kernel + modules for fairness (user space
//! excluded) and still finds the Linux image ~10x the Kite image: a distro
//! kernel is ≈50 MiB and its module tree adds the rest.

const MIB: u64 = 1024 * 1024;

/// One piece of the Linux image.
#[derive(Clone, Debug)]
pub struct LinuxImagePart {
    /// Name.
    pub name: &'static str,
    /// Size in bytes.
    pub size_bytes: u64,
}

/// The measured composition of an Ubuntu 18.04 (5.0 kernel) driver domain.
pub fn ubuntu_image_parts() -> Vec<LinuxImagePart> {
    vec![
        LinuxImagePart {
            name: "vmlinuz (kernel)",
            size_bytes: 50 * MIB,
        },
        LinuxImagePart {
            name: "/lib/modules drivers",
            size_bytes: 120 * MIB,
        },
        LinuxImagePart {
            name: "/lib/modules fs+net+crypto",
            size_bytes: 38 * MIB,
        },
        LinuxImagePart {
            name: "initrd",
            size_bytes: 9 * MIB,
        },
    ]
}

/// Total Linux image bytes (kernel + modules + initrd).
pub fn ubuntu_image_bytes() -> u64 {
    ubuntu_image_parts().iter().map(|p| p.size_bytes).sum()
}

/// The userspace environment a Linux driver domain additionally carries —
/// excluded from Figure 4b but central to the CVE analysis: each of these
/// is attack surface a Kite VM simply does not have.
pub fn ubuntu_userspace_components() -> Vec<&'static str> {
    vec![
        "systemd",
        "udevd",
        "dbus-daemon",
        "bash",
        "python3 (xen-utils dependency)",
        "libxl / xl toolstack",
        "xl devd (backend daemon)",
        "network bridge scripts",
        "openssh-server",
        "glibc",
        "apt/dpkg",
        "cron",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_rumprun::kite_network_image;

    #[test]
    fn linux_image_about_10x_kite() {
        let linux = ubuntu_image_bytes() as f64;
        let kite = kite_network_image().total_bytes as f64;
        let ratio = linux / kite;
        assert!(
            (8.0..13.0).contains(&ratio),
            "Figure 4b: Linux ≈10x Kite, got {ratio:.1}x"
        );
    }

    #[test]
    fn kernel_alone_is_50mib() {
        let kernel = ubuntu_image_parts()
            .into_iter()
            .find(|p| p.name.contains("vmlinuz"))
            .unwrap();
        assert_eq!(kernel.size_bytes, 50 * MIB, "paper: kernel alone ≈50MB");
    }

    #[test]
    fn userspace_includes_the_risky_bits() {
        let us = ubuntu_userspace_components();
        assert!(us.iter().any(|c| c.contains("python")));
        assert!(us.iter().any(|c| c.contains("libxl")));
        assert!(us.iter().any(|c| c.contains("bash")));
    }
}
