//! Ubuntu driver-domain boot model (Figure 4c: ≈75 s to login).

use kite_rumprun::{BootSequence, BootStage};
use kite_sim::Nanos;

/// The Ubuntu 18.04 driver-domain boot sequence: GRUB, kernel, initramfs,
/// udev settling on passthrough hardware, systemd's unit graph, network
/// bring-up and finally getty. Service management dominates — none of it
/// exists in a unikernel.
pub fn ubuntu_boot() -> BootSequence {
    BootSequence {
        os: "Ubuntu 18.04",
        stages: vec![
            BootStage {
                name: "HVM firmware + GRUB menu/load",
                duration: Nanos::from_millis(5500),
            },
            BootStage {
                name: "kernel decompress + early init",
                duration: Nanos::from_millis(4200),
            },
            BootStage {
                name: "initramfs (modules, device wait)",
                duration: Nanos::from_millis(9500),
            },
            BootStage {
                name: "root fs mount + pivot",
                duration: Nanos::from_millis(3300),
            },
            BootStage {
                name: "udev coldplug + PCI passthrough settle",
                duration: Nanos::from_millis(12500),
            },
            BootStage {
                name: "systemd unit graph (basic.target)",
                duration: Nanos::from_millis(16800),
            },
            BootStage {
                name: "networking.service + bridge scripts",
                duration: Nanos::from_millis(13200),
            },
            BootStage {
                name: "xen-utils + xl devd start",
                duration: Nanos::from_millis(4600),
            },
            BootStage {
                name: "remaining units + getty/login",
                duration: Nanos::from_millis(5400),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_rumprun::kite_boot;

    #[test]
    fn ubuntu_boots_in_about_75_seconds() {
        let t = ubuntu_boot().total().as_secs_f64();
        assert!((72.0..78.0).contains(&t), "ubuntu boot = {t:.1}s");
    }

    #[test]
    fn kite_at_least_10x_faster() {
        let ratio = ubuntu_boot().total().as_secs_f64() / kite_boot().total().as_secs_f64();
        assert!(ratio >= 10.0, "claim C1: 10x faster boot; got {ratio:.1}x");
    }

    #[test]
    fn no_stage_exists_in_kite_equivalent() {
        // The dominating stages are service-management work absent from a
        // unikernel: systemd, udev, initramfs.
        let seq = ubuntu_boot();
        let managed: Nanos = seq
            .stages
            .iter()
            .filter(|s| {
                s.name.contains("systemd")
                    || s.name.contains("udev")
                    || s.name.contains("initramfs")
            })
            .map(|s| s.duration)
            .sum();
        assert!(managed.as_secs_f64() > 30.0);
    }
}
