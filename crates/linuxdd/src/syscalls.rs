//! The Linux syscall surface of an Ubuntu-based driver domain.
//!
//! Figure 4a: even a minimal Ubuntu driver domain exercises **171**
//! syscalls — the kernel plus systemd, udev, shells, Python (for xen-utils)
//! and the xl toolstack each pull in their share, and most cannot be
//! removed without breaking boot. The list below names them; the paper's
//! CVE analysis (Table 3) then follows mechanically from set membership.

use kite_rumprun::SyscallSet;

/// The 171 syscalls observed in use by a minimal Ubuntu 18.04 driver
/// domain (kernel boot + systemd + udev + xl devd + bridge scripts).
pub fn ubuntu_driver_domain_syscalls() -> SyscallSet {
    SyscallSet::from_names(UBUNTU_DD_SYSCALLS)
}

/// Syscalls that exist in Linux (≈300 on x86-64); the driver domain uses a
/// subset but the rest remain reachable attack surface unless seccomp'd.
pub fn linux_total_syscall_count() -> usize {
    313
}

const UBUNTU_DD_SYSCALLS: &[&str] = &[
    "clone",
    "fork",
    "execve",
    "exit",
    "exit_group",
    "wait4",
    "kill",
    "getpid",
    "getppid",
    "gettid",
    "setsid",
    "setpgid",
    "prctl",
    "arch_prctl",
    "set_tid_address",
    "futex",
    "sched_yield",
    "sched_getaffinity",
    "sched_setaffinity",
    "nanosleep",
    "clock_nanosleep",
    "brk",
    "mmap",
    "munmap",
    "mprotect",
    "mremap",
    "madvise",
    "modify_ldt",
    "open",
    "openat",
    "close",
    "read",
    "write",
    "readv",
    "writev",
    "pread64",
    "pwrite64",
    "lseek",
    "stat",
    "fstat",
    "lstat",
    "newfstatat",
    "access",
    "readlink",
    "readlinkat",
    "rename",
    "unlink",
    "unlinkat",
    "symlink",
    "mkdir",
    "mkdirat",
    "rmdir",
    "chdir",
    "getcwd",
    "chmod",
    "fchmod",
    "chown",
    "fchown",
    "umask",
    "ftruncate",
    "fallocate",
    "fsync",
    "fdatasync",
    "sync",
    "dup",
    "dup2",
    "dup3",
    "pipe",
    "pipe2",
    "fcntl",
    "getdents",
    "getdents64",
    "utimensat",
    "statfs",
    "fstatfs",
    "getxattr",
    "setxattr",
    "ioctl",
    "sendfile",
    "select",
    "poll",
    "ppoll",
    "epoll_create1",
    "epoll_ctl",
    "epoll_wait",
    "epoll_pwait",
    "eventfd2",
    "timerfd_create",
    "timerfd_settime",
    "signalfd4",
    "inotify_init1",
    "inotify_add_watch",
    "inotify_rm_watch",
    "rt_sigaction",
    "rt_sigprocmask",
    "rt_sigreturn",
    "rt_sigsuspend",
    "rt_sigtimedwait",
    "sigaltstack",
    "pause",
    "clock_gettime",
    "clock_getres",
    "gettimeofday",
    "times",
    "timer_create",
    "timer_settime",
    "getitimer",
    "setitimer",
    "getuid",
    "geteuid",
    "getgid",
    "getegid",
    "setuid",
    "setgid",
    "setgroups",
    "getgroups",
    "setresuid",
    "setresgid",
    "capget",
    "capset",
    "socket",
    "socketpair",
    "bind",
    "connect",
    "listen",
    "accept",
    "accept4",
    "getsockname",
    "getpeername",
    "sendto",
    "recvfrom",
    "sendmsg",
    "recvmsg",
    "sendmmsg",
    "shutdown",
    "setsockopt",
    "getsockopt",
    "init_module",
    "finit_module",
    "delete_module",
    "mount",
    "umount2",
    "pivot_root",
    "chroot",
    "reboot",
    "sysinfo",
    "uname",
    "sethostname",
    "getrlimit",
    "setrlimit",
    "prlimit64",
    "getrusage",
    "getpriority",
    "setpriority",
    "personality",
    "seccomp",
    "bpf",
    "perf_event_open",
    "memfd_create",
    "getrandom",
    "name_to_handle_at",
    "ptrace",
    "keyctl",
    "add_key",
    "io_setup",
    "io_submit",
    "io_getevents",
    "io_destroy",
    "unshare",
    "setns",
    "kcmp",
];

#[cfg(test)]
mod tests {
    use super::*;
    use kite_rumprun::kite_network_syscalls;

    #[test]
    fn ubuntu_surface_is_171() {
        assert_eq!(
            ubuntu_driver_domain_syscalls().len(),
            171,
            "Figure 4a: Ubuntu driver domain uses 171 syscalls"
        );
    }

    #[test]
    fn roughly_10x_kite() {
        let ratio =
            ubuntu_driver_domain_syscalls().len() as f64 / kite_network_syscalls().len() as f64;
        assert!(
            ratio >= 10.0,
            "paper claims 10x reduction; ratio={ratio:.1}"
        );
    }

    #[test]
    fn dangerous_syscalls_present_in_linux() {
        let s = ubuntu_driver_domain_syscalls();
        for essential in ["clone", "execve", "init_module", "modify_ldt", "mount"] {
            assert!(
                s.contains(essential),
                "{essential} is required by Linux boot"
            );
        }
    }

    #[test]
    fn linux_total_is_about_300() {
        assert!(linux_total_syscall_count() >= 300);
    }
}
