//! The Linux OS overhead profile for the shared backend mechanism.

use kite_rumprun::{OsProfile, WorkModel};
use kite_sim::Nanos;

/// Linux driver-domain profile: softirq/NAPI dispatch, kthread wakeups
/// through the scheduler, deeper per-packet (skb, bridge netfilter hooks)
/// and per-bio block layers, and real user/kernel crossings for the
/// toolstack daemons.
pub fn linux_profile() -> OsProfile {
    OsProfile {
        name: "Linux",
        work_model: WorkModel::WorkQueue,
        irq_overhead: Nanos::from_nanos(900),
        wakeup_latency: Nanos::from_micros(3),
        per_packet: Nanos::from_nanos(800),
        per_block_request: Nanos::from_micros(4),
        context_switch: Nanos::from_nanos(1200),
        syscall: Nanos::from_nanos(250),
        idle_wake_cap: Nanos::from_micros(295),
        idle_wake_div: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_rumprun::kite_profile;

    #[test]
    fn linux_dispatch_slower_than_kite() {
        assert!(linux_profile().dispatch_latency() > kite_profile().dispatch_latency());
    }

    #[test]
    fn linux_has_real_syscall_cost() {
        assert!(linux_profile().syscall > Nanos::ZERO);
        assert_eq!(linux_profile().work_model, WorkModel::WorkQueue);
    }

    #[test]
    fn per_layer_costs_higher_but_same_magnitude() {
        // The paper finds Kite *competitive*, not dramatically faster: the
        // profiles must differ by small factors, not orders of magnitude.
        let l = linux_profile();
        let k = kite_profile();
        let r = l.per_packet.as_nanos() as f64 / k.per_packet.as_nanos() as f64;
        assert!((1.0..3.0).contains(&r), "per-packet ratio {r:.2}");
        let r = l.per_block_request.as_nanos() as f64 / k.per_block_request.as_nanos() as f64;
        assert!((1.0..3.0).contains(&r), "per-request ratio {r:.2}");
    }
}
