//! A 10GbE NIC model (Intel 82599ES class).
//!
//! The transmit side serializes frames onto a [`Link`] after a fixed
//! per-frame driver/DMA overhead; the receive side queues arriving frames
//! and moderates interrupts (ITR-style coalescing), which is why a driver
//! domain sees *batches* of frames per IRQ at high rates — the behaviour
//! Kite's `soft_start`/`pusher` threads are built around.

use std::collections::VecDeque;

use kite_sim::{Link, Nanos, TxOutcome};

use crate::Device;

/// Cost envelope of the NIC, consumed by [`Nic::with_profile`].
///
/// Like [`crate::NvmeProfile`], build it with `with_*` methods; the
/// profile is read once at construction:
///
/// ```
/// use kite_devices::{Nic, NicProfile};
/// use kite_sim::Nanos;
/// let nic = Nic::with_profile(
///     NicProfile::default().with_irq_coalesce(Nanos::from_micros(50)),
/// );
/// assert_eq!(nic.irq_coalesce, Nanos::from_micros(50));
/// ```
#[derive(Clone, Debug)]
pub struct NicProfile {
    /// Per-frame driver overhead (descriptor write, doorbell, DMA setup).
    pub per_frame_tx: Nanos,
    /// Extra overhead per wire segment when the TSO engine cuts a
    /// super-frame (header replication, descriptor per segment). Zero
    /// by default: hardware segmentation is nearly free next to the
    /// per-frame doorbell, which is the whole point of offload.
    pub per_seg_tx: Nanos,
    /// Line rate of the attached wire in bits per second.
    pub line_rate_bps: u64,
    /// Interrupt moderation window.
    pub irq_coalesce: Nanos,
    /// Receive queue capacity in frames.
    pub rx_queue_frames: usize,
    /// Transmit-side queueing capacity in bytes (hardware ring + qdisc).
    pub tx_queue_bytes: u64,
}

/// Wire speeds the NIC models ship profiles for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineRate {
    /// 10GbE (Intel 82599ES class) — the default.
    Gbe10,
    /// 25GbE (Intel E810 / Mellanox CX-5 class).
    Gbe25,
    /// 100GbE (Mellanox CX-6 class).
    Gbe100,
}

impl LineRate {
    /// The raw line rate in bits per second.
    pub fn bps(self) -> u64 {
        match self {
            LineRate::Gbe10 => 10_000_000_000,
            LineRate::Gbe25 => 25_000_000_000,
            LineRate::Gbe100 => 100_000_000_000,
        }
    }

    /// Stable label for scenario names, e.g. `"wire_25g"`.
    pub fn label(self) -> &'static str {
        match self {
            LineRate::Gbe10 => "wire_10g",
            LineRate::Gbe25 => "wire_25g",
            LineRate::Gbe100 => "wire_100g",
        }
    }
}

impl Default for NicProfile {
    fn default() -> NicProfile {
        // 82599ES at 10GbE: ITR default ≈ 20 µs; BQL keeps the hardware
        // ring short but the qdisc absorbs tens of MB of TSO-era bursts.
        NicProfile {
            per_frame_tx: Nanos::from_nanos(250),
            per_seg_tx: Nanos::ZERO,
            line_rate_bps: LineRate::Gbe10.bps(),
            irq_coalesce: Nanos::from_micros(20),
            rx_queue_frames: 2048,
            tx_queue_bytes: 64 * 1024 * 1024,
        }
    }
}

impl NicProfile {
    /// Sets the per-frame transmit overhead.
    pub fn with_per_frame_tx(mut self, cost: Nanos) -> NicProfile {
        self.per_frame_tx = cost;
        self
    }

    /// Sets the per-wire-segment TSO overhead.
    pub fn with_per_seg_tx(mut self, cost: Nanos) -> NicProfile {
        self.per_seg_tx = cost;
        self
    }

    /// Selects a wire speed. Faster parts also moderate interrupts
    /// harder: the ITR window shrinks with the line rate so the IRQ
    /// rate per byte stays in the envelope real drivers target.
    pub fn with_line_rate(mut self, rate: LineRate) -> NicProfile {
        self.line_rate_bps = rate.bps();
        self.irq_coalesce = match rate {
            LineRate::Gbe10 => Nanos::from_micros(20),
            LineRate::Gbe25 => Nanos::from_micros(10),
            LineRate::Gbe100 => Nanos::from_micros(5),
        };
        self
    }

    /// Sets the interrupt moderation window.
    pub fn with_irq_coalesce(mut self, window: Nanos) -> NicProfile {
        self.irq_coalesce = window;
        self
    }

    /// Sets the receive queue capacity in frames.
    pub fn with_rx_queue_frames(mut self, frames: usize) -> NicProfile {
        self.rx_queue_frames = frames;
        self
    }

    /// Sets the transmit-side queueing capacity in bytes.
    pub fn with_tx_queue_bytes(mut self, bytes: u64) -> NicProfile {
        self.tx_queue_bytes = bytes;
        self
    }
}

/// Receive-side interrupt decision from [`Nic::rx_enqueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxIrq {
    /// Deliver an interrupt at the given time.
    FireAt(Nanos),
    /// An interrupt is already pending; the frame rides along.
    AlreadyPending,
    /// Receive queue overflowed; the frame was dropped.
    Dropped,
}

/// The NIC model.
#[derive(Clone, Debug)]
pub struct Nic {
    /// Wire-facing transmit side.
    pub link: Link,
    /// Per-frame driver overhead (descriptor write, doorbell, DMA setup).
    pub per_frame_tx: Nanos,
    /// Extra per-wire-segment overhead when TSO cuts a super-frame.
    pub per_seg_tx: Nanos,
    /// Interrupt moderation window (82599 ITR default ≈ 20 µs at 10GbE).
    pub irq_coalesce: Nanos,
    /// Receive queue capacity in frames.
    pub rx_queue_frames: usize,
    rx_queue: VecDeque<Vec<u8>>,
    irq_pending: bool,
    last_irq: Nanos,
    rx_frames: u64,
    rx_bytes: u64,
    rx_dropped: u64,
}

impl Nic {
    /// A 10GbE NIC with 82599-like parameters.
    pub fn ten_gbe() -> Nic {
        Nic::with_profile(NicProfile::default())
    }

    /// A NIC with an explicit cost profile (wire speed included).
    pub fn with_profile(profile: NicProfile) -> Nic {
        let mut link = Link::ten_gbe();
        link.rate_bps = profile.line_rate_bps;
        link.queue_bytes = profile.tx_queue_bytes;
        Nic {
            link,
            per_seg_tx: profile.per_seg_tx,
            per_frame_tx: profile.per_frame_tx,
            irq_coalesce: profile.irq_coalesce,
            rx_queue_frames: profile.rx_queue_frames,
            rx_queue: VecDeque::new(),
            irq_pending: false,
            last_irq: Nanos::ZERO,
            rx_frames: 0,
            rx_bytes: 0,
            rx_dropped: 0,
        }
    }

    /// Transmits a frame at `now`; returns wire departure/arrival or drop.
    pub fn transmit(&mut self, now: Nanos, wire_bytes: u64) -> TxOutcome {
        self.transmit_segs(now, wire_bytes, 1)
    }

    /// Transmits a (possibly TSO-segmented) frame: one per-frame
    /// doorbell, plus the per-segment engine cost for every wire
    /// segment the super-frame resolves to. `wire_bytes` already
    /// includes the replicated headers and per-segment overhead.
    pub fn transmit_segs(&mut self, now: Nanos, wire_bytes: u64, segs: u32) -> TxOutcome {
        let cost = self.per_frame_tx + self.per_seg_tx * segs as u64;
        self.link.transmit(now + cost, wire_bytes)
    }

    /// A frame arrived from the wire; queues it and decides on an IRQ.
    pub fn rx_enqueue(&mut self, now: Nanos, frame: Vec<u8>) -> RxIrq {
        if self.rx_queue.len() >= self.rx_queue_frames {
            self.rx_dropped += 1;
            return RxIrq::Dropped;
        }
        self.rx_bytes += frame.len() as u64;
        self.rx_frames += 1;
        self.rx_queue.push_back(frame);
        if self.irq_pending {
            return RxIrq::AlreadyPending;
        }
        self.irq_pending = true;
        let fire = (self.last_irq + self.irq_coalesce).max(now);
        RxIrq::FireAt(fire)
    }

    /// The driver's interrupt handler ran at `now`: drains up to `budget`
    /// queued frames and re-arms moderation.
    pub fn drain_rx(&mut self, now: Nanos, budget: usize) -> Vec<Vec<u8>> {
        self.last_irq = now;
        self.irq_pending = false;
        let n = budget.min(self.rx_queue.len());
        self.rx_queue.drain(..n).collect()
    }

    /// Frames still queued (driver should poll again before sleeping).
    pub fn rx_backlog(&self) -> usize {
        self.rx_queue.len()
    }

    /// Marks an IRQ as pending without a frame (poll-again path).
    ///
    /// Returns when it should fire, or `None` if one is already pending.
    pub fn rearm_irq(&mut self, now: Nanos) -> Option<Nanos> {
        if self.rx_queue.is_empty() || self.irq_pending {
            return None;
        }
        self.irq_pending = true;
        Some((self.last_irq + self.irq_coalesce).max(now))
    }

    /// Received frame count.
    pub fn rx_frames(&self) -> u64 {
        self.rx_frames
    }

    /// Received byte count.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }

    /// Frames dropped by receive-queue overflow.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped
    }
}

impl Device for Nic {
    fn model(&self) -> &'static str {
        "Intel 82599ES"
    }

    fn reset(&mut self) {
        // Frames sitting in the rx queue at reset are lost on the floor —
        // account them as drops so lifetime counters stay honest.
        self.rx_dropped += self.rx_queue.len() as u64;
        self.rx_queue.clear();
        self.irq_pending = false;
        self.last_irq = Nanos::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_adds_overhead_then_serializes() {
        let mut nic = Nic::ten_gbe();
        match nic.transmit(Nanos::ZERO, 1538) {
            TxOutcome::Sent { departs, .. } => {
                // 250ns overhead + 1538B at 10Gbps = 1230.4ns.
                assert_eq!(departs.as_nanos(), 250 + 1230);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn line_rate_profiles_scale_serialization() {
        let mut nic25 = Nic::with_profile(NicProfile::default().with_line_rate(LineRate::Gbe25));
        match nic25.transmit(Nanos::ZERO, 1538) {
            TxOutcome::Sent { departs, .. } => {
                // 250ns overhead + 1538B at 25Gbps = 492.1ns.
                assert_eq!(departs.as_nanos(), 250 + 492);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(nic25.irq_coalesce, Nanos::from_micros(10));
        let nic100 = Nic::with_profile(NicProfile::default().with_line_rate(LineRate::Gbe100));
        assert_eq!(nic100.link.rate_bps, LineRate::Gbe100.bps());
        assert_eq!(LineRate::Gbe25.label(), "wire_25g");
    }

    #[test]
    fn per_segment_cost_is_charged_per_tso_segment() {
        let mut nic =
            Nic::with_profile(NicProfile::default().with_per_seg_tx(Nanos::from_nanos(40)));
        match nic.transmit_segs(Nanos::ZERO, 1538, 4) {
            TxOutcome::Sent { departs, .. } => {
                assert_eq!(departs.as_nanos(), 250 + 4 * 40 + 1230);
            }
            other => panic!("{other:?}"),
        }
        // The default profile charges nothing per segment, so
        // `transmit` and `transmit_segs` agree.
        let mut plain = Nic::ten_gbe();
        let a = plain.transmit(Nanos::ZERO, 1538);
        let mut plain2 = Nic::ten_gbe();
        let b = plain2.transmit_segs(Nanos::ZERO, 1538, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn first_rx_fires_immediately_then_coalesces() {
        let mut nic = Nic::ten_gbe();
        let t0 = Nanos::from_micros(100);
        assert_eq!(nic.rx_enqueue(t0, vec![0; 100]), RxIrq::FireAt(t0));
        // While pending, more frames ride along.
        assert_eq!(nic.rx_enqueue(t0, vec![0; 100]), RxIrq::AlreadyPending);
        // Handler drains both.
        let frames = nic.drain_rx(t0, 64);
        assert_eq!(frames.len(), 2);
        // Next frame soon after is moderated to last_irq + coalesce.
        let t1 = t0 + Nanos::from_micros(1);
        assert_eq!(
            nic.rx_enqueue(t1, vec![0; 100]),
            RxIrq::FireAt(t0 + Nanos::from_micros(20))
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let mut nic = Nic::ten_gbe();
        nic.rx_queue_frames = 2;
        assert!(matches!(
            nic.rx_enqueue(Nanos::ZERO, vec![1]),
            RxIrq::FireAt(_)
        ));
        assert_eq!(nic.rx_enqueue(Nanos::ZERO, vec![2]), RxIrq::AlreadyPending);
        assert_eq!(nic.rx_enqueue(Nanos::ZERO, vec![3]), RxIrq::Dropped);
        assert_eq!(nic.rx_dropped(), 1);
        assert_eq!(nic.rx_frames(), 2);
    }

    #[test]
    fn drain_budget_leaves_backlog_and_rearm_works() {
        let mut nic = Nic::ten_gbe();
        let t0 = Nanos::ZERO;
        for i in 0..10 {
            nic.rx_enqueue(t0, vec![i]);
        }
        let got = nic.drain_rx(t0, 4);
        assert_eq!(got.len(), 4);
        assert_eq!(nic.rx_backlog(), 6);
        // Re-arm schedules a moderated IRQ for the backlog.
        let fire = nic.rearm_irq(t0).unwrap();
        assert_eq!(fire, t0 + nic.irq_coalesce);
        // Double re-arm is suppressed.
        assert_eq!(nic.rearm_irq(t0), None);
    }

    #[test]
    fn rearm_with_empty_queue_is_none() {
        let mut nic = Nic::ten_gbe();
        assert_eq!(nic.rearm_irq(Nanos::ZERO), None);
    }

    #[test]
    fn profile_builders_configure_the_nic() {
        let nic = Nic::with_profile(
            NicProfile::default()
                .with_per_frame_tx(Nanos::from_nanos(500))
                .with_irq_coalesce(Nanos::from_micros(5))
                .with_rx_queue_frames(16)
                .with_tx_queue_bytes(1024),
        );
        assert_eq!(nic.per_frame_tx, Nanos::from_nanos(500));
        assert_eq!(nic.irq_coalesce, Nanos::from_micros(5));
        assert_eq!(nic.rx_queue_frames, 16);
        assert_eq!(nic.link.queue_bytes, 1024);
    }

    #[test]
    fn reset_drops_queued_frames_and_interrupt_state() {
        let mut nic = Nic::ten_gbe();
        let t0 = Nanos::from_micros(100);
        assert!(matches!(nic.rx_enqueue(t0, vec![0; 64]), RxIrq::FireAt(_)));
        assert_eq!(nic.rx_enqueue(t0, vec![0; 64]), RxIrq::AlreadyPending);
        nic.reset();
        assert_eq!(nic.model(), "Intel 82599ES");
        assert_eq!(nic.rx_backlog(), 0);
        // Lifetime counters survive; the two queued frames count as drops.
        assert_eq!(nic.rx_frames(), 2);
        assert_eq!(nic.rx_dropped(), 2);
        // Interrupt state is clean: the next frame fires immediately.
        let t1 = Nanos::from_micros(101);
        assert_eq!(nic.rx_enqueue(t1, vec![0; 64]), RxIrq::FireAt(t1));
    }
}
