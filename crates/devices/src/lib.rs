//! Physical device models for the Kite reproduction.
//!
//! The paper's testbed exposes two devices to driver domains via PCI
//! passthrough: an Intel 82599ES 10GbE NIC and a Samsung 970 EVO Plus
//! NVMe SSD. [`nic::Nic`] and [`nvme::Nvme`] model their timing envelopes
//! (link-rate serialization, interrupt moderation; channel-parallel flash
//! with per-command latency) while carrying *real data* — frames are real
//! bytes, and the SSD stores written sectors sparsely for read-back
//! verification.

pub mod nic;
pub mod nvme;

pub use nic::{Nic, RxIrq};
pub use nvme::{Nvme, NvmeOp, NvmeProfile, SECTOR_SIZE};
