//! Physical device models for the Kite reproduction.
//!
//! The paper's testbed exposes two devices to driver domains via PCI
//! passthrough: an Intel 82599ES 10GbE NIC and a Samsung 970 EVO Plus
//! NVMe SSD. [`nic::Nic`] and [`nvme::NvmeController`] model their timing
//! envelopes (link-rate serialization, interrupt moderation;
//! channel-parallel flash behind NVMe queue pairs with per-command
//! latency) while carrying *real data* — frames are real bytes, and the
//! SSD stores written sectors sparsely for read-back verification.
//!
//! Both models share the small [`Device`] surface, and both are
//! configured by immutable cost profiles ([`NvmeProfile`], [`NicProfile`])
//! built with `with_*` methods — the profile is consumed at construction,
//! so runtime state derived from it can never silently desynchronize.

pub mod nic;
pub mod nvme;

pub use nic::{LineRate, Nic, NicProfile, RxIrq};
pub use nvme::{
    Cid, CqEntry, MsixVector, Nvme, NvmeCmd, NvmeController, NvmeOp, NvmeProfile, QueueId,
    MAX_IO_QUEUES, SECTOR_SIZE, SQ_DEPTH,
};

/// The minimal surface every passthrough device model shares.
pub trait Device {
    /// The hardware model being simulated (as a PCI ID database would
    /// print it).
    fn model(&self) -> &'static str;

    /// Function-level reset, as dom0 performs before re-assigning the
    /// device to a replacement driver domain: queue and interrupt state
    /// is dropped; durable contents and lifetime counters survive.
    fn reset(&mut self);
}
