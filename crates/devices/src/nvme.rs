//! An NVMe SSD model (Samsung 970 EVO Plus class) with sparse real storage
//! behind a queue-pair controller interface.
//!
//! Interface: like real NVMe, I/O goes through submission/completion queue
//! pairs created over an admin interface. A driver calls
//! [`NvmeController::create_io_queues`] once per ring (the completion side
//! gets an MSI-X-style vector steered to the ring's vCPU), posts commands
//! with [`NvmeController::sq_push`], makes them visible with
//! [`NvmeController::ring_doorbell`], and reaps [`CqEntry`] completions with
//! [`NvmeController::cq_pop`] when the vector fires. Sequential detection is
//! **per queue**: each pair keeps its own `last_end_sector` cursor, so one
//! ring's strictly sequential stream never pays the random penalty just
//! because another ring is writing elsewhere — the property that makes
//! multi-ring blkback scale instead of regress.
//!
//! Timing: commands dispatch onto a small number of parallel flash channels
//! *shared across queues* (queue pairs are a software construct; the flash
//! is not). Each channel serializes its commands (base latency + transfer
//! time at the per-channel rate). Aggregate sequential bandwidth is
//! therefore `channels × channel_rate`, queue-depth scaling and per-command
//! latency emerge naturally, and a `flush` barrier completes when every
//! channel drains.
//!
//! Data: written sectors are stored sparsely at 4 KiB granularity so
//! read-back verification in tests uses *real bytes* without reserving
//! 500 GB of RAM. Unwritten regions read as zeros, like a fresh drive.
//!
//! The legacy synchronous [`NvmeController::submit`] survives as a one-deep
//! shim over a single implicit queue pair and is banned for new code via
//! clippy.toml `disallowed-methods`.

use std::collections::{HashMap, VecDeque};

use kite_sim::{Cpu, Nanos};

use crate::Device;

/// Sector size in bytes.
pub const SECTOR_SIZE: usize = 512;
const BLOCK_SECTORS: u64 = 8; // 4 KiB blocks
const BLOCK_SIZE: usize = (BLOCK_SECTORS as usize) * SECTOR_SIZE;

/// Default cap on I/O queue pairs (the 970 EVO Plus reports 32; we allow
/// a few more so ablation configs can oversubscribe).
pub const MAX_IO_QUEUES: usize = 64;

/// Submission-queue depth per I/O queue (NVMe allows 64Ki; real drivers
/// negotiate ~1024).
pub const SQ_DEPTH: usize = 1024;

/// An I/O command kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NvmeOp {
    /// Read sectors.
    Read,
    /// Write sectors.
    Write,
    /// Flush the volatile write cache (barrier).
    Flush,
}

/// An I/O queue-pair identifier. NVMe-style 1-based: queue 0 is the admin
/// queue and never carries I/O.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueueId(pub u16);

/// A controller-assigned command identifier, unique for the lifetime of
/// the controller (never recycled, so stale completions are detectable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cid(pub u64);

/// A submission-queue command.
#[derive(Clone, Copy, Debug)]
pub struct NvmeCmd {
    /// Command kind.
    pub op: NvmeOp,
    /// Starting sector (ignored for flush).
    pub sector: u64,
    /// Transfer length in bytes (ignored for flush).
    pub len_bytes: usize,
}

impl NvmeCmd {
    /// A read command.
    pub fn read(sector: u64, len_bytes: usize) -> NvmeCmd {
        NvmeCmd {
            op: NvmeOp::Read,
            sector,
            len_bytes,
        }
    }

    /// A write command.
    pub fn write(sector: u64, len_bytes: usize) -> NvmeCmd {
        NvmeCmd {
            op: NvmeOp::Write,
            sector,
            len_bytes,
        }
    }

    /// A flush barrier.
    pub fn flush() -> NvmeCmd {
        NvmeCmd {
            op: NvmeOp::Flush,
            sector: 0,
            len_bytes: 0,
        }
    }
}

/// A completion-queue entry: which command finished and when.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CqEntry {
    /// The command this entry completes.
    pub cid: Cid,
    /// Virtual time at which the device posts the completion.
    pub completes_at: Nanos,
    /// Virtual time at which the doorbell ring submitted the command —
    /// kept on the entry so a reaper can reconstruct device residency
    /// (request tracing rides the `cid` from SQ to CQ).
    pub submitted_at: Nanos,
}

/// An MSI-X-style completion vector: interrupt number plus the vCPU the
/// interrupt is steered to (affinity set at queue creation, the way
/// `irq_set_affinity` pins NVMe completion vectors per-core).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsixVector {
    /// Vector number (equals the queue id).
    pub vector: u16,
    /// Target vCPU in the owning domain's `CpuPool`.
    pub vcpu: usize,
}

/// Performance envelope of the drive.
///
/// Construct with [`Default`] and refine with the `with_*` builders:
///
/// ```
/// use kite_devices::NvmeProfile;
/// use kite_sim::Nanos;
/// let p = NvmeProfile::default()
///     .with_channels(8)
///     .with_random_penalty(Nanos::from_micros(100));
/// assert_eq!(p.channels, 8);
/// ```
#[derive(Clone, Debug)]
pub struct NvmeProfile {
    /// Extra service latency charged when a command does not continue the
    /// previous command's LBA range *on the same queue* (FTL lookup, lost
    /// write-coalescing, read-ahead miss). This is what separates the
    /// paper's sequential dd rates from its random sysbench rates on the
    /// same device.
    pub random_penalty: Nanos,
    /// Parallel flash channels (shared by all queue pairs).
    pub channels: usize,
    /// Per-channel transfer rate for reads, bytes/sec.
    pub read_bps_per_channel: u64,
    /// Per-channel transfer rate for writes, bytes/sec.
    pub write_bps_per_channel: u64,
    /// Fixed read command latency (flash + controller).
    pub read_latency: Nanos,
    /// Fixed write command latency (into SLC cache).
    pub write_latency: Nanos,
    /// Flush completion overhead after channels drain.
    pub flush_latency: Nanos,
}

impl Default for NvmeProfile {
    fn default() -> NvmeProfile {
        // 970 EVO Plus 500GB: ~3.5 GB/s seq read, ~3.2 GB/s seq write.
        NvmeProfile {
            random_penalty: Nanos::from_micros(2800),
            channels: 4,
            read_bps_per_channel: 875_000_000,
            write_bps_per_channel: 800_000_000,
            read_latency: Nanos::from_micros(70),
            write_latency: Nanos::from_micros(25),
            flush_latency: Nanos::from_micros(150),
        }
    }
}

impl NvmeProfile {
    /// Sets the non-sequential command penalty.
    pub fn with_random_penalty(mut self, penalty: Nanos) -> NvmeProfile {
        self.random_penalty = penalty;
        self
    }

    /// Sets the parallel flash channel count.
    pub fn with_channels(mut self, channels: usize) -> NvmeProfile {
        assert!(channels >= 1, "a drive needs at least one flash channel");
        self.channels = channels;
        self
    }

    /// Sets the per-channel read rate in bytes/sec.
    pub fn with_read_bps_per_channel(mut self, bps: u64) -> NvmeProfile {
        self.read_bps_per_channel = bps;
        self
    }

    /// Sets the per-channel write rate in bytes/sec.
    pub fn with_write_bps_per_channel(mut self, bps: u64) -> NvmeProfile {
        self.write_bps_per_channel = bps;
        self
    }

    /// Sets the fixed read command latency.
    pub fn with_read_latency(mut self, latency: Nanos) -> NvmeProfile {
        self.read_latency = latency;
        self
    }

    /// Sets the fixed write command latency.
    pub fn with_write_latency(mut self, latency: Nanos) -> NvmeProfile {
        self.write_latency = latency;
        self
    }

    /// Sets the flush completion overhead.
    pub fn with_flush_latency(mut self, latency: Nanos) -> NvmeProfile {
        self.flush_latency = latency;
        self
    }
}

/// One I/O SQ/CQ pair. The CQ is kept ordered by completion time
/// (insertion order breaks ties) so `cq_pop` is head-of-queue.
struct IoQueue {
    vector: MsixVector,
    sq: VecDeque<(Cid, NvmeCmd)>,
    cq: VecDeque<CqEntry>,
    last_end_sector: u64,
}

impl IoQueue {
    fn new(vector: MsixVector) -> IoQueue {
        IoQueue {
            vector,
            sq: VecDeque::new(),
            cq: VecDeque::new(),
            last_end_sector: u64::MAX,
        }
    }
}

/// The drive: queue-pair controller, timing model, sparse contents.
pub struct NvmeController {
    profile: NvmeProfile,
    /// Capacity in 512-byte sectors.
    pub sectors: u64,
    max_io_queues: usize,
    // Physical flash channels, shared by every queue pair.
    channels: Vec<Cpu>,
    rr: usize,
    // Slot i holds QueueId(i + 1); freed slots are reused lowest-first so
    // queue ids stay deterministic across delete/create cycles.
    queues: Vec<Option<IoQueue>>,
    legacy: Option<QueueId>,
    next_cid: u64,
    posted: Vec<CqEntry>,
    blocks: HashMap<u64, Box<[u8]>>,
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
    seq_hits: u64,
    random_penalties: u64,
}

/// Historical name for [`NvmeController`]; the model grew a queue-pair
/// interface without changing what it models.
pub type Nvme = NvmeController;

impl NvmeController {
    /// Creates a drive of `capacity_gib` gibibytes with the default profile.
    pub fn new(capacity_gib: u64) -> NvmeController {
        NvmeController::with_profile(capacity_gib, NvmeProfile::default())
    }

    /// Creates a drive with an explicit performance profile.
    ///
    /// The channel vector is derived from `profile.channels` here, once;
    /// the profile is immutable afterwards (see [`NvmeController::profile`])
    /// so the two can never desynchronize.
    pub fn with_profile(capacity_gib: u64, profile: NvmeProfile) -> NvmeController {
        assert!(profile.channels >= 1, "a drive needs at least one channel");
        NvmeController {
            channels: vec![Cpu::new(); profile.channels],
            profile,
            sectors: capacity_gib * 1024 * 1024 * 1024 / SECTOR_SIZE as u64,
            max_io_queues: MAX_IO_QUEUES,
            rr: 0,
            queues: Vec::new(),
            legacy: None,
            next_cid: 0,
            posted: Vec::new(),
            blocks: HashMap::new(),
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
            seq_hits: 0,
            random_penalties: 0,
        }
    }

    /// Caps the number of I/O queue pairs the admin interface will create
    /// (builder-style; chain after [`NvmeController::with_profile`]).
    pub fn with_max_io_queues(mut self, max: usize) -> NvmeController {
        assert!(max >= 1, "controller must offer at least one I/O queue");
        self.max_io_queues = max;
        self
    }

    /// The immutable performance envelope.
    pub fn profile(&self) -> &NvmeProfile {
        &self.profile
    }

    /// The I/O queue-pair cap.
    pub fn max_io_queues(&self) -> usize {
        self.max_io_queues
    }

    /// Currently existing I/O queue pairs.
    pub fn io_queue_count(&self) -> usize {
        self.queues.iter().filter(|q| q.is_some()).count()
    }

    fn slot(qid: QueueId) -> usize {
        assert!(qid.0 >= 1, "queue 0 is the admin queue, not an I/O queue");
        qid.0 as usize - 1
    }

    fn queue(&self, qid: QueueId) -> Option<&IoQueue> {
        self.queues.get(Self::slot(qid))?.as_ref()
    }

    /// Admin command: create an I/O SQ/CQ pair whose completion vector is
    /// steered to `vcpu` in the owning domain's `CpuPool`.
    ///
    /// Returns the new queue id (lowest free slot, deterministic), or
    /// `None` if the controller's queue cap is exhausted — callers then
    /// share an existing pair, exactly like Linux blk-mq maps more
    /// hardware contexts than the device has queues.
    pub fn create_io_queues(&mut self, vcpu: usize) -> Option<QueueId> {
        let slot = match self.queues.iter().position(|q| q.is_none()) {
            Some(free) => free,
            None if self.queues.len() < self.max_io_queues => {
                self.queues.push(None);
                self.queues.len() - 1
            }
            None => return None,
        };
        let qid = QueueId(slot as u16 + 1);
        self.queues[slot] = Some(IoQueue::new(MsixVector {
            vector: qid.0,
            vcpu,
        }));
        Some(qid)
    }

    /// Admin command: delete an I/O queue pair. Outstanding SQ commands
    /// and unreaped CQ entries are dropped (an NVMe delete aborts them).
    /// Returns whether the queue existed.
    pub fn delete_io_queues(&mut self, qid: QueueId) -> bool {
        let Some(slot) = self.queues.get_mut(Self::slot(qid)) else {
            return false;
        };
        if self.legacy == Some(qid) {
            self.legacy = None;
        }
        slot.take().is_some()
    }

    /// Controller-level reset (what a function-level reset before PCI
    /// re-assignment does): every I/O queue pair disappears along with
    /// its cursors and unreaped completions. Media state — stored bytes,
    /// channel busy times, lifetime counters — survives.
    pub fn reset_io_queues(&mut self) {
        self.queues.clear();
        self.legacy = None;
        self.posted.clear();
    }

    /// The MSI-X vector of a queue pair, if it exists.
    pub fn vector_of(&self, qid: QueueId) -> Option<MsixVector> {
        Some(self.queue(qid)?.vector)
    }

    /// Unreaped completion-queue entries on a queue pair.
    pub fn cq_depth(&self, qid: QueueId) -> usize {
        self.queue(qid).map_or(0, |q| q.cq.len())
    }

    /// Posts a command to a queue's submission queue. The command is not
    /// visible to the controller until [`NvmeController::ring_doorbell`].
    ///
    /// # Panics
    ///
    /// Panics if the queue does not exist or its SQ is full ([`SQ_DEPTH`])
    /// — drivers size their request windows below the SQ depth.
    pub fn sq_push(&mut self, qid: QueueId, cmd: NvmeCmd) -> Cid {
        let cid = Cid(self.next_cid);
        self.next_cid += 1;
        let q = self
            .queues
            .get_mut(Self::slot(qid))
            .and_then(|s| s.as_mut())
            .expect("sq_push: no such I/O queue");
        assert!(q.sq.len() < SQ_DEPTH, "sq_push: submission queue overflow");
        q.sq.push_back((cid, cmd));
        cid
    }

    /// Rings a queue's doorbell at `now`: the controller consumes every
    /// posted SQ command in FIFO order, executes it against the shared
    /// flash channels with this queue's sequential cursor, and posts one
    /// CQ entry per command. Returns the newly posted entries (ordered by
    /// submission) so the caller can schedule the completion interrupts.
    pub fn ring_doorbell(&mut self, qid: QueueId, now: Nanos) -> &[CqEntry] {
        self.posted.clear();
        let slot = Self::slot(qid);
        // Take the queue out so command execution can borrow the shared
        // channel state mutably alongside the queue's cursor.
        let mut q = self.queues[slot]
            .take()
            .expect("ring_doorbell: no such I/O queue");
        while let Some((cid, cmd)) = q.sq.pop_front() {
            let completes_at = self.execute(&mut q, now, cmd);
            let entry = CqEntry {
                cid,
                completes_at,
                submitted_at: now,
            };
            let at = q.cq.partition_point(|e| e.completes_at <= completes_at);
            q.cq.insert(at, entry);
            self.posted.push(entry);
        }
        self.queues[slot] = Some(q);
        &self.posted
    }

    /// Reaps the next due completion from a queue's CQ: returns the
    /// head entry if its completion time has been reached at `now`.
    pub fn cq_pop(&mut self, qid: QueueId, now: Nanos) -> Option<CqEntry> {
        let q = self.queues.get_mut(Self::slot(qid))?.as_mut()?;
        if q.cq.front()?.completes_at <= now {
            q.cq.pop_front()
        } else {
            None
        }
    }

    /// Executes one command: the timing model. Sequential detection uses
    /// the *queue's* cursor; channel occupancy is shared device-wide.
    fn execute(&mut self, q: &mut IoQueue, now: Nanos, cmd: NvmeCmd) -> Nanos {
        match cmd.op {
            NvmeOp::Flush => {
                let drain = self
                    .channels
                    .iter()
                    .map(|c| c.free_at())
                    .max()
                    .unwrap_or(Nanos::ZERO)
                    .max(now);
                drain + self.profile.flush_latency
            }
            NvmeOp::Read | NvmeOp::Write => {
                let len_bytes = cmd.len_bytes;
                let (rate, base) = if cmd.op == NvmeOp::Read {
                    self.reads += 1;
                    self.read_bytes += len_bytes as u64;
                    (self.profile.read_bps_per_channel, self.profile.read_latency)
                } else {
                    self.writes += 1;
                    self.write_bytes += len_bytes as u64;
                    (
                        self.profile.write_bps_per_channel,
                        self.profile.write_latency,
                    )
                };
                let sequential = cmd.sector == q.last_end_sector;
                q.last_end_sector = cmd.sector + (len_bytes / SECTOR_SIZE) as u64;
                let penalty = if sequential {
                    self.seq_hits += 1;
                    Nanos::ZERO
                } else {
                    self.random_penalties += 1;
                    self.profile.random_penalty
                };
                // Large *sequential* commands stripe across channels
                // inside the controller (read-ahead friendly layout);
                // random commands land on one channel and carry their
                // penalty there, so random throughput is penalty-bound —
                // the regime the paper's sysbench/Filebench runs sit in.
                const STRIPE_MIN: usize = 128 * 1024;
                if sequential && len_bytes >= STRIPE_MIN {
                    let n = self.channels.len();
                    let slice =
                        Nanos((len_bytes as u64 / n as u64).saturating_mul(1_000_000_000) / rate);
                    let mut done = Nanos::ZERO;
                    for (i, c) in self.channels.iter_mut().enumerate() {
                        let extra = if i == 0 { penalty } else { Nanos::ZERO };
                        done = done.max(c.run(now, extra + slice));
                    }
                    done + base
                } else {
                    let transfer = Nanos((len_bytes as u64).saturating_mul(1_000_000_000) / rate);
                    let ch = self.pick_channel();
                    let busy_done = self.channels[ch].run(now, penalty + transfer);
                    busy_done + base
                }
            }
        }
    }

    fn pick_channel(&mut self) -> usize {
        // Least-loaded dispatch (controller stripes across channels).
        let mut best = 0;
        let mut best_free = Nanos::MAX;
        for (i, c) in self.channels.iter().enumerate() {
            let f = c.free_at();
            if f < best_free {
                best_free = f;
                best = i;
            }
        }
        // Round-robin tiebreak keeps striping even when idle.
        if self.channels.iter().all(|c| c.free_at() == best_free) {
            best = self.rr % self.channels.len();
            self.rr += 1;
        }
        best
    }

    /// Submits a command at `now`; returns its completion time.
    ///
    /// **Legacy compatibility shim**, banned for new code via clippy.toml
    /// `disallowed-methods`: use the queue-pair interface
    /// ([`NvmeController::create_io_queues`] / [`NvmeController::sq_push`] /
    /// [`NvmeController::ring_doorbell`] / [`NvmeController::cq_pop`]).
    /// The shim lazily creates one implicit queue pair (vector steered to
    /// vCPU 0) and performs push → doorbell → pop in a single call, so its
    /// timing is *exactly* a one-queue controller.
    ///
    /// `sector`/`len_bytes` are ignored for [`NvmeOp::Flush`]. Commands
    /// that do not continue the previous command's LBA range pay
    /// [`NvmeProfile::random_penalty`].
    pub fn submit(&mut self, now: Nanos, op: NvmeOp, sector: u64, len_bytes: usize) -> Nanos {
        let qid = match self.legacy {
            Some(qid) => qid,
            None => {
                let qid = self
                    .create_io_queues(0)
                    .expect("legacy submit shim: controller out of I/O queue pairs");
                self.legacy = Some(qid);
                qid
            }
        };
        self.sq_push(
            qid,
            NvmeCmd {
                op,
                sector,
                len_bytes,
            },
        );
        let entry = self.posted_one(qid, now);
        // Reap synchronously: the shim owns this queue pair, so its CQ
        // holds exactly the one entry we just posted.
        let reaped = self.cq_pop(qid, entry.completes_at).expect("own CQ entry");
        debug_assert_eq!(reaped, entry);
        entry.completes_at
    }

    fn posted_one(&mut self, qid: QueueId, now: Nanos) -> CqEntry {
        let posted = self.ring_doorbell(qid, now);
        debug_assert_eq!(posted.len(), 1);
        posted[0]
    }

    /// Writes real bytes at a sector offset (data plane; timing via the
    /// queue-pair interface).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity — the blkback layer
    /// validates requests before they reach the device.
    pub fn write_data(&mut self, sector: u64, data: &[u8]) {
        assert!(
            sector + (data.len().div_ceil(SECTOR_SIZE)) as u64 <= self.sectors,
            "write beyond device capacity"
        );
        let mut off = 0usize;
        let mut sec = sector;
        while off < data.len() {
            let block = sec / BLOCK_SECTORS;
            let in_block = ((sec % BLOCK_SECTORS) as usize) * SECTOR_SIZE;
            let n = (BLOCK_SIZE - in_block).min(data.len() - off);
            let buf = self
                .blocks
                .entry(block)
                .or_insert_with(|| vec![0u8; BLOCK_SIZE].into_boxed_slice());
            buf[in_block..in_block + n].copy_from_slice(&data[off..off + n]);
            off += n;
            sec = block * BLOCK_SECTORS + ((in_block + n) / SECTOR_SIZE) as u64;
        }
    }

    /// Reads real bytes at a sector offset; unwritten regions are zeros.
    pub fn read_data(&self, sector: u64, out: &mut [u8]) {
        let mut off = 0usize;
        let mut sec = sector;
        while off < out.len() {
            let block = sec / BLOCK_SECTORS;
            let in_block = ((sec % BLOCK_SECTORS) as usize) * SECTOR_SIZE;
            let n = (BLOCK_SIZE - in_block).min(out.len() - off);
            match self.blocks.get(&block) {
                Some(buf) => out[off..off + n].copy_from_slice(&buf[in_block..in_block + n]),
                None => out[off..off + n].fill(0),
            }
            off += n;
            sec = block * BLOCK_SECTORS + ((in_block + n) / SECTOR_SIZE) as u64;
        }
    }

    /// Read command count.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write command count.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Commands that continued their queue's LBA cursor.
    pub fn seq_hits(&self) -> u64 {
        self.seq_hits
    }

    /// Commands that paid [`NvmeProfile::random_penalty`].
    pub fn random_penalties(&self) -> u64 {
        self.random_penalties
    }
}

impl Device for NvmeController {
    fn model(&self) -> &'static str {
        "Samsung 970 EVO Plus"
    }

    fn reset(&mut self) {
        self.reset_io_queues();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The shim tests below exercise the banned legacy `submit` on purpose.

    #[test]
    fn data_roundtrip_across_blocks() {
        let mut d = NvmeController::new(1);
        let data: Vec<u8> = (0..20000).map(|i| (i % 251) as u8).collect();
        d.write_data(5, &data); // straddles several 4 KiB blocks
        let mut back = vec![0u8; 20000];
        d.read_data(5, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn unwritten_reads_zero() {
        let d = NvmeController::new(1);
        let mut buf = vec![0xffu8; 1024];
        d.read_data(1000, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn partial_overwrite_preserves_neighbors() {
        let mut d = NvmeController::new(1);
        d.write_data(0, &[0xaa; 4096]);
        d.write_data(2, &[0xbb; 512]); // overwrite sector 2 only
        let mut buf = vec![0u8; 4096];
        d.read_data(0, &mut buf);
        assert!(buf[..1024].iter().all(|&b| b == 0xaa));
        assert!(buf[1024..1536].iter().all(|&b| b == 0xbb));
        assert!(buf[1536..].iter().all(|&b| b == 0xaa));
    }

    #[test]
    fn sequential_bandwidth_approaches_aggregate() {
        let mut d = NvmeController::new(4);
        let q = d.create_io_queues(0).unwrap();
        let chunk = 1 << 20; // 1 MiB commands
        let total: u64 = 512 << 20; // 512 MiB
        let mut done = Nanos::ZERO;
        let mut sector = 0u64;
        for _ in 0..(total / chunk as u64) {
            // Open-loop: all queued at t=0.
            d.sq_push(q, NvmeCmd::read(sector, chunk));
            done = done.max(d.ring_doorbell(q, Nanos::ZERO)[0].completes_at);
            d.cq_pop(q, done).unwrap();
            sector += (chunk / SECTOR_SIZE) as u64;
        }
        let bps = total as f64 / done.as_secs_f64();
        let aggregate = (d.profile().channels as u64 * d.profile().read_bps_per_channel) as f64;
        assert!(bps > 0.9 * aggregate, "bps={bps:.0} vs {aggregate:.0}");
        assert!(bps <= aggregate * 1.01);
    }

    #[test]
    #[allow(clippy::disallowed_methods)]
    fn small_random_reads_latency_bound() {
        let mut d = NvmeController::new(4);
        let t = d.submit(Nanos::ZERO, NvmeOp::Read, 0, 4096);
        // One 4K read ≈ base latency + ~4.7µs transfer.
        assert!(t >= d.profile().read_latency + d.profile().random_penalty);
        assert!(t < d.profile().read_latency + d.profile().random_penalty + Nanos::from_micros(10));
    }

    #[test]
    #[allow(clippy::disallowed_methods)]
    fn flush_waits_for_outstanding_writes() {
        let mut d = NvmeController::new(4);
        let w = d.submit(Nanos::ZERO, NvmeOp::Write, 0, 8 << 20);
        let f = d.submit(Nanos::ZERO, NvmeOp::Flush, 0, 0);
        assert!(
            f + d.profile().write_latency >= w,
            "flush must drain writes"
        );
        assert!(f >= w - d.profile().write_latency);
    }

    #[test]
    #[allow(clippy::disallowed_methods)]
    fn counters_accumulate() {
        let mut d = NvmeController::new(1);
        d.submit(Nanos::ZERO, NvmeOp::Read, 0, 4096);
        d.submit(Nanos::ZERO, NvmeOp::Write, 8, 512);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.read_bytes(), 4096);
        assert_eq!(d.write_bytes(), 512);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn write_past_end_panics() {
        let mut d = NvmeController::new(1);
        let last = d.sectors;
        d.write_data(last, &[0u8; 512]);
    }

    #[test]
    fn queue_ids_are_deterministic_and_reused_lowest_first() {
        let mut d = NvmeController::new(1);
        let q1 = d.create_io_queues(0).unwrap();
        let q2 = d.create_io_queues(1).unwrap();
        let q3 = d.create_io_queues(2).unwrap();
        assert_eq!((q1, q2, q3), (QueueId(1), QueueId(2), QueueId(3)));
        assert!(d.delete_io_queues(q2));
        assert!(!d.delete_io_queues(q2), "double delete reports absence");
        // Lowest free slot is reused, with the new vCPU affinity.
        let q2b = d.create_io_queues(7).unwrap();
        assert_eq!(q2b, QueueId(2));
        assert_eq!(d.vector_of(q2b), Some(MsixVector { vector: 2, vcpu: 7 }));
        assert_eq!(d.io_queue_count(), 3);
    }

    #[test]
    fn queue_cap_exhaustion_returns_none() {
        let mut d = NvmeController::new(1).with_max_io_queues(2);
        assert!(d.create_io_queues(0).is_some());
        assert!(d.create_io_queues(1).is_some());
        assert_eq!(d.create_io_queues(2), None);
        assert_eq!(d.max_io_queues(), 2);
    }

    #[test]
    fn doorbell_posts_cq_entries_in_completion_order() {
        let mut d = NvmeController::new(1);
        let q = d.create_io_queues(0).unwrap();
        // A random 4K write then a second random 4K write: both pay the
        // penalty, land on different channels, same completion math —
        // CQ order must follow completion time with FIFO tie-break.
        d.sq_push(q, NvmeCmd::write(0, 4096));
        d.sq_push(q, NvmeCmd::write(1 << 20, 4096));
        let posted: Vec<CqEntry> = d.ring_doorbell(q, Nanos::ZERO).to_vec();
        assert_eq!(posted.len(), 2);
        assert_eq!(d.cq_depth(q), 2);
        // Nothing is due before its completion time.
        assert_eq!(d.cq_pop(q, posted[0].completes_at - Nanos(1)), None);
        let first = d.cq_pop(q, Nanos::MAX).unwrap();
        let second = d.cq_pop(q, Nanos::MAX).unwrap();
        assert!(first.completes_at <= second.completes_at);
        assert_eq!(d.cq_pop(q, Nanos::MAX), None);
    }

    #[test]
    fn per_queue_cursors_are_independent() {
        let mut d = NvmeController::new(4);
        let qa = d.create_io_queues(0).unwrap();
        let qb = d.create_io_queues(1).unwrap();
        // Queue A: strictly sequential. Queue B: interleaved elsewhere.
        let mut sector = 0u64;
        for i in 0..32 {
            d.sq_push(qa, NvmeCmd::write(sector, 4096));
            d.ring_doorbell(qa, Nanos::ZERO);
            sector += 8;
            d.sq_push(qb, NvmeCmd::write(1 << 20 | (i * 512), 4096));
            d.ring_doorbell(qb, Nanos::ZERO);
        }
        // A pays exactly one penalty (its first command); B pays one per
        // command since its stream never continues its own cursor.
        assert_eq!(d.random_penalties(), 1 + 32);
        assert_eq!(d.seq_hits(), 31);
    }

    #[test]
    fn reset_drops_queues_but_keeps_media() {
        let mut d = NvmeController::new(1);
        d.write_data(0, &[0x5a; 512]);
        let q = d.create_io_queues(0).unwrap();
        d.sq_push(q, NvmeCmd::write(0, 4096));
        d.ring_doorbell(q, Nanos::ZERO);
        let writes_before = d.writes();
        d.reset();
        assert_eq!(d.io_queue_count(), 0);
        assert_eq!(d.vector_of(q), None);
        assert_eq!(d.cq_depth(q), 0);
        // Media contents and lifetime counters survive the reset.
        let mut buf = [0u8; 512];
        d.read_data(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0x5a));
        assert_eq!(d.writes(), writes_before);
        assert_eq!(d.model(), "Samsung 970 EVO Plus");
        // Queue ids restart from 1, deterministically.
        assert_eq!(d.create_io_queues(0), Some(QueueId(1)));
    }

    #[test]
    fn profile_channels_cannot_desync_from_channel_vec() {
        // Regression: `Nvme::new` used to snapshot `profile.channels` into
        // the channel vector while leaving `profile` public — mutating it
        // afterwards silently desynced the two. The profile is now fixed
        // at construction, so the only way to choose a channel count is
        // `with_profile`, and the vector always matches.
        let d = NvmeController::with_profile(4, NvmeProfile::default().with_channels(8));
        assert_eq!(d.profile().channels, 8);
        let mut done = Nanos::ZERO;
        let mut d = d;
        let q = d.create_io_queues(0).unwrap();
        let chunk = 1 << 20;
        let total: u64 = 512 << 20;
        let mut sector = 0u64;
        for _ in 0..(total / chunk as u64) {
            d.sq_push(q, NvmeCmd::read(sector, chunk));
            done = done.max(d.ring_doorbell(q, Nanos::ZERO)[0].completes_at);
            sector += (chunk / SECTOR_SIZE) as u64;
        }
        let bps = total as f64 / done.as_secs_f64();
        // Throughput must reflect all 8 channels, not a stale default 4.
        let aggregate = (8 * NvmeProfile::default().read_bps_per_channel) as f64;
        assert!(bps > 0.9 * aggregate, "bps={bps:.0} vs {aggregate:.0}");
    }

    #[test]
    #[allow(clippy::disallowed_methods)]
    fn legacy_shim_is_a_one_queue_controller() {
        // Identical command streams through the shim and through an
        // explicit single queue pair must produce identical completion
        // times — the shim is one-deep, not a parallel implementation.
        let mut shim = NvmeController::new(4);
        let mut qp = NvmeController::new(4);
        let q = qp.create_io_queues(0).unwrap();
        let mut now = Nanos::ZERO;
        let cmds = [
            NvmeCmd::write(0, 128 * 1024),
            NvmeCmd::write(256, 128 * 1024),
            NvmeCmd::read(10_000, 4096),
            NvmeCmd::flush(),
            NvmeCmd::write(512, 64 * 1024),
        ];
        for cmd in cmds {
            let a = shim.submit(now, cmd.op, cmd.sector, cmd.len_bytes);
            qp.sq_push(q, cmd);
            let b = qp.ring_doorbell(q, now)[0].completes_at;
            qp.cq_pop(q, b).unwrap();
            assert_eq!(a, b);
            now += Nanos::from_micros(3);
        }
        assert_eq!(shim.reads(), qp.reads());
        assert_eq!(shim.writes(), qp.writes());
        assert_eq!(shim.random_penalties(), qp.random_penalties());
    }
}
