//! An NVMe SSD model (Samsung 970 EVO Plus class) with sparse real storage.
//!
//! Timing: commands dispatch onto a small number of parallel flash channels;
//! each channel serializes its commands (base latency + transfer time at the
//! per-channel rate). Aggregate sequential bandwidth is therefore
//! `channels × channel_rate`, queue-depth scaling and per-command latency
//! emerge naturally, and a `flush` barrier completes when every channel
//! drains.
//!
//! Data: written sectors are stored sparsely at 4 KiB granularity so
//! read-back verification in tests uses *real bytes* without reserving
//! 500 GB of RAM. Unwritten regions read as zeros, like a fresh drive.

use std::collections::HashMap;

use kite_sim::{Cpu, Nanos};

/// Sector size in bytes.
pub const SECTOR_SIZE: usize = 512;
const BLOCK_SECTORS: u64 = 8; // 4 KiB blocks
const BLOCK_SIZE: usize = (BLOCK_SECTORS as usize) * SECTOR_SIZE;

/// An I/O command kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NvmeOp {
    /// Read sectors.
    Read,
    /// Write sectors.
    Write,
    /// Flush the volatile write cache (barrier).
    Flush,
}

/// Performance envelope of the drive.
#[derive(Clone, Debug)]
pub struct NvmeProfile {
    /// Extra service latency charged when a command does not continue the
    /// previous command's LBA range (FTL lookup, lost write-coalescing,
    /// read-ahead miss). This is what separates the paper's sequential dd
    /// rates from its random sysbench rates on the same device.
    pub random_penalty: Nanos,
    /// Parallel flash channels.
    pub channels: usize,
    /// Per-channel transfer rate for reads, bytes/sec.
    pub read_bps_per_channel: u64,
    /// Per-channel transfer rate for writes, bytes/sec.
    pub write_bps_per_channel: u64,
    /// Fixed read command latency (flash + controller).
    pub read_latency: Nanos,
    /// Fixed write command latency (into SLC cache).
    pub write_latency: Nanos,
    /// Flush completion overhead after channels drain.
    pub flush_latency: Nanos,
}

impl Default for NvmeProfile {
    fn default() -> NvmeProfile {
        // 970 EVO Plus 500GB: ~3.5 GB/s seq read, ~3.2 GB/s seq write.
        NvmeProfile {
            random_penalty: Nanos::from_micros(2800),
            channels: 4,
            read_bps_per_channel: 875_000_000,
            write_bps_per_channel: 800_000_000,
            read_latency: Nanos::from_micros(70),
            write_latency: Nanos::from_micros(25),
            flush_latency: Nanos::from_micros(150),
        }
    }
}

/// The drive: timing model plus sparse contents.
pub struct Nvme {
    /// Performance envelope.
    pub profile: NvmeProfile,
    /// Capacity in 512-byte sectors.
    pub sectors: u64,
    channels: Vec<Cpu>,
    rr: usize,
    last_end_sector: u64,
    blocks: HashMap<u64, Box<[u8]>>,
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
}

impl Nvme {
    /// Creates a drive of `capacity_gib` gibibytes with the default profile.
    pub fn new(capacity_gib: u64) -> Nvme {
        let profile = NvmeProfile::default();
        Nvme {
            channels: vec![Cpu::new(); profile.channels],
            profile,
            sectors: capacity_gib * 1024 * 1024 * 1024 / SECTOR_SIZE as u64,
            rr: 0,
            last_end_sector: u64::MAX,
            blocks: HashMap::new(),
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    fn pick_channel(&mut self) -> usize {
        // Least-loaded dispatch (controller stripes across channels).
        let mut best = 0;
        let mut best_free = Nanos::MAX;
        for (i, c) in self.channels.iter().enumerate() {
            let f = c.free_at();
            if f < best_free {
                best_free = f;
                best = i;
            }
        }
        // Round-robin tiebreak keeps striping even when idle.
        if self.channels.iter().all(|c| c.free_at() == best_free) {
            best = self.rr % self.channels.len();
            self.rr += 1;
        }
        best
    }

    /// Submits a command at `now`; returns its completion time.
    ///
    /// `sector`/`len_bytes` are ignored for [`NvmeOp::Flush`]. Commands
    /// that do not continue the previous command's LBA range pay
    /// [`NvmeProfile::random_penalty`].
    pub fn submit(&mut self, now: Nanos, op: NvmeOp, sector: u64, len_bytes: usize) -> Nanos {
        match op {
            NvmeOp::Flush => {
                let drain = self
                    .channels
                    .iter()
                    .map(|c| c.free_at())
                    .max()
                    .unwrap_or(Nanos::ZERO)
                    .max(now);
                drain + self.profile.flush_latency
            }
            NvmeOp::Read | NvmeOp::Write => {
                let (rate, base) = if op == NvmeOp::Read {
                    self.reads += 1;
                    self.read_bytes += len_bytes as u64;
                    (self.profile.read_bps_per_channel, self.profile.read_latency)
                } else {
                    self.writes += 1;
                    self.write_bytes += len_bytes as u64;
                    (
                        self.profile.write_bps_per_channel,
                        self.profile.write_latency,
                    )
                };
                let sequential = sector == self.last_end_sector;
                self.last_end_sector = sector + (len_bytes / SECTOR_SIZE) as u64;
                let penalty = if sequential {
                    Nanos::ZERO
                } else {
                    self.profile.random_penalty
                };
                // Large *sequential* commands stripe across channels
                // inside the controller (read-ahead friendly layout);
                // random commands land on one channel and carry their
                // penalty there, so random throughput is penalty-bound —
                // the regime the paper's sysbench/Filebench runs sit in.
                const STRIPE_MIN: usize = 128 * 1024;
                if sequential && len_bytes >= STRIPE_MIN {
                    let n = self.channels.len();
                    let slice =
                        Nanos((len_bytes as u64 / n as u64).saturating_mul(1_000_000_000) / rate);
                    let mut done = Nanos::ZERO;
                    for (i, c) in self.channels.iter_mut().enumerate() {
                        let extra = if i == 0 { penalty } else { Nanos::ZERO };
                        done = done.max(c.run(now, extra + slice));
                    }
                    done + base
                } else {
                    let transfer = Nanos((len_bytes as u64).saturating_mul(1_000_000_000) / rate);
                    let ch = self.pick_channel();
                    let busy_done = self.channels[ch].run(now, penalty + transfer);
                    busy_done + base
                }
            }
        }
    }

    /// Writes real bytes at a sector offset (data plane; timing via
    /// [`Nvme::submit`]).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity — the blkback layer
    /// validates requests before they reach the device.
    pub fn write_data(&mut self, sector: u64, data: &[u8]) {
        assert!(
            sector + (data.len().div_ceil(SECTOR_SIZE)) as u64 <= self.sectors,
            "write beyond device capacity"
        );
        let mut off = 0usize;
        let mut sec = sector;
        while off < data.len() {
            let block = sec / BLOCK_SECTORS;
            let in_block = ((sec % BLOCK_SECTORS) as usize) * SECTOR_SIZE;
            let n = (BLOCK_SIZE - in_block).min(data.len() - off);
            let buf = self
                .blocks
                .entry(block)
                .or_insert_with(|| vec![0u8; BLOCK_SIZE].into_boxed_slice());
            buf[in_block..in_block + n].copy_from_slice(&data[off..off + n]);
            off += n;
            sec = block * BLOCK_SECTORS + ((in_block + n) / SECTOR_SIZE) as u64;
        }
    }

    /// Reads real bytes at a sector offset; unwritten regions are zeros.
    pub fn read_data(&self, sector: u64, out: &mut [u8]) {
        let mut off = 0usize;
        let mut sec = sector;
        while off < out.len() {
            let block = sec / BLOCK_SECTORS;
            let in_block = ((sec % BLOCK_SECTORS) as usize) * SECTOR_SIZE;
            let n = (BLOCK_SIZE - in_block).min(out.len() - off);
            match self.blocks.get(&block) {
                Some(buf) => out[off..off + n].copy_from_slice(&buf[in_block..in_block + n]),
                None => out[off..off + n].fill(0),
            }
            off += n;
            sec = block * BLOCK_SECTORS + ((in_block + n) / SECTOR_SIZE) as u64;
        }
    }

    /// Read command count.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write command count.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip_across_blocks() {
        let mut d = Nvme::new(1);
        let data: Vec<u8> = (0..20000).map(|i| (i % 251) as u8).collect();
        d.write_data(5, &data); // straddles several 4 KiB blocks
        let mut back = vec![0u8; 20000];
        d.read_data(5, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn unwritten_reads_zero() {
        let d = Nvme::new(1);
        let mut buf = vec![0xffu8; 1024];
        d.read_data(1000, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn partial_overwrite_preserves_neighbors() {
        let mut d = Nvme::new(1);
        d.write_data(0, &[0xaa; 4096]);
        d.write_data(2, &[0xbb; 512]); // overwrite sector 2 only
        let mut buf = vec![0u8; 4096];
        d.read_data(0, &mut buf);
        assert!(buf[..1024].iter().all(|&b| b == 0xaa));
        assert!(buf[1024..1536].iter().all(|&b| b == 0xbb));
        assert!(buf[1536..].iter().all(|&b| b == 0xaa));
    }

    #[test]
    fn sequential_bandwidth_approaches_aggregate() {
        let mut d = Nvme::new(4);
        let chunk = 1 << 20; // 1 MiB commands
        let total: u64 = 512 << 20; // 512 MiB
        let mut done = Nanos::ZERO;
        let mut now = Nanos::ZERO;
        let mut sector = 0u64;
        for _ in 0..(total / chunk as u64) {
            done = done.max(d.submit(now, NvmeOp::Read, sector, chunk));
            sector += (chunk / SECTOR_SIZE) as u64;
            now = Nanos::ZERO; // open-loop: all queued at t=0
        }
        let bps = total as f64 / done.as_secs_f64();
        let aggregate = (d.profile.channels as u64 * d.profile.read_bps_per_channel) as f64;
        assert!(bps > 0.9 * aggregate, "bps={bps:.0} vs {aggregate:.0}");
        assert!(bps <= aggregate * 1.01);
    }

    #[test]
    fn small_random_reads_latency_bound() {
        let mut d = Nvme::new(4);
        let t = d.submit(Nanos::ZERO, NvmeOp::Read, 0, 4096);
        // One 4K read ≈ base latency + ~4.7µs transfer.
        assert!(t >= d.profile.read_latency + d.profile.random_penalty);
        assert!(t < d.profile.read_latency + d.profile.random_penalty + Nanos::from_micros(10));
    }

    #[test]
    fn flush_waits_for_outstanding_writes() {
        let mut d = Nvme::new(4);
        let w = d.submit(Nanos::ZERO, NvmeOp::Write, 0, 8 << 20);
        let f = d.submit(Nanos::ZERO, NvmeOp::Flush, 0, 0);
        assert!(f + d.profile.write_latency >= w, "flush must drain writes");
        assert!(f >= w - d.profile.write_latency);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = Nvme::new(1);
        d.submit(Nanos::ZERO, NvmeOp::Read, 0, 4096);
        d.submit(Nanos::ZERO, NvmeOp::Write, 8, 512);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.read_bytes(), 4096);
        assert_eq!(d.write_bytes(), 512);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn write_past_end_panics() {
        let mut d = Nvme::new(1);
        let last = d.sectors;
        d.write_data(last, &[0u8; 512]);
    }
}
