//! `kitetop`: the reproduction's `xentop`.
//!
//! A [`TopSnapshot`] is a frozen view of every domain at one virtual
//! instant — health verdict, heartbeat age, ring occupancy, grant and
//! event-channel footprint, and request/throughput rates. The system
//! layer assembles rows (it knows the backends); [`render`] turns them
//! into a fixed-width text table. Rendering is pure and the inputs are
//! virtual-time only, so the same seed produces byte-identical output —
//! `scripts/verify.sh` diffs two `repro top` runs to prove it.

use kite_sim::Nanos;

/// One domain's line in the table.
#[derive(Clone, Debug, PartialEq)]
pub struct TopRow {
    /// Raw domain id.
    pub dom: u16,
    /// Domain name (dead incarnations keep their name).
    pub name: String,
    /// `"dom0"`, `"driver"`, or `"guest"`.
    pub kind: &'static str,
    /// Whether the domain is currently alive.
    pub alive: bool,
    /// Health verdict label (`"healthy"`, `"suspect(2)"`, `"failed"`),
    /// or `"-"` for unmonitored domains.
    pub health: String,
    /// Virtual time since the last observed heartbeat advance, for
    /// monitored domains.
    pub beat_age: Option<Nanos>,
    /// Unconsumed requests across the domain's backend rings.
    pub ring_pending: u64,
    /// Free-running request-consumer watermark across those rings.
    pub ring_consumed: u64,
    /// Grant entries this domain currently has live (granted out).
    pub grants: usize,
    /// Foreign pages this domain currently has mapped.
    pub maps: usize,
    /// Open event-channel ports.
    pub evtchns: usize,
    /// Requests (frames or IOs) served per second of virtual time.
    pub req_per_sec: f64,
    /// Payload throughput in megabytes per second of virtual time.
    pub mbytes_per_sec: f64,
    /// World->guest frames dropped on backend Rx-queue overflow (or
    /// because no Rx buffers were posted), summed across incarnations.
    pub rx_dropped: u64,
    /// Super-frames the backend moved as GSO/LRO descriptor chains
    /// (both directions), summed across incarnations; 0 for domains
    /// without a netback or when offload was never negotiated.
    pub gso_frames: u64,
    /// Per-queue Rx backlog depth on the live backend; empty for
    /// domains without a multi-queue-capable backend.
    pub rx_qdepth: Vec<u64>,
    /// 99th-percentile per-stage latency booked to this domain by
    /// request tracing, in microseconds; `None` when tracing is off or
    /// no sampled request has completed a stage here.
    pub p99_us: Option<f64>,
}

/// All rows at one virtual instant.
#[derive(Clone, Debug, PartialEq)]
pub struct TopSnapshot {
    /// The virtual time of the snapshot.
    pub at: Nanos,
    /// One row per domain ever created, sorted by domain id.
    pub rows: Vec<TopRow>,
}

fn fmt_age(age: Option<Nanos>) -> String {
    match age {
        None => "-".to_string(),
        Some(a) => format!("{:.0}ms", a.as_millis_f64()),
    }
}

fn fmt_p99(p99_us: Option<f64>) -> String {
    match p99_us {
        None => "-".to_string(),
        Some(v) => format!("{v:.1}"),
    }
}

fn fmt_qdepth(depths: &[u64]) -> String {
    if depths.is_empty() {
        return "-".to_string();
    }
    depths
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders the snapshot as a deterministic fixed-width table.
pub fn render(snap: &TopSnapshot) -> String {
    let mut rows = snap.rows.clone();
    rows.sort_by_key(|r| r.dom);
    let mut out = format!(
        "kitetop — virtual time {:.6}s — {} domains\n",
        snap.at.as_secs_f64(),
        rows.len()
    );
    out.push_str(&format!(
        "{:>4} {:<14} {:<7} {:<6} {:<11} {:>8} {:>9} {:>9} {:>7} {:>5} {:>4} {:>9} {:>8} {:>7} {:>7} {:>9} {:<11}\n",
        "DOM",
        "NAME",
        "KIND",
        "STATE",
        "HEALTH",
        "BEAT_AGE",
        "RING_PEND",
        "RING_CONS",
        "GRANTS",
        "MAPS",
        "EVT",
        "REQ/S",
        "MB/S",
        "RX_DROP",
        "GSO_FRM",
        "P99_US",
        "RXQ_DEPTH",
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:>4} {:<14} {:<7} {:<6} {:<11} {:>8} {:>9} {:>9} {:>7} {:>5} {:>4} {:>9.1} {:>8.2} {:>7} {:>7} {:>9} {:<11}\n",
            r.dom,
            r.name,
            r.kind,
            if r.alive { "run" } else { "dead" },
            r.health,
            fmt_age(r.beat_age),
            r.ring_pending,
            r.ring_consumed,
            r.grants,
            r.maps,
            r.evtchns,
            r.req_per_sec,
            r.mbytes_per_sec,
            r.rx_dropped,
            r.gso_frames,
            fmt_p99(r.p99_us),
            fmt_qdepth(&r.rx_qdepth),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> TopSnapshot {
        TopSnapshot {
            at: Nanos::from_millis(12_500),
            rows: vec![
                TopRow {
                    dom: 2,
                    name: "netbackend".into(),
                    kind: "driver",
                    alive: true,
                    health: "suspect(2)".into(),
                    beat_age: Some(Nanos::from_millis(1_000)),
                    ring_pending: 3,
                    ring_consumed: 120,
                    grants: 0,
                    maps: 4,
                    evtchns: 3,
                    req_per_sec: 40.0,
                    mbytes_per_sec: 0.056,
                    rx_dropped: 7,
                    gso_frames: 12,
                    rx_qdepth: vec![3, 0, 1, 2],
                    p99_us: Some(184.75),
                },
                TopRow {
                    dom: 0,
                    name: "Domain-0".into(),
                    kind: "dom0",
                    alive: true,
                    health: "-".into(),
                    beat_age: None,
                    ring_pending: 0,
                    ring_consumed: 0,
                    grants: 0,
                    maps: 0,
                    evtchns: 0,
                    req_per_sec: 0.0,
                    mbytes_per_sec: 0.0,
                    rx_dropped: 0,
                    gso_frames: 0,
                    rx_qdepth: Vec::new(),
                    p99_us: None,
                },
            ],
        }
    }

    #[test]
    fn render_sorts_by_dom_and_is_deterministic() {
        let a = render(&snapshot());
        let b = render(&snapshot());
        assert_eq!(a, b, "pure function of the snapshot");
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].starts_with("kitetop — virtual time 12.500000s"));
        assert!(lines[1].contains("HEALTH"));
        assert!(lines[2].trim_start().starts_with('0'), "sorted: dom0 first");
        assert!(lines[3].trim_start().starts_with('2'));
        assert!(lines[3].contains("suspect(2)"));
        assert!(lines[3].contains("1000ms"));
        assert!(lines[1].contains("RX_DROP"));
        assert!(lines[1].contains("GSO_FRM"));
        assert!(lines[1].contains("P99_US"));
        assert!(lines[1].contains("RXQ_DEPTH"));
        assert!(lines[3].contains("3/0/1/2"), "per-queue Rx depths");
        assert!(lines[3].contains("184.8"), "p99 rendered in µs");
        assert!(lines[2].contains(" - "), "no backend: depth renders as -");
    }

    #[test]
    fn dead_domains_render_as_dead() {
        let mut s = snapshot();
        s.rows[0].alive = false;
        assert!(render(&s).contains(" dead "));
    }
}
