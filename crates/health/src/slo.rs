//! Request-latency SLO checks over the simulation's histograms.
//!
//! The system layer keeps a [`Histogram`] of per-request latencies for
//! each backend; on every probe the monitor asks [`evaluate`] whether the
//! configured quantile thresholds hold. A breach marks the backend
//! [`Suspect`](crate::HealthState::Suspect) (never `Failed` — slow is not
//! dead). All three quantiles come from one bucket walk via
//! [`Histogram::quantiles`].

use kite_sim::{Histogram, Nanos};
use kite_trace::{ReqTracer, Stage};

/// Latency thresholds; `None` disables that quantile's check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloConfig {
    /// Median must stay at or under this.
    pub p50: Option<Nanos>,
    /// 95th percentile must stay at or under this.
    pub p95: Option<Nanos>,
    /// 99th percentile must stay at or under this.
    pub p99: Option<Nanos>,
    /// Quantiles of fewer samples than this are noise, not a breach.
    pub min_samples: u64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            p50: None,
            p95: None,
            p99: None,
            min_samples: 16,
        }
    }
}

impl SloConfig {
    /// Whether any quantile check is configured.
    pub fn armed(&self) -> bool {
        self.p50.is_some() || self.p95.is_some() || self.p99.is_some()
    }
}

/// One evaluation's quantiles and verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// Median request latency.
    pub p50: Nanos,
    /// 95th-percentile request latency.
    pub p95: Nanos,
    /// 99th-percentile request latency.
    pub p99: Nanos,
    /// Samples behind the quantiles.
    pub samples: u64,
    /// True when some configured threshold is exceeded (with at least
    /// `min_samples` behind it).
    pub breached: bool,
}

/// Evaluates `hist` against `cfg` in a single histogram pass.
pub fn evaluate(hist: &Histogram, cfg: &SloConfig) -> SloReport {
    let qs = hist.quantiles(&[0.5, 0.95, 0.99]);
    let (p50, p95, p99) = (qs[0], qs[1], qs[2]);
    let samples = hist.count();
    let over = |limit: Option<Nanos>, got: Nanos| limit.is_some_and(|l| got > l);
    let breached = samples >= cfg.min_samples
        && (over(cfg.p50, p50) || over(cfg.p95, p95) || over(cfg.p99, p99));
    SloReport {
        p50,
        p95,
        p99,
        samples,
        breached,
    }
}

/// Which stage a latency breach books to: the one whose own p99 is the
/// largest share of the tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreachAttribution {
    /// Stage name (see [`Stage::name`]).
    pub stage: &'static str,
    /// That stage's p99 duration.
    pub p99: Nanos,
}

/// Attributes a breach to the per-stage histogram with the largest p99
/// (ties break toward the earlier stage, so the verdict is
/// deterministic). Returns `None` when request tracing is off or no
/// sampled request has completed yet.
pub fn attribute(req: &ReqTracer) -> Option<BreachAttribution> {
    let mut worst: Option<BreachAttribution> = None;
    for &stage in &Stage::ALL {
        let Some(h) = req.stage_hist(stage) else {
            return None; // tracing off: no histograms at all
        };
        if h.count() == 0 {
            continue;
        }
        let p99 = h.quantile(0.99);
        if worst.is_none_or(|w| p99 > w.p99) {
            worst = Some(BreachAttribution {
                stage: stage.name(),
                p99,
            });
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_fast_with_slow_tail() -> Histogram {
        let mut h = Histogram::new();
        for _ in 0..950 {
            h.record(Nanos(10_000)); // 10µs
        }
        for _ in 0..50 {
            h.record(Nanos(2_000_000)); // 2ms tail
        }
        h
    }

    #[test]
    fn unarmed_config_never_breaches() {
        let cfg = SloConfig::default();
        assert!(!cfg.armed());
        let r = evaluate(&hist_fast_with_slow_tail(), &cfg);
        assert!(!r.breached);
        assert_eq!(r.samples, 1_000);
        assert!(r.p50 <= r.p95 && r.p95 <= r.p99);
    }

    #[test]
    fn p99_threshold_catches_the_tail() {
        let cfg = SloConfig {
            p99: Some(Nanos::from_millis(1)),
            ..SloConfig::default()
        };
        assert!(evaluate(&hist_fast_with_slow_tail(), &cfg).breached);
        let lax = SloConfig {
            p99: Some(Nanos::from_millis(5)),
            ..SloConfig::default()
        };
        assert!(!evaluate(&hist_fast_with_slow_tail(), &lax).breached);
    }

    #[test]
    fn attribute_names_the_dominating_stage() {
        assert!(
            attribute(&ReqTracer::disabled()).is_none(),
            "tracing off: nothing to attribute"
        );
        let mut rt = ReqTracer::enabled(1, 16);
        assert!(attribute(&rt).is_none(), "no completed request yet");
        // One request whose grant-copy stage dwarfs the rest.
        rt.set_now(Nanos(0));
        let r = rt.admit(0).expect("sampled");
        rt.set_now(Nanos(1_000));
        rt.stamp(r, Stage::RingSubmit, 3, None);
        rt.set_now(Nanos(2_000));
        rt.stamp(r, Stage::BackendFetch, 2, None);
        rt.set_now(Nanos(90_000));
        rt.stamp(r, Stage::GrantCopy, 2, None);
        rt.finish_at(r, 0, Nanos(91_000));
        let b = attribute(&rt).expect("one completed request");
        assert_eq!(b.stage, "grant_copy");
        assert!(b.p99 >= Nanos(88_000), "the 88µs copy leg dominates");
    }

    #[test]
    fn too_few_samples_is_not_a_breach() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(Nanos::from_millis(50));
        }
        let cfg = SloConfig {
            p50: Some(Nanos(1)),
            min_samples: 16,
            ..SloConfig::default()
        };
        assert!(!evaluate(&h, &cfg).breached, "below min_samples");
        for _ in 0..10 {
            h.record(Nanos::from_millis(50));
        }
        assert!(evaluate(&h, &cfg).breached, "now conclusive");
    }
}
