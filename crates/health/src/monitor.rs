//! The Dom0-side failure detector.
//!
//! [`HealthMonitor`] watches one backend domain and renders a
//! [`HealthState`] verdict on every probe from two independent signals:
//!
//! 1. **Heartbeat advance** — the monitor reads the target's
//!    [`heartbeat`] key and counts a miss when the value
//!    did not increase since the previous probe (presence is not enough:
//!    xenstored keeps a dead domain's last beat). Consecutive misses walk
//!    `Healthy → Suspect(missed=k)`; at `miss_threshold` misses the
//!    verdict is `Failed`. This catches crashes, which stop the beat loop.
//! 2. **Ring progress** — the system layer hands each probe a
//!    [`ProgressSample`] of the backend's request-consumer watermark. A
//!    ring with pending requests whose consumer has not moved for
//!    `stall_probes` consecutive probes is declared `Failed` too. This
//!    catches livelocks ([`FaultPlan::hang_at`]) where the domain is
//!    happily beating but serving nothing.
//!
//! An SLO breach (see [`crate::slo`]) marks the backend `Suspect` without
//! escalating to `Failed` — slow is suspicious, only dead/stuck warrants
//! a restart.
//!
//! Detection latency is bounded: a probe fires at most `probe_interval`
//! after the failure, and at most `miss_threshold` further probes (one of
//! which may still observe a pre-failure beat or watermark advance) are
//! needed for the verdict, so
//! `detect ≤ probe_interval × (miss_threshold + 1)` — the bound the
//! recovery tests assert. Every state edge emits a
//! [`EventKind::HealthTransition`] trace event, so Perfetto exports show
//! suspicion windows as marks on the watcher's track.
//!
//! [`FaultPlan::hang_at`]: kite_xen::FaultPlan

use kite_sim::Nanos;
use kite_trace::EventKind;
use kite_xen::{DomainId, Hypervisor};

use crate::heartbeat;

/// How a system decides a driver domain failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DetectionMode {
    /// The omniscient baseline: recovery starts the instant the fault is
    /// injected, with zero detection latency. Kept for ablation.
    #[default]
    Oracle,
    /// The real thing: recovery starts when the [`HealthMonitor`]'s
    /// verdict turns [`HealthState::Failed`].
    Watchdog,
}

impl DetectionMode {
    /// Stable lower-case label for reports.
    pub fn name(self) -> &'static str {
        match self {
            DetectionMode::Oracle => "oracle",
            DetectionMode::Watchdog => "watchdog",
        }
    }
}

/// Tunables of one monitor instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Virtual time between Dom0 probes.
    pub probe_interval: Nanos,
    /// Virtual time between the target's heartbeat publications. Must be
    /// shorter than `probe_interval` so a healthy target advances its
    /// beat between any two probes.
    pub heartbeat_interval: Nanos,
    /// Consecutive missed probes before the verdict is `Failed`.
    pub miss_threshold: u32,
    /// Consecutive no-progress probes (with requests pending) before the
    /// verdict is `Failed`.
    pub stall_probes: u32,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        let probe_interval = Nanos::from_millis(500);
        MonitorConfig {
            probe_interval,
            // Two beats per probe window: one missed write (e.g. an
            // injected xenstore fault) does not fake a dead domain.
            heartbeat_interval: Nanos(probe_interval.0 / 2),
            miss_threshold: 3,
            stall_probes: 3,
        }
    }
}

impl MonitorConfig {
    /// Worst-case detection latency: `probe_interval × (miss_threshold + 1)`.
    pub fn detect_bound(&self) -> Nanos {
        self.probe_interval * (self.miss_threshold as u64 + 1)
    }
}

/// The per-backend verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Beating and making progress.
    Healthy,
    /// Something is off — missed beats, a stalling ring, or a breached
    /// SLO — but not yet conclusively dead.
    Suspect {
        /// Consecutive missed heartbeat probes (0 when the suspicion
        /// comes from a stall or an SLO breach).
        missed: u32,
    },
    /// Conclusively failed; the system layer should start recovery.
    Failed,
}

impl HealthState {
    /// Stable lower-case label for traces and `kitetop`.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect { .. } => "suspect",
            HealthState::Failed => "failed",
        }
    }

    /// Whether this verdict calls for recovery.
    pub fn is_failed(self) -> bool {
        self == HealthState::Failed
    }
}

/// One probe's view of a backend's ring progress.
///
/// `consumed` is a free-running consumer watermark (e.g. the sum of the
/// backend rings' `req_cons`); `pending` is the number of unconsumed
/// requests currently visible. The monitor only compares successive
/// `consumed` values — units don't matter as long as they advance when
/// the backend serves requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressSample {
    /// Free-running count of requests consumed so far.
    pub consumed: u64,
    /// Requests currently waiting in the ring(s).
    pub pending: u64,
}

/// Watches one backend domain; see the module docs for the protocol.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    cfg: MonitorConfig,
    watcher: DomainId,
    target: DomainId,
    state: HealthState,
    missed: u32,
    last_beat: Option<u64>,
    beat_seen_at: Nanos,
    /// Per-queue consumer watermarks from the previous probe. Length
    /// follows the sample vector handed to the probe (resized — with
    /// counters reset — when the backend's queue count changes, e.g.
    /// across a reconnect).
    last_consumed: Vec<Option<u64>>,
    stalled: Vec<u32>,
    probes: u64,
}

impl HealthMonitor {
    /// A monitor run by `watcher` (Dom0) over `target`, created at
    /// virtual time `now` in the `Healthy` state.
    pub fn new(watcher: DomainId, target: DomainId, cfg: MonitorConfig, now: Nanos) -> Self {
        HealthMonitor {
            cfg,
            watcher,
            target,
            state: HealthState::Healthy,
            missed: 0,
            last_beat: None,
            beat_seen_at: now,
            last_consumed: Vec::new(),
            stalled: Vec::new(),
            probes: 0,
        }
    }

    /// The watched domain.
    pub fn target(&self) -> DomainId {
        self.target
    }

    /// The current verdict.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The monitor's tunables.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Probes run so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Virtual time since the last observed beat *advance*.
    pub fn heartbeat_age(&self, now: Nanos) -> Nanos {
        now.saturating_sub(self.beat_seen_at)
    }

    /// Re-aims the monitor at a replacement domain (after recovery) and
    /// resets all detector state to `Healthy`.
    pub fn retarget(&mut self, hv: &mut Hypervisor, target: DomainId, now: Nanos) {
        self.target = target;
        self.missed = 0;
        self.last_beat = None;
        self.beat_seen_at = now;
        self.last_consumed.clear();
        self.stalled.clear();
        self.transition(hv, HealthState::Healthy, "recovered");
    }

    /// Runs one probe at virtual time `now` with a single aggregate ring
    /// sample (or none). Equivalent to [`HealthMonitor::probe_queues`]
    /// with a 0- or 1-element sample vector — single-queue backends and
    /// callers without per-queue visibility use this.
    pub fn probe(
        &mut self,
        hv: &mut Hypervisor,
        now: Nanos,
        progress: Option<ProgressSample>,
        slo_ok: bool,
    ) -> HealthState {
        match progress {
            Some(p) => self.probe_queues(hv, now, &[p], slo_ok),
            None => self.probe_queues(hv, now, &[], slo_ok),
        }
    }

    /// Runs one probe at virtual time `now`: reads the heartbeat key as
    /// the watcher, folds in one ring-progress sample *per backend
    /// queue* and the SLO verdict, and returns the new state.
    ///
    /// Stall detection is per queue: each queue's consumer watermark is
    /// compared against the previous probe's, and **any** queue frozen
    /// with pending work for `stall_probes` consecutive probes fails the
    /// whole backend. An aggregate sample cannot do this — seven healthy
    /// queues' progress would mask the eighth's wedge indefinitely.
    /// An empty `samples` skips the stall check for this probe (counters
    /// hold); a changed queue count resets the stall counters.
    pub fn probe_queues(
        &mut self,
        hv: &mut Hypervisor,
        now: Nanos,
        samples: &[ProgressSample],
        slo_ok: bool,
    ) -> HealthState {
        self.probes += 1;
        // 1. Heartbeat: alive means the counter advanced since the last
        // probe (or this is the first observation of a value).
        let (read, _cost) = hv.xs_read(self.watcher, &heartbeat::key(self.target));
        let beat_ok = match read.ok().and_then(|v| v.parse::<u64>().ok()) {
            Some(b) => {
                let advanced = self.last_beat.is_none_or(|prev| b > prev);
                if advanced {
                    self.last_beat = Some(b);
                    self.beat_seen_at = now;
                }
                advanced
            }
            None => false,
        };
        if beat_ok {
            self.missed = 0;
        } else {
            self.missed += 1;
        }
        // 2. Ring progress: pending work with a frozen consumer is a
        // stall. Tracked per queue so one wedged queue cannot hide
        // behind its siblings' watermark advances.
        if !samples.is_empty() {
            if samples.len() != self.last_consumed.len() {
                self.last_consumed = vec![None; samples.len()];
                self.stalled = vec![0; samples.len()];
            }
            for (i, p) in samples.iter().enumerate() {
                if p.pending > 0 && self.last_consumed[i] == Some(p.consumed) {
                    self.stalled[i] += 1;
                } else {
                    self.stalled[i] = 0;
                }
                self.last_consumed[i] = Some(p.consumed);
            }
        }
        let worst_stall = self.stalled.iter().copied().max().unwrap_or(0);
        // 3. Verdict, hardest evidence first.
        let (next, cause) = if self.missed >= self.cfg.miss_threshold {
            (HealthState::Failed, "heartbeat")
        } else if worst_stall >= self.cfg.stall_probes {
            (HealthState::Failed, "stall")
        } else if self.missed > 0 {
            (
                HealthState::Suspect {
                    missed: self.missed,
                },
                "heartbeat",
            )
        } else if worst_stall > 0 {
            (HealthState::Suspect { missed: 0 }, "stall")
        } else if !slo_ok {
            (HealthState::Suspect { missed: 0 }, "slo")
        } else {
            (HealthState::Healthy, "recovered")
        };
        self.transition(hv, next, cause);
        self.state
    }

    fn transition(&mut self, hv: &mut Hypervisor, next: HealthState, cause: &'static str) {
        if next == self.state {
            return;
        }
        let (watched, missed) = (self.target.0, self.missed);
        hv.trace
            .emit_with(self.watcher.0, || EventKind::HealthTransition {
                watched,
                state: next.name(),
                cause,
                missed,
            });
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heartbeat::HeartbeatPublisher;
    use kite_xen::DomainKind;

    fn setup() -> (Hypervisor, DomainId, HealthMonitor, HeartbeatPublisher) {
        let mut hv = Hypervisor::new();
        let d0 = hv.create_domain("Domain-0", DomainKind::Dom0, 512, 1);
        let dd = hv.create_domain("dd", DomainKind::Driver, 128, 1);
        let mon = HealthMonitor::new(d0, dd, MonitorConfig::default(), Nanos::ZERO);
        (hv, dd, mon, HeartbeatPublisher::new(dd))
    }

    #[test]
    fn beating_target_stays_healthy() {
        let (mut hv, _dd, mut mon, mut hb) = setup();
        for i in 1..=10u64 {
            hb.beat(&mut hv).unwrap();
            let s = mon.probe(&mut hv, Nanos::from_millis(500 * i), None, true);
            assert_eq!(s, HealthState::Healthy);
        }
        assert_eq!(mon.heartbeat_age(Nanos::from_millis(5_000)), Nanos::ZERO);
    }

    #[test]
    fn stopped_beat_walks_suspect_then_failed() {
        let (mut hv, dd, mut mon, mut hb) = setup();
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_millis(500), None, true),
            HealthState::Healthy
        );
        hv.destroy_domain(dd).unwrap();
        // Beat frozen: presence is not liveness.
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_secs(1), None, true),
            HealthState::Suspect { missed: 1 }
        );
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_millis(1_500), None, true),
            HealthState::Suspect { missed: 2 }
        );
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_secs(2), None, true),
            HealthState::Failed
        );
        // The verdict is sticky until retarget.
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_millis(2_500), None, true),
            HealthState::Failed
        );
        assert!(mon.heartbeat_age(Nanos::from_secs(2)) >= Nanos::from_millis(1_500));
    }

    #[test]
    fn missing_key_counts_as_missed() {
        let (mut hv, _dd, mut mon, _hb) = setup();
        // No beat ever published: three probes reach Failed.
        mon.probe(&mut hv, Nanos::from_millis(500), None, true);
        mon.probe(&mut hv, Nanos::from_secs(1), None, true);
        let s = mon.probe(&mut hv, Nanos::from_millis(1_500), None, true);
        assert_eq!(s, HealthState::Failed);
    }

    #[test]
    fn stall_with_pending_requests_fails_after_n_probes() {
        let (mut hv, _dd, mut mon, mut hb) = setup();
        let sample = |c, p| {
            Some(ProgressSample {
                consumed: c,
                pending: p,
            })
        };
        // Beating but frozen consumer with pending work: the livelock.
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_millis(500), sample(7, 3), true),
            HealthState::Healthy,
            "first sample is baseline"
        );
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_secs(1), sample(7, 4), true),
            HealthState::Suspect { missed: 0 }
        );
        hb.beat(&mut hv).unwrap();
        mon.probe(&mut hv, Nanos::from_millis(1_500), sample(7, 5), true);
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_secs(2), sample(7, 6), true),
            HealthState::Failed
        );
    }

    #[test]
    fn one_wedged_queue_among_many_still_fails() {
        let (mut hv, _dd, mut mon, mut hb) = setup();
        let s = |c, p| ProgressSample {
            consumed: c,
            pending: p,
        };
        // Queues 0–2 make progress every probe; queue 3 is frozen with
        // pending work. The aggregate (sum) would advance every probe
        // and never stall — per-queue tracking must fail the backend.
        for i in 1..=4u64 {
            hb.beat(&mut hv).unwrap();
            let verdict = mon.probe_queues(
                &mut hv,
                Nanos::from_millis(500 * i),
                &[s(100 * i, 1), s(90 * i, 2), s(80 * i, 0), s(7, 3)],
                true,
            );
            if i <= 1 {
                assert_eq!(verdict, HealthState::Healthy, "probe {i} is baseline");
            } else if i <= 3 {
                assert_eq!(verdict, HealthState::Suspect { missed: 0 }, "probe {i}");
            } else {
                assert_eq!(verdict, HealthState::Failed, "probe {i}");
            }
        }
    }

    #[test]
    fn queue_count_change_resets_stall_counters() {
        let (mut hv, _dd, mut mon, mut hb) = setup();
        let s = |c, p| ProgressSample {
            consumed: c,
            pending: p,
        };
        hb.beat(&mut hv).unwrap();
        mon.probe_queues(&mut hv, Nanos::from_millis(500), &[s(7, 3), s(9, 2)], true);
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe_queues(&mut hv, Nanos::from_secs(1), &[s(7, 3), s(9, 2)], true),
            HealthState::Suspect { missed: 0 }
        );
        // Reconnect with a different queue count: fresh baselines.
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe_queues(&mut hv, Nanos::from_millis(1_500), &[s(7, 3)], true),
            HealthState::Healthy
        );
    }

    #[test]
    fn idle_ring_is_not_a_stall() {
        let (mut hv, _dd, mut mon, mut hb) = setup();
        for i in 1..=8u64 {
            hb.beat(&mut hv).unwrap();
            // Consumer frozen but nothing pending: just idle.
            let s = mon.probe(
                &mut hv,
                Nanos::from_millis(500 * i),
                Some(ProgressSample {
                    consumed: 42,
                    pending: 0,
                }),
                true,
            );
            assert_eq!(s, HealthState::Healthy);
        }
    }

    #[test]
    fn progress_resets_the_stall_counter() {
        let (mut hv, _dd, mut mon, mut hb) = setup();
        let mut t = Nanos::ZERO;
        let mut probe = |hv: &mut Hypervisor, hb: &mut HeartbeatPublisher, c, p| {
            t += Nanos::from_millis(500);
            hb.beat(hv).unwrap();
            mon.probe(
                hv,
                t,
                Some(ProgressSample {
                    consumed: c,
                    pending: p,
                }),
                true,
            )
        };
        probe(&mut hv, &mut hb, 10, 5);
        assert_eq!(
            probe(&mut hv, &mut hb, 10, 5),
            HealthState::Suspect { missed: 0 }
        );
        // The consumer moved: suspicion clears.
        assert_eq!(probe(&mut hv, &mut hb, 11, 4), HealthState::Healthy);
    }

    #[test]
    fn slo_breach_is_suspicion_not_failure() {
        let (mut hv, _dd, mut mon, mut hb) = setup();
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_millis(500), None, false),
            HealthState::Suspect { missed: 0 }
        );
        for i in 2..=20u64 {
            hb.beat(&mut hv).unwrap();
            let s = mon.probe(&mut hv, Nanos::from_millis(500 * i), None, false);
            assert_eq!(s, HealthState::Suspect { missed: 0 }, "never escalates");
        }
        hb.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_millis(10_500), None, true),
            HealthState::Healthy
        );
    }

    #[test]
    fn retarget_resets_to_healthy_and_watches_the_new_domain() {
        let (mut hv, dd, mut mon, _hb) = setup();
        hv.destroy_domain(dd).unwrap();
        for i in 1..=3u64 {
            mon.probe(&mut hv, Nanos::from_millis(500 * i), None, true);
        }
        assert!(mon.state().is_failed());
        let dd2 = hv.create_domain("dd2", DomainKind::Driver, 128, 1);
        mon.retarget(&mut hv, dd2, Nanos::from_secs(9));
        assert_eq!(mon.state(), HealthState::Healthy);
        assert_eq!(mon.target(), dd2);
        let mut hb2 = HeartbeatPublisher::new(dd2);
        hb2.beat(&mut hv).unwrap();
        assert_eq!(
            mon.probe(&mut hv, Nanos::from_millis(9_500), None, true),
            HealthState::Healthy
        );
    }

    #[test]
    fn transitions_emit_health_trace_events() {
        let (mut hv, dd, mut mon, mut hb) = setup();
        hv.trace.enable(1 << 10);
        hb.beat(&mut hv).unwrap();
        mon.probe(&mut hv, Nanos::from_millis(500), None, true);
        hv.destroy_domain(dd).unwrap();
        for i in 2..=5u64 {
            mon.probe(&mut hv, Nanos::from_millis(500 * i), None, true);
        }
        // healthy→suspect(1), suspect(1)→suspect(2), suspect(2)→failed.
        let q = hv.trace.query();
        assert_eq!(q.kind("health").count(), 3);
        let last = hv
            .trace
            .query()
            .kind("health")
            .last()
            .cloned()
            .map(|e| e.kind.name());
        assert_eq!(last, Some("health"));
    }

    #[test]
    fn detect_bound_is_probe_times_threshold_plus_one() {
        let cfg = MonitorConfig::default();
        assert_eq!(cfg.detect_bound(), Nanos::from_secs(2));
    }
}
