//! The driver-domain heartbeat protocol.
//!
//! A monitored domain publishes a monotonically increasing counter to a
//! well-known key in its own delegated xenstore subtree:
//!
//! ```text
//! /local/domain/<domid>/data/heartbeat = "<beat>"
//! ```
//!
//! The domain owns `/local/domain/<domid>` (xenstored delegates it at
//! creation), so the write needs no extra permission setup; Dom0 may read
//! anything. Beats go through the *charged* [`Hypervisor::xs_write`]
//! wrapper: each one costs virtual time and is subject to xenstore fault
//! injection — a fault-failed write is simply a missed beat, exactly the
//! failure mode a watchdog exists to absorb.
//!
//! Because xenstored outlives domains, a killed domain's last beat stays
//! in the store. Liveness is therefore judged by *advance*, not presence:
//! the monitor counts a probe as missed when the value did not increase
//! since the previous probe (see [`crate::monitor`]).

use kite_xen::{DomainId, Hypervisor, Result};

/// The well-known heartbeat key of a domain.
pub fn key(dom: DomainId) -> String {
    format!("/local/domain/{}/data/heartbeat", dom.0)
}

/// Publishes a domain's heartbeat counter.
///
/// One instance per monitored domain; the system layer calls
/// [`HeartbeatPublisher::beat`] on its heartbeat-interval tick.
#[derive(Clone, Debug)]
pub struct HeartbeatPublisher {
    dom: DomainId,
    beat: u64,
}

impl HeartbeatPublisher {
    /// A publisher for `dom`, starting at beat zero (nothing published
    /// until the first [`HeartbeatPublisher::beat`]).
    pub fn new(dom: DomainId) -> HeartbeatPublisher {
        HeartbeatPublisher { dom, beat: 0 }
    }

    /// The publishing domain.
    pub fn dom(&self) -> DomainId {
        self.dom
    }

    /// The last beat value published (0 before the first beat).
    pub fn last_beat(&self) -> u64 {
        self.beat
    }

    /// Publishes the next beat, returning its value. Errors (a dead
    /// domain, an injected xenstore fault) leave the counter advanced —
    /// a lost beat is lost, not retried with the same value.
    pub fn beat(&mut self, hv: &mut Hypervisor) -> Result<u64> {
        // A dead domain runs no code: its beat loop is simply gone.
        if !hv.domains.alive(self.dom) {
            return Err(kite_xen::XenError::NoSuchDomain(self.dom));
        }
        self.beat += 1;
        let (r, _cost) = hv.xs_write(self.dom, &key(self.dom), &self.beat.to_string());
        r.map(|()| self.beat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_xen::DomainKind;

    #[test]
    fn beats_increase_and_land_in_the_store() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 512, 1);
        let dd = hv.create_domain("dd", DomainKind::Driver, 128, 1);
        let mut p = HeartbeatPublisher::new(dd);
        assert_eq!(p.last_beat(), 0);
        assert_eq!(p.beat(&mut hv).unwrap(), 1);
        assert_eq!(p.beat(&mut hv).unwrap(), 2);
        let (v, _) = hv.xs_read(DomainId::DOM0, &key(dd));
        assert_eq!(v.unwrap(), "2");
    }

    #[test]
    fn stale_beat_survives_domain_destruction() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 512, 1);
        let dd = hv.create_domain("dd", DomainKind::Driver, 128, 1);
        let mut p = HeartbeatPublisher::new(dd);
        p.beat(&mut hv).unwrap();
        hv.destroy_domain(dd).unwrap();
        // xenstored outlives the domain: the key still reads, frozen.
        let (v, _) = hv.xs_read(DomainId::DOM0, &key(dd));
        assert_eq!(v.unwrap(), "1");
        // The dead domain can no longer advance it.
        assert!(p.beat(&mut hv).is_err());
    }
}
