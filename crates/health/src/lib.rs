//! Active health monitoring for driver domains.
//!
//! Kite's availability story (paper §4.4) rests on restarting a crashed
//! driver domain in seconds — but restart can only begin once the failure
//! is *noticed*. This crate supplies the noticing: a xenstore
//! [`heartbeat`] protocol published by driver domains, a Dom0-side
//! [`HealthMonitor`] driving a `Healthy → Suspect → Failed` state machine
//! from missed beats and stalled ring watermarks, [`slo`] latency-quantile
//! checks feeding the same verdict, and the [`top`] renderer behind the
//! `repro top` subcommand — the reproduction's `xentop`.
//!
//! The monitor is deliberately mechanism-only: it observes and renders a
//! verdict; the system layer (kite-system) owns scheduling the probes and
//! acting on `Failed` by starting recovery. Everything is virtual-time
//! deterministic — same seed, same probes, same verdicts, byte-identical
//! `kitetop` output.

pub mod heartbeat;
pub mod monitor;
pub mod slo;
pub mod top;

pub use heartbeat::HeartbeatPublisher;
pub use monitor::{DetectionMode, HealthMonitor, HealthState, MonitorConfig, ProgressSample};
pub use slo::{BreachAttribution, SloConfig, SloReport};
pub use top::{render as render_top, TopRow, TopSnapshot};
