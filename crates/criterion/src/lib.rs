//! A self-contained, offline drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The build environment has no network access to a crates registry, so
//! the real `criterion` cannot be fetched. The benches only need
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros; this crate provides
//! those with a fixed-duration timing loop and a one-line-per-benchmark
//! report. Swapping the workspace dependency back to the registry crate
//! requires no source changes in the benches.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark's measurement loop runs.
const MEASURE_TIME: Duration = Duration::from_millis(200);
/// How long the warm-up loop runs before measuring.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Times one closure repeatedly; handed to the benchmark body.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` in a warm-up phase and then a timed phase, recording the
    /// iteration count and total elapsed time of the timed phase.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + WARMUP_TIME;
        while Instant::now() < warm_until {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_TIME {
            // Amortize the clock read over a small inner batch.
            for _ in 0..64 {
                black_box(f());
            }
            iters += 64;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// The benchmark driver: runs bodies and prints mean time per iteration.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        body(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<40} {mean_ns:>12.1} ns/iter ({} iters)", b.iters);
        self
    }

    /// Opens a named group; benchmarks run under `group/` prefixes.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (prefixes each report line).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed-duration loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measurement window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark under the group's name prefix.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        Criterion::default().bench_function(&full, body);
        self
    }

    /// Ends the group (no-op; reports print as benchmarks run).
    pub fn finish(self) {}
}

/// Expands to a runner function invoking each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Expands to `main` calling each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
