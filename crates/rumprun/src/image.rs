//! Unikernel image composition and size model.
//!
//! A Kite VM image is a static link of exactly the components one driver
//! domain needs — the paper's Figure 4b measures the result at roughly a
//! tenth of a Linux kernel + modules. The builder below assembles images
//! from a component catalog, accumulating both bytes and the syscall
//! surface each component pulls in.

use crate::syscalls::SyscallSet;

/// What layer of the rumprun stack a component belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComponentKind {
    /// Bare-metal kernel layer (threads, MM, interrupts, Xen interface).
    Bmk,
    /// Rump kernel base (allocation, locking, vfs core).
    RumpBase,
    /// A rump kernel faction (net, block/vnode).
    Faction,
    /// A physical device driver reused from NetBSD.
    Driver,
    /// A library (libc, TCP/IP stack, …).
    Library,
    /// Kite's own additions (backends, xenbus/xenstore, apps).
    Kite,
}

/// One linkable component.
#[derive(Clone, Debug)]
pub struct Component {
    /// Name, e.g. `netback`, `ixg(4)`.
    pub name: &'static str,
    /// Stack layer.
    pub kind: ComponentKind,
    /// Contribution to the image in bytes.
    pub size_bytes: u64,
    /// Syscalls this component requires to be kept.
    pub syscalls: SyscallSet,
}

impl Component {
    /// A component with no syscall requirements.
    pub fn new(name: &'static str, kind: ComponentKind, size_bytes: u64) -> Component {
        Component {
            name,
            kind,
            size_bytes,
            syscalls: SyscallSet::default(),
        }
    }

    /// Attaches syscall requirements.
    pub fn with_syscalls(mut self, set: SyscallSet) -> Component {
        self.syscalls = set;
        self
    }
}

/// A finished image.
#[derive(Clone, Debug)]
pub struct Image {
    /// Image name (`netbackend`, `blkbackend`, `dhcpd`).
    pub name: String,
    /// Included components.
    pub components: Vec<Component>,
    /// Total size in bytes.
    pub total_bytes: u64,
    /// Linked-in syscall surface (everything else was discarded).
    pub syscalls: SyscallSet,
}

/// Accumulates components into an [`Image`].
#[derive(Default)]
pub struct ImageBuilder {
    name: String,
    components: Vec<Component>,
}

impl ImageBuilder {
    /// Starts an image.
    pub fn new(name: impl Into<String>) -> ImageBuilder {
        ImageBuilder {
            name: name.into(),
            components: Vec::new(),
        }
    }

    /// Adds a component.
    pub fn component(mut self, c: Component) -> ImageBuilder {
        self.components.push(c);
        self
    }

    /// Links the image.
    pub fn build(self) -> Image {
        let total_bytes = self.components.iter().map(|c| c.size_bytes).sum();
        let syscalls = self
            .components
            .iter()
            .fold(SyscallSet::default(), |acc, c| acc.union(&c.syscalls));
        Image {
            name: self.name,
            components: self.components,
            total_bytes,
            syscalls,
        }
    }
}

const MIB: u64 = 1024 * 1024;
const KIB: u64 = 1024;

fn base_components() -> Vec<Component> {
    vec![
        Component::new("bmk-core", ComponentKind::Bmk, 1536 * KIB),
        Component::new("xen-interface", ComponentKind::Bmk, 512 * KIB),
        Component::new("rump-base", ComponentKind::RumpBase, 2 * MIB),
        Component::new("rumpuser", ComponentKind::RumpBase, 256 * KIB),
        Component::new("libc", ComponentKind::Library, 1792 * KIB),
        Component::new("xenbus+xenstore (HVM ext)", ComponentKind::Kite, 60 * KIB),
    ]
}

/// The Kite **network** driver-domain image (≈21 MiB, per Figure 4b).
pub fn kite_network_image() -> Image {
    let mut b = ImageBuilder::new("netbackend");
    for c in base_components() {
        b = b.component(c);
    }
    b.component(Component::new(
        "net-faction",
        ComponentKind::Faction,
        3 * MIB,
    ))
    .component(Component::new(
        "tcpip-stack",
        ComponentKind::Library,
        2560 * KIB,
    ))
    .component(Component::new(
        "bpf+if-framework",
        ComponentKind::Faction,
        1536 * KIB,
    ))
    .component(
        Component::new("ixg(4) 82599 driver", ComponentKind::Driver, 6 * MIB)
            .with_syscalls(crate::syscalls::kite_network_syscalls()),
    )
    .component(Component::new("bridge(4)", ComponentKind::Driver, MIB))
    .component(Component::new("netback", ComponentKind::Kite, 140 * KIB))
    .component(Component::new(
        "bridging app + ifconfig/brconfig",
        ComponentKind::Kite,
        512 * KIB,
    ))
    .component(Component::new("pci+intr glue", ComponentKind::Driver, MIB))
    .build()
}

/// The Kite **storage** driver-domain image (≈20 MiB).
pub fn kite_storage_image() -> Image {
    let mut b = ImageBuilder::new("blkbackend");
    for c in base_components() {
        b = b.component(c);
    }
    b.component(Component::new(
        "block-faction (vnode)",
        ComponentKind::Faction,
        2560 * KIB,
    ))
    .component(Component::new("vfs core", ComponentKind::RumpBase, 2 * MIB))
    .component(
        Component::new("nvme(4) driver", ComponentKind::Driver, 5 * MIB)
            .with_syscalls(crate::syscalls::kite_storage_syscalls()),
    )
    .component(Component::new("blkback", ComponentKind::Kite, 96 * KIB))
    .component(Component::new(
        "block status app",
        ComponentKind::Kite,
        384 * KIB,
    ))
    .component(Component::new("pci+intr glue", ComponentKind::Driver, MIB))
    .component(Component::new(
        "scsipi compat",
        ComponentKind::Driver,
        1536 * KIB,
    ))
    .build()
}

/// The unikernelized OpenDHCP daemon-VM image (§5.5; 16 LoC of changes in
/// the paper — the image is just rumprun + sockets + the server).
pub fn kite_dhcpd_image() -> Image {
    let mut b = ImageBuilder::new("dhcpd");
    for c in base_components() {
        b = b.component(c);
    }
    b.component(Component::new(
        "net-faction",
        ComponentKind::Faction,
        3 * MIB,
    ))
    .component(Component::new(
        "tcpip-stack",
        ComponentKind::Library,
        2560 * KIB,
    ))
    .component(
        Component::new("opendhcp server", ComponentKind::Kite, 640 * KIB)
            .with_syscalls(crate::syscalls::kite_dhcpd_syscalls()),
    )
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_image_size_in_paper_range() {
        let img = kite_network_image();
        let mib = img.total_bytes as f64 / MIB as f64;
        // Paper: "entire rumprun OS image is ≈22MB".
        assert!((18.0..24.0).contains(&mib), "network image = {mib:.1} MiB");
    }

    #[test]
    fn storage_image_size_in_paper_range() {
        let img = kite_storage_image();
        let mib = img.total_bytes as f64 / MIB as f64;
        assert!((16.0..24.0).contains(&mib), "storage image = {mib:.1} MiB");
    }

    #[test]
    fn syscall_surfaces_match_fig4a() {
        assert_eq!(kite_network_image().syscalls.len(), 14);
        assert_eq!(kite_storage_image().syscalls.len(), 18);
    }

    #[test]
    fn network_image_has_no_block_driver() {
        let img = kite_network_image();
        assert!(img.components.iter().all(|c| c.name != "nvme(4) driver"));
        assert!(img.components.iter().any(|c| c.name == "netback"));
    }

    #[test]
    fn storage_image_has_no_netback() {
        let img = kite_storage_image();
        assert!(img.components.iter().all(|c| c.name != "netback"));
        assert!(img.components.iter().any(|c| c.name == "blkback"));
    }

    #[test]
    fn builder_accumulates() {
        let img = ImageBuilder::new("t")
            .component(Component::new("a", ComponentKind::Bmk, 100))
            .component(
                Component::new("b", ComponentKind::Kite, 50)
                    .with_syscalls(SyscallSet::from_names(&["read"])),
            )
            .build();
        assert_eq!(img.total_bytes, 150);
        assert_eq!(img.syscalls.len(), 1);
        assert_eq!(img.components.len(), 2);
    }

    #[test]
    fn dhcpd_image_smaller_than_driver_domains() {
        assert!(kite_dhcpd_image().total_bytes < kite_network_image().total_bytes);
    }
}
