//! Interrupt dispatch: IRQ lines bound to handler descriptors.
//!
//! Kite's handlers do almost nothing — they acknowledge the event and wake
//! a dedicated thread (the paper's `pusher`/`soft_start` design). A handler
//! here is therefore data: which thread to wake plus a modeled handler
//! cost, interpreted by the system layer when an event-channel notification
//! or NIC IRQ lands.

use std::collections::HashMap;

use kite_sim::Nanos;

use crate::sched::ThreadId;

/// An interrupt line identifier (event-channel port or device vector).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IrqLine(pub u32);

/// What a registered handler does.
#[derive(Clone, Debug)]
pub struct IrqBinding {
    /// Handler name for diagnostics.
    pub name: String,
    /// Thread the handler wakes (the Kite pattern), if any.
    pub wake: Option<ThreadId>,
    /// CPU cost of the handler body itself.
    pub handler_cost: Nanos,
}

/// The interrupt table of one unikernel instance.
#[derive(Clone, Debug, Default)]
pub struct IrqTable {
    bindings: HashMap<IrqLine, IrqBinding>,
    delivered: u64,
    spurious: u64,
}

impl IrqTable {
    /// Creates an empty table.
    pub fn new() -> IrqTable {
        IrqTable::default()
    }

    /// Binds a line to a handler.
    pub fn bind(&mut self, line: IrqLine, binding: IrqBinding) {
        self.bindings.insert(line, binding);
    }

    /// Unbinds a line.
    pub fn unbind(&mut self, line: IrqLine) -> bool {
        self.bindings.remove(&line).is_some()
    }

    /// Dispatches an interrupt; returns the binding to execute, or `None`
    /// for a spurious interrupt (counted).
    pub fn dispatch(&mut self, line: IrqLine) -> Option<IrqBinding> {
        match self.bindings.get(&line) {
            Some(b) => {
                self.delivered += 1;
                Some(b.clone())
            }
            None => {
                self.spurious += 1;
                None
            }
        }
    }

    /// Interrupts delivered to a bound handler.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Interrupts with no binding.
    pub fn spurious(&self) -> u64 {
        self.spurious
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_dispatch() {
        let mut t = IrqTable::new();
        t.bind(
            IrqLine(3),
            IrqBinding {
                name: "netback-evtchn".into(),
                wake: Some(ThreadId(1)),
                handler_cost: Nanos::from_nanos(400),
            },
        );
        let b = t.dispatch(IrqLine(3)).unwrap();
        assert_eq!(b.wake, Some(ThreadId(1)));
        assert_eq!(t.delivered(), 1);
        assert_eq!(t.spurious(), 0);
    }

    #[test]
    fn unbound_is_spurious() {
        let mut t = IrqTable::new();
        assert!(t.dispatch(IrqLine(9)).is_none());
        assert_eq!(t.spurious(), 1);
    }

    #[test]
    fn unbind_stops_dispatch() {
        let mut t = IrqTable::new();
        t.bind(
            IrqLine(1),
            IrqBinding {
                name: "x".into(),
                wake: None,
                handler_cost: Nanos::ZERO,
            },
        );
        assert!(t.unbind(IrqLine(1)));
        assert!(!t.unbind(IrqLine(1)));
        assert!(t.dispatch(IrqLine(1)).is_none());
    }
}
