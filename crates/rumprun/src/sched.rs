//! The rumprun BMK cooperative (non-preemptive) scheduler.
//!
//! This is the constraint Kite's whole threading design answers: there is
//! no preemption and no work-queue machinery, so a thread that hogs the CPU
//! starves interrupt-driven work. Kite's drivers therefore run short
//! interrupt handlers that only *wake* dedicated threads (`pusher`,
//! `soft_start`, the blkback request thread), and its orchestration apps
//! yield explicitly.
//!
//! The scheduler itself is plain data: a run queue plus thread states. The
//! system layer decides *when* the vCPU runs the next thread and charges
//! virtual time for each slice.

use std::collections::VecDeque;

/// A thread identifier within one unikernel instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ThreadId(pub u32);

/// Scheduler-visible thread state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// On the run queue.
    Runnable,
    /// Currently on the vCPU.
    Running,
    /// Waiting for a wake (event/data).
    Sleeping,
    /// Exited.
    Dead,
}

#[derive(Clone, Debug)]
struct Thread {
    name: String,
    state: ThreadState,
}

/// The cooperative scheduler of one rumprun instance.
#[derive(Clone, Debug, Default)]
pub struct Scheduler {
    threads: Vec<Thread>,
    runq: VecDeque<ThreadId>,
    current: Option<ThreadId>,
    switches: u64,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Spawns a thread in the runnable state.
    pub fn spawn(&mut self, name: impl Into<String>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread {
            name: name.into(),
            state: ThreadState::Runnable,
        });
        self.runq.push_back(id);
        id
    }

    /// Spawns a thread that starts asleep (woken by its first event) —
    /// the pattern Kite's driver threads use.
    pub fn spawn_sleeping(&mut self, name: impl Into<String>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread {
            name: name.into(),
            state: ThreadState::Sleeping,
        });
        id
    }

    /// Wakes a sleeping thread. Returns `true` if it transitioned to
    /// runnable; waking an already-runnable/running thread is a no-op
    /// ("only wakes the thread if it is sleeping", as the paper puts it).
    pub fn wake(&mut self, id: ThreadId) -> bool {
        match self.threads.get_mut(id.0 as usize) {
            Some(t) if t.state == ThreadState::Sleeping => {
                t.state = ThreadState::Runnable;
                self.runq.push_back(id);
                true
            }
            _ => false,
        }
    }

    /// Picks the next runnable thread and makes it current.
    ///
    /// Returns `None` when the run queue is empty (vCPU halts until the
    /// next interrupt).
    pub fn pick_next(&mut self) -> Option<ThreadId> {
        debug_assert!(self.current.is_none(), "non-preemptive: must yield first");
        let id = self.runq.pop_front()?;
        self.threads[id.0 as usize].state = ThreadState::Running;
        self.current = Some(id);
        self.switches += 1;
        Some(id)
    }

    /// The currently running thread.
    pub fn current(&self) -> Option<ThreadId> {
        self.current
    }

    /// Current thread yields: back to the run queue tail.
    pub fn yield_current(&mut self) {
        if let Some(id) = self.current.take() {
            self.threads[id.0 as usize].state = ThreadState::Runnable;
            self.runq.push_back(id);
        }
    }

    /// Current thread sleeps until woken.
    pub fn sleep_current(&mut self) {
        if let Some(id) = self.current.take() {
            self.threads[id.0 as usize].state = ThreadState::Sleeping;
        }
    }

    /// Current thread exits.
    pub fn exit_current(&mut self) {
        if let Some(id) = self.current.take() {
            self.threads[id.0 as usize].state = ThreadState::Dead;
        }
    }

    /// A thread's state.
    pub fn state(&self, id: ThreadId) -> ThreadState {
        self.threads
            .get(id.0 as usize)
            .map(|t| t.state)
            .unwrap_or(ThreadState::Dead)
    }

    /// A thread's name.
    pub fn name(&self, id: ThreadId) -> &str {
        self.threads
            .get(id.0 as usize)
            .map(|t| t.name.as_str())
            .unwrap_or("?")
    }

    /// True when nothing is runnable or running.
    pub fn idle(&self) -> bool {
        self.current.is_none() && self.runq.is_empty()
    }

    /// Context-switch count.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_order() {
        let mut s = Scheduler::new();
        let a = s.spawn("a");
        let b = s.spawn("b");
        assert_eq!(s.pick_next(), Some(a));
        s.yield_current();
        assert_eq!(s.pick_next(), Some(b));
        s.yield_current();
        assert_eq!(s.pick_next(), Some(a));
    }

    #[test]
    fn sleeping_thread_skipped_until_woken() {
        let mut s = Scheduler::new();
        let a = s.spawn("a");
        let pusher = s.spawn_sleeping("pusher");
        assert_eq!(s.state(pusher), ThreadState::Sleeping);
        assert_eq!(s.pick_next(), Some(a));
        s.yield_current();
        // Still only `a` runnable.
        assert_eq!(s.pick_next(), Some(a));
        s.sleep_current();
        assert!(s.idle());
        // IRQ handler wakes pusher.
        assert!(s.wake(pusher));
        assert_eq!(s.pick_next(), Some(pusher));
    }

    #[test]
    fn double_wake_is_noop() {
        let mut s = Scheduler::new();
        let t = s.spawn_sleeping("t");
        assert!(s.wake(t));
        // Second wake while runnable: no duplicate queue entry.
        assert!(!s.wake(t));
        assert_eq!(s.pick_next(), Some(t));
        s.yield_current();
        assert_eq!(s.pick_next(), Some(t));
        s.sleep_current();
        assert!(s.idle());
    }

    #[test]
    fn wake_running_is_noop() {
        let mut s = Scheduler::new();
        let t = s.spawn("t");
        s.pick_next();
        assert!(!s.wake(t));
    }

    #[test]
    fn exit_removes_thread() {
        let mut s = Scheduler::new();
        let t = s.spawn("t");
        s.pick_next();
        s.exit_current();
        assert_eq!(s.state(t), ThreadState::Dead);
        assert!(!s.wake(t));
        assert!(s.idle());
    }

    #[test]
    fn switch_count_increments() {
        let mut s = Scheduler::new();
        s.spawn("a");
        s.pick_next();
        s.yield_current();
        s.pick_next();
        assert_eq!(s.switches(), 2);
    }

    #[test]
    fn names_tracked() {
        let mut s = Scheduler::new();
        let t = s.spawn("soft_start");
        assert_eq!(s.name(t), "soft_start");
        assert_eq!(s.name(ThreadId(99)), "?");
    }
}
