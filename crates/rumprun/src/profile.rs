//! OS overhead profiles: where Kite's performance deltas come from.
//!
//! The backend *mechanism* (rings, grants, event channels) is identical
//! between a Kite and a Linux driver domain — the paper deliberately mirrors
//! Linux's design and optimizations. What differs is the OS around it: how
//! an interrupt becomes a running worker, how many kernel layers a packet
//! crosses, whether a user/kernel boundary exists. An [`OsProfile`]
//! quantifies those per-OS costs; the driver code in `kite-core` is written
//! once and parameterized by it.

use kite_sim::Nanos;

/// How deferred work is dispatched after an interrupt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkModel {
    /// Kite: a tiny handler wakes a dedicated cooperative thread.
    DedicatedThread,
    /// Linux: IRQ raises softirq/NAPI, work may bounce through a workqueue
    /// kthread with scheduler involvement.
    WorkQueue,
}

/// Per-OS cost parameters for the driver-domain data path.
#[derive(Clone, Debug)]
pub struct OsProfile {
    /// Display name.
    pub name: &'static str,
    /// Dispatch model.
    pub work_model: WorkModel,
    /// Interrupt handler entry/exit (ack + wake).
    pub irq_overhead: Nanos,
    /// Wake-to-run latency for the deferred worker on an idle vCPU.
    pub wakeup_latency: Nanos,
    /// Extra per-packet OS-layer cost on the network path (skb/mbuf
    /// handling, bridge hooks, queue disciplines).
    pub per_packet: Nanos,
    /// Extra per-request OS-layer cost on the block path (bio assembly,
    /// elevator, completion bouncing).
    pub per_block_request: Nanos,
    /// Cost of one context switch.
    pub context_switch: Nanos,
    /// Cost of a user/kernel syscall crossing (zero when syscalls are
    /// function calls, as in rumprun).
    pub syscall: Nanos,
    /// Cap on the extra dispatch latency paid when the driver domain has
    /// been idle (wake-from-halt VMEXIT, scheduler warm-up, softirq/
    /// workqueue thread migration). Grows with idle time up to this cap;
    /// calibrated against the paper's Figure 7 latencies.
    pub idle_wake_cap: Nanos,
    /// Divisor converting idle duration into wake latency
    /// (`wake = min(cap, idle / div)`).
    pub idle_wake_div: u64,
}

/// The Kite (rumprun) profile: single address space, cooperative threads,
/// syscalls compiled to function calls, shallow NetBSD driver path.
/// The idle-wake parameters model HVM halt-exit plus the trivial BMK
/// scheduler; Linux's are much larger (softirq + kthread scheduling).
pub fn kite_profile() -> OsProfile {
    OsProfile {
        name: "Kite",
        work_model: WorkModel::DedicatedThread,
        irq_overhead: Nanos::from_nanos(350),
        wakeup_latency: Nanos::from_nanos(700),
        per_packet: Nanos::from_nanos(550),
        per_block_request: Nanos::from_micros(2),
        context_switch: Nanos::from_nanos(250),
        syscall: Nanos::ZERO,
        idle_wake_cap: Nanos::from_micros(90),
        idle_wake_div: 50,
    }
}

impl OsProfile {
    /// Cost from "notification arrives" to "worker is processing",
    /// assuming an idle vCPU.
    pub fn dispatch_latency(&self) -> Nanos {
        self.irq_overhead + self.wakeup_latency + self.context_switch
    }

    /// The extra wake latency paid when the domain sat idle for
    /// `idle` before this event: `min(cap, idle / div)`.
    pub fn idle_wake(&self, idle: Nanos) -> Nanos {
        Nanos(idle.as_nanos() / self.idle_wake_div).min(self.idle_wake_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kite_dispatch_is_sub_microsecond_class() {
        let p = kite_profile();
        assert!(p.dispatch_latency() < Nanos::from_micros(2));
        assert_eq!(p.syscall, Nanos::ZERO, "rumprun syscalls are calls");
        assert_eq!(p.work_model, WorkModel::DedicatedThread);
    }
}
