//! Boot sequence model (Figure 4c: Kite boots in ≈7 s vs ≈75 s for Linux).
//!
//! A boot is a list of stages with durations; the totals are what the
//! paper's experiment E1 measures by hand ("until you see 'Network domain
//! is ready'"). Durations carry small multiplicative jitter so repeated
//! boots report realistic spreads.

use kite_sim::{Nanos, Pcg};

/// One boot stage.
#[derive(Clone, Debug)]
pub struct BootStage {
    /// Stage name.
    pub name: &'static str,
    /// Nominal duration.
    pub duration: Nanos,
}

/// An ordered boot sequence.
#[derive(Clone, Debug)]
pub struct BootSequence {
    /// OS label for reporting.
    pub os: &'static str,
    /// Stages in order.
    pub stages: Vec<BootStage>,
}

impl BootSequence {
    /// Nominal total boot time.
    pub fn total(&self) -> Nanos {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// A sampled boot time with ±3% per-stage jitter.
    pub fn sample(&self, rng: &mut Pcg) -> Nanos {
        self.stages
            .iter()
            .map(|s| rng.jitter(s.duration, 0.03))
            .sum()
    }
}

/// Kite driver-domain boot: HVM loader, BMK, rump init, PCI probe, done.
///
/// Device probe (NIC link autonegotiation / NVMe controller reset)
/// dominates; there is no initramfs, no udev, no service manager.
pub fn kite_boot() -> BootSequence {
    BootSequence {
        os: "Kite (rumprun)",
        stages: vec![
            BootStage {
                name: "HVM loader + firmware handoff",
                duration: Nanos::from_millis(900),
            },
            BootStage {
                name: "BMK init (memory, threads, interrupts)",
                duration: Nanos::from_millis(150),
            },
            BootStage {
                name: "rump kernel init (factions, vfs)",
                duration: Nanos::from_millis(450),
            },
            BootStage {
                name: "xenbus/xenstore attach",
                duration: Nanos::from_millis(200),
            },
            BootStage {
                name: "PCI enumerate + device probe (link/ctrl reset)",
                duration: Nanos::from_millis(4600),
            },
            BootStage {
                name: "backend app start (bridge/ifconfig)",
                duration: Nanos::from_millis(650),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kite_boots_in_about_seven_seconds() {
        let t = kite_boot().total().as_secs_f64();
        assert!((6.5..7.5).contains(&t), "kite boot = {t:.2}s");
    }

    #[test]
    fn sampled_boot_close_to_nominal() {
        let seq = kite_boot();
        let mut rng = Pcg::seeded(1);
        for _ in 0..20 {
            let s = seq.sample(&mut rng).as_secs_f64();
            let n = seq.total().as_secs_f64();
            assert!((s - n).abs() / n < 0.05);
        }
    }

    #[test]
    fn device_probe_dominates() {
        let seq = kite_boot();
        let probe = seq
            .stages
            .iter()
            .find(|s| s.name.contains("probe"))
            .unwrap()
            .duration;
        assert!(probe.as_nanos() * 2 > seq.total().as_nanos());
    }
}
