//! Syscall surface accounting.
//!
//! In rumprun, "system calls" are ordinary function calls — but they are
//! still the semantic interface to the rump kernel, and the paper's
//! Figure 4a counts how many of them each image needs: **14** for the
//! network domain and **18** for the storage domain, versus 171 for even a
//! minimal Ubuntu driver domain. Everything not needed is discarded at link
//! time, which is the mechanism behind the CVE mitigations of Table 3.

use std::collections::BTreeSet;

/// A set of syscall names (order-independent, deduplicated).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyscallSet {
    names: BTreeSet<&'static str>,
}

impl SyscallSet {
    /// Builds a set from names.
    pub fn from_names(names: &[&'static str]) -> SyscallSet {
        SyscallSet {
            names: names.iter().copied().collect(),
        }
    }

    /// Number of syscalls in the set.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Union of two sets.
    pub fn union(&self, other: &SyscallSet) -> SyscallSet {
        SyscallSet {
            names: self.names.union(&other.names).copied().collect(),
        }
    }

    /// Names in `self` but not `other` (what got discarded).
    pub fn difference(&self, other: &SyscallSet) -> Vec<&'static str> {
        self.names.difference(&other.names).copied().collect()
    }

    /// Iterates names in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.names.iter().copied()
    }
}

/// The 14 syscalls the Kite **network** domain links in.
pub fn kite_network_syscalls() -> SyscallSet {
    SyscallSet::from_names(&[
        "exit",
        "read",
        "write",
        "open",
        "close",
        "ioctl",
        "poll",
        "mmap",
        "munmap",
        "clock_gettime",
        "socket",
        "bind",
        "sendmsg",
        "recvmsg",
    ])
}

/// The 18 syscalls the Kite **storage** domain links in.
pub fn kite_storage_syscalls() -> SyscallSet {
    SyscallSet::from_names(&[
        "exit",
        "read",
        "write",
        "open",
        "close",
        "ioctl",
        "poll",
        "mmap",
        "munmap",
        "clock_gettime",
        "fstat",
        "lseek",
        "pread",
        "pwrite",
        "fsync",
        "mount",
        "unmount",
        "statvfs",
    ])
}

/// The syscalls of the unikernelized DHCP daemon VM.
pub fn kite_dhcpd_syscalls() -> SyscallSet {
    SyscallSet::from_names(&[
        "exit",
        "read",
        "write",
        "open",
        "close",
        "poll",
        "mmap",
        "munmap",
        "clock_gettime",
        "socket",
        "bind",
        "sendto",
        "recvfrom",
        "setsockopt",
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match() {
        assert_eq!(kite_network_syscalls().len(), 14, "Fig 4a: network = 14");
        assert_eq!(kite_storage_syscalls().len(), 18, "Fig 4a: storage = 18");
    }

    #[test]
    fn dangerous_syscalls_absent() {
        // The Table 3 CVE carriers must not be reachable from Kite images.
        for bad in [
            "init_module",
            "execve",
            "clone",
            "modify_ldt",
            "ftruncate",
            "mremap",
            "timer_create",
            "rename",
            "unlink",
            "chmod",
            "setsockopt",
        ] {
            assert!(!kite_network_syscalls().contains(bad), "net has {bad}");
        }
        for bad in ["init_module", "execve", "clone", "modify_ldt"] {
            assert!(!kite_storage_syscalls().contains(bad), "storage has {bad}");
        }
    }

    #[test]
    fn set_algebra() {
        let a = SyscallSet::from_names(&["read", "write"]);
        let b = SyscallSet::from_names(&["write", "close"]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(a.difference(&b), vec!["read"]);
        assert!(u.contains("close"));
        assert!(!SyscallSet::default().contains("read"));
        assert!(SyscallSet::default().is_empty());
    }

    #[test]
    fn network_and_storage_share_a_core() {
        let net = kite_network_syscalls();
        let st = kite_storage_syscalls();
        for core in ["read", "write", "open", "close", "poll"] {
            assert!(net.contains(core) && st.contains(core));
        }
        // Storage has no sockets; network has no file sync.
        assert!(!st.contains("socket"));
        assert!(!net.contains("fsync"));
    }
}
