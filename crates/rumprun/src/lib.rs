//! The rumprun unikernel runtime model.
//!
//! Kite builds its driver domains on rumprun (the rump-kernel unikernel,
//! extended for Xen HVM + SMP by LibrettOS). This crate models the parts of
//! that runtime the paper's design depends on:
//!
//! * [`sched`] — the **non-preemptive** BMK scheduler whose limitations
//!   drive Kite's dedicated-thread design;
//! * [`interrupts`] — IRQ lines bound to wake-a-thread handlers;
//! * [`syscalls`] — the linked-in syscall surface (14 network / 18 storage,
//!   Figure 4a) with set algebra for the CVE analysis;
//! * [`image`] — component-based image composition (≈21 MiB, Figure 4b);
//! * [`boot`] — the ≈7 s boot sequence (Figure 4c);
//! * [`profile`] — the OS overhead profile that parameterizes the shared
//!   backend mechanism in `kite-core`.

pub mod boot;
pub mod image;
pub mod interrupts;
pub mod profile;
pub mod sched;
pub mod syscalls;

pub use boot::{kite_boot, BootSequence, BootStage};
pub use image::{
    kite_dhcpd_image, kite_network_image, kite_storage_image, Component, ComponentKind, Image,
    ImageBuilder,
};
pub use interrupts::{IrqBinding, IrqLine, IrqTable};
pub use profile::{kite_profile, OsProfile, WorkModel};
pub use sched::{Scheduler, ThreadId, ThreadState};
pub use syscalls::{kite_dhcpd_syscalls, kite_network_syscalls, kite_storage_syscalls, SyscallSet};
