//! MySQL + SysBench: the network-bound run (Figure 10) and the
//! storage-bound run (Figure 13).
//!
//! Figure 10: read-only OLTP against an in-memory database — the network
//! path is stressed, DomU CPU does the query work, throughput climbs with
//! threads toward the DomU's capacity, and both driver domains look alike.
//!
//! Figure 13: complex queries against a 20 GB on-disk database — every
//! transaction issues random tablespace reads through blkfront, and the
//! curves for Kite and Linux are identical.

use std::cell::RefCell;
use std::rc::Rc;

use kite_sim::{Nanos, Pcg};
use kite_system::{BackendOs, IoKind, IoOp, StorSystem};

use crate::common::{rr_closed_loop, RrConfig};

/// Thread counts of Figure 10a.
pub const FIG10_THREADS: [u16; 5] = [5, 10, 20, 40, 60];
/// Thread counts of Figure 13.
pub const FIG13_THREADS: [u16; 8] = [1, 5, 10, 20, 40, 60, 80, 100];

/// One network-run measurement (Figure 10).
#[derive(Clone, Debug)]
pub struct MysqlNetReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// SysBench threads.
    pub threads: u16,
    /// Transactions per second.
    pub tps: f64,
    /// DomU mean CPU utilization percent (Figure 10b).
    pub guest_cpu: f64,
}

/// Runs the read-only network-bound benchmark (Figure 10).
pub fn run_net(os: BackendOs, threads: u16, transactions: u64, seed: u64) -> MysqlNetReport {
    let r = rr_closed_loop(
        os,
        seed,
        RrConfig {
            workers: threads,
            ops_per_worker: transactions / u64::from(threads),
            pipeline: 1,
            // One transaction = 14 read-only statements batched on the
            // wire: ~700 B of SQL, ~9 KB of result rows.
            request: Box::new(|_| (1, 700)),
            response: Box::new(|_| 9 * 1024),
            // Transaction CPU cost on the (22-vCPU) DomU.
            server_cost: Nanos::from_micros(3600),
            port: 3306,
        },
    );
    MysqlNetReport {
        os,
        threads,
        tps: r.ops as f64 / r.duration.as_secs_f64(),
        guest_cpu: r.guest_cpu,
    }
}

/// The Figure 10 sweep for one OS.
pub fn figure10(os: BackendOs, transactions: u64, seed: u64) -> Vec<MysqlNetReport> {
    FIG10_THREADS
        .iter()
        .map(|&t| run_net(os, t, transactions, seed))
        .collect()
}

/// One storage-run measurement (Figure 13).
#[derive(Clone, Debug)]
pub struct MysqlStorageReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// SysBench threads.
    pub threads: u16,
    /// Transactions per second.
    pub tps: f64,
    /// Tablespace read throughput in MB/s.
    pub read_mbps: f64,
}

/// Runs the disk-bound complex-query benchmark (Figure 13).
///
/// Each simulated transaction performs `reads_per_tx` random 16 KiB
/// tablespace reads (InnoDB page size) over a `dataset_mib` tablespace;
/// a worker starts its next transaction when the previous one completes.
pub fn run_storage(
    os: BackendOs,
    threads: u16,
    transactions_per_thread: u64,
    seed: u64,
) -> MysqlStorageReport {
    const PAGE: usize = 16 * 1024;
    const READS_PER_TX: u64 = 8;
    let dataset_sectors: u64 = 1024 * 1024 * 1024 / 512; // 1 GiB tablespace

    let mut sys = StorSystem::new(os, seed);
    struct Worker {
        tx_done: u64,
        reads_left: u64,
    }
    let workers: Rc<RefCell<Vec<Worker>>> = Rc::new(RefCell::new(
        (0..threads)
            .map(|_| Worker {
                tx_done: 0,
                reads_left: READS_PER_TX,
            })
            .collect(),
    ));
    let rng = Rc::new(RefCell::new(Pcg::seeded(seed ^ 0x5eed)));
    let tx_count = Rc::new(RefCell::new(0u64));
    let (wk, rg, tc) = (workers.clone(), rng.clone(), tx_count.clone());
    let next_read = move |worker_idx: u64, rng: &mut Pcg| -> IoOp {
        let sector = (rng.range_u64(0, dataset_sectors - (PAGE / 512) as u64) / 32) * 32;
        IoOp {
            tag: worker_idx,
            kind: IoKind::Read { sector, len: PAGE },
        }
    };
    let nr = next_read;
    sys.set_handler(Box::new(move |_, done| {
        let mut ws = wk.borrow_mut();
        let w = &mut ws[done.tag as usize];
        w.reads_left -= 1;
        if w.reads_left == 0 {
            w.tx_done += 1;
            *tc.borrow_mut() += 1;
            if w.tx_done >= transactions_per_thread {
                return Vec::new();
            }
            w.reads_left = READS_PER_TX;
        }
        vec![nr(done.tag, &mut rg.borrow_mut())]
    }));
    for i in 0..threads {
        let op = next_read(u64::from(i), &mut rng.borrow_mut());
        sys.submit_at(Nanos::from_micros(100 + u64::from(i)), op);
    }
    sys.run_to_quiescence();
    let secs = sys.now().as_secs_f64();
    let txs = *tx_count.borrow();
    MysqlStorageReport {
        os,
        threads,
        tps: txs as f64 / secs,
        read_mbps: sys.metrics.read_bytes as f64 / 1e6 / secs,
    }
}

/// The Figure 13 sweep for one OS.
pub fn figure13(os: BackendOs, tx_per_thread: u64, seed: u64) -> Vec<MysqlStorageReport> {
    FIG13_THREADS
        .iter()
        .map(|&t| run_storage(os, t, tx_per_thread, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_throughput_climbs_then_saturates() {
        let series = figure10(BackendOs::Kite, 1200, 1);
        assert!(
            series[4].tps > 2.5 * series[0].tps,
            "throughput climbs with threads: {series:#?}"
        );
        // Saturation: the last doubling of threads gains sublinearly.
        let gain = series[4].tps / series[3].tps;
        assert!(gain < 1.8, "saturating: {series:#?}");
        // CPU utilization grows with load.
        assert!(series[4].guest_cpu > series[0].guest_cpu);
    }

    #[test]
    fn net_kite_and_linux_alike() {
        let k = run_net(BackendOs::Kite, 20, 800, 2);
        let l = run_net(BackendOs::Linux, 20, 800, 2);
        let ratio = k.tps / l.tps;
        assert!(
            (0.9..1.15).contains(&ratio),
            "Fig 10a parity: {k:?} vs {l:?}"
        );
        assert!(
            (k.guest_cpu - l.guest_cpu).abs() < 10.0,
            "Fig 10b similar CPU: {k:?} vs {l:?}"
        );
    }

    #[test]
    fn storage_identical_curves() {
        let k = run_storage(BackendOs::Kite, 20, 12, 3);
        let l = run_storage(BackendOs::Linux, 20, 12, 3);
        let ratio = k.tps / l.tps;
        assert!(
            (0.9..1.15).contains(&ratio),
            "Fig 13 identical: {k:?} vs {l:?}"
        );
        assert!(k.tps > 10.0, "{k:?}");
    }

    #[test]
    fn storage_scales_with_threads() {
        let one = run_storage(BackendOs::Kite, 1, 12, 4);
        let twenty = run_storage(BackendOs::Kite, 20, 12, 4);
        assert!(twenty.tps > 2.0 * one.tps, "{one:?} vs {twenty:?}");
    }
}
