//! Workload generators reproducing every performance figure of the paper.
//!
//! | Module | Figure(s) | Benchmark |
//! |---|---|---|
//! | [`nuttcp`] | Fig 6 | UDP throughput + loss |
//! | [`latency`] | Fig 7 | ping, Netperf RR, memtier |
//! | [`apache`] | Fig 8 | ApacheBench file sweep |
//! | [`redis`] | Fig 9 | pipelined SET/GET |
//! | [`mysql`] | Fig 10, 13 | SysBench OLTP (network + storage) |
//! | [`dd`] | Fig 11 | sequential raw-device throughput |
//! | [`fileio`] | Fig 12 | SysBench random file I/O |
//! | [`filebench`] | Fig 14–16 | fileserver / MongoDB / webserver |
//! | [`perfdhcp`] | §5.5 | daemon-VM DORA latency |
//!
//! Each generator drives the full simulated stack (`kite-system`) and
//! returns typed reports; the `repro` binary in `kite-bench` prints them
//! alongside the paper's numbers.

pub mod apache;
pub mod common;
pub mod dd;
pub mod filebench;
pub mod fileio;
pub mod latency;
pub mod mysql;
pub mod nuttcp;
pub mod perfdhcp;
pub mod redis;
