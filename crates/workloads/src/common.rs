//! Shared plumbing for the macro workloads: a tiny length-prefixed message
//! protocol so multi-chunk requests/responses are reassembled exactly once
//! on each side, plus closed-loop bookkeeping helpers.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use kite_sim::Nanos;
use kite_system::UdpMsg;

/// Header magic for logical messages.
const MAGIC: u16 = 0x4b4d; // "KM"
/// Header length: magic(2) + kind(2) + total body length(4).
pub const MSG_HEADER: usize = 8;

/// Builds a logical message: header plus `body_len` filler bytes.
pub fn encode_msg(kind: u16, body_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(MSG_HEADER + body_len);
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&kind.to_be_bytes());
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.resize(MSG_HEADER + body_len, 0x6b);
    out
}

/// A fully reassembled logical message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogicalMsg {
    /// Peer address.
    pub src_ip: Ipv4Addr,
    /// Peer port (the flow key).
    pub src_port: u16,
    /// Local port it arrived on.
    pub dst_port: u16,
    /// Application-defined kind tag.
    pub kind: u16,
    /// Body length in bytes.
    pub body_len: usize,
    /// Arrival time of the first chunk.
    pub started: Nanos,
}

#[derive(Debug)]
struct Partial {
    kind: u16,
    body_len: usize,
    got: usize,
    started: Nanos,
}

/// Per-flow reassembly of logical messages from UDP chunks.
#[derive(Default)]
pub struct Reassembler {
    flows: HashMap<(Ipv4Addr, u16, u16), Partial>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Feeds one UDP chunk; returns the logical message when complete.
    ///
    /// Chunks of one logical message arrive in order on a flow (the
    /// simulated path is FIFO); a fresh header starts a new message.
    pub fn push(&mut self, now: Nanos, msg: &UdpMsg) -> Option<LogicalMsg> {
        let key = (msg.src_ip, msg.src_port, msg.dst_port);
        let p = self.flows.entry(key).or_insert(Partial {
            kind: 0,
            body_len: 0,
            got: 0,
            started: now,
        });
        let mut data = msg.payload.as_slice();
        if p.got == 0 {
            // Expect a header.
            if data.len() < MSG_HEADER || u16::from_be_bytes([data[0], data[1]]) != MAGIC {
                self.flows.remove(&key);
                return None;
            }
            p.kind = u16::from_be_bytes([data[2], data[3]]);
            p.body_len = u32::from_be_bytes([data[4], data[5], data[6], data[7]]) as usize;
            p.started = now;
            data = &data[MSG_HEADER..];
        }
        p.got += data.len();
        if p.got >= p.body_len {
            let done = LogicalMsg {
                src_ip: msg.src_ip,
                src_port: msg.src_port,
                dst_port: msg.dst_port,
                kind: p.kind,
                body_len: p.body_len,
                started: p.started,
            };
            self.flows.remove(&key);
            Some(done)
        } else {
            None
        }
    }
}

/// Configuration of a generic closed-loop request/response benchmark over
/// the network scenario (Apache/ab, Redis, sysbench-MySQL, memtier all
/// specialize this).
pub struct RrConfig {
    /// Concurrent workers (connections/threads on the load generator).
    pub workers: u16,
    /// Requests each worker performs.
    pub ops_per_worker: u64,
    /// Outstanding requests per worker (1 = strict closed loop;
    /// >1 = pipelining, as redis-benchmark's `-P`).
    pub pipeline: u32,
    /// Request body size for op index `i` (kind, bytes).
    pub request: Box<dyn Fn(u64) -> (u16, usize)>,
    /// Response body size for a request of `kind`.
    pub response: Box<dyn Fn(u16) -> usize>,
    /// Server compute cost per request.
    pub server_cost: kite_sim::Nanos,
    /// Server port.
    pub port: u16,
}

/// Results of a closed-loop run.
#[derive(Debug)]
pub struct RrResult {
    /// Per-request latency (first byte of request to last of response).
    pub latency: kite_sim::OnlineStats,
    /// Completed requests.
    pub ops: u64,
    /// Virtual time from first send to last completion.
    pub duration: kite_sim::Nanos,
    /// Response payload bytes received by the client.
    pub resp_bytes: u64,
    /// Request payload bytes received by the server.
    pub req_bytes: u64,
    /// Guest mean CPU utilization over the run (sysstat style).
    pub guest_cpu: f64,
}

/// Runs the closed-loop benchmark against one driver-domain OS.
pub fn rr_closed_loop(os: kite_system::BackendOs, seed: u64, cfg: RrConfig) -> RrResult {
    use kite_system::{addrs, NetSystem, Reply, Side};
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::rc::Rc;

    let mut sys = NetSystem::new(os, seed);
    let server_asm = Rc::new(RefCell::new(Reassembler::new()));
    let sa = server_asm.clone();
    let response = cfg.response;
    let server_cost = cfg.server_cost;
    sys.set_guest_app(Box::new(move |now, msg| {
        let Some(req) = sa.borrow_mut().push(now, msg) else {
            return Vec::new();
        };
        vec![Reply {
            dst_ip: req.src_ip,
            dst_port: req.src_port,
            src_port: req.dst_port,
            payload: encode_msg(req.kind, response(req.kind)),
            cost: server_cost,
        }]
    }));

    struct Worker {
        outstanding: VecDeque<Nanos>,
        started: u64,
        done: u64,
    }
    let workers: Rc<RefCell<HashMap<u16, Worker>>> = Rc::new(RefCell::new(HashMap::new()));
    let latency = Rc::new(RefCell::new(kite_sim::OnlineStats::new()));
    let resp_bytes = Rc::new(RefCell::new(0u64));
    let client_asm = Rc::new(RefCell::new(Reassembler::new()));
    let ops_per_worker = cfg.ops_per_worker;
    let request = cfg.request;
    let port = cfg.port;

    let mk_req = std::rc::Rc::new(
        move |w: &mut Worker, now: Nanos, src_port: u16| -> Vec<Reply> {
            if w.started >= ops_per_worker {
                return Vec::new();
            }
            let (kind, body) = request(w.started);
            w.started += 1;
            w.outstanding.push_back(now);
            vec![Reply {
                dst_ip: addrs::GUEST,
                dst_port: port,
                src_port,
                payload: encode_msg(kind, body),
                cost: Nanos::from_micros(2),
            }]
        },
    );
    let mk_req2 = mk_req.clone();
    let (wk, la, rb, ca) = (
        workers.clone(),
        latency.clone(),
        resp_bytes.clone(),
        client_asm.clone(),
    );
    sys.set_client_app(Box::new(move |now, msg| {
        let Some(rsp) = ca.borrow_mut().push(now, msg) else {
            return Vec::new();
        };
        let mut workers = wk.borrow_mut();
        let Some(w) = workers.get_mut(&msg.dst_port) else {
            return Vec::new();
        };
        if let Some(t0) = w.outstanding.pop_front() {
            la.borrow_mut().push_nanos(now - t0);
        }
        w.done += 1;
        *rb.borrow_mut() += rsp.body_len as u64;
        mk_req2(w, now, msg.dst_port)
    }));

    // Kick off: each worker launches `pipeline` requests.
    for i in 0..cfg.workers {
        let src_port = 30_000 + i;
        let mut w = Worker {
            outstanding: VecDeque::new(),
            started: 0,
            done: 0,
        };
        let t = Nanos::from_micros(100 + u64::from(i) * 3);
        for _ in 0..cfg.pipeline {
            for r in mk_req(&mut w, t, src_port) {
                sys.send_udp_at(t, Side::Client, r.dst_ip, r.dst_port, r.src_port, r.payload);
            }
        }
        workers.borrow_mut().insert(src_port, w);
    }
    sys.run_to_quiescence();
    let end = sys.now();
    let lat = latency.borrow().clone();
    let resp = *resp_bytes.borrow();
    RrResult {
        ops: lat.count(),
        latency: lat,
        duration: end,
        resp_bytes: resp,
        req_bytes: sys.metrics.guest_rx_bytes,
        guest_cpu: sys.guest_cpu_percent(end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_system::MAX_UDP;

    fn chunk(payload: &[u8]) -> Vec<Vec<u8>> {
        payload.chunks(MAX_UDP).map(|c| c.to_vec()).collect()
    }

    fn msg(payload: Vec<u8>) -> UdpMsg {
        UdpMsg {
            src_ip: "10.0.0.1".parse().unwrap(),
            src_port: 1000,
            dst_port: 80,
            payload,
        }
    }

    #[test]
    fn single_chunk_message() {
        let mut r = Reassembler::new();
        let m = encode_msg(7, 100);
        let out = r.push(Nanos(5), &msg(m)).unwrap();
        assert_eq!(out.kind, 7);
        assert_eq!(out.body_len, 100);
        assert_eq!(out.started, Nanos(5));
    }

    #[test]
    fn multi_chunk_message_completes_once() {
        let mut r = Reassembler::new();
        let m = encode_msg(3, 10_000);
        let chunks = chunk(&m);
        assert!(chunks.len() > 2);
        let mut results = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            if let Some(l) = r.push(Nanos(i as u64), &msg(c.clone())) {
                results.push(l);
            }
        }
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].body_len, 10_000);
        assert_eq!(results[0].started, Nanos(0), "stamped at first chunk");
    }

    #[test]
    fn back_to_back_messages_on_one_flow() {
        let mut r = Reassembler::new();
        for k in 0..5u16 {
            let m = encode_msg(k, 6000);
            let mut seen = 0;
            for c in chunk(&m) {
                if let Some(l) = r.push(Nanos(1), &msg(c)) {
                    assert_eq!(l.kind, k);
                    seen += 1;
                }
            }
            assert_eq!(seen, 1);
        }
    }

    #[test]
    fn garbage_header_dropped() {
        let mut r = Reassembler::new();
        assert!(r.push(Nanos(0), &msg(vec![0; 20])).is_none());
        // And the flow state is clean for the next real message.
        let m = encode_msg(1, 10);
        assert!(r.push(Nanos(1), &msg(m)).is_some());
    }

    #[test]
    fn flows_are_independent() {
        let mut r = Reassembler::new();
        let m = encode_msg(1, 9000);
        let chunks = chunk(&m);
        let mut m1 = msg(chunks[0].clone());
        m1.src_port = 1;
        let mut m2 = msg(chunks[0].clone());
        m2.src_port = 2;
        assert!(r.push(Nanos(0), &m1).is_none());
        assert!(r.push(Nanos(0), &m2).is_none());
        let mut t1 = msg(chunks[1].clone());
        t1.src_port = 1;
        // 4000-8+4000 < 9000: still incomplete.
        assert!(r.push(Nanos(1), &t1).is_none());
        let mut t1b = msg(chunks[2].clone());
        t1b.src_port = 1;
        assert!(r.push(Nanos(2), &t1b).is_some());
    }
}
