//! perfdhcp (§5.5): DHCP daemon-VM latency.
//!
//! The daemon VM runs the unikernelized OpenDHCP server (kite-core's
//! [`kite_core::DhcpServer`]) as the guest behind the network driver
//! domain; perfdhcp on the client measures the Discover→Offer and
//! Request→Ack delays. The paper reports ≈0.78 ms and ≈0.70 ms, nearly
//! identical between the rumprun and Linux daemon VMs.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use kite_core::{DhcpConfig, DhcpServer};
use kite_net::{DhcpMessage, DhcpMessageType, MacAddr};
use kite_sim::{Nanos, OnlineStats};
use kite_system::{addrs, BackendOs, NetSystem, Reply, Side};

/// Which OS the daemon VM itself runs (the driver domain is Kite in both
/// cases; §5.5 compares the *daemon VM* OS).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DaemonOs {
    /// Rumprun unikernel (16-line OpenDHCP port).
    Rumprun,
    /// Linux VM running the same server.
    Linux,
}

impl DaemonOs {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DaemonOs::Rumprun => "rumprun",
            DaemonOs::Linux => "Linux",
        }
    }

    /// Per-message server-side processing cost. The dominant share is
    /// OpenDHCP's lease bookkeeping and lease-file/logging writes, which
    /// both daemon VMs perform identically; Linux adds socket syscalls and
    /// scheduler hops. Calibrated to §5.5's ≈0.78/0.70 ms delays.
    fn per_msg_cost(self) -> Nanos {
        match self {
            DaemonOs::Rumprun => Nanos::from_micros(590),
            DaemonOs::Linux => Nanos::from_micros(640),
        }
    }
}

/// perfdhcp results.
#[derive(Clone, Debug)]
pub struct DhcpReport {
    /// Daemon VM OS.
    pub daemon: DaemonOs,
    /// Mean Discover→Offer delay in ms.
    pub discover_offer_ms: f64,
    /// Mean Request→Ack delay in ms.
    pub request_ack_ms: f64,
    /// Completed DORA sessions.
    pub sessions: u64,
}

/// Runs perfdhcp: `sessions` full DORA exchanges at `rate_per_sec`.
pub fn run(daemon: DaemonOs, sessions: u32, rate_per_sec: u64, seed: u64) -> DhcpReport {
    let mut sys = NetSystem::new(BackendOs::Kite, seed);
    let server = Rc::new(RefCell::new(DhcpServer::new(DhcpConfig {
        range_len: sessions + 10,
        ..DhcpConfig::default()
    })));
    let cost = daemon.per_msg_cost();
    let srv = server.clone();
    // The daemon VM: decode real DHCP wire bytes, serve, encode.
    sys.set_guest_app(Box::new(move |now, msg| {
        let Some(req) = DhcpMessage::decode(&msg.payload) else {
            return Vec::new();
        };
        let Some(rsp) = srv.borrow_mut().handle(&req, now) else {
            return Vec::new();
        };
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: kite_net::dhcp::DHCP_SERVER_PORT,
            payload: rsp.encode(),
            cost,
        }]
    }));

    let d_o = Rc::new(RefCell::new(OnlineStats::new()));
    let r_a = Rc::new(RefCell::new(OnlineStats::new()));
    let sent: Rc<RefCell<HashMap<u32, Nanos>>> = Rc::new(RefCell::new(HashMap::new()));
    let done = Rc::new(RefCell::new(0u64));
    let (do2, ra2, s2, dn2) = (d_o.clone(), r_a.clone(), sent.clone(), done.clone());
    // perfdhcp: on Offer, send Request; on Ack, session complete.
    sys.set_client_app(Box::new(move |now, msg| {
        let Some(rsp) = DhcpMessage::decode(&msg.payload) else {
            return Vec::new();
        };
        let Some(t0) = s2.borrow_mut().remove(&rsp.xid) else {
            return Vec::new();
        };
        match rsp.msg_type {
            DhcpMessageType::Offer => {
                do2.borrow_mut().push_nanos(now - t0);
                let mut req = DhcpMessage::client(DhcpMessageType::Request, rsp.xid, rsp.chaddr);
                req.requested_ip = Some(rsp.yiaddr);
                req.server_id = rsp.server_id;
                s2.borrow_mut().insert(rsp.xid, now);
                vec![Reply {
                    dst_ip: addrs::GUEST,
                    dst_port: kite_net::dhcp::DHCP_SERVER_PORT,
                    src_port: kite_net::dhcp::DHCP_CLIENT_PORT,
                    payload: req.encode(),
                    cost: Nanos::from_micros(30),
                }]
            }
            DhcpMessageType::Ack => {
                ra2.borrow_mut().push_nanos(now - t0);
                *dn2.borrow_mut() += 1;
                Vec::new()
            }
            _ => Vec::new(),
        }
    }));
    let gap = Nanos(1_000_000_000 / rate_per_sec);
    for i in 0..sessions {
        let t = gap * (u64::from(i) + 1);
        let xid = 0x1000 + i;
        let disc = DhcpMessage::client(DhcpMessageType::Discover, xid, MacAddr::local(i));
        sent.borrow_mut().insert(xid, t);
        sys.send_udp_at(
            t,
            Side::Client,
            addrs::GUEST,
            kite_net::dhcp::DHCP_SERVER_PORT,
            kite_net::dhcp::DHCP_CLIENT_PORT,
            disc.encode(),
        );
    }
    sys.run_to_quiescence();
    let sessions_done = *done.borrow();
    let d_o_ms = d_o.borrow().mean() / 1e6;
    let r_a_ms = r_a.borrow().mean() / 1e6;
    DhcpReport {
        daemon,
        discover_offer_ms: d_o_ms,
        request_ack_ms: r_a_ms,
        sessions: sessions_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dora_latencies_match_section_5_5() {
        let r = run(DaemonOs::Rumprun, 200, 400, 1);
        assert_eq!(r.sessions, 200, "all sessions complete");
        // Paper: ~0.78 ms Discover-Offer, ~0.70 ms Request-Ack.
        assert!(
            (0.55..1.1).contains(&r.discover_offer_ms),
            "D→O {:.2} ms",
            r.discover_offer_ms
        );
        assert!(
            (0.5..1.05).contains(&r.request_ack_ms),
            "R→A {:.2} ms",
            r.request_ack_ms
        );
        // Discover→Offer is the slower leg (fresh allocation).
        assert!(r.discover_offer_ms >= r.request_ack_ms * 0.9);
    }

    #[test]
    fn rumprun_and_linux_daemons_similar() {
        let ru = run(DaemonOs::Rumprun, 150, 400, 2);
        let li = run(DaemonOs::Linux, 150, 400, 2);
        let ratio = ru.discover_offer_ms / li.discover_offer_ms;
        assert!((0.75..1.05).contains(&ratio), "{ru:?} vs {li:?}");
    }

    #[test]
    fn addresses_unique_across_sessions() {
        // Indirectly verified by all sessions completing with a pool
        // exactly matching the session count.
        let r = run(DaemonOs::Rumprun, 50, 400, 3);
        assert_eq!(r.sessions, 50);
    }
}
