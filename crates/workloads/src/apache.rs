//! Apache + ApacheBench (Figure 8): HTTP server throughput over the
//! network driver domain.
//!
//! ab sends `requests` GETs with `concurrency` parallel connections; the
//! server returns the randomly generated file. Figure 8a sweeps the file
//! size 512 B – 1 MB; Figure 8b reports throughput, transfer time and
//! request rate for a 512 KB file.

use kite_sim::Nanos;
use kite_system::BackendOs;

use crate::common::{rr_closed_loop, RrConfig};

/// The file-size sweep of Figure 8a.
pub const FIG8A_SIZES: [usize; 6] = [512, 4096, 32768, 131072, 524288, 1048576];

/// One Apache measurement.
#[derive(Clone, Debug)]
pub struct ApacheReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// File size served.
    pub file_bytes: usize,
    /// Server-side throughput in MB/s (ab's "Transfer rate").
    pub throughput_mbps: f64,
    /// Total transfer time in seconds.
    pub time_secs: f64,
    /// Requests per second.
    pub requests_per_sec: f64,
    /// Mean per-request latency in ms.
    pub latency_ms: f64,
}

/// Runs ab against one OS for one file size.
///
/// `requests` is the scaled-down count (the paper uses 100 000; the
/// stationary rates are unchanged — see EXPERIMENTS.md).
pub fn run(
    os: BackendOs,
    file_bytes: usize,
    requests: u64,
    concurrency: u16,
    seed: u64,
) -> ApacheReport {
    let r = rr_closed_loop(
        os,
        seed,
        RrConfig {
            workers: concurrency,
            ops_per_worker: requests / u64::from(concurrency),
            pipeline: 1,
            // "GET /file HTTP/1.1" + headers.
            request: Box::new(|_| (1, 120)),
            response: Box::new(move |_| file_bytes),
            // Apache request handling: parse + sendfile syscalls.
            server_cost: Nanos::from_micros(45),
            port: 80,
        },
    );
    let secs = r.duration.as_secs_f64();
    ApacheReport {
        os,
        file_bytes,
        throughput_mbps: r.resp_bytes as f64 / 1e6 / secs,
        time_secs: secs,
        requests_per_sec: r.ops as f64 / secs,
        latency_ms: r.latency.mean() / 1e6,
    }
}

/// The Figure 8a sweep for one OS.
pub fn figure8a(os: BackendOs, requests: u64, seed: u64) -> Vec<ApacheReport> {
    FIG8A_SIZES
        .iter()
        .map(|&sz| run(os, sz, requests, 40, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rises_with_file_size() {
        let reports = figure8a(BackendOs::Kite, 400, 1);
        assert!(
            reports.last().unwrap().throughput_mbps > 8.0 * reports[0].throughput_mbps,
            "large files amortize per-request costs: {reports:#?}"
        );
    }

    #[test]
    fn parity_with_kite_marginally_faster_at_512k() {
        let kite = run(BackendOs::Kite, 524288, 400, 40, 2);
        let linux = run(BackendOs::Linux, 524288, 400, 40, 2);
        assert!(
            kite.throughput_mbps >= linux.throughput_mbps * 0.98,
            "Fig 8b: Kite marginally faster: {:.1} vs {:.1} MB/s",
            kite.throughput_mbps,
            linux.throughput_mbps
        );
        // And the two stay within ~20% (parity claim).
        assert!(kite.throughput_mbps <= linux.throughput_mbps * 1.25);
    }

    #[test]
    fn all_requests_complete() {
        let r = run(BackendOs::Kite, 4096, 400, 40, 3);
        let total = r.requests_per_sec * r.time_secs;
        assert!((395.0..=401.0).contains(&total), "ops={total}");
    }
}
