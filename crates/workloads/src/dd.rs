//! dd (Figure 11): sequential raw-device throughput.
//!
//! `dd` reads or writes the block device sequentially with a fixed block
//! size, one I/O outstanding (the classic synchronous loop with kernel
//! readahead giving it a little pipelining). The paper moves 10 GB per
//! run; we move a scaled amount at the same stationary rate.

use std::cell::RefCell;
use std::rc::Rc;

use kite_sim::{Nanos, Pcg};
use kite_system::{BackendOs, IoKind, IoOp, StorSystem};

/// One dd measurement.
#[derive(Clone, Debug)]
pub struct DdReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// True for the read run.
    pub read: bool,
    /// Throughput in MB/s.
    pub mbps: f64,
}

/// Block size dd issues (256 KiB, the artifact's effective request size).
pub const DD_BS: usize = 256 * 1024;
/// dd is synchronous: one block outstanding.
const DEPTH: u64 = 1;

/// Runs dd in one direction, transferring `total_bytes`.
pub fn run(os: BackendOs, read: bool, total_bytes: u64, seed: u64) -> DdReport {
    let mut sys = StorSystem::new(os, seed);
    let total_ops = total_bytes / DD_BS as u64;
    let next = Rc::new(RefCell::new(DEPTH));
    let mut rng = Pcg::seeded(seed);
    let mk = move |i: u64, rng: &mut Pcg| -> IoOp {
        let sector = i * (DD_BS / 512) as u64;
        IoOp {
            tag: i,
            kind: if read {
                IoKind::Read { sector, len: DD_BS }
            } else {
                let mut data = vec![0u8; DD_BS];
                rng.fill_bytes(&mut data[..64]); // head entropy; rest zeros
                IoKind::Write { sector, data }
            },
        }
    };
    let n2 = next.clone();
    let rng2 = Rc::new(RefCell::new(Pcg::seeded(seed ^ 1)));
    sys.set_handler(Box::new(move |_, done| {
        assert!(done.ok, "dd I/O failed");
        let mut n = n2.borrow_mut();
        if *n >= total_ops {
            return Vec::new();
        }
        let op = mk(*n, &mut rng2.borrow_mut());
        *n += 1;
        vec![op]
    }));
    for i in 0..DEPTH.min(total_ops) {
        let op = {
            let sector = i * (DD_BS / 512) as u64;
            if read {
                IoOp {
                    tag: i,
                    kind: IoKind::Read { sector, len: DD_BS },
                }
            } else {
                let mut data = vec![0u8; DD_BS];
                rng.fill_bytes(&mut data[..64]);
                IoOp {
                    tag: i,
                    kind: IoKind::Write { sector, data },
                }
            }
        };
        sys.submit_at(Nanos::from_micros(10 + i), op);
    }
    sys.run_to_quiescence();
    let secs = sys.now().as_secs_f64();
    let bytes = if read {
        sys.metrics.read_bytes
    } else {
        sys.metrics.write_bytes
    };
    DdReport {
        os,
        read,
        mbps: bytes as f64 / 1e6 / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_rates_in_figure11_band() {
        // Paper Figure 11: ~1 GB/s class for both OSs, both directions.
        for os in BackendOs::both() {
            for read in [true, false] {
                let r = run(os, read, 64 * 1024 * 1024, 1);
                assert!(
                    (600.0..2200.0).contains(&r.mbps),
                    "{} {}: {:.0} MB/s",
                    os.name(),
                    if read { "read" } else { "write" },
                    r.mbps
                );
            }
        }
    }

    #[test]
    fn kite_and_linux_similar() {
        let k = run(BackendOs::Kite, true, 64 * 1024 * 1024, 2);
        let l = run(BackendOs::Linux, true, 64 * 1024 * 1024, 2);
        let ratio = k.mbps / l.mbps;
        assert!((0.9..1.2).contains(&ratio), "{k:?} vs {l:?}");
    }
}
