//! Redis + redis-benchmark (Figure 9): pipelined SET/GET throughput.
//!
//! The paper runs redis-benchmark in pipeline mode (`-P 1000`) varying the
//! thread count 5–20 and reports SET and GET ops/s on a log scale — both
//! flat across threads and nearly identical between Kite and Linux (the
//! pipelined path is throughput-bound, not latency-bound).

use kite_sim::Nanos;
use kite_system::BackendOs;

use crate::common::{rr_closed_loop, RrConfig};

/// Thread counts of Figure 9.
pub const FIG9_THREADS: [u16; 4] = [5, 10, 15, 20];

/// One Redis measurement.
#[derive(Clone, Debug)]
pub struct RedisReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// Benchmark threads.
    pub threads: u16,
    /// SET operations per second.
    pub set_ops_per_sec: f64,
    /// GET operations per second.
    pub get_ops_per_sec: f64,
}

fn run_op(os: BackendOs, threads: u16, is_set: bool, ops: u64, seed: u64) -> f64 {
    // Pipeline depth scaled from the paper's 1000 (stationary throughput
    // is insensitive to depth once the path is saturated).
    let pipeline = 64;
    // redis-benchmark aggregates pipelined commands into large batches on
    // the wire; value size ~1 KiB keeps the message real but small.
    let (req, rsp) = if is_set { (1024, 8) } else { (24, 1024) };
    let r = rr_closed_loop(
        os,
        seed,
        RrConfig {
            workers: threads,
            ops_per_worker: ops / u64::from(threads),
            pipeline,
            request: Box::new(move |_| (if is_set { 2 } else { 1 }, req)),
            response: Box::new(move |_| rsp),
            // Redis command processing (single-threaded server core).
            server_cost: Nanos::from_micros(4),
            port: 6379,
        },
    );
    r.ops as f64 / r.duration.as_secs_f64()
}

/// Runs SET and GET sweeps for one OS and thread count.
pub fn run(os: BackendOs, threads: u16, ops: u64, seed: u64) -> RedisReport {
    RedisReport {
        os,
        threads,
        set_ops_per_sec: run_op(os, threads, true, ops, seed),
        get_ops_per_sec: run_op(os, threads, false, ops, seed + 1),
    }
}

/// The full Figure 9 series for one OS.
pub fn figure9(os: BackendOs, ops: u64, seed: u64) -> Vec<RedisReport> {
    FIG9_THREADS
        .iter()
        .map(|&t| run(os, t, ops, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_flat_across_threads_and_par() {
        let kite = figure9(BackendOs::Kite, 6000, 1);
        let linux = figure9(BackendOs::Linux, 6000, 1);
        for (k, l) in kite.iter().zip(&linux) {
            // Fig 9: similar performance, log-scale flat.
            let ratio = k.get_ops_per_sec / l.get_ops_per_sec;
            assert!((0.7..1.6).contains(&ratio), "{k:?} vs {l:?}");
            assert!(k.get_ops_per_sec > 2e4, "{k:?}");
            assert!(k.set_ops_per_sec > 2e4, "{k:?}");
        }
        // Flat: max/min within 2.5x across thread counts.
        let gets: Vec<f64> = kite.iter().map(|r| r.get_ops_per_sec).collect();
        let (mn, mx) = gets
            .iter()
            .fold((f64::MAX, 0f64), |(a, b), &x| (a.min(x), b.max(x)));
        assert!(mx / mn < 2.5, "{gets:?}");
    }
}
