//! Network latency microbenchmarks (Figure 7): ping, Netperf, memtier.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use kite_sim::{Histogram, Nanos, OnlineStats};
use kite_system::{addrs, BackendOs, NetSystem, Reply, Side};

/// One latency figure row: mean plus tail per workload, in ms.
#[derive(Clone, Copy, Debug)]
pub struct LatencyReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// ping RTTs (100 echoes at 1 s intervals).
    pub ping: WorkloadLatency,
    /// Netperf-style RR latency (1000 req/s).
    pub netperf: WorkloadLatency,
    /// memtier latency (SET:GET 1:10, 8 KB values).
    pub memtier: WorkloadLatency,
}

/// Mean and tail percentiles of one workload's latencies, in
/// milliseconds. The percentiles come from a log-bucketed
/// [`Histogram`], so they carry its ~1.4% bucket-width quantization.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadLatency {
    /// Sample mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
}

/// Latency samples of one workload run: an [`OnlineStats`] for the mean
/// (what Figure 7 plots) and a [`Histogram`] for the tail, fed from the
/// same round trips.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    stats: OnlineStats,
    hist: Histogram,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> LatencyStats {
        LatencyStats::default()
    }

    /// Records one round-trip sample.
    pub fn push_nanos(&mut self, d: Nanos) {
        self.stats.push_nanos(d);
        self.hist.record(d);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Sample mean in nanoseconds, or 0 if empty.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// The mean and p50/p99/p99.9 in milliseconds (one bucket walk).
    pub fn summary_ms(&self) -> WorkloadLatency {
        let qs = self.hist.quantiles(&[0.5, 0.99, 0.999]);
        let ms = |n: Nanos| n.as_nanos() as f64 / 1e6;
        WorkloadLatency {
            mean_ms: self.mean() / 1e6,
            p50_ms: ms(qs[0]),
            p99_ms: ms(qs[1]),
            p999_ms: ms(qs[2]),
        }
    }
}

/// ping: `count` echoes at 1 s intervals.
pub fn ping(os: BackendOs, count: u16, seed: u64) -> LatencyStats {
    let mut sys = NetSystem::new(os, seed);
    for i in 0..count {
        sys.ping_at(Nanos::from_secs(1) * (u64::from(i) + 1), i);
    }
    sys.run_to_quiescence();
    // The system records each echo RTT in both shapes already; adopt
    // them instead of replaying the samples.
    LatencyStats {
        stats: sys.metrics.ping_rtts.clone(),
        hist: sys.latency_histogram().clone(),
    }
}

/// Netperf UDP_RR: `n` transactions at `rate_per_sec`.
pub fn netperf_rr(os: BackendOs, n: u64, rate_per_sec: u64, seed: u64) -> LatencyStats {
    let mut sys = NetSystem::new(os, seed);
    sys.set_guest_app(Box::new(|_, msg| {
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: msg.dst_port,
            payload: vec![1],
            cost: Nanos::from_micros(3),
        }]
    }));
    let rtts = Rc::new(RefCell::new(LatencyStats::new()));
    let sent: Rc<RefCell<HashMap<u16, Nanos>>> = Rc::new(RefCell::new(HashMap::new()));
    let (r2, s2) = (rtts.clone(), sent.clone());
    sys.set_client_app(Box::new(move |now, msg| {
        if let Some(t0) = s2.borrow_mut().remove(&msg.dst_port) {
            r2.borrow_mut().push_nanos(now - t0);
        }
        Vec::new()
    }));
    let gap = Nanos(1_000_000_000 / rate_per_sec);
    for i in 0..n {
        let t = gap * (i + 1);
        let port = 10_000 + (i % 50_000) as u16;
        sent.borrow_mut().insert(port, t);
        sys.send_udp_at(t, Side::Client, addrs::GUEST, 12865, port, vec![0]);
    }
    sys.run_to_quiescence();
    let out = rtts.borrow().clone();
    out
}

/// memtier against a memcached model: closed loop with `connections`
/// concurrent connections, SET:GET 1:10, `value_bytes` values, `ops` total.
pub fn memtier(
    os: BackendOs,
    connections: u16,
    ops: u64,
    value_bytes: usize,
    seed: u64,
) -> LatencyStats {
    use crate::common::{encode_msg, Reassembler};

    const KIND_GET: u16 = 1;
    const KIND_SET: u16 = 2;

    let mut sys = NetSystem::new(os, seed);
    // Guest memcached: replies once per fully received logical request.
    let vb = value_bytes;
    let server_asm = Rc::new(RefCell::new(Reassembler::new()));
    let sa = server_asm.clone();
    sys.set_guest_app(Box::new(move |now, msg| {
        let Some(req) = sa.borrow_mut().push(now, msg) else {
            return Vec::new();
        };
        let body = if req.kind == KIND_GET { vb } else { 6 };
        vec![Reply {
            dst_ip: req.src_ip,
            dst_port: req.src_port,
            src_port: req.dst_port,
            payload: encode_msg(req.kind, body),
            // Memcached op cost: hash + slab + event-loop and socket
            // syscalls per op (calibrated to Fig 7's memtier ≈0.15 ms).
            cost: Nanos::from_micros(105),
        }]
    }));

    struct Conn {
        t0: Nanos,
        ops_done: u64,
    }
    let rtts = Rc::new(RefCell::new(LatencyStats::new()));
    let conns: Rc<RefCell<HashMap<u16, Conn>>> = Rc::new(RefCell::new(HashMap::new()));
    let per_conn_ops = ops / u64::from(connections);
    let client_asm = Rc::new(RefCell::new(Reassembler::new()));
    let (r2, c2, ca) = (rtts.clone(), conns.clone(), client_asm.clone());
    let vb2 = value_bytes;
    let request = move |c: &mut Conn, now: Nanos, port: u16| -> Vec<Reply> {
        if c.ops_done >= per_conn_ops {
            return Vec::new();
        }
        let is_set = c.ops_done.is_multiple_of(11);
        c.t0 = now;
        let (kind, body) = if is_set {
            (KIND_SET, vb2)
        } else {
            (KIND_GET, 16)
        };
        vec![Reply {
            dst_ip: addrs::GUEST,
            dst_port: 11211,
            src_port: port,
            payload: encode_msg(kind, body),
            cost: Nanos::from_micros(2),
        }]
    };
    let rq = request;
    sys.set_client_app(Box::new(move |now, msg| {
        let Some(_rsp) = ca.borrow_mut().push(now, msg) else {
            return Vec::new();
        };
        let mut conns = c2.borrow_mut();
        let Some(c) = conns.get_mut(&msg.dst_port) else {
            return Vec::new();
        };
        r2.borrow_mut().push_nanos(now - c.t0);
        c.ops_done += 1;
        rq(c, now, msg.dst_port)
    }));
    // Kick off each connection.
    for i in 0..connections {
        let port = 20_000 + i;
        let mut c = Conn {
            t0: Nanos::ZERO,
            ops_done: 0,
        };
        let t = Nanos::from_micros(50 + u64::from(i));
        for r in request(&mut c, t, port) {
            sys.send_udp_at(t, Side::Client, r.dst_ip, r.dst_port, r.src_port, r.payload);
        }
        conns.borrow_mut().insert(port, c);
    }
    sys.run_to_quiescence();
    let out = rtts.borrow().clone();
    out
}

/// Produces the full Figure 7 row for one OS.
pub fn figure7(os: BackendOs, seed: u64) -> LatencyReport {
    LatencyReport {
        os,
        ping: ping(os, 100, seed).summary_ms(),
        netperf: netperf_rr(os, 2000, 1000, seed + 1).summary_ms(),
        memtier: memtier(os, 4, 2000, 8192, seed + 2).summary_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_shape_kite_at_or_below_linux() {
        let kite = figure7(BackendOs::Kite, 10);
        let linux = figure7(BackendOs::Linux, 10);
        assert!(
            kite.ping.mean_ms < linux.ping.mean_ms,
            "{kite:?} vs {linux:?}"
        );
        assert!(
            kite.netperf.mean_ms < linux.netperf.mean_ms,
            "{kite:?} vs {linux:?}"
        );
        assert!(
            kite.memtier.mean_ms <= linux.memtier.mean_ms * 1.05,
            "{kite:?} vs {linux:?}"
        );
        // Magnitudes match the paper's figure.
        assert!(
            (0.2..0.45).contains(&kite.ping.mean_ms),
            "kite ping {}",
            kite.ping.mean_ms
        );
        assert!(
            (0.35..0.65).contains(&linux.ping.mean_ms),
            "linux ping {}",
            linux.ping.mean_ms
        );
        assert!(
            kite.netperf.mean_ms < 0.2,
            "kite netperf {}",
            kite.netperf.mean_ms
        );
        // Percentiles are ordered and bracket the mean for every row.
        for w in [kite.ping, kite.netperf, kite.memtier, linux.ping] {
            assert!(
                w.p50_ms <= w.p99_ms && w.p99_ms <= w.p999_ms,
                "tail must be ordered: {w:?}"
            );
            assert!(w.p50_ms > 0.0 && w.p999_ms < 10.0, "magnitude sane: {w:?}");
        }
    }

    #[test]
    fn netperf_all_transactions_complete() {
        let s = netperf_rr(BackendOs::Kite, 500, 1000, 3);
        assert_eq!(s.count(), 500);
    }

    #[test]
    fn memtier_runs_to_completion() {
        let s = memtier(BackendOs::Kite, 4, 440, 8192, 4);
        assert_eq!(s.count(), 440);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn ping_percentiles_come_from_the_same_samples_as_the_mean() {
        let s = ping(BackendOs::Kite, 20, 5);
        assert_eq!(s.count(), 20);
        let w = s.summary_ms();
        // The median brackets the mean loosely: the RTT distribution is
        // skewed (a few fast first-wake pings pull the mean down) and
        // log buckets quantize upward by one bucket (~1.4%), but a p50
        // drawn from different samples than the mean would land far
        // outside a 2x band.
        assert!(
            w.p50_ms <= w.mean_ms * 1.5 && w.p50_ms >= w.mean_ms * 0.5,
            "{w:?}"
        );
        assert!(w.p50_ms <= w.p99_ms && w.p99_ms <= w.p999_ms, "{w:?}");
    }
}
