//! SysBench file I/O (Figure 12): random read/write over a file set.
//!
//! The paper: 192 files totalling 15 GB, random ops at a 3:2 read:write
//! ratio, sweeping threads 1–100 (Fig 12a, 256 KiB blocks) and block size
//! 16 KiB–128 MiB (Fig 12b, 20 threads). We scale the file set (same
//! geometry: 192 files) and run each point to a fixed op count; the page
//! cache is dropped before each run as the paper does.

use std::cell::RefCell;
use std::rc::Rc;

use kite_fs::Fs;
use kite_sim::{Nanos, Pcg};
use kite_system::{BackendOs, IoKind, IoOp, StorSystem};

/// Thread counts of Figure 12a.
pub const FIG12A_THREADS: [u16; 8] = [1, 5, 10, 20, 40, 60, 80, 100];
/// Block sizes of Figure 12b.
pub const FIG12B_BLOCKS: [usize; 8] = [
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    16 * 1024 * 1024,
    64 * 1024 * 1024,
    128 * 1024 * 1024,
];

/// One sysbench file I/O measurement.
#[derive(Clone, Debug)]
pub struct FileioReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// Worker threads.
    pub threads: u16,
    /// Block size in bytes.
    pub block: usize,
    /// Combined read+write throughput in MB/s.
    pub mbps: f64,
    /// Mean per-op latency in ms.
    pub latency_ms: f64,
}

struct Prepared {
    sys: StorSystem,
    fs: Rc<RefCell<Fs>>,
    files: Vec<kite_fs::Ino>,
    file_bytes: usize,
}

/// Creates the file set (sysbench `prepare` phase): `files` files of
/// `file_bytes`, written through the PV path, then caches dropped.
fn prepare(os: BackendOs, files: usize, file_bytes: usize, seed: u64) -> Prepared {
    let mut sys = StorSystem::new(os, seed);
    // FS over the device: 4 GiB of blocks, 64 MiB page cache (dataset
    // deliberately exceeds cache, as in the paper).
    let fs = Rc::new(RefCell::new(Fs::format(1 << 20, 16_384)));
    let mut inos = Vec::new();
    let mut t = Nanos::from_micros(100);
    for i in 0..files {
        let ino = fs.borrow_mut().create(&format!("test_{i}")).unwrap();
        let ios = fs.borrow_mut().write(ino, 0, file_bytes).unwrap();
        for io in ios {
            sys.submit_at(
                t,
                IoOp {
                    tag: 0,
                    kind: IoKind::Write {
                        sector: io.sector,
                        data: vec![0x5a; io.bytes],
                    },
                },
            );
            t += Nanos::from_micros(30);
        }
        inos.push(ino);
    }
    sys.run_to_quiescence();
    fs.borrow_mut().drop_caches();
    Prepared {
        sys,
        fs,
        files: inos,
        file_bytes,
    }
}

/// Runs the random 3:2 read:write phase.
pub fn run(os: BackendOs, threads: u16, block: usize, total_ops: u64, seed: u64) -> FileioReport {
    // Scaled file set: 192 files; sized so the set comfortably exceeds the
    // cache and fits the device at the largest block size.
    let file_bytes = block.clamp(1024 * 1024, 8 * 1024 * 1024);
    let mut p = prepare(os, 192, file_bytes, seed);
    let t_start = p.sys.now() + Nanos::from_millis(1);

    let ops_done = Rc::new(RefCell::new(0u64));
    let rng = Rc::new(RefCell::new(Pcg::seeded(seed ^ 0xf11e)));
    let fs = p.fs.clone();
    let files = p.files.clone();
    let fb = p.file_bytes;
    let block_c = block.min(fb);
    let mk = move |tag: u64, rng: &mut Pcg, fs: &mut Fs| -> Vec<IoOp> {
        let ino = files[rng.index(files.len())];
        let max_off = (fb - block_c) / 512 * 512;
        let offset = if max_off == 0 {
            0
        } else {
            rng.range_u64(0, max_off as u64 / 512) * 512
        };
        let is_read = rng.range_u64(0, 5) < 3; // 3:2 read:write
        if is_read {
            let plan = fs.read(ino, offset, block_c).unwrap();
            plan.device_ios
                .iter()
                .map(|io| IoOp {
                    tag,
                    kind: IoKind::Read {
                        sector: io.sector,
                        len: io.bytes,
                    },
                })
                .collect()
        } else {
            let ios = fs.write(ino, offset, block_c).unwrap();
            ios.iter()
                .map(|io| IoOp {
                    tag,
                    kind: IoKind::Write {
                        sector: io.sector,
                        data: vec![0x77; io.bytes],
                    },
                })
                .collect()
        }
    };
    // Each worker keeps one logical op (possibly several device I/Os; we
    // chain on the *last* completing tag) outstanding.
    struct Worker {
        outstanding: usize,
    }
    let workers: Rc<RefCell<Vec<Worker>>> = Rc::new(RefCell::new(
        (0..threads).map(|_| Worker { outstanding: 0 }).collect(),
    ));
    let (od, rg, wk, fs2) = (ops_done.clone(), rng.clone(), workers.clone(), fs.clone());
    let mk2 = mk.clone();
    p.sys.set_handler(Box::new(move |_, done| {
        let mut ws = wk.borrow_mut();
        let w = &mut ws[done.tag as usize];
        w.outstanding -= 1;
        if w.outstanding > 0 {
            return Vec::new();
        }
        let mut n = od.borrow_mut();
        if *n >= total_ops {
            return Vec::new();
        }
        *n += 1;
        // Cache hits may yield zero device I/Os; loop until real I/O.
        let mut fs = fs2.borrow_mut();
        let mut rng = rg.borrow_mut();
        loop {
            let ios = mk2(done.tag, &mut rng, &mut fs);
            if ios.is_empty() {
                if *n >= total_ops {
                    return Vec::new();
                }
                *n += 1;
                continue;
            }
            w.outstanding = ios.len();
            return ios;
        }
    }));
    // Kick off each worker.
    for i in 0..threads {
        let ios = loop {
            let ios = mk(u64::from(i), &mut rng.borrow_mut(), &mut fs.borrow_mut());
            if !ios.is_empty() {
                break ios;
            }
        };
        workers.borrow_mut()[i as usize].outstanding = ios.len();
        for op in ios {
            p.sys
                .submit_at(t_start + Nanos::from_micros(u64::from(i)), op);
        }
    }
    p.sys.run_to_quiescence();
    let elapsed = (p.sys.now() - t_start).as_secs_f64();
    let done = *ops_done.borrow();
    FileioReport {
        os,
        threads,
        block,
        // `block_c` is what each op actually transferred (blocks larger
        // than the scaled files are clamped, as sysbench clamps at EOF).
        mbps: done as f64 * block_c as f64 / 1e6 / elapsed,
        latency_ms: p.sys.metrics.latency.mean() / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_threads() {
        let one = run(BackendOs::Kite, 1, 256 * 1024, 60, 1);
        let twenty = run(BackendOs::Kite, 20, 256 * 1024, 400, 1);
        assert!(
            twenty.mbps > 2.0 * one.mbps,
            "Fig 12a shape: {one:?} vs {twenty:?}"
        );
    }

    #[test]
    fn throughput_rises_with_block_size() {
        let small = run(BackendOs::Kite, 20, 16 * 1024, 400, 2);
        let large = run(BackendOs::Kite, 20, 4 * 1024 * 1024, 120, 2);
        assert!(
            large.mbps > 3.0 * small.mbps,
            "Fig 12b shape: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn kite_at_least_linux_at_high_threads() {
        let k = run(BackendOs::Kite, 40, 256 * 1024, 400, 3);
        let l = run(BackendOs::Linux, 40, 256 * 1024, 400, 3);
        assert!(
            k.mbps >= l.mbps * 0.95,
            "Fig 12a: Kite ≥ Linux at high threads: {k:?} vs {l:?}"
        );
    }
}
