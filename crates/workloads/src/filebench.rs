//! Filebench personalities (Figures 14–16): fileserver, webserver and the
//! MongoDB profile, all over the extent FS on a blkfront device.
//!
//! * **fileserver** (Fig 14): 50 threads doing create/write/append/read/
//!   stat/delete over ~100k files of 128 KB mean, I/O size swept
//!   16 KB–8 MB.
//! * **webserver** (Fig 16): 50 threads doing open/read/close over ~200k
//!   files of 64 KB, plus a shared append log.
//! * **MongoDB** (Fig 15): 1 user, 4 MB I/Os over a 20 GB set, read-heavy
//!   with periodic fsync-like flushes.
//!
//! File counts and dataset sizes are scaled (EXPERIMENTS.md); op mixes,
//! thread counts and I/O sizes are the paper's.

use std::cell::RefCell;
use std::rc::Rc;

use kite_fs::Fs;
use kite_sim::{Nanos, Pcg};
use kite_system::{BackendOs, IoKind, IoOp, StorSystem};

/// The I/O size sweep of Figure 14.
pub const FIG14_IOSIZES: [usize; 10] = [
    16 * 1024,
    32 * 1024,
    64 * 1024,
    128 * 1024,
    256 * 1024,
    512 * 1024,
    1024 * 1024,
    2 * 1024 * 1024,
    4 * 1024 * 1024,
    8 * 1024 * 1024,
];

/// One Filebench measurement.
#[derive(Clone, Debug)]
pub struct FilebenchReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// Personality name.
    pub personality: &'static str,
    /// I/O size used.
    pub io_size: usize,
    /// Application-level throughput in MB/s.
    pub mbps: f64,
    /// Mean CPU time per op in µs (the figures' "CPU(us/op)" panel —
    /// here: mean op turnaround on the storage path).
    pub us_per_op: f64,
    /// Mean op latency in ms.
    pub latency_ms: f64,
}

struct Bench {
    sys: StorSystem,
    fs: Rc<RefCell<Fs>>,
    files: Vec<(String, kite_fs::Ino)>,
}

fn prepare(os: BackendOs, nfiles: usize, mean_bytes: usize, seed: u64) -> Bench {
    let mut sys = StorSystem::new(os, seed);
    let fs = Rc::new(RefCell::new(Fs::format(1 << 20, 16_384))); // 4 GiB, 64 MiB cache
    let mut files = Vec::new();
    let mut rng = Pcg::seeded(seed ^ 0xf11eb);
    let mut t = Nanos::from_micros(100);
    for i in 0..nfiles {
        let name = format!("f{i:06}");
        let ino = fs.borrow_mut().create(&name).unwrap();
        // File sizes vary ±50% around the mean (gamma-ish via two uniforms).
        let size = mean_bytes / 2 + rng.index(mean_bytes);
        let ios = fs.borrow_mut().write(ino, 0, size).unwrap();
        for io in ios {
            sys.submit_at(
                t,
                IoOp {
                    tag: 0,
                    kind: IoKind::Write {
                        sector: io.sector,
                        data: vec![0x42; io.bytes],
                    },
                },
            );
            t += Nanos::from_micros(25);
        }
        files.push((name, ino));
    }
    sys.run_to_quiescence();
    fs.borrow_mut().drop_caches();
    Bench { sys, fs, files }
}

/// Per-op work selection for a personality.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Personality {
    Fileserver,
    Webserver,
    Mongo,
}

fn run_personality(
    os: BackendOs,
    personality: Personality,
    threads: u16,
    io_size: usize,
    total_ops: u64,
    seed: u64,
) -> FilebenchReport {
    let (nfiles, mean_size, name) = match personality {
        Personality::Fileserver => (500, 128 * 1024, "fileserver"),
        Personality::Webserver => (1000, 64 * 1024, "webserver"),
        Personality::Mongo => (64, 8 * 1024 * 1024, "mongodb"),
    };
    let mut b = prepare(os, nfiles, mean_size, seed);
    let t_start = b.sys.now() + Nanos::from_millis(1);

    let ops_done = Rc::new(RefCell::new(0u64));
    let app_bytes = Rc::new(RefCell::new(0u64));
    let rng = Rc::new(RefCell::new(Pcg::seeded(seed ^ 0xbe11c)));
    let fs = b.fs.clone();
    let files = Rc::new(RefCell::new(b.files.clone()));
    let next_name = Rc::new(RefCell::new(nfiles));

    // One filebench "operation" = a short sequence of fs calls ending in
    // device I/O. Returns the device ops (may be empty on full cache hit).
    let fls = files.clone();
    let nn = next_name.clone();
    let ab = app_bytes.clone();
    let mk = move |tag: u64, rng: &mut Pcg, fs: &mut Fs| -> Vec<IoOp> {
        let to_ops = |ios: Vec<kite_fs::DevIo>, write: bool, tag: u64| -> Vec<IoOp> {
            ios.into_iter()
                .map(|io| IoOp {
                    tag,
                    kind: if write {
                        IoKind::Write {
                            sector: io.sector,
                            data: vec![0x55; io.bytes],
                        }
                    } else {
                        IoKind::Read {
                            sector: io.sector,
                            len: io.bytes,
                        }
                    },
                })
                .collect()
        };
        let mut files = fls.borrow_mut();
        match personality {
            Personality::Fileserver => {
                // Weighted mix: whole-file read, write(iosize), append 1KB,
                // create+write, stat, delete+create.
                match rng.index(10) {
                    0..=3 => {
                        let (_, ino) = files[rng.index(files.len())];
                        let size = fs.size(ino).unwrap_or(0) as usize;
                        let n = size.min(io_size).max(4096);
                        let plan = fs.read(ino, 0, n).unwrap_or_default();
                        *ab.borrow_mut() += n as u64;
                        to_ops(plan.device_ios, false, tag)
                    }
                    4..=6 => {
                        let (_, ino) = files[rng.index(files.len())];
                        // Whole-file rewrite capped at 2x the file (the
                        // personality's files stay ~mean-sized).
                        let size = fs.size(ino).unwrap_or(4096) as usize;
                        let n = io_size.min(2 * size.max(4096));
                        let ios = fs.write(ino, 0, n).unwrap_or_default();
                        *ab.borrow_mut() += n as u64;
                        to_ops(ios, true, tag)
                    }
                    7 => {
                        let (_, ino) = files[rng.index(files.len())];
                        let ios = fs.append(ino, 1024).unwrap_or_default();
                        *ab.borrow_mut() += 1024;
                        to_ops(ios, true, tag)
                    }
                    8 => {
                        // stat: metadata only.
                        let (name, _) = files[rng.index(files.len())].clone();
                        let _ = fs.stat(&name);
                        Vec::new()
                    }
                    _ => {
                        // delete + create fresh (fragmentation churn).
                        let idx = rng.index(files.len());
                        let (name, _) = files[idx].clone();
                        let _ = fs.delete(&name);
                        let mut nn = nn.borrow_mut();
                        let new_name = format!("f{:06}", *nn);
                        *nn += 1;
                        let ino = fs.create(&new_name).unwrap();
                        let n = io_size.min(mean_size);
                        let ios = fs.write(ino, 0, n).unwrap_or_default();
                        files[idx] = (new_name, ino);
                        *ab.borrow_mut() += n as u64;
                        to_ops(ios, true, tag)
                    }
                }
            }
            Personality::Webserver => {
                // open/read whole file/close + occasional log append.
                if rng.index(10) == 0 {
                    let (_, ino) = files[0];
                    let ios = fs.append(ino, 16 * 1024).unwrap_or_default();
                    *ab.borrow_mut() += 16 * 1024;
                    to_ops(ios, true, tag)
                } else {
                    let (_, ino) = files[rng.index(files.len())];
                    let size = fs.size(ino).unwrap_or(4096) as usize;
                    let plan = fs.read(ino, 0, size).unwrap_or_default();
                    *ab.borrow_mut() += size as u64;
                    to_ops(plan.device_ios, false, tag)
                }
            }
            Personality::Mongo => {
                // Read-mostly 4MB random extents + periodic journal write.
                let (_, ino) = files[rng.index(files.len())];
                if rng.index(5) == 0 {
                    let ios = fs.append(ino, io_size).unwrap_or_default();
                    *ab.borrow_mut() += io_size as u64;
                    to_ops(ios, true, tag)
                } else {
                    let size = fs.size(ino).unwrap_or(0) as usize;
                    let n = io_size.min(size.max(4096));
                    let max_off = size.saturating_sub(n) / 512 * 512;
                    let off = if max_off == 0 {
                        0
                    } else {
                        rng.range_u64(0, max_off as u64 / 512) * 512
                    };
                    let plan = fs.read(ino, off, n).unwrap_or_default();
                    *ab.borrow_mut() += n as u64;
                    to_ops(plan.device_ios, false, tag)
                }
            }
        }
    };

    struct Worker {
        outstanding: usize,
    }
    let workers: Rc<RefCell<Vec<Worker>>> = Rc::new(RefCell::new(
        (0..threads).map(|_| Worker { outstanding: 0 }).collect(),
    ));
    let (od, rg, wk, fs2) = (ops_done.clone(), rng.clone(), workers.clone(), fs.clone());
    let mk2 = mk.clone();
    b.sys.set_handler(Box::new(move |_, done| {
        let mut ws = wk.borrow_mut();
        let w = &mut ws[done.tag as usize];
        w.outstanding = w.outstanding.saturating_sub(1);
        if w.outstanding > 0 {
            return Vec::new();
        }
        let mut n = od.borrow_mut();
        *n += 1;
        if *n >= total_ops {
            return Vec::new();
        }
        let mut fs = fs2.borrow_mut();
        let mut rng = rg.borrow_mut();
        loop {
            let ios = mk2(done.tag, &mut rng, &mut fs);
            if ios.is_empty() {
                *n += 1;
                if *n >= total_ops {
                    return Vec::new();
                }
                continue;
            }
            w.outstanding = ios.len();
            return ios;
        }
    }));
    for i in 0..threads {
        let ios = loop {
            let ios = mk(u64::from(i), &mut rng.borrow_mut(), &mut fs.borrow_mut());
            if !ios.is_empty() {
                break ios;
            }
        };
        workers.borrow_mut()[i as usize].outstanding = ios.len();
        for op in ios {
            b.sys
                .submit_at(t_start + Nanos::from_micros(u64::from(i)), op);
        }
    }
    b.sys.run_to_quiescence();
    let elapsed = (b.sys.now() - t_start).as_secs_f64();
    let done = (*ops_done.borrow()).max(1);
    let bytes = *app_bytes.borrow();
    FilebenchReport {
        os,
        personality: name,
        io_size,
        mbps: bytes as f64 / 1e6 / elapsed,
        us_per_op: elapsed * 1e6 / done as f64,
        latency_ms: b.sys.metrics.latency.mean() / 1e6,
    }
}

/// Figure 14: fileserver at one I/O size (50 threads).
pub fn fileserver(os: BackendOs, io_size: usize, ops: u64, seed: u64) -> FilebenchReport {
    run_personality(os, Personality::Fileserver, 50, io_size, ops, seed)
}

/// Figure 16: webserver (50 threads, 1 MB I/O size).
pub fn webserver(os: BackendOs, ops: u64, seed: u64) -> FilebenchReport {
    run_personality(os, Personality::Webserver, 50, 1024 * 1024, ops, seed)
}

/// Figure 15: the MongoDB profile (1 user, 4 MB I/Os).
pub fn mongodb(os: BackendOs, ops: u64, seed: u64) -> FilebenchReport {
    run_personality(os, Personality::Mongo, 1, 4 * 1024 * 1024, ops, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fileserver_throughput_rises_with_io_size() {
        let small = fileserver(BackendOs::Kite, 16 * 1024, 300, 1);
        let large = fileserver(BackendOs::Kite, 2 * 1024 * 1024, 150, 1);
        assert!(
            large.mbps > 1.5 * small.mbps,
            "Fig 14 shape: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn fileserver_kite_at_least_linux() {
        let k = fileserver(BackendOs::Kite, 256 * 1024, 250, 2);
        let l = fileserver(BackendOs::Linux, 256 * 1024, 250, 2);
        assert!(k.mbps >= l.mbps * 0.95, "Fig 14: {k:?} vs {l:?}");
    }

    #[test]
    fn mongodb_kite_beats_linux() {
        let k = mongodb(BackendOs::Kite, 80, 3);
        let l = mongodb(BackendOs::Linux, 80, 3);
        assert!(
            k.mbps >= l.mbps,
            "Fig 15: Kite outperforms for low concurrency: {k:?} vs {l:?}"
        );
        assert!(k.us_per_op <= l.us_per_op * 1.02, "{k:?} vs {l:?}");
    }

    #[test]
    fn webserver_kite_slightly_better() {
        let k = webserver(BackendOs::Kite, 300, 4);
        let l = webserver(BackendOs::Linux, 300, 4);
        assert!(k.mbps >= l.mbps * 0.95, "Fig 16: {k:?} vs {l:?}");
        assert!(k.latency_ms <= l.latency_ms * 1.1, "{k:?} vs {l:?}");
    }
}
