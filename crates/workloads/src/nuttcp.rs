//! nuttcp (Figure 6): UDP throughput with loss accounting.
//!
//! The paper runs nuttcp v8.2.2 in UDP mode with a 4 MB window and 8 KB
//! buffers, reaching ≈7 Gbps with <1.5 % loss through both driver domains.
//! We reproduce it as an open-loop client → guest UDP flood at a
//! configurable offered rate; loss emerges from NIC queue and PV-path
//! exhaustion, not from a dial.

use kite_sim::Nanos;
use kite_system::{addrs, BackendOs, NetSystem, Side};

/// nuttcp parameters.
#[derive(Clone, Debug)]
pub struct NuttcpParams {
    /// Offered rate in bits per second.
    pub offered_bps: u64,
    /// Datagram (buffer) size in bytes (paper: 8 KB).
    pub buffer_bytes: usize,
    /// Test duration (virtual).
    pub duration: Nanos,
}

impl Default for NuttcpParams {
    fn default() -> NuttcpParams {
        NuttcpParams {
            offered_bps: 7_200_000_000,
            buffer_bytes: 8192,
            duration: Nanos::from_millis(300),
        }
    }
}

/// nuttcp results.
#[derive(Clone, Debug)]
pub struct NuttcpReport {
    /// Driver-domain OS.
    pub os: BackendOs,
    /// Achieved goodput in Gbps.
    pub goodput_gbps: f64,
    /// Datagram loss fraction (0..1).
    pub loss: f64,
    /// Driver-domain vCPU utilization in percent.
    pub driver_cpu: f64,
}

/// Runs the benchmark against one driver-domain OS.
pub fn run(os: BackendOs, params: &NuttcpParams, seed: u64) -> NuttcpReport {
    let mut sys = NetSystem::new(os, seed);
    // Open-loop sender: `buffer_bytes` datagrams at even spacing.
    let interval = Nanos(params.buffer_bytes as u64 * 8 * 1_000_000_000 / params.offered_bps);
    let mut t = Nanos::from_micros(100);
    let mut sent_bytes = 0u64;
    while t < params.duration {
        sys.send_udp_at(
            t,
            Side::Client,
            addrs::GUEST,
            5101,
            5100,
            vec![0x6e; params.buffer_bytes],
        );
        sent_bytes += params.buffer_bytes as u64;
        t += interval;
    }
    sys.run_to_quiescence();
    let end = sys.now();
    let received = sys.metrics.guest_rx_bytes;
    let elapsed = end.as_secs_f64().max(params.duration.as_secs_f64());
    NuttcpReport {
        os,
        goodput_gbps: received as f64 * 8.0 / elapsed / 1e9,
        loss: 1.0 - received as f64 / sent_bytes as f64,
        driver_cpu: sys.driver_cpu_percent(end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_about_seven_gbps_with_low_loss() {
        let params = NuttcpParams {
            duration: Nanos::from_millis(60),
            ..NuttcpParams::default()
        };
        for os in BackendOs::both() {
            let r = run(os, &params, 1);
            assert!(
                r.goodput_gbps > 6.2,
                "{}: goodput {:.2} Gbps too low (Fig 6: ≈7)",
                os.name(),
                r.goodput_gbps
            );
            assert!(
                r.loss < 0.015,
                "{}: loss {:.3} above the paper's 1.5%",
                os.name(),
                r.loss
            );
        }
    }

    #[test]
    fn overload_produces_loss_not_collapse() {
        // Offer 13 Gbps into a 10 Gbps wire: loss must rise, goodput must
        // stay near the achievable rate.
        let params = NuttcpParams {
            offered_bps: 13_000_000_000,
            duration: Nanos::from_millis(40),
            ..NuttcpParams::default()
        };
        let r = run(BackendOs::Kite, &params, 2);
        assert!(r.loss > 0.1, "expected heavy loss, got {:.3}", r.loss);
        assert!(r.goodput_gbps > 5.0, "goodput {:.2}", r.goodput_gbps);
    }
}
