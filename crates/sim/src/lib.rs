//! Discrete-event simulation substrate for the Kite reproduction.
//!
//! Every other crate in the workspace builds on the four primitives here:
//!
//! * [`time::Nanos`] — virtual time;
//! * [`queue::EventQueue`] — a deterministic (stable-FIFO) event queue;
//! * [`rng::Pcg`] — a seeded, replayable random number generator;
//! * [`stats`] and [`resource`] — measurement taps and serializing
//!   resource models (links, CPUs).
//!
//! The design goal is replayability: given the same scenario seed, every
//! figure in EXPERIMENTS.md regenerates bit-for-bit. Nothing in this crate
//! reads wall-clock time or OS entropy.

pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::{EventId, EventQueue};
pub use resource::{Cpu, CpuPool, Link, TxOutcome};
pub use rng::Pcg;
pub use stats::{BatchHistogram, Histogram, OnlineStats, RateMeter};
pub use time::Nanos;
