//! Discrete-event simulation substrate for the Kite reproduction.
//!
//! Every other crate in the workspace builds on the four primitives here:
//!
//! * [`time::Nanos`] — virtual time;
//! * [`sched::Scheduler`] — the scheduling API, with two deterministic
//!   (stable-FIFO) backends: [`queue::EventQueue`] (binary heap, the
//!   oracle) and [`wheel::TimerWheel`] (hierarchical timer wheel, the
//!   default hot path);
//! * [`rng::Pcg`] — a seeded, replayable random number generator;
//! * [`stats`] and [`resource`] — measurement taps and serializing
//!   resource models (links, CPUs).
//!
//! The design goal is replayability: given the same scenario seed, every
//! figure in EXPERIMENTS.md regenerates bit-for-bit. Nothing in this crate
//! reads wall-clock time or OS entropy.

pub mod queue;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod wheel;

pub use queue::EventQueue;
pub use resource::{Cpu, CpuPool, Link, TxOutcome};
pub use rng::Pcg;
pub use sched::{EventId, EventSched, Scheduler, SchedulerKind};
pub use stats::{BatchHistogram, Histogram, OnlineStats, RateMeter};
pub use time::Nanos;
pub use wheel::TimerWheel;
