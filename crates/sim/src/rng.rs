//! Deterministic pseudo-random number generation for the simulation.
//!
//! The whole reproduction must be replayable: the same seed must produce the
//! same figures bit-for-bit. We therefore use a self-contained PCG-XSH-RR
//! 64/32 generator (O'Neill, 2014) rather than a thread-local OS-seeded RNG.
//! The statistical quality is far beyond what the cost models need, and the
//! implementation is small enough to audit.

use crate::time::Nanos;

/// A deterministic PCG-XSH-RR 64/32 random number generator.
#[derive(Clone, Debug)]
pub struct Pcg {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg {
    /// Creates a generator from a seed and a stream id.
    ///
    /// Different stream ids yield statistically independent sequences even
    /// for the same seed, which lets each subsystem own a private stream
    /// while the scenario carries a single user-visible seed.
    pub fn new(seed: u64, stream: u64) -> Pcg {
        let mut rng = Pcg {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator on the default stream.
    pub fn seeded(seed: u64) -> Pcg {
        Pcg::new(seed, 0xda3e39cb94b95bdb)
    }

    /// Derives an independent child generator, e.g. one per component.
    pub fn fork(&mut self, stream: u64) -> Pcg {
        Pcg::new(self.next_u64(), stream ^ 0x9e3779b97f4a7c15)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire's multiply-shift rejection method (debiased).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for inter-arrival jitter in open-loop load generators.
    pub fn exp(&mut self, mean: Nanos) -> Nanos {
        let u = 1.0 - self.f64(); // in (0, 1]
        Nanos::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Normally distributed duration (Box–Muller), truncated at zero.
    pub fn normal(&mut self, mean: Nanos, stddev: Nanos) -> Nanos {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        Nanos::from_secs_f64(mean.as_secs_f64() + z * stddev.as_secs_f64())
    }

    /// A duration jittered multiplicatively by ±`frac` (uniform).
    ///
    /// `jitter(d, 0.05)` returns a value in `[0.95 d, 1.05 d]`, the model we
    /// use for run-to-run noise when reporting relative standard deviations.
    pub fn jitter(&mut self, base: Nanos, frac: f64) -> Nanos {
        let f = 1.0 + (self.f64() * 2.0 - 1.0) * frac;
        base.scale(f)
    }

    /// Fills a byte slice with random data (payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(4);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Pcg::seeded(42);
        let mut b = Pcg::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg::seeded(1);
        let mut b = Pcg::seeded(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg::new(7, 1);
        let mut b = Pcg::new(7, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg::seeded(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_inclusive_exclusive_and_covers() {
        let mut r = Pcg::seeded(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.range_u64(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should occur");
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = Pcg::seeded(11);
        let mean = Nanos::from_micros(100);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.exp(mean).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!((avg - expect).abs() / expect < 0.05, "avg={avg}");
    }

    #[test]
    fn normal_mean_roughly_correct() {
        let mut r = Pcg::seeded(12);
        let mean = Nanos::from_micros(200);
        let sd = Nanos::from_micros(20);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.normal(mean, sd).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!((avg - expect).abs() / expect < 0.05, "avg={avg}");
    }

    #[test]
    fn jitter_bounded() {
        let mut r = Pcg::seeded(13);
        let base = Nanos::from_micros(100);
        for _ in 0..1_000 {
            let j = r.jitter(base, 0.1).as_nanos();
            assert!((90_000..=110_000).contains(&j), "j={j}");
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = Pcg::seeded(14);
        let mut buf = [0u8; 33];
        r.fill_bytes(&mut buf);
        // With 33 random bytes, all-zero is essentially impossible.
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 33];
        let mut r2 = Pcg::seeded(14);
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn chance_probability_approximate() {
        let mut r = Pcg::seeded(15);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }
}
