//! Hierarchical timer wheel: the O(1) scheduler hot path.
//!
//! Six levels of 64 slots each. A slot at level `l` spans `64^l` ticks,
//! one tick being `2^tick_shift` nanoseconds (default 1024 ns), so the
//! wheel covers `64^6` ticks ≈ 19 hours before far-future events are
//! parked in the outermost slot and re-sorted as time approaches.
//! Schedule and cancel are O(1); dispatch amortizes one bucket cascade
//! per level rollover and touches the allocator only to grow capacity,
//! never in steady state.
//!
//! Determinism: events whose tick has been reached sit in a small `ready`
//! heap ordered by `(time, sequence)` — the same total order the binary
//! heap backend uses. Because every event still inside the wheel is in a
//! strictly later tick than everything in `ready`, popping `ready` yields
//! the global `(time, sequence)` minimum: the wheel replays byte-for-byte
//! identical to [`EventQueue`](crate::queue::EventQueue).

use std::collections::BinaryHeap;

use crate::sched::{Entry, EventId, Scheduler, Slab};
use crate::time::Nanos;

/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// Default tick granularity: `2^10` ns = 1.024 µs per tick. Sub-tick
/// ordering is exact regardless — same-tick events sort by `(at, seq)`
/// in the ready heap — the tick only bounds bucket residency.
const DEFAULT_TICK_SHIFT: u32 = 10;

/// A hierarchical-timer-wheel [`Scheduler`] backend.
pub struct TimerWheel<E> {
    /// `LEVELS * SLOTS` buckets, level-major. Bucket vectors are drained
    /// in place and put back so their capacity is reused forever.
    buckets: Vec<Vec<Entry>>,
    /// One occupancy bitmap per level: bit `s` set iff bucket `s` holds
    /// entries. Finding the next expiring slot is a rotate + ctz.
    occupied: [u64; LEVELS],
    /// Entries whose tick has been reached, ordered by `(at, seq)`.
    ready: BinaryHeap<Entry>,
    slab: Slab<E>,
    seq: u64,
    now: Nanos,
    /// The wheel's current tick; `ready` holds only entries at or before
    /// it, the wheel only entries strictly after it.
    cur_tick: u64,
    tick_shift: u32,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel at time zero with the default 1.024 µs tick.
    pub fn new() -> TimerWheel<E> {
        TimerWheel::with_tick_shift(DEFAULT_TICK_SHIFT)
    }

    /// Creates an empty wheel whose tick is `2^tick_shift` nanoseconds.
    ///
    /// Smaller ticks cascade more, larger ticks put more events in one
    /// ready batch; neither affects pop order, which is always exact.
    pub fn with_tick_shift(tick_shift: u32) -> TimerWheel<E> {
        assert!(tick_shift < 34, "tick must stay below 2^34 ns");
        TimerWheel {
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            ready: BinaryHeap::new(),
            slab: Slab::new(),
            seq: 0,
            now: Nanos::ZERO,
            cur_tick: 0,
            tick_shift,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `payload` at absolute time `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: Nanos, payload: E) -> EventId {
        let at = at.max(self.now);
        let id = self.slab.insert(payload);
        let entry = Entry {
            at,
            seq: self.seq,
            id,
        };
        self.seq += 1;
        let tick = at.as_nanos() >> self.tick_shift;
        if tick <= self.cur_tick {
            self.ready.push(entry);
        } else {
            let (level, slot) = self.position(tick);
            self.buckets[level * SLOTS + slot].push(entry);
            self.occupied[level] |= 1 << slot;
        }
        id
    }

    /// Schedules `payload` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: Nanos, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a pending event: a generation compare and a slot free.
    ///
    /// The bucket entry stays behind and is skipped when its slot drains —
    /// its generation no longer matches. Returns `true` iff the event was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.slab.remove(id).is_some()
    }

    /// Pops the earliest pending event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        loop {
            while let Some(e) = self.ready.pop() {
                if let Some(payload) = self.slab.remove(e.id) {
                    self.now = e.at;
                    return Some((e.at, payload));
                }
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Exact timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        loop {
            while let Some(e) = self.ready.peek() {
                if self.slab.contains(e.id) {
                    return Some(e.at);
                }
                self.ready.pop();
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Number of pending events (exact; cancelled events are not counted).
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.slab.len() == 0
    }

    /// Picks the wheel position for an event in tick `tick > cur_tick`.
    ///
    /// The level is the innermost whose slot index for `tick` is within
    /// 63 slots of the current position — that guarantees the chosen slot
    /// starts strictly after `cur_tick`, so nothing is filed into a slot
    /// that already expired.
    fn position(&self, tick: u64) -> (usize, usize) {
        let mask = SLOTS as u64 - 1;
        let mut level = 0usize;
        loop {
            let shift = SLOT_BITS * level as u32;
            let dist = (tick >> shift) - (self.cur_tick >> shift);
            if dist < SLOTS as u64 {
                return (level, ((tick >> shift) & mask) as usize);
            }
            if level == LEVELS - 1 {
                // Beyond the wheel horizon: park in the farthest
                // outermost slot; the cascade re-sorts it as time
                // approaches.
                let units = (self.cur_tick >> shift) + (SLOTS as u64 - 1);
                return (level, (units & mask) as usize);
            }
            level += 1;
        }
    }

    /// The next expiring slot across all levels: `(expiry_tick, level,
    /// slot)` minimal by expiry. Ties prefer the outermost level so
    /// cascades land before their tick's level-0 bucket is delivered.
    fn next_slot(&self) -> Option<(u64, usize, usize)> {
        let mask = SLOTS as u64 - 1;
        let mut best: Option<(u64, usize, usize)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let pos = ((self.cur_tick >> shift) & mask) as u32;
            let dist = u64::from(occ.rotate_right(pos).trailing_zeros());
            let units = (self.cur_tick >> shift) + dist;
            let expiry = units << shift;
            // `<=` keeps the highest level among equal expiries: levels
            // iterate innermost-first.
            if best.is_none_or(|(b, _, _)| expiry <= b) {
                best = Some((expiry, level, (units & mask) as usize));
            }
        }
        best
    }

    /// Advances the wheel until `ready` holds the earliest pending
    /// entries (cascading outer levels as needed). Returns `false` when
    /// nothing is pending anywhere.
    fn refill(&mut self) -> bool {
        loop {
            let Some((expiry, level, slot)) = self.next_slot() else {
                return !self.ready.is_empty();
            };
            if !self.ready.is_empty() && expiry > self.cur_tick {
                // Everything still in the wheel is in a strictly later
                // tick than the entries already staged.
                return true;
            }
            let idx = level * SLOTS + slot;
            let mut bucket = std::mem::take(&mut self.buckets[idx]);
            self.occupied[level] &= !(1u64 << slot);
            self.cur_tick = self.cur_tick.max(expiry);
            if level == 0 {
                for e in bucket.drain(..) {
                    self.ready.push(e);
                }
                self.buckets[idx] = bucket;
                return true;
            }
            // Cascade: redistribute an outer bucket one or more levels
            // down (or straight to `ready` once its tick is reached).
            for e in bucket.drain(..) {
                let tick = e.at.as_nanos() >> self.tick_shift;
                if tick <= self.cur_tick {
                    self.ready.push(e);
                } else {
                    let (l, s) = self.position(tick);
                    self.buckets[l * SLOTS + s].push(e);
                    self.occupied[l] |= 1 << s;
                }
            }
            self.buckets[idx] = bucket;
        }
    }
}

impl<E> Scheduler<E> for TimerWheel<E> {
    fn now(&self) -> Nanos {
        TimerWheel::now(self)
    }
    fn schedule_at(&mut self, at: Nanos, payload: E) -> EventId {
        TimerWheel::schedule_at(self, at, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        TimerWheel::cancel(self, id)
    }
    fn pop(&mut self) -> Option<(Nanos, E)> {
        TimerWheel::pop(self)
    }
    fn peek_time(&mut self) -> Option<Nanos> {
        TimerWheel::peek_time(self)
    }
    fn len(&self) -> usize {
        TimerWheel::len(self)
    }
    fn is_empty(&self) -> bool {
        TimerWheel::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // One event per level distance, scheduled shuffled.
        let times = [
            Nanos(3),                    // ready (tick 0)
            Nanos(50 << 10),             // level 0
            Nanos(5_000 << 10),          // level 1
            Nanos(300_000 << 10),        // level 2
            Nanos(20_000_000 << 10),     // level 3
            Nanos(1_200_000_000 << 10),  // level 4
            Nanos(70_000_000_000 << 10), // level 5
        ];
        for (i, t) in times.iter().enumerate().rev() {
            w.schedule_at(*t, i);
        }
        for (i, t) in times.iter().enumerate() {
            assert_eq!(w.pop(), Some((*t, i)), "event {i}");
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut w = TimerWheel::new();
        for i in 0..100 {
            w.schedule_at(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(w.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn same_tick_different_nanos_stay_ordered() {
        let mut w = TimerWheel::new();
        // All inside one 1024 ns tick, scheduled out of order.
        w.schedule_at(Nanos(900), "c");
        w.schedule_at(Nanos(100), "a");
        w.schedule_at(Nanos(500), "b");
        assert_eq!(w.pop(), Some((Nanos(100), "a")));
        assert_eq!(w.pop(), Some((Nanos(500), "b")));
        assert_eq!(w.pop(), Some((Nanos(900), "c")));
    }

    #[test]
    fn beyond_horizon_events_cascade_back() {
        let mut w = TimerWheel::new();
        // Far beyond the 64^6-tick horizon.
        let far = Nanos((1u64 << 36) * 1024 * 3);
        w.schedule_at(far, "far");
        w.schedule_at(Nanos(10), "near");
        assert_eq!(w.pop(), Some((Nanos(10), "near")));
        assert_eq!(w.pop(), Some((far, "far")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn cancel_is_exact_and_len_stays_live_count() {
        let mut w = TimerWheel::new();
        let a = w.schedule_at(Nanos(10), "a");
        let b = w.schedule_at(Nanos(200_000), "b");
        assert_eq!(w.len(), 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel is false");
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_time(), Some(Nanos(200_000)));
        assert_eq!(w.pop(), Some((Nanos(200_000), "b")));
        assert!(!w.cancel(b), "cancel after pop is false");
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn interleaves_schedules_during_drain() {
        let mut w = TimerWheel::new();
        w.schedule_at(Nanos(1000), 1u32);
        assert_eq!(w.pop(), Some((Nanos(1000), 1)));
        // Past times clamp to now; future ones land correctly even after
        // the wheel has advanced.
        w.schedule_at(Nanos(10), 2);
        w.schedule_in(Nanos(100), 3);
        assert_eq!(w.pop(), Some((Nanos(1000), 2)));
        assert_eq!(w.pop(), Some((Nanos(1100), 3)));
    }
}
