//! The binary-heap scheduler backend — the correctness oracle.
//!
//! [`EventQueue`] is a priority queue keyed on virtual time with a FIFO
//! tiebreak: two events scheduled for the same instant pop in the order they
//! were pushed. That stability is what makes the whole reproduction
//! deterministic — `BinaryHeap` alone would break ties arbitrarily.
//!
//! Payloads live in a generation-tagged slab ([`sched`](crate::sched)), so
//! cancellation is O(1) without a tombstone side-table and `len()` counts
//! live events exactly; the heap holds only `(time, seq, id)` keys and
//! skips entries whose generation no longer matches.

use std::collections::BinaryHeap;

use crate::sched::{Entry, EventId, Scheduler, Slab};
use crate::time::Nanos;

/// A stable, cancellable discrete-event queue (binary-heap backend).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slab: Slab<E>,
    seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Slab::new(),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Times in the past are clamped to `now` — an event can never pop
    /// before the current instant, which keeps handlers monotone.
    pub fn schedule_at(&mut self, at: Nanos, payload: E) -> EventId {
        let at = at.max(self.now);
        let id = self.slab.insert(payload);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            id,
        });
        self.seq += 1;
        id
    }

    /// Schedules `payload` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: Nanos, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` iff the event had not yet fired. Cancellation frees
    /// the payload slot immediately; the heap entry stays behind and is
    /// discarded on pop because its generation no longer matches.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.slab.remove(id).is_some()
    }

    /// Pops the earliest pending event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        while let Some(e) = self.heap.pop() {
            if let Some(payload) = self.slab.remove(e.id) {
                self.now = e.at;
                return Some((e.at, payload));
            }
        }
        None
    }

    /// Exact timestamp of the next pending event, if any.
    ///
    /// Stale cancelled entries at the top of the heap are discarded on
    /// the way, so the returned time is exact, not a lower bound.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        while let Some(e) = self.heap.peek() {
            if self.slab.contains(e.id) {
                return Some(e.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending events (exact; cancelled events are not counted).
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.slab.len() == 0
    }
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn now(&self) -> Nanos {
        EventQueue::now(self)
    }
    fn schedule_at(&mut self, at: Nanos, payload: E) -> EventId {
        EventQueue::schedule_at(self, at, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }
    fn pop(&mut self) -> Option<(Nanos, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<Nanos> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(30), "c");
        q.schedule_at(Nanos(10), "a");
        q.schedule_at(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn now_advances_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), "x");
        q.pop();
        assert_eq!(q.now(), Nanos(100));
        // Scheduling in the past clamps to now.
        q.schedule_at(Nanos(50), "y");
        assert_eq!(q.pop(), Some((Nanos(100), "y")));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), "x");
        q.pop();
        q.schedule_in(Nanos(5), "y");
        assert_eq!(q.pop(), Some((Nanos(105), "y")));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(Nanos(10), "dead");
        q.schedule_at(Nanos(20), "alive");
        assert!(q.cancel(id));
        assert_eq!(q.pop(), Some((Nanos(20), "alive")));
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(Nanos(10), "fired");
        assert_eq!(q.pop(), Some((Nanos(10), "fired")));
        // Regression (the old tombstone design got this wrong): a cancel
        // for an already-popped id is a no-op that must not skew the
        // live-event accounting.
        assert!(!q.cancel(id));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.schedule_at(Nanos(20), "next");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(20), "next")));
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(Nanos(10), "dead");
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn len_is_exact_under_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Nanos(10), 1);
        let _b = q.schedule_at(Nanos(20), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        // The stale heap entry is invisible to the accounting.
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_is_exact_past_cancelled_entries() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(10), 1);
        let early = q.schedule_at(Nanos(5), 2);
        assert_eq!(q.peek_time(), Some(Nanos(5)));
        q.cancel(early);
        // Not a lower bound: the cancelled top is skipped.
        assert_eq!(q.peek_time(), Some(Nanos(10)));
    }
}
