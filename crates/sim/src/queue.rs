//! The discrete-event queue at the heart of the simulation.
//!
//! [`EventQueue`] is a priority queue keyed on virtual time with a FIFO
//! tiebreak: two events scheduled for the same instant pop in the order they
//! were pushed. That stability is what makes the whole reproduction
//! deterministic — `BinaryHeap` alone would break ties arbitrarily.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable, cancellable discrete-event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    cancelled: std::collections::HashSet<EventId>,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: Nanos::ZERO,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Times in the past are clamped to `now` — an event can never pop
    /// before the current instant, which keeps handlers monotone.
    pub fn schedule_at(&mut self, at: Nanos, payload: E) -> EventId {
        let at = at.max(self.now);
        let id = EventId(self.seq);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            id,
            payload,
        });
        self.seq += 1;
        id
    }

    /// Schedules `payload` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: Nanos, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired. Cancellation is lazy:
    /// the entry stays in the heap and is skipped on pop.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // We cannot see inside the heap; optimistically record the tombstone
        // and let pop() discard it. An id that already fired is a no-op.
        if id.0 >= self.seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Pops the earliest pending event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.id) {
                continue;
            }
            self.now = s.at;
            return Some((s.at, s.payload));
        }
        None
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        // Cancelled entries may sit at the top; this is a lower bound, which
        // is all callers need (they re-check on pop).
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending (possibly including cancelled) entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == self.cancelled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(30), "c");
        q.schedule_at(Nanos(10), "a");
        q.schedule_at(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn now_advances_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), "x");
        q.pop();
        assert_eq!(q.now(), Nanos(100));
        // Scheduling in the past clamps to now.
        q.schedule_at(Nanos(50), "y");
        assert_eq!(q.pop(), Some((Nanos(100), "y")));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), "x");
        q.pop();
        q.schedule_in(Nanos(5), "y");
        assert_eq!(q.pop(), Some((Nanos(105), "y")));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(Nanos(10), "dead");
        q.schedule_at(Nanos(20), "alive");
        assert!(q.cancel(id));
        assert_eq!(q.pop(), Some((Nanos(20), "alive")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(Nanos(10), "dead");
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn is_empty_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(Nanos(10), 1);
        assert!(!q.is_empty());
        q.cancel(id);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_lower_bound() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(10), 1);
        q.schedule_at(Nanos(5), 2);
        assert_eq!(q.peek_time(), Some(Nanos(5)));
    }
}
