//! The scheduling API: a [`Scheduler`] trait over pluggable backends.
//!
//! [`EventQueue`] (binary heap) is the oracle:
//! small, obviously correct, comparison-based. [`TimerWheel`]
//! (hierarchical timer wheel) is the default hot path: O(1) schedule and
//! cancel, allocation-free dispatch in steady state. Both pop strictly in
//! `(time, sequence)` order, so for the same schedule calls they produce
//! byte-identical runs — `tests/scheduler.rs` holds them to that.
//!
//! Event identity is a slab slot plus a generation counter. Cancelling
//! frees the slot and bumps the generation, so a stale entry still inside
//! a heap or wheel bucket can never resolve to a recycled id: there is no
//! tombstone side-table, `len()` is exact, and cancellation is O(1).

use crate::queue::EventQueue;
use crate::time::Nanos;
use crate::wheel::TimerWheel;

/// Identifies a scheduled event so it can be cancelled.
///
/// Packs a slab slot and a generation tag. Ids are only meaningful to the
/// scheduler that issued them; a recycled slot gets a new generation, so
/// an id never aliases a later event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

/// A deterministic discrete-event scheduler.
///
/// The contract every backend must honour:
///
/// * events pop in `(time, schedule order)` order — FIFO among equal
///   timestamps, which is what makes whole-system runs replayable;
/// * `schedule_at` clamps times in the past to `now()`, so handlers stay
///   monotone;
/// * `pop` advances `now()` to the popped event's timestamp;
/// * `cancel` returns `true` iff the event was still pending — cancelling
///   a popped or already-cancelled id is `false`, never a double-free;
/// * `len`/`is_empty` count live events exactly, cancelled ones excluded.
pub trait Scheduler<E> {
    /// Current virtual time (the timestamp of the last popped event).
    fn now(&self) -> Nanos;

    /// Schedules `payload` at absolute time `at` (clamped to `now()`).
    fn schedule_at(&mut self, at: Nanos, payload: E) -> EventId;

    /// Schedules `payload` after a relative delay from now.
    fn schedule_in(&mut self, delay: Nanos, payload: E) -> EventId {
        let at = self.now() + delay;
        self.schedule_at(at, payload)
    }

    /// Cancels a pending event. `true` iff it had not yet fired.
    fn cancel(&mut self, id: EventId) -> bool;

    /// Pops the earliest pending event, advancing virtual time.
    fn pop(&mut self) -> Option<(Nanos, E)>;

    /// Exact timestamp of the next pending event, if any.
    ///
    /// Takes `&mut self` so backends can discard stale cancelled entries
    /// (heap) or cascade wheel levels — the returned time is exact, not a
    /// lower bound.
    fn peek_time(&mut self) -> Option<Nanos>;

    /// Number of pending events (exact; cancelled events are not counted).
    fn len(&self) -> usize;

    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Slab of event payloads shared by every backend: slot-recycled storage
/// with generation tags, so the hot path never touches the allocator and
/// `cancel` is a bounds check plus a generation compare.
pub(crate) struct Slab<E> {
    slots: Vec<SlabSlot<E>>,
    free: Vec<u32>,
    live: usize,
}

struct SlabSlot<E> {
    gen: u32,
    payload: Option<E>,
}

impl<E> Slab<E> {
    pub(crate) fn new() -> Slab<E> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    pub(crate) fn insert(&mut self, payload: E) -> EventId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.payload = Some(payload);
            EventId { slot, gen: s.gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab capacity");
            self.slots.push(SlabSlot {
                gen: 0,
                payload: Some(payload),
            });
            EventId { slot, gen: 0 }
        }
    }

    /// Frees `id` if it is still live, bumping the slot generation so any
    /// stale heap/wheel entry for it can never match again.
    pub(crate) fn remove(&mut self, id: EventId) -> Option<E> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.gen != id.gen {
            return None;
        }
        let payload = s.payload.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        Some(payload)
    }

    pub(crate) fn contains(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|s| s.gen == id.gen && s.payload.is_some())
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }
}

/// A pending-event key: everything a backend needs to order and resolve
/// an event without touching its payload.
#[derive(Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) at: Nanos,
    pub(crate) seq: u64,
    pub(crate) id: EventId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first with
        // a FIFO tiebreak on the schedule sequence number.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which [`Scheduler`] backend a simulation uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Comparison-based binary heap — the correctness oracle.
    Heap,
    /// Hierarchical timer wheel — the default hot path.
    #[default]
    Wheel,
}

/// A [`Scheduler`] whose backend is chosen at construction time.
///
/// This is what the systems embed: config picks [`SchedulerKind`], the
/// event loop stays backend-agnostic.
pub enum EventSched<E> {
    /// Binary-heap backend ([`EventQueue`]).
    Heap(EventQueue<E>),
    /// Timer-wheel backend ([`TimerWheel`]).
    Wheel(TimerWheel<E>),
}

impl<E> EventSched<E> {
    /// Creates an empty scheduler of the requested kind at time zero.
    pub fn new(kind: SchedulerKind) -> EventSched<E> {
        match kind {
            SchedulerKind::Heap => EventSched::Heap(EventQueue::new()),
            SchedulerKind::Wheel => EventSched::Wheel(TimerWheel::new()),
        }
    }

    /// The backend this scheduler dispatches to.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            EventSched::Heap(_) => SchedulerKind::Heap,
            EventSched::Wheel(_) => SchedulerKind::Wheel,
        }
    }
}

impl<E> Default for EventSched<E> {
    fn default() -> Self {
        EventSched::new(SchedulerKind::default())
    }
}

impl<E> Scheduler<E> for EventSched<E> {
    fn now(&self) -> Nanos {
        match self {
            EventSched::Heap(q) => q.now(),
            EventSched::Wheel(w) => w.now(),
        }
    }

    fn schedule_at(&mut self, at: Nanos, payload: E) -> EventId {
        let _prof = kite_prof::span(kite_prof::Phase::SchedPush);
        match self {
            EventSched::Heap(q) => q.schedule_at(at, payload),
            EventSched::Wheel(w) => w.schedule_at(at, payload),
        }
    }

    fn cancel(&mut self, id: EventId) -> bool {
        match self {
            EventSched::Heap(q) => q.cancel(id),
            EventSched::Wheel(w) => w.cancel(id),
        }
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        let _prof = kite_prof::span(kite_prof::Phase::SchedPop);
        match self {
            EventSched::Heap(q) => q.pop(),
            EventSched::Wheel(w) => w.pop(),
        }
    }

    fn peek_time(&mut self) -> Option<Nanos> {
        match self {
            EventSched::Heap(q) => q.peek_time(),
            EventSched::Wheel(w) => w.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventSched::Heap(q) => q.len(),
            EventSched::Wheel(w) => w.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_recycles_slots_with_fresh_generations() {
        let mut slab: Slab<&str> = Slab::new();
        let a = slab.insert("a");
        assert_eq!(slab.remove(a), Some("a"));
        let b = slab.insert("b");
        // Same slot, new generation: the old id must not alias.
        assert_eq!(a.slot, b.slot);
        assert_ne!(a.gen, b.gen);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn event_sched_dispatches_to_both_backends() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let mut s: EventSched<u32> = EventSched::new(kind);
            assert_eq!(s.kind(), kind);
            s.schedule_at(Nanos(20), 2);
            s.schedule_at(Nanos(10), 1);
            let dead = s.schedule_at(Nanos(15), 99);
            assert!(s.cancel(dead));
            assert_eq!(s.len(), 2);
            assert_eq!(s.peek_time(), Some(Nanos(10)));
            assert_eq!(s.pop(), Some((Nanos(10), 1)));
            assert_eq!(s.pop(), Some((Nanos(20), 2)));
            assert_eq!(s.pop(), None);
            assert!(s.is_empty());
        }
    }
}
