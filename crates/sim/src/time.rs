//! Virtual time for the discrete-event simulation.
//!
//! All simulation clocks are expressed as [`Nanos`], a monotonically
//! increasing count of virtual nanoseconds since scenario start. The type is
//! a thin newtype over `u64` so arithmetic mistakes between "a point in
//! time" and "a plain integer" are caught at compile time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, or a duration, in nanoseconds.
///
/// The simulation does not distinguish instants from durations at the type
/// level (mirroring how most DES kernels treat time); the arithmetic below
/// saturates on subtraction so transient ordering bugs surface as zero-length
/// intervals rather than panics deep inside an event handler.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant (scenario start).
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable instant; used as "never".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Constructs a duration of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Nanos {
        Nanos(n)
    }

    /// Constructs a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Constructs a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Constructs a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds.
    ///
    /// Negative inputs clamp to zero; the simulation has no notion of time
    /// before scenario start.
    pub fn from_secs_f64(s: f64) -> Nanos {
        if s <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant/duration expressed as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant/duration expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant/duration expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The later of two instants.
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Scales a duration by a dimensionless factor, rounding to nearest.
    ///
    /// Negative factors clamp to zero.
    pub fn scale(self, factor: f64) -> Nanos {
        if factor <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if n >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{n}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos::from_millis(2_000));
        assert_eq!(Nanos::from_millis(3), Nanos::from_micros(3_000));
        assert_eq!(Nanos::from_micros(5), Nanos::from_nanos(5_000));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos::from_millis(1_500));
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(0.0), Nanos::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        let a = Nanos::from_secs(1);
        let b = Nanos::from_secs(2);
        assert_eq!(a - b, Nanos::ZERO);
        assert_eq!(b - a, Nanos::from_secs(1));
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(Nanos::MAX + Nanos::from_secs(1), Nanos::MAX);
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Nanos(10).scale(0.25), Nanos(3)); // 2.5 rounds away from zero
        assert_eq!(Nanos(100).scale(1.5), Nanos(150));
        assert_eq!(Nanos(100).scale(-1.0), Nanos::ZERO);
    }

    #[test]
    fn display_picks_human_unit() {
        assert_eq!(Nanos(500).to_string(), "500ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(7).to_string(), "7.000ms");
        assert_eq!(Nanos::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn min_max_behave() {
        let a = Nanos(1);
        let b = Nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
