//! Online statistics used by every measurement tap in the reproduction.
//!
//! The paper reports means, throughputs, latencies, percentile-ish maxima
//! and relative standard deviations (Table 4). [`OnlineStats`] implements
//! Welford's numerically stable single-pass algorithm; [`Histogram`] is a
//! log-bucketed latency histogram good to ~2% relative error; [`RateMeter`]
//! converts counted events/bytes over virtual time into rates.

use crate::time::Nanos;

/// Single-pass mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a duration sample in nanoseconds.
    pub fn push_nanos(&mut self, d: Nanos) {
        self.push(d.as_nanos() as f64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Relative standard deviation in percent (the paper's "RSD").
    pub fn rsd_percent(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            100.0 * self.stddev() / self.mean().abs()
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.m2 = m2;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram for latency distributions.
///
/// Buckets are spaced geometrically: each bucket covers a `GROWTH`-factor
/// range, giving bounded relative error on quantile queries without storing
/// raw samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

const HIST_BUCKETS: usize = 256;
/// Bucket edge growth factor: 256 buckets cover 1ns..~100s at ~9.3%/bucket.
const GROWTH: f64 = 1.0934;

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
        }
    }

    fn bucket_of(value_ns: u64) -> usize {
        if value_ns <= 1 {
            return 0;
        }
        let b = (value_ns as f64).ln() / GROWTH.ln();
        (b as usize).min(HIST_BUCKETS - 1)
    }

    fn bucket_upper(idx: usize) -> u64 {
        GROWTH.powi(idx as i32 + 1) as u64
    }

    /// Records one duration.
    pub fn record(&mut self, d: Nanos) {
        self.counts[Self::bucket_of(d.as_nanos())] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q` in `[0, 1]`, or `Nanos::ZERO` if empty.
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Nanos(Self::bucket_upper(i));
            }
        }
        Nanos(Self::bucket_upper(HIST_BUCKETS - 1))
    }

    /// Several quantiles in one bucket walk.
    ///
    /// Returns one value per entry of `qs`, each identical to what
    /// [`Histogram::quantile`] would return for that `q`. `qs` need not be
    /// sorted — the walk carries every outstanding target simultaneously,
    /// so the cost is a single pass over the buckets regardless of how
    /// many quantiles are requested (this is what the SLO tracker calls
    /// once per probe for p50/p95/p99).
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Nanos> {
        let mut out = vec![Nanos(Self::bucket_upper(HIST_BUCKETS - 1)); qs.len()];
        if self.total == 0 {
            return vec![Nanos::ZERO; qs.len()];
        }
        let targets: Vec<u64> = qs
            .iter()
            .map(|q| (((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64).max(1))
            .collect();
        let mut remaining = qs.len();
        let mut done = vec![false; qs.len()];
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            for (k, &t) in targets.iter().enumerate() {
                if !done[k] && seen >= t {
                    out[k] = Nanos(Self::bucket_upper(i));
                    done[k] = true;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                break;
            }
        }
        out
    }

    /// Median shortcut.
    pub fn median(&self) -> Nanos {
        self.quantile(0.5)
    }

    /// 99th percentile shortcut.
    pub fn p99(&self) -> Nanos {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Number of [`BatchHistogram`] buckets: 1, 2, 3–4, 5–8, … 65–128, 129+.
pub const BATCH_BUCKETS: usize = 9;

/// Ops-per-batch histogram with fixed power-of-two buckets.
///
/// Sized and `Copy` so per-instance driver stats structs can embed it by
/// value. Bucket `i` counts batches carrying `2^(i-1) < n <= 2^i` ops
/// (bucket 0 is exactly one op, the degenerate unbatched case; the last
/// bucket is open-ended).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchHistogram {
    buckets: [u64; BATCH_BUCKETS],
    batches: u64,
    ops: u64,
}

impl BatchHistogram {
    /// Creates an empty histogram.
    pub fn new() -> BatchHistogram {
        BatchHistogram::default()
    }

    fn bucket_of(ops: usize) -> usize {
        let bits = usize::BITS - ops.max(1).next_power_of_two().leading_zeros() - 1;
        (bits as usize).min(BATCH_BUCKETS - 1)
    }

    /// Records one batch of `ops` descriptors (zero-op batches are not
    /// batches — they issue no hypercall — and are ignored).
    pub fn record(&mut self, ops: usize) {
        if ops == 0 {
            return;
        }
        self.buckets[Self::bucket_of(ops)] += 1;
        self.batches += 1;
        self.ops += ops as u64;
    }

    /// Number of batches recorded.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total descriptors across all batches.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mean descriptors per batch, or 0 if empty.
    pub fn mean_ops(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }

    /// Raw bucket counts, for reporting.
    pub fn bucket_counts(&self) -> [u64; BATCH_BUCKETS] {
        self.buckets
    }

    /// Human-readable label of bucket `i`.
    pub fn bucket_label(i: usize) -> &'static str {
        const LABELS: [&str; BATCH_BUCKETS] = [
            "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", "129+",
        ];
        LABELS[i]
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &BatchHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.batches += other.batches;
        self.ops += other.ops;
    }
}

/// Converts counted events and bytes over a virtual-time window into rates.
#[derive(Clone, Debug, Default)]
pub struct RateMeter {
    events: u64,
    bytes: u64,
    started: Option<Nanos>,
    last: Nanos,
}

impl RateMeter {
    /// Creates an idle meter.
    pub fn new() -> RateMeter {
        RateMeter::default()
    }

    /// Records an event carrying `bytes` payload at virtual time `now`.
    pub fn record(&mut self, now: Nanos, bytes: u64) {
        if self.started.is_none() {
            self.started = Some(now);
        }
        self.events += 1;
        self.bytes += bytes;
        self.last = self.last.max(now);
    }

    /// Number of recorded events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Elapsed window between first and last event (plus caller-supplied end).
    pub fn window(&self, end: Nanos) -> Nanos {
        match self.started {
            None => Nanos::ZERO,
            Some(s) => end.max(self.last).saturating_sub(s),
        }
    }

    /// Events per second over the window ending at `end`.
    pub fn events_per_sec(&self, end: Nanos) -> f64 {
        let w = self.window(end).as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.events as f64 / w
        }
    }

    /// Payload throughput in bits per second over the window ending at `end`.
    pub fn bits_per_sec(&self, end: Nanos) -> f64 {
        let w = self.window(end).as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / w
        }
    }

    /// Payload throughput in megabytes per second over the window.
    pub fn mbytes_per_sec(&self, end: Nanos) -> f64 {
        let w = self.window(end).as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn rsd_is_percent_of_mean() {
        let mut s = OnlineStats::new();
        s.push(99.0);
        s.push(101.0);
        // stddev = sqrt(2), mean = 100 -> RSD = 1.414...%
        assert!((s.rsd_percent() - 100.0 * (2.0f64).sqrt() / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..100 {
            let x = (i * i % 37) as f64;
            all.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_monotone_and_close() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(Nanos(i * 100)); // 100ns .. 1ms uniform
        }
        let q50 = h.median().as_nanos() as f64;
        let q99 = h.p99().as_nanos() as f64;
        assert!(q50 <= q99);
        // True median is 500_050ns; log buckets are ~9% wide.
        assert!((q50 - 500_000.0).abs() / 500_000.0 < 0.15, "q50={q50}");
        assert!((q99 - 990_000.0).abs() / 990_000.0 < 0.15, "q99={q99}");
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Nanos(100));
        b.record(Nanos(200));
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn batch_histogram_buckets_and_mean() {
        let mut h = BatchHistogram::new();
        h.record(1);
        h.record(2);
        h.record(4);
        h.record(8);
        h.record(128);
        h.record(500);
        h.record(0); // ignored: no hypercall happened
        assert_eq!(h.batches(), 6);
        assert_eq!(h.ops(), 1 + 2 + 4 + 8 + 128 + 500);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1, "ops=1");
        assert_eq!(counts[1], 1, "ops=2");
        assert_eq!(counts[2], 1, "ops=3-4");
        assert_eq!(counts[3], 1, "ops=5-8");
        assert_eq!(counts[7], 1, "ops=65-128");
        assert_eq!(counts[8], 1, "ops=129+");
        assert!((h.mean_ops() - 643.0 / 6.0).abs() < 1e-9);
        assert_eq!(BatchHistogram::bucket_label(8), "129+");
    }

    #[test]
    fn batch_histogram_merge_adds() {
        let mut a = BatchHistogram::new();
        let mut b = BatchHistogram::new();
        a.record(3);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.batches(), 2);
        assert_eq!(a.ops(), 10);
    }

    #[test]
    fn rate_meter_computes_rates() {
        let mut m = RateMeter::new();
        m.record(Nanos::ZERO, 1000);
        m.record(Nanos::from_secs(1), 1000);
        // 2000 bytes over 1 second window -> 16 kbit/s.
        assert!((m.bits_per_sec(Nanos::from_secs(1)) - 16_000.0).abs() < 1e-6);
        assert!((m.events_per_sec(Nanos::from_secs(1)) - 2.0).abs() < 1e-9);
        assert!((m.mbytes_per_sec(Nanos::from_secs(1)) - 0.002).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_empty_is_zero() {
        let m = RateMeter::new();
        assert_eq!(m.bits_per_sec(Nanos::from_secs(1)), 0.0);
        assert_eq!(m.events_per_sec(Nanos::from_secs(1)), 0.0);
    }

    fn histogram_of(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(Nanos(s));
        }
        h
    }

    #[test]
    fn histogram_quantiles_are_monotonic_in_q() {
        let h = histogram_of(&[
            1, 3, 10, 50, 120, 950, 1_000, 4_000, 65_000, 70_000, 1_000_000, 9_999_999,
        ]);
        let mut prev = Nanos::ZERO;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(
                q >= prev,
                "quantile({}) = {q:?} < {prev:?}",
                i as f64 / 100.0
            );
            prev = q;
        }
        assert!(h.median() <= h.p99());
    }

    #[test]
    fn quantiles_pins_uniform_distribution() {
        // 10k samples uniform over 100ns..1ms: true p50 = 500_050ns,
        // p95 = 950_050ns, p99 = 990_050ns; log buckets are ~9% wide.
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(Nanos(i * 100));
        }
        let qs = h.quantiles(&[0.5, 0.95, 0.99]);
        let expect = [500_000.0, 950_000.0, 990_000.0];
        for (got, want) in qs.iter().zip(expect) {
            let g = got.as_nanos() as f64;
            assert!((g - want).abs() / want < 0.15, "got {g}, want ~{want}");
        }
    }

    #[test]
    fn quantiles_pins_bimodal_distribution() {
        // 90% fast (1µs), 10% slow (1ms): p50 sits in the fast mode,
        // p95/p99 in the slow mode — the classic tail-latency shape.
        let mut h = Histogram::new();
        for _ in 0..900 {
            h.record(Nanos(1_000));
        }
        for _ in 0..100 {
            h.record(Nanos(1_000_000));
        }
        let qs = h.quantiles(&[0.5, 0.95, 0.99]);
        let p50 = qs[0].as_nanos() as f64;
        let p95 = qs[1].as_nanos() as f64;
        let p99 = qs[2].as_nanos() as f64;
        assert!((p50 - 1_000.0).abs() / 1_000.0 < 0.15, "p50={p50}");
        assert!((p95 - 1_000_000.0).abs() / 1_000_000.0 < 0.15, "p95={p95}");
        assert!((p99 - 1_000_000.0).abs() / 1_000_000.0 < 0.15, "p99={p99}");
    }

    #[test]
    fn quantiles_agrees_with_quantile_everywhere() {
        let h = histogram_of(&[
            1, 3, 10, 50, 120, 950, 1_000, 4_000, 65_000, 70_000, 1_000_000, 9_999_999,
        ]);
        // Deliberately unsorted and with duplicates/extremes.
        let qs = [0.99, 0.0, 0.5, 1.0, 0.5, 0.123, 0.95];
        let multi = h.quantiles(&qs);
        for (q, got) in qs.iter().zip(&multi) {
            assert_eq!(*got, h.quantile(*q), "diverged at q={q}");
        }
        // Empty histograms return all zeros, like quantile().
        let empty = Histogram::new();
        assert_eq!(empty.quantiles(&qs), vec![Nanos::ZERO; qs.len()]);
    }

    #[test]
    fn histogram_merge_is_associative() {
        let a = histogram_of(&[1, 10, 100, 1_000]);
        let b = histogram_of(&[5, 50, 500_000]);
        let c = histogram_of(&[2, 7_777, 123_456_789]);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(left.quantile(q), right.quantile(q), "diverged at q={q}");
        }
    }
}
