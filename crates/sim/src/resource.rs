//! Serializing resource models: links and CPUs.
//!
//! Both models answer the same question — "if a unit of work arrives at
//! virtual time `t`, when does it finish?" — while tracking utilization so
//! experiments can report CPU% (Figure 10b) and link saturation (Figure 6).

use crate::sched::{EventId, Scheduler};
use crate::time::Nanos;

/// A point-to-point link with a fixed bit rate and propagation latency.
///
/// Frames serialize one at a time: a frame arriving while a previous frame
/// is still being clocked out queues behind it. The transmit queue has a
/// finite byte capacity; overflow drops model NIC ring exhaustion (nuttcp's
/// UDP loss in Figure 6).
#[derive(Clone, Debug)]
pub struct Link {
    /// Link bit rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation + PHY latency.
    pub latency: Nanos,
    /// Transmit queue capacity in bytes.
    pub queue_bytes: u64,
    next_free: Nanos,
    tx_bytes: u64,
    tx_frames: u64,
    dropped: u64,
    busy_accum: Nanos,
}

/// Outcome of a link transmit attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// Frame accepted; it departs the sender at `departs` and arrives at the
    /// receiver at `arrives`.
    Sent { departs: Nanos, arrives: Nanos },
    /// Queue full: frame dropped.
    Dropped,
}

impl Link {
    /// Creates a link with the given rate, latency and queue capacity.
    pub fn new(rate_bps: u64, latency: Nanos, queue_bytes: u64) -> Link {
        Link {
            rate_bps,
            latency,
            queue_bytes,
            next_free: Nanos::ZERO,
            tx_bytes: 0,
            tx_frames: 0,
            dropped: 0,
            busy_accum: Nanos::ZERO,
        }
    }

    /// A 10GbE link with typical SFP+ direct-attach latency.
    pub fn ten_gbe() -> Link {
        // 512 KiB of transmit ring is in line with an 82599's per-queue
        // descriptor capacity at MTU-sized frames.
        Link::new(10_000_000_000, Nanos::from_micros(1), 512 * 1024)
    }

    /// Time to clock `bytes` onto the wire at this link's rate.
    pub fn serialization_delay(&self, bytes: u64) -> Nanos {
        Nanos((bytes * 8).saturating_mul(1_000_000_000) / self.rate_bps)
    }

    /// Bytes sitting in the transmit queue at `now` (accepted but not yet
    /// clocked onto the wire). The queue drains continuously at the link
    /// rate.
    pub fn backlog_bytes(&self, now: Nanos) -> u64 {
        let pending_ns = self.next_free.saturating_sub(now).as_nanos() as u128;
        (pending_ns * self.rate_bps as u128 / 8_000_000_000u128) as u64
    }

    /// Attempts to transmit a frame of `bytes` at time `now`.
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> TxOutcome {
        if self.backlog_bytes(now) + bytes > self.queue_bytes {
            self.dropped += 1;
            return TxOutcome::Dropped;
        }
        let start = self.next_free.max(now);
        let ser = self.serialization_delay(bytes);
        let departs = start + ser;
        self.busy_accum += ser;
        self.next_free = departs;
        self.tx_bytes += bytes;
        self.tx_frames += 1;
        TxOutcome::Sent {
            departs,
            arrives: departs + self.latency,
        }
    }

    /// Attempts to transmit a frame of `bytes` at time `now`, scheduling
    /// an arrival event on `sched` if the frame is accepted.
    ///
    /// `arrival` maps the arrival instant to the event payload; it runs
    /// only on success, so a dropped frame costs no payload construction.
    /// The returned outcome lets the caller account drops.
    pub fn transmit_then<E, S: Scheduler<E>>(
        &mut self,
        sched: &mut S,
        now: Nanos,
        bytes: u64,
        arrival: impl FnOnce(Nanos) -> E,
    ) -> TxOutcome {
        let outcome = self.transmit(now, bytes);
        if let TxOutcome::Sent { arrives, .. } = outcome {
            sched.schedule_at(arrives, arrival(arrives));
        }
        outcome
    }

    /// Frames dropped due to queue overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames successfully transmitted.
    pub fn tx_frames(&self) -> u64 {
        self.tx_frames
    }

    /// Bytes successfully transmitted.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Fraction of `window` the link spent serializing, in `[0, 1]`.
    pub fn utilization(&self, window: Nanos) -> f64 {
        if window == Nanos::ZERO {
            0.0
        } else {
            (self.busy_accum.as_nanos() as f64 / window.as_nanos() as f64).min(1.0)
        }
    }
}

/// A serially executing CPU with utilization accounting.
///
/// Work submitted while the CPU is busy queues behind the current work —
/// this is how the single-vCPU driver domains of the paper are modeled, and
/// why a slow interrupt handler would delay subsequent notifications
/// (the design problem Kite's dedicated threads solve).
#[derive(Clone, Debug, Default)]
pub struct Cpu {
    next_free: Nanos,
    busy_accum: Nanos,
    slices: u64,
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Runs `cost` of work starting no earlier than `now`.
    ///
    /// Returns the completion time. The caller is responsible for scheduling
    /// a completion event at that instant.
    pub fn run(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let start = self.next_free.max(now);
        let done = start + cost;
        self.next_free = done;
        self.busy_accum += cost;
        self.slices += 1;
        done
    }

    /// Runs `cost` of work starting no earlier than `now` and schedules a
    /// completion event on `sched` at the finish instant.
    ///
    /// `done` maps the completion time to the event payload. Returns the
    /// completion time and the scheduled event's id (for cancellation).
    pub fn run_then<E, S: Scheduler<E>>(
        &mut self,
        sched: &mut S,
        now: Nanos,
        cost: Nanos,
        done: impl FnOnce(Nanos) -> E,
    ) -> (Nanos, EventId) {
        let finish = self.run(now, cost);
        let id = sched.schedule_at(finish, done(finish));
        (finish, id)
    }

    /// The earliest instant at which new work could begin.
    pub fn free_at(&self) -> Nanos {
        self.next_free
    }

    /// True if the CPU has no queued work at `now`.
    pub fn idle_at(&self, now: Nanos) -> bool {
        self.next_free <= now
    }

    /// Total busy time accumulated.
    pub fn busy(&self) -> Nanos {
        self.busy_accum
    }

    /// Number of work slices executed.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Utilization over a window, in percent (sysstat-style).
    pub fn utilization_percent(&self, window: Nanos) -> f64 {
        if window == Nanos::ZERO {
            0.0
        } else {
            (100.0 * self.busy_accum.as_nanos() as f64 / window.as_nanos() as f64).min(100.0)
        }
    }
}

/// A pool of `M` serially executing vCPUs.
///
/// Models a multi-vCPU driver domain: work pinned to vCPU `k` queues
/// behind earlier work on the same vCPU but runs concurrently (in
/// virtual time) with work on the other vCPUs. A pool of one behaves
/// exactly like a single [`Cpu`] — the legacy single-vCPU model is the
/// `M = 1` special case, not a separate code path.
#[derive(Clone, Debug)]
pub struct CpuPool {
    cpus: Vec<Cpu>,
}

impl CpuPool {
    /// Creates a pool of `n` idle vCPUs (`n` is clamped to at least 1).
    pub fn new(n: usize) -> CpuPool {
        CpuPool {
            cpus: vec![Cpu::new(); n.max(1)],
        }
    }

    /// Number of vCPUs in the pool.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Always false: a pool holds at least one vCPU.
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// Runs `cost` of work on vCPU `idx % len` starting no earlier than
    /// `now`; returns the completion time. Callers pin related work
    /// (e.g. one backend queue) to a fixed `idx` so it stays serialized
    /// while unrelated queues proceed on other vCPUs.
    pub fn run_on(&mut self, idx: usize, now: Nanos, cost: Nanos) -> Nanos {
        let n = self.cpus.len();
        self.cpus[idx % n].run(now, cost)
    }

    /// Runs `cost` on vCPU `idx % len` starting no earlier than `now`
    /// and schedules a completion event on `sched`: the pool analogue of
    /// [`Cpu::run_then`].
    pub fn run_on_then<E, S: Scheduler<E>>(
        &mut self,
        sched: &mut S,
        idx: usize,
        now: Nanos,
        cost: Nanos,
        done: impl FnOnce(Nanos) -> E,
    ) -> (Nanos, EventId) {
        let n = self.cpus.len();
        self.cpus[idx % n].run_then(sched, now, cost, done)
    }

    /// The earliest instant at which new work could begin on vCPU
    /// `idx % len`.
    pub fn free_at(&self, idx: usize) -> Nanos {
        let n = self.cpus.len();
        self.cpus[idx % n].free_at()
    }

    /// True if every vCPU has drained its queued work at `now`.
    pub fn idle_at(&self, now: Nanos) -> bool {
        self.cpus.iter().all(|c| c.idle_at(now))
    }

    /// Total busy time accumulated across all vCPUs.
    pub fn busy(&self) -> Nanos {
        self.cpus.iter().fold(Nanos::ZERO, |acc, c| acc + c.busy())
    }

    /// Total work slices executed across all vCPUs.
    pub fn slices(&self) -> u64 {
        self.cpus.iter().map(Cpu::slices).sum()
    }

    /// Mean per-vCPU utilization over a window, in percent: the pool
    /// analogue of [`Cpu::utilization_percent`], so a saturated 4-vCPU
    /// pool still reads 100%, not 400%.
    pub fn utilization_percent(&self, window: Nanos) -> f64 {
        self.cpus
            .iter()
            .map(|c| c.utilization_percent(window))
            .sum::<f64>()
            / self.cpus.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_matches_rate() {
        let l = Link::new(1_000_000_000, Nanos::ZERO, u64::MAX); // 1 Gbps
                                                                 // 125 bytes = 1000 bits = 1us at 1Gbps.
        assert_eq!(l.serialization_delay(125), Nanos::from_micros(1));
    }

    #[test]
    fn frames_serialize_back_to_back() {
        let mut l = Link::new(1_000_000_000, Nanos::from_micros(5), u64::MAX);
        let a = l.transmit(Nanos::ZERO, 125);
        let b = l.transmit(Nanos::ZERO, 125);
        match (a, b) {
            (
                TxOutcome::Sent {
                    departs: d1,
                    arrives: a1,
                },
                TxOutcome::Sent {
                    departs: d2,
                    arrives: a2,
                },
            ) => {
                assert_eq!(d1, Nanos::from_micros(1));
                assert_eq!(a1, Nanos::from_micros(6));
                assert_eq!(d2, Nanos::from_micros(2));
                assert_eq!(a2, Nanos::from_micros(7));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = Link::new(1_000, Nanos::ZERO, 100); // absurdly slow
        assert!(matches!(
            l.transmit(Nanos::ZERO, 80),
            TxOutcome::Sent { .. }
        ));
        assert_eq!(l.transmit(Nanos::ZERO, 80), TxOutcome::Dropped);
        assert_eq!(l.dropped(), 1);
    }

    #[test]
    fn queue_drains_continuously() {
        let mut l = Link::new(8_000, Nanos::ZERO, 100); // 1000 bytes/s
        assert!(matches!(
            l.transmit(Nanos::ZERO, 80),
            TxOutcome::Sent { .. }
        ));
        assert_eq!(l.backlog_bytes(Nanos::ZERO), 80);
        // Halfway through serialization, half the bytes have left.
        assert_eq!(l.backlog_bytes(Nanos::from_millis(40)), 40);
        // Another frame fits once enough drained.
        assert!(matches!(
            l.transmit(Nanos::from_millis(40), 60),
            TxOutcome::Sent { .. }
        ));
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn link_utilization_bounded() {
        let mut l = Link::new(1_000_000_000, Nanos::ZERO, u64::MAX);
        l.transmit(Nanos::ZERO, 125_000); // 1ms of serialization
        assert!((l.utilization(Nanos::from_millis(2)) - 0.5).abs() < 1e-9);
        assert!(l.utilization(Nanos::from_micros(500)) <= 1.0);
    }

    #[test]
    fn cpu_serializes_work() {
        let mut c = Cpu::new();
        let d1 = c.run(Nanos::ZERO, Nanos::from_micros(10));
        let d2 = c.run(Nanos::ZERO, Nanos::from_micros(5));
        assert_eq!(d1, Nanos::from_micros(10));
        assert_eq!(d2, Nanos::from_micros(15));
        assert!(!c.idle_at(Nanos::from_micros(14)));
        assert!(c.idle_at(Nanos::from_micros(15)));
    }

    #[test]
    fn cpu_idle_gap_not_counted_busy() {
        let mut c = Cpu::new();
        c.run(Nanos::ZERO, Nanos::from_micros(10));
        c.run(Nanos::from_micros(90), Nanos::from_micros(10));
        assert_eq!(c.busy(), Nanos::from_micros(20));
        assert!((c.utilization_percent(Nanos::from_micros(100)) - 20.0).abs() < 1e-9);
        assert_eq!(c.slices(), 2);
    }

    #[test]
    fn pool_of_one_matches_single_cpu() {
        let mut pool = CpuPool::new(1);
        let mut cpu = Cpu::new();
        for i in 0..8u64 {
            let now = Nanos::from_micros(3 * i);
            let cost = Nanos::from_micros(5);
            // Any pin index lands on the only vCPU.
            assert_eq!(pool.run_on(i as usize, now, cost), cpu.run(now, cost));
        }
        assert_eq!(pool.busy(), cpu.busy());
        assert_eq!(pool.slices(), cpu.slices());
    }

    #[test]
    fn pool_runs_distinct_pins_concurrently() {
        let mut pool = CpuPool::new(4);
        let cost = Nanos::from_micros(10);
        // Four queues' worth of work submitted at t=0 all finish at 10us.
        for q in 0..4 {
            assert_eq!(pool.run_on(q, Nanos::ZERO, cost), Nanos::from_micros(10));
        }
        // Same-pin work still serializes.
        assert_eq!(pool.run_on(0, Nanos::ZERO, cost), Nanos::from_micros(20));
        assert!(!pool.idle_at(Nanos::from_micros(19)));
        assert!(pool.idle_at(Nanos::from_micros(20)));
        assert_eq!(pool.busy(), Nanos::from_micros(50));
    }

    #[test]
    fn run_then_and_transmit_then_schedule_completions() {
        use crate::sched::{EventSched, Scheduler, SchedulerKind};
        let mut sched: EventSched<&str> = EventSched::new(SchedulerKind::Wheel);
        let mut pool = CpuPool::new(2);
        let (done, _id) =
            pool.run_on_then(&mut sched, 0, Nanos::ZERO, Nanos::from_micros(10), |_| {
                "cpu-done"
            });
        assert_eq!(done, Nanos::from_micros(10));
        let mut l = Link::new(1_000_000_000, Nanos::from_micros(5), u64::MAX);
        let tx = l.transmit_then(&mut sched, Nanos::ZERO, 125, |_| "frame-arrives");
        assert!(matches!(tx, TxOutcome::Sent { .. }));
        assert_eq!(sched.pop(), Some((Nanos::from_micros(6), "frame-arrives")));
        assert_eq!(sched.pop(), Some((Nanos::from_micros(10), "cpu-done")));
        assert_eq!(sched.pop(), None);
    }

    #[test]
    fn pool_utilization_is_mean_per_vcpu() {
        let mut pool = CpuPool::new(2);
        pool.run_on(0, Nanos::ZERO, Nanos::from_micros(10));
        // vCPU 0 is 100% busy over 10us, vCPU 1 idle: mean is 50%.
        assert!((pool.utilization_percent(Nanos::from_micros(10)) - 50.0).abs() < 1e-9);
    }
}
