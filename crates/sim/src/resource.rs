//! Serializing resource models: links and CPUs.
//!
//! Both models answer the same question — "if a unit of work arrives at
//! virtual time `t`, when does it finish?" — while tracking utilization so
//! experiments can report CPU% (Figure 10b) and link saturation (Figure 6).

use crate::time::Nanos;

/// A point-to-point link with a fixed bit rate and propagation latency.
///
/// Frames serialize one at a time: a frame arriving while a previous frame
/// is still being clocked out queues behind it. The transmit queue has a
/// finite byte capacity; overflow drops model NIC ring exhaustion (nuttcp's
/// UDP loss in Figure 6).
#[derive(Clone, Debug)]
pub struct Link {
    /// Link bit rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation + PHY latency.
    pub latency: Nanos,
    /// Transmit queue capacity in bytes.
    pub queue_bytes: u64,
    next_free: Nanos,
    tx_bytes: u64,
    tx_frames: u64,
    dropped: u64,
    busy_accum: Nanos,
}

/// Outcome of a link transmit attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// Frame accepted; it departs the sender at `departs` and arrives at the
    /// receiver at `arrives`.
    Sent { departs: Nanos, arrives: Nanos },
    /// Queue full: frame dropped.
    Dropped,
}

impl Link {
    /// Creates a link with the given rate, latency and queue capacity.
    pub fn new(rate_bps: u64, latency: Nanos, queue_bytes: u64) -> Link {
        Link {
            rate_bps,
            latency,
            queue_bytes,
            next_free: Nanos::ZERO,
            tx_bytes: 0,
            tx_frames: 0,
            dropped: 0,
            busy_accum: Nanos::ZERO,
        }
    }

    /// A 10GbE link with typical SFP+ direct-attach latency.
    pub fn ten_gbe() -> Link {
        // 512 KiB of transmit ring is in line with an 82599's per-queue
        // descriptor capacity at MTU-sized frames.
        Link::new(10_000_000_000, Nanos::from_micros(1), 512 * 1024)
    }

    /// Time to clock `bytes` onto the wire at this link's rate.
    pub fn serialization_delay(&self, bytes: u64) -> Nanos {
        Nanos((bytes * 8).saturating_mul(1_000_000_000) / self.rate_bps)
    }

    /// Bytes sitting in the transmit queue at `now` (accepted but not yet
    /// clocked onto the wire). The queue drains continuously at the link
    /// rate.
    pub fn backlog_bytes(&self, now: Nanos) -> u64 {
        let pending_ns = self.next_free.saturating_sub(now).as_nanos() as u128;
        (pending_ns * self.rate_bps as u128 / 8_000_000_000u128) as u64
    }

    /// Attempts to transmit a frame of `bytes` at time `now`.
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> TxOutcome {
        if self.backlog_bytes(now) + bytes > self.queue_bytes {
            self.dropped += 1;
            return TxOutcome::Dropped;
        }
        let start = self.next_free.max(now);
        let ser = self.serialization_delay(bytes);
        let departs = start + ser;
        self.busy_accum += ser;
        self.next_free = departs;
        self.tx_bytes += bytes;
        self.tx_frames += 1;
        TxOutcome::Sent {
            departs,
            arrives: departs + self.latency,
        }
    }

    /// Frames dropped due to queue overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames successfully transmitted.
    pub fn tx_frames(&self) -> u64 {
        self.tx_frames
    }

    /// Bytes successfully transmitted.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Fraction of `window` the link spent serializing, in `[0, 1]`.
    pub fn utilization(&self, window: Nanos) -> f64 {
        if window == Nanos::ZERO {
            0.0
        } else {
            (self.busy_accum.as_nanos() as f64 / window.as_nanos() as f64).min(1.0)
        }
    }
}

/// A serially executing CPU with utilization accounting.
///
/// Work submitted while the CPU is busy queues behind the current work —
/// this is how the single-vCPU driver domains of the paper are modeled, and
/// why a slow interrupt handler would delay subsequent notifications
/// (the design problem Kite's dedicated threads solve).
#[derive(Clone, Debug, Default)]
pub struct Cpu {
    next_free: Nanos,
    busy_accum: Nanos,
    slices: u64,
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Runs `cost` of work starting no earlier than `now`.
    ///
    /// Returns the completion time. The caller is responsible for scheduling
    /// a completion event at that instant.
    pub fn run(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let start = self.next_free.max(now);
        let done = start + cost;
        self.next_free = done;
        self.busy_accum += cost;
        self.slices += 1;
        done
    }

    /// The earliest instant at which new work could begin.
    pub fn free_at(&self) -> Nanos {
        self.next_free
    }

    /// True if the CPU has no queued work at `now`.
    pub fn idle_at(&self, now: Nanos) -> bool {
        self.next_free <= now
    }

    /// Total busy time accumulated.
    pub fn busy(&self) -> Nanos {
        self.busy_accum
    }

    /// Number of work slices executed.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Utilization over a window, in percent (sysstat-style).
    pub fn utilization_percent(&self, window: Nanos) -> f64 {
        if window == Nanos::ZERO {
            0.0
        } else {
            (100.0 * self.busy_accum.as_nanos() as f64 / window.as_nanos() as f64).min(100.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_matches_rate() {
        let l = Link::new(1_000_000_000, Nanos::ZERO, u64::MAX); // 1 Gbps
                                                                 // 125 bytes = 1000 bits = 1us at 1Gbps.
        assert_eq!(l.serialization_delay(125), Nanos::from_micros(1));
    }

    #[test]
    fn frames_serialize_back_to_back() {
        let mut l = Link::new(1_000_000_000, Nanos::from_micros(5), u64::MAX);
        let a = l.transmit(Nanos::ZERO, 125);
        let b = l.transmit(Nanos::ZERO, 125);
        match (a, b) {
            (
                TxOutcome::Sent {
                    departs: d1,
                    arrives: a1,
                },
                TxOutcome::Sent {
                    departs: d2,
                    arrives: a2,
                },
            ) => {
                assert_eq!(d1, Nanos::from_micros(1));
                assert_eq!(a1, Nanos::from_micros(6));
                assert_eq!(d2, Nanos::from_micros(2));
                assert_eq!(a2, Nanos::from_micros(7));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = Link::new(1_000, Nanos::ZERO, 100); // absurdly slow
        assert!(matches!(
            l.transmit(Nanos::ZERO, 80),
            TxOutcome::Sent { .. }
        ));
        assert_eq!(l.transmit(Nanos::ZERO, 80), TxOutcome::Dropped);
        assert_eq!(l.dropped(), 1);
    }

    #[test]
    fn queue_drains_continuously() {
        let mut l = Link::new(8_000, Nanos::ZERO, 100); // 1000 bytes/s
        assert!(matches!(
            l.transmit(Nanos::ZERO, 80),
            TxOutcome::Sent { .. }
        ));
        assert_eq!(l.backlog_bytes(Nanos::ZERO), 80);
        // Halfway through serialization, half the bytes have left.
        assert_eq!(l.backlog_bytes(Nanos::from_millis(40)), 40);
        // Another frame fits once enough drained.
        assert!(matches!(
            l.transmit(Nanos::from_millis(40), 60),
            TxOutcome::Sent { .. }
        ));
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn link_utilization_bounded() {
        let mut l = Link::new(1_000_000_000, Nanos::ZERO, u64::MAX);
        l.transmit(Nanos::ZERO, 125_000); // 1ms of serialization
        assert!((l.utilization(Nanos::from_millis(2)) - 0.5).abs() < 1e-9);
        assert!(l.utilization(Nanos::from_micros(500)) <= 1.0);
    }

    #[test]
    fn cpu_serializes_work() {
        let mut c = Cpu::new();
        let d1 = c.run(Nanos::ZERO, Nanos::from_micros(10));
        let d2 = c.run(Nanos::ZERO, Nanos::from_micros(5));
        assert_eq!(d1, Nanos::from_micros(10));
        assert_eq!(d2, Nanos::from_micros(15));
        assert!(!c.idle_at(Nanos::from_micros(14)));
        assert!(c.idle_at(Nanos::from_micros(15)));
    }

    #[test]
    fn cpu_idle_gap_not_counted_busy() {
        let mut c = Cpu::new();
        c.run(Nanos::ZERO, Nanos::from_micros(10));
        c.run(Nanos::from_micros(90), Nanos::from_micros(10));
        assert_eq!(c.busy(), Nanos::from_micros(20));
        assert!((c.utilization_percent(Nanos::from_micros(100)) - 20.0).abs() < 1e-9);
        assert_eq!(c.slices(), 2);
    }
}
