//! Static registry of profiled phases.
//!
//! Every instrumented code path in the workspace names itself with one
//! of these variants. Keeping the registry closed (an enum, not interned
//! strings) is what lets the profiler state be fixed-size and the
//! disabled path allocation-free: per-phase histograms are a flat
//! `[[u64; 64]; Phase::COUNT]` array and a span entry is an array index,
//! never a hash-map lookup.

/// A profiled phase of the simulator or one of the backends.
///
/// The `Dispatch*` variants partition event dispatch by event kind so a
/// flamegraph shows *which* events dominate, not just "dispatch". The
/// remaining variants cover the named hot paths from ROADMAP item 5:
/// scheduler push/pop, netback drains, blkback submit/reap, grant-copy
/// batches, and trace emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// `EventSched::schedule_at` — heap push / wheel insert.
    SchedPush,
    /// `EventSched::pop` — heap pop / wheel scan-and-extract.
    SchedPop,
    /// Dispatch of guest application send events.
    DispatchAppSend,
    /// Dispatch of wire-propagation events (either direction).
    DispatchWire,
    /// Dispatch of NIC interrupt events.
    DispatchNicIrq,
    /// Dispatch of backend-facing IRQ / ring-kick events.
    DispatchIrq,
    /// Dispatch of block request submission events.
    DispatchBlkSubmit,
    /// Dispatch of NVMe completion-queue events.
    DispatchBlkComplete,
    /// Dispatch of fault-injection events (crash, hang, wedge).
    DispatchFault,
    /// Dispatch of recovery events (driver restarted).
    DispatchRecovery,
    /// Dispatch of health machinery ticks (heartbeat, probe).
    DispatchHealthTick,
    /// Dispatch of time-series sampler ticks.
    DispatchSample,
    /// Netback TX drain (`pusher_run`): guest ring -> wire.
    NetbackTxDrain,
    /// Netback RX drain (`soft_start_run`): wire -> guest ring.
    NetbackRxDrain,
    /// Blkback request-thread submission pass.
    BlkbackSubmit,
    /// Blkback NVMe completion reaping.
    BlkbackReap,
    /// Batched grant-copy hypercall.
    GrantCopy,
    /// Tracer event emission (`Tracer::emit_with`).
    TraceEmit,
}

impl Phase {
    /// Number of phases in the registry (array dimension for per-phase
    /// state).
    pub const COUNT: usize = 18;

    /// All phases, in declaration order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::SchedPush,
        Phase::SchedPop,
        Phase::DispatchAppSend,
        Phase::DispatchWire,
        Phase::DispatchNicIrq,
        Phase::DispatchIrq,
        Phase::DispatchBlkSubmit,
        Phase::DispatchBlkComplete,
        Phase::DispatchFault,
        Phase::DispatchRecovery,
        Phase::DispatchHealthTick,
        Phase::DispatchSample,
        Phase::NetbackTxDrain,
        Phase::NetbackRxDrain,
        Phase::BlkbackSubmit,
        Phase::BlkbackReap,
        Phase::GrantCopy,
        Phase::TraceEmit,
    ];

    /// Stable snake_case name used in tables, collapsed stacks, and
    /// bench rows.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::SchedPush => "sched_push",
            Phase::SchedPop => "sched_pop",
            Phase::DispatchAppSend => "dispatch_app_send",
            Phase::DispatchWire => "dispatch_wire",
            Phase::DispatchNicIrq => "dispatch_nic_irq",
            Phase::DispatchIrq => "dispatch_irq",
            Phase::DispatchBlkSubmit => "dispatch_blk_submit",
            Phase::DispatchBlkComplete => "dispatch_blk_complete",
            Phase::DispatchFault => "dispatch_fault",
            Phase::DispatchRecovery => "dispatch_recovery",
            Phase::DispatchHealthTick => "dispatch_health_tick",
            Phase::DispatchSample => "dispatch_sample",
            Phase::NetbackTxDrain => "netback_tx_drain",
            Phase::NetbackRxDrain => "netback_rx_drain",
            Phase::BlkbackSubmit => "blkback_submit",
            Phase::BlkbackReap => "blkback_reap",
            Phase::GrantCopy => "grant_copy",
            Phase::TraceEmit => "trace_emit",
        }
    }

    /// Index into per-phase arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether this phase is a *leaf*: instrumented code never opens
    /// another span while one of these is open. Leaf spans take the
    /// profiler's flat-counter fast path — skipping the stack push for
    /// them cannot orphan a child span, because there are none.
    pub const fn is_leaf(self) -> bool {
        matches!(
            self,
            Phase::SchedPush | Phase::SchedPop | Phase::GrantCopy | Phase::TraceEmit
        )
    }

    /// Inverse of [`Phase::index`]. Panics on out-of-range input.
    pub fn from_index(i: usize) -> Phase {
        Phase::ALL[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::from_index(i), *p);
        }
    }

    #[test]
    fn leaf_phases_never_dispatch() {
        // Dispatch and drain phases open child spans; they must never
        // take the leaf fast path.
        for p in Phase::ALL {
            if p.name().starts_with("dispatch_") || p.name().ends_with("_drain") {
                assert!(!p.is_leaf(), "{} cannot be a leaf", p.name());
            }
        }
        assert!(Phase::SchedPush.is_leaf());
        assert!(Phase::GrantCopy.is_leaf());
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for p in Phase::ALL {
            let n = p.name();
            assert!(seen.insert(n), "duplicate phase name {n}");
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()),
                "phase name {n} is not snake_case"
            );
        }
    }
}
