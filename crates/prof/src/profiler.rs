//! Thread-local scoped-span profiler.
//!
//! The profiler is a call tree of [`Phase`] nodes plus per-phase log2
//! wall-time histograms, all stored in thread-local state with a fixed
//! shape. Spans are RAII guards: [`span`] records entry, dropping the
//! guard records the span against the innermost open node.
//!
//! # Cost contract
//!
//! The disabled path is **branch-only and zero-alloc**: [`span`] reads
//! one thread-local flag and returns an inert guard without touching
//! the clock, the tree, or the allocator. This mirrors the tracer's
//! disabled-path contract and is enforced by the counting-allocator
//! gate in `crates/system/tests/sched_alloc.rs`.
//!
//! The enabled path keeps overhead low by **sampling durations**: every
//! span updates the call tree and its node's call count (a few ns), but
//! the clock — by far the dominant cost, ~40 ns per read on a VM — is
//! only consulted for one call in [`SAMPLE_EVERY`] per node. Reported
//! totals are scaled estimates (`sampled_total × calls / sampled`);
//! call counts are exact. The first call at every node is always timed,
//! so rare phases are never invisible.
//!
//! Wall-clock measurements are inherently nondeterministic; anything
//! derived from them must stay quarantined to bench rows marked `wall`
//! (see DESIGN.md §14) and never feed back into virtual-time state.

use crate::phase::Phase;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Maximum open-span nesting depth. Deeper spans are counted in
/// `truncated` and recorded nowhere else.
pub const STACK_MAX: usize = 64;

/// Number of log2 histogram buckets per phase. Bucket `b` holds spans
/// whose duration in nanoseconds is in `[2^(b-1), 2^b)` (bucket 0 holds
/// zero-length spans).
pub const HIST_BUCKETS: usize = 64;

/// Duration-sampling stride for non-leaf phases: per call-tree node,
/// one call in this many is timed with real clock reads (the first call
/// always is). Counts are exact for every call; durations are scaled
/// estimates.
pub const SAMPLE_EVERY: u64 = 64;

/// Sampling stride for [leaf](Phase::is_leaf) phases: one call in this
/// many does the full tree-enter + clock work; the rest only bump an
/// exact flat counter. Prime, so the sampled instances cannot alias
/// with the power-of-two batch sizes (ring slots, queue counts) that
/// pervade the simulated workloads.
pub const LEAF_EVERY: u64 = 61;

/// Sentinel phase byte for the synthetic root node.
const ROOT_PHASE: u8 = u8::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) phase: u8,
    /// Exact number of completed spans at this node.
    pub(crate) calls: u64,
    /// How many of those were clock-timed.
    pub(crate) sampled: u64,
    /// Wall time accumulated over the `sampled` calls only.
    pub(crate) total_ns: u64,
    /// Spans opened and not yet closed (calls counts on exit).
    open: u64,
}

/// Accumulated profiler state for one thread: a node arena forming the
/// call tree, the open-span stack, and per-phase histograms.
pub(crate) struct ProfilerState {
    pub(crate) nodes: Vec<Node>,
    pub(crate) children: Vec<Vec<u32>>,
    stack: [u32; STACK_MAX],
    depth: usize,
    pub(crate) hist: [[u64; HIST_BUCKETS]; Phase::COUNT],
    /// Exact call counts for leaf phases (their tree nodes only hold
    /// the sampled subset).
    pub(crate) flat: [u64; Phase::COUNT],
    pub(crate) truncated: u64,
}

/// What [`ProfilerState::enter`] decided for a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Enter {
    /// Stack full; the span is dropped entirely.
    Refused,
    /// Span pushed; this call is not clock-timed.
    Untimed,
    /// Span pushed; time it and report via `exit_timed`.
    Timed,
}

impl ProfilerState {
    const fn new() -> Self {
        ProfilerState {
            nodes: Vec::new(),
            children: Vec::new(),
            stack: [0; STACK_MAX],
            depth: 0,
            hist: [[0; HIST_BUCKETS]; Phase::COUNT],
            flat: [0; Phase::COUNT],
            truncated: 0,
        }
    }

    fn ensure_root(&mut self) {
        if self.nodes.is_empty() {
            self.nodes.push(Node {
                phase: ROOT_PHASE,
                calls: 0,
                sampled: 0,
                total_ns: 0,
                open: 0,
            });
            self.children.push(Vec::new());
        }
    }

    /// Open a span: find or create the child of the current top-of-stack
    /// node for `phase`, push it, and decide whether this call is one of
    /// the clock-timed samples.
    pub(crate) fn enter(&mut self, phase: Phase) -> Enter {
        if self.depth == STACK_MAX {
            self.truncated += 1;
            return Enter::Refused;
        }
        self.ensure_root();
        let parent = if self.depth == 0 {
            0
        } else {
            self.stack[self.depth - 1]
        };
        let pb = phase.index() as u8;
        let found = self.children[parent as usize]
            .iter()
            .copied()
            .find(|&c| self.nodes[c as usize].phase == pb);
        let node = match found {
            Some(c) => c,
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(Node {
                    phase: pb,
                    calls: 0,
                    sampled: 0,
                    total_ns: 0,
                    open: 0,
                });
                self.children.push(Vec::new());
                self.children[parent as usize].push(id);
                id
            }
        };
        self.stack[self.depth] = node;
        self.depth += 1;
        let n = &mut self.nodes[node as usize];
        // Leaf phases are pre-sampled by the flat counter in `span`:
        // every call that reaches the tree is one of the timed ones.
        let timed = phase.is_leaf() || (n.calls + n.open).is_multiple_of(SAMPLE_EVERY);
        n.open += 1;
        if timed {
            Enter::Timed
        } else {
            Enter::Untimed
        }
    }

    /// Close the innermost span without a duration (an untimed call).
    /// A mismatched phase (e.g. after a `reset` with guards still open)
    /// is ignored instead of corrupting the tree.
    pub(crate) fn exit_untimed(&mut self, phase: Phase) {
        if let Some(node) = self.pop_matching(phase) {
            let n = &mut self.nodes[node as usize];
            n.calls += 1;
            n.open = n.open.saturating_sub(1);
        }
    }

    /// Close the innermost span, recording `elapsed_ns` from one of the
    /// sampled calls.
    pub(crate) fn exit_timed(&mut self, phase: Phase, elapsed_ns: u64) {
        if let Some(node) = self.pop_matching(phase) {
            let n = &mut self.nodes[node as usize];
            n.calls += 1;
            n.open = n.open.saturating_sub(1);
            n.sampled += 1;
            n.total_ns = n.total_ns.saturating_add(elapsed_ns);
            self.hist[phase.index()][bucket_of(elapsed_ns)] += 1;
        }
    }

    fn pop_matching(&mut self, phase: Phase) -> Option<u32> {
        if self.depth == 0 {
            return None;
        }
        let node = self.stack[self.depth - 1];
        if self.nodes[node as usize].phase != phase.index() as u8 {
            return None;
        }
        self.depth -= 1;
        Some(node)
    }

    pub(crate) fn reset(&mut self) {
        self.nodes.clear();
        self.children.clear();
        self.depth = 0;
        self.hist = [[0; HIST_BUCKETS]; Phase::COUNT];
        self.flat = [0; Phase::COUNT];
        self.truncated = 0;
    }
}

/// Log2 bucket index for a duration, clamped to the last bucket.
pub(crate) fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper bound (in ns) of histogram bucket `b` — the value reported for
/// percentiles that land in the bucket.
pub(crate) fn bucket_upper(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        1u64 << b
    }
}

struct ProfTls {
    enabled: Cell<bool>,
    state: RefCell<ProfilerState>,
}

thread_local! {
    static TLS: ProfTls = const {
        ProfTls {
            enabled: Cell::new(false),
            state: RefCell::new(ProfilerState::new()),
        }
    };
}

/// Turn profiling on for this thread. Spans opened while disabled stay
/// inert even if profiling is enabled before they drop.
pub fn enable() {
    TLS.with(|t| t.enabled.set(true));
}

/// Turn profiling off for this thread. Accumulated state is kept (use
/// [`reset`] to clear it).
pub fn disable() {
    TLS.with(|t| t.enabled.set(false));
}

/// Whether profiling is currently enabled on this thread.
pub fn is_enabled() -> bool {
    TLS.with(|t| t.enabled.get())
}

/// Clear all accumulated state (call tree, histograms, truncation
/// counter) for this thread. Open guards from before the reset are
/// discarded when they drop.
pub fn reset() {
    TLS.with(|t| t.state.borrow_mut().reset());
}

/// Open a profiling span for `phase`. The returned guard records the
/// span when dropped. When profiling is disabled this is a single
/// branch: no clock read, no allocation, no state mutation.
///
/// When enabled, non-leaf phases record their call count and tree
/// position on every span but read the clock only one call in
/// [`SAMPLE_EVERY`] per node. [Leaf](Phase::is_leaf) phases are hotter
/// still: most calls just bump an exact flat counter, and one call in
/// [`LEAF_EVERY`] does the full tree-enter + clock work.
#[must_use = "a span records nothing unless the guard is held for its duration"]
pub fn span(phase: Phase) -> ProfGuard {
    TLS.with(|t| {
        if !t.enabled.get() {
            return ProfGuard {
                phase,
                mode: GuardMode::Inert,
            };
        }
        let mut state = t.state.borrow_mut();
        if phase.is_leaf() {
            let n = state.flat[phase.index()];
            state.flat[phase.index()] = n + 1;
            if !n.is_multiple_of(LEAF_EVERY) {
                return ProfGuard {
                    phase,
                    mode: GuardMode::Inert,
                };
            }
        }
        match state.enter(phase) {
            Enter::Refused => ProfGuard {
                phase,
                mode: GuardMode::Inert,
            },
            Enter::Untimed => ProfGuard {
                phase,
                mode: GuardMode::Untimed,
            },
            Enter::Timed => ProfGuard {
                phase,
                mode: GuardMode::Timed(Instant::now()),
            },
        }
    })
}

/// Run `f` against this thread's profiler state (used by the report
/// builder; kept crate-private so the arena layout stays an
/// implementation detail).
pub(crate) fn with_state<R>(f: impl FnOnce(&ProfilerState) -> R) -> R {
    TLS.with(|t| f(&t.state.borrow()))
}

#[cfg(test)]
pub(crate) fn with_state_mut<R>(f: impl FnOnce(&mut ProfilerState) -> R) -> R {
    TLS.with(|t| f(&mut t.state.borrow_mut()))
}

#[derive(Debug)]
enum GuardMode {
    Inert,
    Untimed,
    Timed(Instant),
}

/// RAII guard for an open profiling span. See [`span`].
#[derive(Debug)]
pub struct ProfGuard {
    phase: Phase,
    mode: GuardMode,
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        match self.mode {
            GuardMode::Inert => {}
            GuardMode::Untimed => {
                TLS.with(|t| t.state.borrow_mut().exit_untimed(self.phase));
            }
            GuardMode::Timed(start) => {
                let elapsed = start.elapsed().as_nanos() as u64;
                TLS.with(|t| t.state.borrow_mut().exit_timed(self.phase, elapsed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        disable();
        reset();
        {
            let _g = span(Phase::SchedPush);
            let _h = span(Phase::SchedPop);
        }
        with_state(|s| {
            assert!(
                s.nodes.is_empty(),
                "disabled spans must not touch the arena"
            );
            assert_eq!(s.truncated, 0);
        });
    }

    #[test]
    fn enabled_span_builds_tree() {
        enable();
        reset();
        {
            let _outer = span(Phase::NetbackTxDrain);
            let _inner = span(Phase::GrantCopy);
        }
        {
            let _outer = span(Phase::NetbackTxDrain);
        }
        with_state(|s| {
            // root + netback_tx_drain + grant_copy
            assert_eq!(s.nodes.len(), 3);
            let drain = &s.nodes[1];
            assert_eq!(drain.phase, Phase::NetbackTxDrain.index() as u8);
            assert_eq!(drain.calls, 2);
            let copy = &s.nodes[2];
            assert_eq!(copy.phase, Phase::GrantCopy.index() as u8);
            assert_eq!(s.children[1], vec![2], "grant_copy nests under the drain");
            assert_eq!(copy.calls, 1);
            // First call at a node is always clock-timed.
            assert!(drain.sampled >= 1);
            assert!(copy.sampled >= 1);
        });
        disable();
        reset();
    }

    #[test]
    fn sampling_times_one_call_in_stride() {
        with_state_mut(|s| {
            s.reset();
            let mut timed = 0u64;
            for _ in 0..(2 * SAMPLE_EVERY) {
                match s.enter(Phase::NetbackTxDrain) {
                    Enter::Timed => {
                        timed += 1;
                        s.exit_timed(Phase::NetbackTxDrain, 100);
                    }
                    Enter::Untimed => s.exit_untimed(Phase::NetbackTxDrain),
                    Enter::Refused => panic!("stack cannot be full"),
                }
            }
            let n = &s.nodes[1];
            assert_eq!(n.calls, 2 * SAMPLE_EVERY);
            assert_eq!(n.sampled, 2);
            assert_eq!(timed, 2);
            assert_eq!(n.total_ns, 200, "only sampled calls accumulate time");
            s.reset();
        });
    }

    #[test]
    fn leaf_fast_path_counts_exactly_and_samples_tree() {
        enable();
        reset();
        let calls = 2 * LEAF_EVERY + 1;
        for _ in 0..calls {
            let _g = span(Phase::SchedPush);
        }
        with_state(|s| {
            assert_eq!(s.flat[Phase::SchedPush.index()], calls);
            // Calls 0, 61, 122 hit the tree; all of them clock-timed.
            let n = &s.nodes[1];
            assert_eq!(n.calls, 3);
            assert_eq!(n.sampled, 3);
        });
        disable();
        reset();
    }

    #[test]
    fn synthetic_enter_exit_attributes_exact_times() {
        with_state_mut(|s| {
            s.reset();
            assert_eq!(s.enter(Phase::SchedPop), Enter::Timed);
            assert_eq!(s.enter(Phase::TraceEmit), Enter::Timed);
            s.exit_timed(Phase::TraceEmit, 300);
            s.exit_timed(Phase::SchedPop, 1000);
            let pop = &s.nodes[1];
            assert_eq!(pop.total_ns, 1000);
            let emit = &s.nodes[2];
            assert_eq!(emit.total_ns, 300);
            assert_eq!(s.hist[Phase::SchedPop.index()][bucket_of(1000)], 1);
            s.reset();
        });
    }

    #[test]
    fn stack_overflow_truncates_instead_of_corrupting() {
        with_state_mut(|s| {
            s.reset();
            for _ in 0..STACK_MAX {
                assert_ne!(s.enter(Phase::SchedPush), Enter::Refused);
            }
            assert_eq!(s.enter(Phase::SchedPush), Enter::Refused);
            assert_eq!(s.truncated, 1);
            for _ in 0..STACK_MAX {
                s.exit_untimed(Phase::SchedPush);
            }
            s.reset();
        });
    }

    #[test]
    fn mismatched_exit_after_reset_is_dropped() {
        with_state_mut(|s| {
            s.reset();
            assert_eq!(s.enter(Phase::SchedPush), Enter::Timed);
            s.reset();
            // Guard from before the reset drops now: depth is 0.
            s.exit_timed(Phase::SchedPush, 123);
            assert!(s.nodes.is_empty());
        });
    }

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert!(bucket_upper(11) == 2048);
        assert_eq!(bucket_upper(63), u64::MAX);
    }
}
