//! `kite-prof` — scoped-span wall-clock self-profiling for the Kite
//! workspace.
//!
//! The simulator's foundational invariant is virtual-time determinism:
//! same seed, same bytes. Wall-clock profiling is the opposite — every
//! run measures differently — so this crate keeps the two worlds
//! strictly separated:
//!
//! * Instrumented code opens spans with [`span`] using a closed static
//!   registry of [`Phase`] IDs. Spans never feed back into simulation
//!   state; they only observe.
//! * When profiling is disabled (the default), [`span`] is a single
//!   thread-local branch — no clock read, no allocation — so the hot
//!   path keeps its zero-alloc contract (`sched_alloc.rs` gate).
//! * When enabled, call counts and the call tree are exact but span
//!   durations are *sampled*: only one call in [`SAMPLE_EVERY`] per
//!   call-tree node reads the clock, and reported times are scaled
//!   estimates. This bounds enabled-path overhead (the clock is the
//!   dominant cost) the same way sampling profilers like `perf` do.
//! * Everything derived from span timings (self-time tables, collapsed
//!   stacks, `prof_*` bench rows) is quarantined to outputs marked as
//!   wall-clock and excluded from determinism diffs.
//!
//! The crate sits below `kite-sim` in the dependency graph and has no
//! dependencies of its own.
//!
//! # Example
//!
//! ```
//! use kite_prof::{self as prof, Phase};
//!
//! prof::enable();
//! prof::reset();
//! {
//!     let _drain = prof::span(Phase::NetbackTxDrain);
//!     let _copy = prof::span(Phase::GrantCopy);
//!     // ... work ...
//! }
//! let report = prof::report();
//! print!("{}", report.render_table());
//! print!("{}", report.render_collapsed());
//! prof::disable();
//! ```

mod phase;
mod profiler;
mod report;

pub use phase::Phase;
pub use profiler::{
    disable, enable, is_enabled, reset, span, ProfGuard, HIST_BUCKETS, LEAF_EVERY, SAMPLE_EVERY,
    STACK_MAX,
};
pub use report::{report, PhaseRow, ProfReport, StackRow};
