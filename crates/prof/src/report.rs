//! Report extraction and rendering: per-phase self-time table and
//! collapsed-stack output for flamegraph tooling.

use crate::phase::Phase;
use crate::profiler::{self, bucket_upper, HIST_BUCKETS};

/// Aggregated statistics for one phase across every position it appears
/// in the call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    pub phase: Phase,
    /// Number of completed spans. Exact: non-leaf phases count in the
    /// call tree, leaf phases in their flat counter.
    pub calls: u64,
    /// Inclusive wall time: span entry to exit, children included.
    /// Durations are sampled one call in [`crate::SAMPLE_EVERY`] per
    /// call-tree node and scaled back up by the exact call count, so
    /// this is an estimate (counts are exact, times are sampled).
    pub total_ns: u64,
    /// Exclusive wall time: `total_ns` minus time attributed to child
    /// spans.
    pub self_ns: u64,
    /// Median span duration (upper bound of the log2 histogram bucket
    /// the 50th percentile lands in).
    pub p50_ns: u64,
    /// 99th-percentile span duration (same bucket-bound convention).
    pub p99_ns: u64,
}

/// One root-to-leaf path of the call tree with its exclusive time, for
/// collapsed-stack export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackRow {
    /// Path from outermost to innermost phase.
    pub path: Vec<Phase>,
    /// Calls at this tree position (scaled estimate for leaf phases,
    /// whose per-position counts are sampled).
    pub calls: u64,
    pub self_ns: u64,
}

/// Snapshot of this thread's accumulated profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfReport {
    /// Per-phase aggregate rows, sorted by `self_ns` descending (ties
    /// broken by phase declaration order so rendering is stable).
    pub rows: Vec<PhaseRow>,
    /// Call-tree paths in lexicographic path order.
    pub stacks: Vec<StackRow>,
    /// Spans dropped because the open-span stack was full.
    pub truncated: u64,
}

/// Extract a [`ProfReport`] from this thread's profiler state. Does not
/// reset the state; pair with [`crate::reset`] between measurement
/// windows.
pub fn report() -> ProfReport {
    profiler::with_state(|s| {
        let n = s.nodes.len();
        // Leaf phases only reach the tree one call in LEAF_EVERY; the
        // flat counter holds the exact population to scale back up to.
        // (max() keeps synthetic state driven directly through
        // enter/exit — the unit tests — at scale 1.)
        let mut tree_calls = [0u64; Phase::COUNT];
        for node in s.nodes.iter().skip(1) {
            tree_calls[node.phase as usize] += node.calls;
        }
        let flat_eff = |p: usize| s.flat[p].max(tree_calls[p]);
        // Estimated inclusive time and call count per node: sampled
        // time scaled up by the exact call count (`total × calls /
        // sampled` for non-leaves, `total × flat / tree_calls` for
        // leaves).
        let mut est = vec![0u64; n];
        let mut est_calls = vec![0u64; n];
        for (i, node) in s.nodes.iter().enumerate().skip(1) {
            let p = node.phase as usize;
            if Phase::from_index(p).is_leaf() {
                if tree_calls[p] > 0 {
                    est[i] = (u128::from(node.total_ns) * u128::from(flat_eff(p))
                        / u128::from(tree_calls[p])) as u64;
                    est_calls[i] = (u128::from(node.calls) * u128::from(flat_eff(p))
                        / u128::from(tree_calls[p])) as u64;
                }
            } else {
                est_calls[i] = node.calls;
                if node.sampled > 0 {
                    est[i] = (u128::from(node.total_ns) * u128::from(node.calls)
                        / u128::from(node.sampled)) as u64;
                }
            }
        }
        // Exclusive time per node: total minus the sum of child totals.
        // (Clock jitter and sampling scale can make children sum past
        // the parent; saturate.)
        let mut self_ns = vec![0u64; n];
        for (i, _) in s.nodes.iter().enumerate() {
            let kids: u64 = s.children[i].iter().map(|&c| est[c as usize]).sum();
            self_ns[i] = est[i].saturating_sub(kids);
        }

        let mut calls = [0u64; Phase::COUNT];
        let mut total = [0u64; Phase::COUNT];
        let mut slf = [0u64; Phase::COUNT];
        for (i, node) in s.nodes.iter().enumerate().skip(1) {
            let p = node.phase as usize;
            calls[p] += node.calls;
            total[p] = total[p].saturating_add(est[i]);
            slf[p] = slf[p].saturating_add(self_ns[i]);
        }
        for p in Phase::ALL {
            if p.is_leaf() {
                calls[p.index()] = flat_eff(p.index());
            }
        }

        let mut rows: Vec<PhaseRow> = Phase::ALL
            .iter()
            .filter(|p| calls[p.index()] > 0)
            .map(|&p| {
                let h = &s.hist[p.index()];
                PhaseRow {
                    phase: p,
                    calls: calls[p.index()],
                    total_ns: total[p.index()],
                    self_ns: slf[p.index()],
                    p50_ns: percentile(h, 50),
                    p99_ns: percentile(h, 99),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_ns
                .cmp(&a.self_ns)
                .then(a.phase.index().cmp(&b.phase.index()))
        });

        let mut stacks = Vec::new();
        if n > 0 {
            let mut path = Vec::new();
            collect_stacks(s, 0, &mut path, &self_ns, &est_calls, &mut stacks);
        }
        stacks.sort_by(|a, b| a.path.cmp(&b.path));

        ProfReport {
            rows,
            stacks,
            truncated: s.truncated,
        }
    })
}

fn collect_stacks(
    s: &profiler::ProfilerState,
    node: u32,
    path: &mut Vec<Phase>,
    self_ns: &[u64],
    est_calls: &[u64],
    out: &mut Vec<StackRow>,
) {
    let is_root = node == 0 && path.is_empty();
    if !is_root {
        let n = &s.nodes[node as usize];
        path.push(Phase::from_index(n.phase as usize));
        if n.calls > 0 {
            out.push(StackRow {
                path: path.clone(),
                calls: est_calls[node as usize],
                self_ns: self_ns[node as usize],
            });
        }
    }
    for &c in &s.children[node as usize] {
        collect_stacks(s, c, path, self_ns, est_calls, out);
    }
    if !is_root {
        path.pop();
    }
}

/// Percentile over a log2 histogram: the upper bound of the bucket the
/// q-th percentile count lands in. Returns 0 for an empty histogram.
fn percentile(hist: &[u64; HIST_BUCKETS], q: u32) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    // Rank of the q-th percentile sample, 1-based, rounded up.
    let rank = (total * u64::from(q)).div_ceil(100).max(1);
    let mut seen = 0u64;
    for (b, &c) in hist.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper(b);
        }
    }
    bucket_upper(HIST_BUCKETS - 1)
}

impl ProfReport {
    /// Render the top-down self-time table. Wall-clock numbers are
    /// nondeterministic by nature; this output is for humans and for
    /// `wall`-marked bench rows only.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>10} {:>14} {:>14} {:>6} {:>10} {:>10}\n",
            "phase", "calls", "total_ns", "self_ns", "self%", "p50_ns", "p99_ns"
        ));
        let grand: u64 = self.rows.iter().map(|r| r.self_ns).sum();
        for r in &self.rows {
            let pct = if grand == 0 {
                0.0
            } else {
                100.0 * r.self_ns as f64 / grand as f64
            };
            out.push_str(&format!(
                "{:<22} {:>10} {:>14} {:>14} {:>6.1} {:>10} {:>10}\n",
                r.phase.name(),
                r.calls,
                r.total_ns,
                r.self_ns,
                pct,
                r.p50_ns,
                r.p99_ns
            ));
        }
        if self.truncated > 0 {
            out.push_str(&format!("# truncated spans: {}\n", self.truncated));
        }
        out
    }

    /// Render collapsed stacks (`kite;outer;inner self_ns`), one line
    /// per call-tree path, suitable for `flamegraph.pl` /
    /// `inferno-flamegraph`.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str("kite");
            for p in &s.path {
                out.push(';');
                out.push_str(p.name());
            }
            out.push_str(&format!(" {}\n", s.self_ns));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{with_state_mut, Enter, ProfilerState};

    /// Synthetic enter/exit helper: always records the duration, so
    /// `sampled == calls` and report numbers are exact.
    fn timed(s: &mut ProfilerState, phase: Phase, f: impl FnOnce(&mut ProfilerState), ns: u64) {
        assert_ne!(s.enter(phase), Enter::Refused);
        f(s);
        s.exit_timed(phase, ns);
    }

    fn build_synthetic() {
        with_state_mut(|s| {
            s.reset();
            // pop(1000) { emit(300) }  pop(500)  push(50)
            timed(
                s,
                Phase::SchedPop,
                |s| timed(s, Phase::TraceEmit, |_| {}, 300),
                1000,
            );
            timed(s, Phase::SchedPop, |_| {}, 500);
            timed(s, Phase::SchedPush, |_| {}, 50);
        });
    }

    #[test]
    fn self_time_excludes_children() {
        build_synthetic();
        let rep = report();
        let pop = rep
            .rows
            .iter()
            .find(|r| r.phase == Phase::SchedPop)
            .unwrap();
        assert_eq!(pop.calls, 2);
        assert_eq!(pop.total_ns, 1500);
        assert_eq!(pop.self_ns, 1200, "300ns of trace_emit must be excluded");
        let emit = rep
            .rows
            .iter()
            .find(|r| r.phase == Phase::TraceEmit)
            .unwrap();
        assert_eq!(emit.self_ns, 300);
        // Rows sort by self time descending.
        assert_eq!(rep.rows[0].phase, Phase::SchedPop);
        with_state_mut(|s| s.reset());
    }

    #[test]
    fn collapsed_paths_are_exact() {
        build_synthetic();
        let rep = report();
        let text = rep.render_collapsed();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"kite;sched_pop 1200"), "got:\n{text}");
        assert!(
            lines.contains(&"kite;sched_pop;trace_emit 300"),
            "got:\n{text}"
        );
        assert!(lines.contains(&"kite;sched_push 50"), "got:\n{text}");
        with_state_mut(|s| s.reset());
    }

    #[test]
    fn table_renders_all_columns() {
        build_synthetic();
        let rep = report();
        let table = rep.render_table();
        assert!(table.starts_with("phase"));
        assert!(table.contains("sched_pop"));
        assert!(table.contains("trace_emit"));
        with_state_mut(|s| s.reset());
    }

    #[test]
    fn percentiles_come_from_histogram_buckets() {
        with_state_mut(|s| {
            s.reset();
            for _ in 0..99 {
                timed(s, Phase::GrantCopy, |_| {}, 100); // bucket 7, upper 128
            }
            timed(s, Phase::GrantCopy, |_| {}, 1_000_000); // bucket 20, upper 2^20
        });
        let rep = report();
        let row = rep
            .rows
            .iter()
            .find(|r| r.phase == Phase::GrantCopy)
            .unwrap();
        assert_eq!(row.p50_ns, 128);
        assert_eq!(row.p99_ns, 128);
        with_state_mut(|s| s.reset());
    }

    #[test]
    fn empty_report_is_empty() {
        with_state_mut(|s| s.reset());
        let rep = report();
        assert!(rep.rows.is_empty());
        assert!(rep.stacks.is_empty());
        assert_eq!(rep.render_collapsed(), "");
    }
}
