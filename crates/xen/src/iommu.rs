//! IOMMU: DMA remapping with fault confinement.
//!
//! The security property the paper leans on: a device assigned to a driver
//! domain can only DMA into pages that domain explicitly mapped. An errant
//! or malicious DMA to any other machine page raises a fault that is
//! *recorded against the driver domain* and does not touch the target page
//! — confinement, not corruption.

use std::collections::{HashMap, HashSet};

use crate::domain::DomainId;
use crate::error::{Result, XenError};
use crate::mem::PageId;

/// A recorded DMA violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IommuFault {
    /// The domain whose device attempted the access.
    pub domain: DomainId,
    /// The machine page it targeted.
    pub page: PageId,
    /// Whether it was a write.
    pub write: bool,
}

/// Per-domain DMA mapping tables plus the machine-wide fault log.
#[derive(Default)]
pub struct Iommu {
    maps: HashMap<DomainId, HashSet<PageId>>,
    faults: Vec<IommuFault>,
}

impl Iommu {
    /// Creates an empty IOMMU.
    pub fn new() -> Iommu {
        Iommu::default()
    }

    /// Maps `page` for DMA by devices assigned to `dom`.
    pub fn map(&mut self, dom: DomainId, page: PageId) {
        self.maps.entry(dom).or_default().insert(page);
    }

    /// Unmaps a page.
    pub fn unmap(&mut self, dom: DomainId, page: PageId) -> Result<()> {
        if self
            .maps
            .get_mut(&dom)
            .map(|s| s.remove(&page))
            .unwrap_or(false)
        {
            Ok(())
        } else {
            Err(XenError::BadPage)
        }
    }

    /// Checks a DMA access; records a fault and errors if unmapped.
    pub fn check_dma(&mut self, dom: DomainId, page: PageId, write: bool) -> Result<()> {
        let ok = self
            .maps
            .get(&dom)
            .map(|s| s.contains(&page))
            .unwrap_or(false);
        if ok {
            Ok(())
        } else {
            self.faults.push(IommuFault {
                domain: dom,
                page,
                write,
            });
            Err(XenError::IommuFault)
        }
    }

    /// All faults recorded so far.
    pub fn faults(&self) -> &[IommuFault] {
        &self.faults
    }

    /// Faults attributable to one domain (confinement checks).
    pub fn faults_of(&self, dom: DomainId) -> usize {
        self.faults.iter().filter(|f| f.domain == dom).count()
    }

    /// Number of pages currently mapped for a domain.
    pub fn mapped_pages(&self, dom: DomainId) -> usize {
        self.maps.get(&dom).map(|s| s.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DD: DomainId = DomainId(1);
    const OTHER: DomainId = DomainId(2);

    #[test]
    fn mapped_dma_allowed() {
        let mut io = Iommu::new();
        io.map(DD, PageId(7));
        io.check_dma(DD, PageId(7), true).unwrap();
        assert!(io.faults().is_empty());
    }

    #[test]
    fn unmapped_dma_faults_and_is_confined() {
        let mut io = Iommu::new();
        io.map(DD, PageId(7));
        // DMA to somebody else's page.
        assert_eq!(
            io.check_dma(DD, PageId(99), true),
            Err(XenError::IommuFault)
        );
        assert_eq!(io.faults_of(DD), 1);
        assert_eq!(io.faults_of(OTHER), 0, "fault charged to offender only");
        assert_eq!(
            io.faults()[0],
            IommuFault {
                domain: DD,
                page: PageId(99),
                write: true
            }
        );
    }

    #[test]
    fn mappings_are_per_domain() {
        let mut io = Iommu::new();
        io.map(DD, PageId(1));
        assert_eq!(
            io.check_dma(OTHER, PageId(1), false),
            Err(XenError::IommuFault)
        );
    }

    #[test]
    fn unmap_revokes_access() {
        let mut io = Iommu::new();
        io.map(DD, PageId(1));
        io.unmap(DD, PageId(1)).unwrap();
        assert_eq!(
            io.check_dma(DD, PageId(1), false),
            Err(XenError::IommuFault)
        );
        assert_eq!(io.unmap(DD, PageId(1)), Err(XenError::BadPage));
        assert_eq!(io.mapped_pages(DD), 0);
    }
}
