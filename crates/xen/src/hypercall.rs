//! Hypercall cost model and per-domain accounting.
//!
//! The paper repeatedly attributes design decisions to hypercall expense
//! ("grant table operations, which involve costly hypercalls"). This module
//! makes those costs explicit and countable so experiments can report both
//! *time* spent in hypercalls and *how many* each design issues — the
//! quantity Kite's batching, persistent grants and notification suppression
//! all exist to reduce.

use kite_sim::Nanos;

/// Kinds of hypercalls the reproduction charges for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HypercallKind {
    /// `EVTCHNOP_send` — notify a peer domain.
    EvtchnSend,
    /// Other event-channel plumbing (alloc/bind/close).
    EvtchnOp,
    /// `GNTTABOP_map_grant_ref`.
    GntMap,
    /// `GNTTABOP_unmap_grant_ref` (includes TLB shootdown cost).
    GntUnmap,
    /// `GNTTABOP_copy` — hypervisor data copy (plus a per-byte charge).
    GntCopy,
    /// Xenstore operation (read/write/watch round trip to xenstored).
    XsOp,
    /// `SCHEDOP_yield` and timer plumbing.
    Sched,
}

/// Number of hypercall kinds (for meter arrays).
pub const HYPERCALL_KINDS: usize = 7;

impl HypercallKind {
    fn index(self) -> usize {
        match self {
            HypercallKind::EvtchnSend => 0,
            HypercallKind::EvtchnOp => 1,
            HypercallKind::GntMap => 2,
            HypercallKind::GntUnmap => 3,
            HypercallKind::GntCopy => 4,
            HypercallKind::XsOp => 5,
            HypercallKind::Sched => 6,
        }
    }

    /// All kinds, for reporting.
    pub fn all() -> [HypercallKind; HYPERCALL_KINDS] {
        [
            HypercallKind::EvtchnSend,
            HypercallKind::EvtchnOp,
            HypercallKind::GntMap,
            HypercallKind::GntUnmap,
            HypercallKind::GntCopy,
            HypercallKind::XsOp,
            HypercallKind::Sched,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            HypercallKind::EvtchnSend => "evtchn_send",
            HypercallKind::EvtchnOp => "evtchn_op",
            HypercallKind::GntMap => "gnttab_map",
            HypercallKind::GntUnmap => "gnttab_unmap",
            HypercallKind::GntCopy => "gnttab_copy",
            HypercallKind::XsOp => "xenstore_op",
            HypercallKind::Sched => "sched_op",
        }
    }
}

/// Calibrated costs of hypervisor operations.
///
/// Base values are in line with published Xen HVM microbenchmarks on
/// Haswell/Broadwell-class hardware (a VMEXIT/VMENTRY round trip costs
/// on the order of a microsecond; unmap is costlier than map because of
/// TLB invalidation).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Base VMEXIT+dispatch+VMENTRY cost of any hypercall.
    pub hypercall_base: Nanos,
    /// Extra cost of `EVTCHNOP_send` beyond the base.
    pub evtchn_send_extra: Nanos,
    /// Extra cost per grant map operation.
    pub gnt_map_extra: Nanos,
    /// Extra cost per grant unmap (TLB shootdown).
    pub gnt_unmap_extra: Nanos,
    /// Fixed per-copy-descriptor cost of `GNTTABOP_copy`.
    pub gnt_copy_extra: Nanos,
    /// Per-byte cost of hypervisor copies (memory bandwidth bound).
    pub copy_per_byte_ps: u64,
    /// Cost of one xenstore round trip (socket/ring + xenstored work).
    pub xs_op: Nanos,
    /// Interrupt injection latency: evtchn send to handler entry in the
    /// target domain (includes virtual IRQ delivery and vmentry).
    pub irq_delivery: Nanos,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            hypercall_base: Nanos::from_nanos(700),
            evtchn_send_extra: Nanos::from_nanos(300),
            gnt_map_extra: Nanos::from_nanos(700),
            gnt_unmap_extra: Nanos::from_nanos(1400),
            gnt_copy_extra: Nanos::from_nanos(250),
            copy_per_byte_ps: 50, // 0.05 ns/byte ≈ 20 GB/s effective
            xs_op: Nanos::from_micros(25),
            irq_delivery: Nanos::from_micros(4),
        }
    }
}

impl CostModel {
    /// Cost of one `GNTTABOP_copy` hypercall carrying `nops` descriptors
    /// that together move `bytes` of payload.
    ///
    /// This is the batch shape real Xen exposes: the VMEXIT/VMENTRY base
    /// is paid **once per hypercall**, the fixed descriptor cost once per
    /// op, and the memory-bandwidth cost per byte. A batch of one op is
    /// exactly as expensive as the legacy single-op call, so the thin
    /// `grant_copy` wrapper costs what it always did.
    pub fn gnt_copy_batch(&self, nops: usize, bytes: usize) -> Nanos {
        self.hypercall_base
            + self.gnt_copy_extra * nops as u64
            + Nanos(bytes as u64 * self.copy_per_byte_ps / 1000)
    }

    /// Cost of a hypercall of `kind` moving `bytes` of payload.
    pub fn cost(&self, kind: HypercallKind, bytes: usize) -> Nanos {
        let extra = match kind {
            HypercallKind::EvtchnSend => self.evtchn_send_extra,
            HypercallKind::EvtchnOp => Nanos::ZERO,
            HypercallKind::GntMap => self.gnt_map_extra,
            HypercallKind::GntUnmap => self.gnt_unmap_extra,
            HypercallKind::GntCopy => {
                self.gnt_copy_extra + Nanos(bytes as u64 * self.copy_per_byte_ps / 1000)
            }
            HypercallKind::XsOp => self.xs_op,
            HypercallKind::Sched => Nanos::ZERO,
        };
        self.hypercall_base + extra
    }
}

/// Per-domain hypercall counters and accumulated time.
#[derive(Clone, Debug, Default)]
pub struct HypercallMeter {
    counts: [u64; HYPERCALL_KINDS],
    time: [Nanos; HYPERCALL_KINDS],
}

impl HypercallMeter {
    /// Creates a zeroed meter.
    pub fn new() -> HypercallMeter {
        HypercallMeter::default()
    }

    /// Charges one hypercall; returns its cost for CPU accounting.
    pub fn charge(&mut self, model: &CostModel, kind: HypercallKind, bytes: usize) -> Nanos {
        let c = model.cost(kind, bytes);
        self.charge_costed(kind, c);
        c
    }

    /// Charges one hypercall whose cost was computed externally (batched
    /// ops whose cost depends on the descriptor count, not just bytes).
    pub fn charge_costed(&mut self, kind: HypercallKind, cost: Nanos) {
        self.counts[kind.index()] += 1;
        self.time[kind.index()] += cost;
    }

    /// Count of hypercalls of `kind`.
    pub fn count(&self, kind: HypercallKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total hypercall count.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulated time in hypercalls of `kind`.
    pub fn time(&self, kind: HypercallKind) -> Nanos {
        self.time[kind.index()]
    }

    /// Total time in all hypercalls.
    pub fn total_time(&self) -> Nanos {
        self.time.iter().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_with_bytes() {
        let m = CostModel::default();
        let small = m.cost(HypercallKind::GntCopy, 64);
        let large = m.cost(HypercallKind::GntCopy, 4096);
        assert!(large > small);
        // A 4 KiB copy adds ~328ns of per-byte cost on defaults.
        let per_byte = large.as_nanos() - m.cost(HypercallKind::GntCopy, 0).as_nanos();
        assert_eq!(per_byte, 4096 * m.copy_per_byte_ps / 1000);
    }

    #[test]
    fn unmap_costlier_than_map() {
        let m = CostModel::default();
        assert!(m.cost(HypercallKind::GntUnmap, 0) > m.cost(HypercallKind::GntMap, 0));
    }

    #[test]
    fn meter_accumulates() {
        let m = CostModel::default();
        let mut meter = HypercallMeter::new();
        let c1 = meter.charge(&m, HypercallKind::EvtchnSend, 0);
        let c2 = meter.charge(&m, HypercallKind::EvtchnSend, 0);
        meter.charge(&m, HypercallKind::GntCopy, 4096);
        assert_eq!(meter.count(HypercallKind::EvtchnSend), 2);
        assert_eq!(meter.count(HypercallKind::GntCopy), 1);
        assert_eq!(meter.total_count(), 3);
        assert_eq!(meter.time(HypercallKind::EvtchnSend), c1 + c2);
        assert!(meter.total_time() > c1 + c2);
    }

    #[test]
    fn all_kinds_have_names() {
        for k in HypercallKind::all() {
            assert!(!k.name().is_empty());
        }
    }
}
