//! Xenstore: the shared hierarchical configuration database.
//!
//! Backends and frontends negotiate entirely through this store: each side
//! writes its ring references, event-channel ports and feature flags under
//! well-known paths and *watches* the other side's directory. The semantics
//! implemented here follow `xenstored`:
//!
//! * writes implicitly create parent directories;
//! * removal is recursive;
//! * watches fire for the watched node and everything below it, and fire
//!   once immediately upon registration;
//! * transactions are optimistic — commit fails with [`XenError::Again`]
//!   when any node read inside the transaction changed concurrently.
//!
//! Permissions use the simplified Xen model: a node is owned by the domain
//! that created it, Dom0 may do anything, and owners can grant read or
//! read-write access per peer domain.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::domain::DomainId;
use crate::error::{Result, XenError};

/// A watch registration handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WatchId(u64);

/// A transaction handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(u64);

/// Access level grantable on a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Perm {
    /// Peer may read the node and its children.
    Read,
    /// Peer may read and write the node and its children.
    ReadWrite,
}

/// A fired watch, to be routed to the watching domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchEvent {
    /// The watching domain.
    pub domain: DomainId,
    /// The id of the watch that fired.
    pub watch: WatchId,
    /// The token supplied at registration.
    pub token: String,
    /// The path that changed (or the watch path itself on registration).
    pub path: String,
}

#[derive(Clone, Debug)]
struct Node {
    value: String,
    owner: DomainId,
    perms: Vec<(DomainId, Perm)>,
    last_mod: u64,
}

#[derive(Clone, Debug)]
struct Watch {
    domain: DomainId,
    path: String,
    token: String,
}

#[derive(Debug)]
struct Transaction {
    caller: DomainId,
    start_gen: u64,
    reads: BTreeSet<String>,
    /// `None` marks a (recursive) delete of the subtree rooted at the key.
    writes: BTreeMap<String, Option<String>>,
}

/// Default per-domain owned-node quota (xenstored's `quota-nodes` knob;
/// Dom0 is exempt). Prevents an unprivileged domain from exhausting
/// xenstored's memory — a real DoS vector the daemon defends against.
pub const DEFAULT_NODE_QUOTA: usize = 1000;

/// The store itself.
#[derive(Default)]
pub struct Xenstore {
    nodes: BTreeMap<String, Node>,
    owned: HashMap<DomainId, usize>,
    quota_override: HashMap<DomainId, usize>,
    watches: HashMap<WatchId, Watch>,
    next_watch: u64,
    txs: HashMap<TxId, Transaction>,
    next_tx: u64,
    generation: u64,
    pending: Vec<WatchEvent>,
}

fn validate(path: &str) -> Result<()> {
    if path == "/" {
        return Ok(());
    }
    if !path.starts_with('/') || path.ends_with('/') {
        return Err(XenError::Inval);
    }
    for seg in path[1..].split('/') {
        if seg.is_empty() {
            return Err(XenError::Inval);
        }
        if !seg
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'@' | b':' | b'.'))
        {
            return Err(XenError::Inval);
        }
    }
    Ok(())
}

fn parent(path: &str) -> Option<&str> {
    let idx = path.rfind('/')?;
    if idx == 0 {
        if path.len() > 1 {
            Some("/")
        } else {
            None
        }
    } else {
        Some(&path[..idx])
    }
}

/// True when `node` is `root` itself or lies underneath it.
fn under(root: &str, node: &str) -> bool {
    if root == "/" {
        return true;
    }
    node == root || (node.starts_with(root) && node.as_bytes().get(root.len()) == Some(&b'/'))
}

impl Xenstore {
    /// Creates an empty store containing only the root, owned by Dom0.
    pub fn new() -> Xenstore {
        let mut s = Xenstore::default();
        s.nodes.insert(
            "/".to_string(),
            Node {
                value: String::new(),
                owner: DomainId::DOM0,
                perms: Vec::new(),
                last_mod: 0,
            },
        );
        s
    }

    fn may_read(&self, caller: DomainId, path: &str) -> bool {
        if caller.is_dom0() {
            return true;
        }
        // Permission is checked on the nearest existing ancestor with an
        // explicit rule, walking upward (xenstored inherits perms downward).
        let mut p = path.to_string();
        loop {
            if let Some(n) = self.nodes.get(&p) {
                if n.owner == caller {
                    return true;
                }
                if n.perms.iter().any(|&(d, _)| d == caller) {
                    return true;
                }
            }
            match parent(&p) {
                Some(pp) => p = pp.to_string(),
                None => return false,
            }
        }
    }

    fn may_write(&self, caller: DomainId, path: &str) -> bool {
        if caller.is_dom0() {
            return true;
        }
        // Permissions inherit downward: walking toward the root, the first
        // node granting the caller write (by ownership or an explicit
        // read-write rule) authorizes the whole subtree. The root is owned
        // by Dom0, so unprivileged writes outside delegated subtrees fail.
        let mut p = path.to_string();
        loop {
            if let Some(n) = self.nodes.get(&p) {
                if n.owner == caller {
                    return true;
                }
                if n.perms
                    .iter()
                    .any(|&(d, pm)| d == caller && pm == Perm::ReadWrite)
                {
                    return true;
                }
            }
            match parent(&p) {
                Some(pp) => p = pp.to_string(),
                None => return false,
            }
        }
    }

    fn fire_watches(&mut self, changed: &str) {
        for (&id, w) in &self.watches {
            if under(&w.path, changed) {
                self.pending.push(WatchEvent {
                    domain: w.domain,
                    watch: id,
                    token: w.token.clone(),
                    path: changed.to_string(),
                });
            }
        }
    }

    /// The node quota applying to `d`.
    pub fn quota_of(&self, d: DomainId) -> usize {
        if d.is_dom0() {
            usize::MAX
        } else {
            self.quota_override
                .get(&d)
                .copied()
                .unwrap_or(DEFAULT_NODE_QUOTA)
        }
    }

    /// Adjusts a domain's node quota (the `quota-nodes` knob).
    pub fn set_quota(&mut self, d: DomainId, quota: usize) {
        self.quota_override.insert(d, quota);
    }

    /// Nodes currently owned by a domain.
    pub fn owned_nodes(&self, d: DomainId) -> usize {
        self.owned.get(&d).copied().unwrap_or(0)
    }

    fn charge_node(&mut self, owner: DomainId, new_nodes: usize) -> Result<()> {
        let have = self.owned.get(&owner).copied().unwrap_or(0);
        if have + new_nodes > self.quota_of(owner) {
            return Err(XenError::Quota);
        }
        *self.owned.entry(owner).or_insert(0) += new_nodes;
        Ok(())
    }

    fn raw_write(&mut self, caller: DomainId, path: &str, value: &str) -> Result<()> {
        if !self.may_write(caller, path) {
            return Err(XenError::Perm);
        }
        // Quota: count the nodes this write would create.
        let mut creating = usize::from(!self.nodes.contains_key(path));
        let mut p = path.to_string();
        while let Some(pp) = parent(&p) {
            if !self.nodes.contains_key(pp) {
                creating += 1;
            }
            p = pp.to_string();
        }
        if creating > 0 {
            self.charge_node(caller, creating)?;
        }
        self.generation += 1;
        let generation = self.generation;
        // Create missing ancestors owned by the caller.
        let mut ancestors = Vec::new();
        let mut p = path.to_string();
        while let Some(pp) = parent(&p) {
            if !self.nodes.contains_key(pp) {
                ancestors.push(pp.to_string());
            }
            p = pp.to_string();
        }
        for a in ancestors.into_iter().rev() {
            self.nodes.insert(
                a.clone(),
                Node {
                    value: String::new(),
                    owner: caller,
                    perms: Vec::new(),
                    last_mod: generation,
                },
            );
            self.fire_watches(&a);
        }
        match self.nodes.get_mut(path) {
            Some(n) => {
                n.value = value.to_string();
                n.last_mod = generation;
            }
            None => {
                self.nodes.insert(
                    path.to_string(),
                    Node {
                        value: value.to_string(),
                        owner: caller,
                        perms: Vec::new(),
                        last_mod: generation,
                    },
                );
            }
        }
        self.fire_watches(path);
        Ok(())
    }

    fn raw_rm(&mut self, caller: DomainId, path: &str) -> Result<()> {
        if path == "/" {
            return Err(XenError::Inval);
        }
        if !self.nodes.contains_key(path) {
            return Err(XenError::NoEnt);
        }
        if !self.may_write(caller, path) {
            return Err(XenError::Perm);
        }
        self.generation += 1;
        let doomed: Vec<String> = self
            .nodes
            .range(path.to_string()..)
            .take_while(|(k, _)| under(path, k))
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            if let Some(n) = self.nodes.remove(&k) {
                if let Some(cnt) = self.owned.get_mut(&n.owner) {
                    *cnt = cnt.saturating_sub(1);
                }
            }
            self.fire_watches(&k);
        }
        Ok(())
    }

    /// Reads a node's value.
    pub fn read(&mut self, caller: DomainId, tx: Option<TxId>, path: &str) -> Result<String> {
        validate(path)?;
        if let Some(txid) = tx {
            let t = self.txs.get(&txid).ok_or(XenError::BadTransaction)?;
            if t.caller != caller {
                return Err(XenError::Perm);
            }
            // Within-transaction read-your-writes.
            for (wp, val) in t.writes.iter().rev() {
                if wp == path {
                    return val.clone().ok_or(XenError::NoEnt);
                }
                if under(wp, path) && val.is_none() {
                    return Err(XenError::NoEnt);
                }
            }
            if !self.may_read(caller, path) {
                return Err(XenError::Perm);
            }
            let v = self
                .nodes
                .get(path)
                .map(|n| n.value.clone())
                .ok_or(XenError::NoEnt);
            let t = self.txs.get_mut(&txid).expect("checked above");
            t.reads.insert(path.to_string());
            return v;
        }
        if !self.may_read(caller, path) {
            return Err(XenError::Perm);
        }
        self.nodes
            .get(path)
            .map(|n| n.value.clone())
            .ok_or(XenError::NoEnt)
    }

    /// Writes a node, creating missing parents.
    pub fn write(
        &mut self,
        caller: DomainId,
        tx: Option<TxId>,
        path: &str,
        value: &str,
    ) -> Result<()> {
        validate(path)?;
        if let Some(txid) = tx {
            let t = self.txs.get_mut(&txid).ok_or(XenError::BadTransaction)?;
            if t.caller != caller {
                return Err(XenError::Perm);
            }
            t.writes.insert(path.to_string(), Some(value.to_string()));
            return Ok(());
        }
        self.raw_write(caller, path, value)
    }

    /// Removes a node and its entire subtree.
    pub fn rm(&mut self, caller: DomainId, tx: Option<TxId>, path: &str) -> Result<()> {
        validate(path)?;
        if let Some(txid) = tx {
            let t = self.txs.get_mut(&txid).ok_or(XenError::BadTransaction)?;
            if t.caller != caller {
                return Err(XenError::Perm);
            }
            t.writes.insert(path.to_string(), None);
            return Ok(());
        }
        self.raw_rm(caller, path)
    }

    /// Lists the immediate child names of a directory.
    pub fn directory(&mut self, caller: DomainId, path: &str) -> Result<Vec<String>> {
        validate(path)?;
        if !self.may_read(caller, path) {
            return Err(XenError::Perm);
        }
        if !self.nodes.contains_key(path) {
            return Err(XenError::NoEnt);
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut children = BTreeSet::new();
        for (k, _) in self
            .nodes
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
        {
            let rest = &k[prefix.len()..];
            if let Some(first) = rest.split('/').next() {
                if !first.is_empty() {
                    children.insert(first.to_string());
                }
            }
        }
        Ok(children.into_iter().collect())
    }

    /// Grants `peer` access on `path` (and by inheritance, its subtree).
    pub fn set_perm(
        &mut self,
        caller: DomainId,
        path: &str,
        peer: DomainId,
        perm: Perm,
    ) -> Result<()> {
        validate(path)?;
        if !self.may_write(caller, path) {
            return Err(XenError::Perm);
        }
        let n = self.nodes.get_mut(path).ok_or(XenError::NoEnt)?;
        n.perms.retain(|&(d, _)| d != peer);
        n.perms.push((peer, perm));
        Ok(())
    }

    /// Registers a watch on `path`; fires once immediately.
    pub fn watch(
        &mut self,
        domain: DomainId,
        path: &str,
        token: impl Into<String>,
    ) -> Result<WatchId> {
        validate(path)?;
        let id = WatchId(self.next_watch);
        self.next_watch += 1;
        let token = token.into();
        self.watches.insert(
            id,
            Watch {
                domain,
                path: path.to_string(),
                token: token.clone(),
            },
        );
        // Xen semantics: a watch fires once upon registration so the
        // watcher can synchronize with pre-existing state.
        self.pending.push(WatchEvent {
            domain,
            watch: id,
            token,
            path: path.to_string(),
        });
        Ok(id)
    }

    /// Removes a watch.
    pub fn unwatch(&mut self, id: WatchId) -> Result<()> {
        self.watches.remove(&id).map(|_| ()).ok_or(XenError::NoEnt)
    }

    /// Drains fired watch events (the system layer routes them).
    pub fn take_events(&mut self) -> Vec<WatchEvent> {
        std::mem::take(&mut self.pending)
    }

    /// Starts a transaction.
    pub fn tx_start(&mut self, caller: DomainId) -> TxId {
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.txs.insert(
            id,
            Transaction {
                caller,
                start_gen: self.generation,
                reads: BTreeSet::new(),
                writes: BTreeMap::new(),
            },
        );
        id
    }

    /// Ends a transaction; `commit == false` aborts.
    ///
    /// Returns [`XenError::Again`] if a node read inside the transaction was
    /// modified concurrently — the caller must retry the whole transaction.
    pub fn tx_end(&mut self, caller: DomainId, txid: TxId, commit: bool) -> Result<()> {
        let t = self.txs.remove(&txid).ok_or(XenError::BadTransaction)?;
        if t.caller != caller {
            self.txs.insert(txid, t);
            return Err(XenError::Perm);
        }
        if !commit {
            return Ok(());
        }
        for r in &t.reads {
            if let Some(n) = self.nodes.get(r) {
                if n.last_mod > t.start_gen {
                    return Err(XenError::Again);
                }
            } else {
                // A read node disappeared.
                return Err(XenError::Again);
            }
        }
        for (path, val) in t.writes {
            match val {
                Some(v) => self.raw_write(caller, &path, &v)?,
                None => match self.raw_rm(caller, &path) {
                    Ok(()) | Err(XenError::NoEnt) => {}
                    Err(e) => return Err(e),
                },
            }
        }
        Ok(())
    }

    /// Whether a node exists (no permission check; diagnostics only).
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId(0);
    const DD: DomainId = DomainId(1);
    const GU: DomainId = DomainId(2);

    #[test]
    fn write_read_roundtrip_creates_parents() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/local/domain/1/name", "netbackend")
            .unwrap();
        assert_eq!(
            xs.read(D0, None, "/local/domain/1/name").unwrap(),
            "netbackend"
        );
        // Parents exist as directories.
        assert_eq!(xs.directory(D0, "/local").unwrap(), vec!["domain"]);
        assert_eq!(xs.directory(D0, "/local/domain").unwrap(), vec!["1"]);
    }

    #[test]
    fn path_validation() {
        let mut xs = Xenstore::new();
        assert_eq!(xs.write(D0, None, "no-slash", "x"), Err(XenError::Inval));
        assert_eq!(xs.write(D0, None, "/a//b", "x"), Err(XenError::Inval));
        assert_eq!(xs.write(D0, None, "/a/", "x"), Err(XenError::Inval));
        assert_eq!(xs.write(D0, None, "/a b", "x"), Err(XenError::Inval));
        xs.write(D0, None, "/a-b_c.d:e@f/0", "ok").unwrap();
    }

    #[test]
    fn missing_node_is_noent() {
        let mut xs = Xenstore::new();
        assert_eq!(xs.read(D0, None, "/nope"), Err(XenError::NoEnt));
    }

    #[test]
    fn rm_is_recursive() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/a/b/c", "1").unwrap();
        xs.write(D0, None, "/a/b/d", "2").unwrap();
        xs.write(D0, None, "/a/e", "3").unwrap();
        xs.rm(D0, None, "/a/b").unwrap();
        assert_eq!(xs.read(D0, None, "/a/b/c"), Err(XenError::NoEnt));
        assert_eq!(xs.read(D0, None, "/a/b/d"), Err(XenError::NoEnt));
        assert_eq!(xs.read(D0, None, "/a/e").unwrap(), "3");
        // Sibling with a shared name prefix must survive.
        xs.write(D0, None, "/a/bb", "4").unwrap();
        xs.rm(D0, None, "/a/e").unwrap();
        assert_eq!(xs.read(D0, None, "/a/bb").unwrap(), "4");
    }

    #[test]
    fn unprivileged_domain_owns_what_it_creates() {
        let mut xs = Xenstore::new();
        // Dom0 delegates a home directory to DD.
        xs.write(D0, None, "/local/domain/1", "").unwrap();
        xs.set_perm(D0, "/local/domain/1", DD, Perm::ReadWrite)
            .unwrap();
        xs.write(DD, None, "/local/domain/1/feature", "1").unwrap();
        assert_eq!(xs.read(DD, None, "/local/domain/1/feature").unwrap(), "1");
        // A third domain may not read it.
        assert_eq!(
            xs.read(GU, None, "/local/domain/1/feature"),
            Err(XenError::Perm)
        );
        // Until granted read access on the subtree root.
        xs.set_perm(D0, "/local/domain/1", GU, Perm::Read).unwrap();
        assert_eq!(xs.read(GU, None, "/local/domain/1/feature").unwrap(), "1");
        // But still cannot write.
        assert_eq!(
            xs.write(GU, None, "/local/domain/1/feature", "0"),
            Err(XenError::Perm)
        );
    }

    #[test]
    fn unprivileged_cannot_write_elsewhere() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/local/domain/0/secret", "root")
            .unwrap();
        assert_eq!(
            xs.write(GU, None, "/local/domain/0/secret", "pwned"),
            Err(XenError::Perm)
        );
        assert_eq!(xs.write(GU, None, "/fresh", "x"), Err(XenError::Perm));
    }

    #[test]
    fn watch_fires_on_registration_and_subtree_changes() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/backend/vif", "").unwrap();
        let w = xs.watch(DD, "/backend/vif", "tok").unwrap();
        let evs = xs.take_events();
        assert_eq!(evs.len(), 1, "registration fire");
        assert_eq!(evs[0].path, "/backend/vif");
        assert_eq!(evs[0].watch, w);

        xs.write(D0, None, "/backend/vif/2/0/state", "1").unwrap();
        let evs = xs.take_events();
        // Fires for each created ancestor under the watch plus the leaf.
        assert!(evs.iter().any(|e| e.path == "/backend/vif/2/0/state"));
        assert!(evs.iter().all(|e| e.domain == DD));

        // Unrelated path: silence.
        xs.write(D0, None, "/frontend/x", "1").unwrap();
        assert!(xs.take_events().is_empty());
    }

    #[test]
    fn watch_fires_on_rm() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/backend/vbd/1/0/state", "4").unwrap();
        xs.watch(DD, "/backend/vbd", "t").unwrap();
        xs.take_events();
        xs.rm(D0, None, "/backend/vbd/1").unwrap();
        let evs = xs.take_events();
        assert!(evs.iter().any(|e| e.path == "/backend/vbd/1/0/state"));
    }

    #[test]
    fn unwatch_stops_events() {
        let mut xs = Xenstore::new();
        let w = xs.watch(DD, "/x", "t").unwrap();
        xs.take_events();
        xs.unwatch(w).unwrap();
        xs.write(D0, None, "/x/y", "1").unwrap();
        assert!(xs.take_events().is_empty());
    }

    #[test]
    fn transaction_commit_applies_atomically() {
        let mut xs = Xenstore::new();
        let tx = xs.tx_start(D0);
        xs.write(D0, Some(tx), "/a", "1").unwrap();
        xs.write(D0, Some(tx), "/b", "2").unwrap();
        // Not visible outside before commit.
        assert_eq!(xs.read(D0, None, "/a"), Err(XenError::NoEnt));
        // Visible inside (read-your-writes).
        assert_eq!(xs.read(D0, Some(tx), "/a").unwrap(), "1");
        xs.tx_end(D0, tx, true).unwrap();
        assert_eq!(xs.read(D0, None, "/a").unwrap(), "1");
        assert_eq!(xs.read(D0, None, "/b").unwrap(), "2");
    }

    #[test]
    fn transaction_abort_discards() {
        let mut xs = Xenstore::new();
        let tx = xs.tx_start(D0);
        xs.write(D0, Some(tx), "/a", "1").unwrap();
        xs.tx_end(D0, tx, false).unwrap();
        assert_eq!(xs.read(D0, None, "/a"), Err(XenError::NoEnt));
    }

    #[test]
    fn conflicting_transaction_gets_eagain() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/counter", "1").unwrap();
        let tx = xs.tx_start(D0);
        let v = xs.read(D0, Some(tx), "/counter").unwrap();
        // Concurrent writer bumps the node.
        xs.write(D0, None, "/counter", "5").unwrap();
        xs.write(D0, Some(tx), "/counter", &format!("{}0", v))
            .unwrap();
        assert_eq!(xs.tx_end(D0, tx, true), Err(XenError::Again));
        // Retry succeeds.
        let tx = xs.tx_start(D0);
        let v = xs.read(D0, Some(tx), "/counter").unwrap();
        assert_eq!(v, "5");
        xs.write(D0, Some(tx), "/counter", "50").unwrap();
        xs.tx_end(D0, tx, true).unwrap();
        assert_eq!(xs.read(D0, None, "/counter").unwrap(), "50");
    }

    #[test]
    fn non_conflicting_transactions_commit() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/a", "1").unwrap();
        xs.write(D0, None, "/b", "1").unwrap();
        let tx = xs.tx_start(D0);
        xs.read(D0, Some(tx), "/a").unwrap();
        xs.write(D0, Some(tx), "/a", "2").unwrap();
        // A concurrent write to an *unread* node does not conflict.
        xs.write(D0, None, "/b", "9").unwrap();
        xs.tx_end(D0, tx, true).unwrap();
        assert_eq!(xs.read(D0, None, "/a").unwrap(), "2");
    }

    #[test]
    fn tx_delete_visible_inside() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/a/b", "1").unwrap();
        let tx = xs.tx_start(D0);
        xs.rm(D0, Some(tx), "/a").unwrap();
        assert_eq!(xs.read(D0, Some(tx), "/a/b"), Err(XenError::NoEnt));
        xs.tx_end(D0, tx, true).unwrap();
        assert_eq!(xs.read(D0, None, "/a/b"), Err(XenError::NoEnt));
    }

    #[test]
    fn directory_lists_only_immediate_children() {
        let mut xs = Xenstore::new();
        xs.write(D0, None, "/dev/vif/0/state", "1").unwrap();
        xs.write(D0, None, "/dev/vif/1/state", "1").unwrap();
        xs.write(D0, None, "/dev/vbd/0", "x").unwrap();
        assert_eq!(xs.directory(D0, "/dev").unwrap(), vec!["vbd", "vif"]);
        assert_eq!(xs.directory(D0, "/dev/vif").unwrap(), vec!["0", "1"]);
        assert_eq!(xs.directory(D0, "/missing"), Err(XenError::NoEnt));
    }

    #[test]
    fn quota_limits_unprivileged_node_creation() {
        let mut xs = Xenstore::new();
        // Delegate a subtree to DD with a tiny quota.
        xs.write(D0, None, "/local/domain/1", "").unwrap();
        xs.set_perm(D0, "/local/domain/1", DD, Perm::ReadWrite)
            .unwrap();
        xs.set_quota(DD, 5);
        for i in 0..5 {
            xs.write(DD, None, &format!("/local/domain/1/n{i}"), "x")
                .unwrap();
        }
        assert_eq!(xs.owned_nodes(DD), 5);
        assert_eq!(
            xs.write(DD, None, "/local/domain/1/n5", "x"),
            Err(XenError::Quota)
        );
        // Overwriting an existing node costs nothing.
        xs.write(DD, None, "/local/domain/1/n0", "y").unwrap();
        // Removing frees quota.
        xs.rm(DD, None, "/local/domain/1/n1").unwrap();
        xs.write(DD, None, "/local/domain/1/n5", "x").unwrap();
    }

    #[test]
    fn dom0_is_quota_exempt() {
        let mut xs = Xenstore::new();
        xs.set_quota(D0, 1); // ignored
        for i in 0..50 {
            xs.write(D0, None, &format!("/a/b{i}"), "x").unwrap();
        }
        assert_eq!(xs.quota_of(D0), usize::MAX);
    }

    #[test]
    fn bad_transaction_id_rejected() {
        let mut xs = Xenstore::new();
        assert_eq!(
            xs.read(D0, Some(TxId(42)), "/x"),
            Err(XenError::BadTransaction)
        );
        assert_eq!(xs.tx_end(D0, TxId(42), true), Err(XenError::BadTransaction));
    }
}
