//! Simulated Xen hypervisor substrate for the Kite reproduction.
//!
//! This crate reimplements, as ordinary testable Rust data structures, the
//! Xen mechanisms that Kite's driver domains are built on:
//!
//! * [`domain`] — domain identities and lifecycle;
//! * [`mem`] — machine pages with real bytes and ownership;
//! * [`grant`] — grant tables: share, map, and hypervisor-copy pages across
//!   domains with real permission checks;
//! * [`evtchn`] — event channels (virtual interrupts) with pending/mask
//!   coalescing semantics;
//! * [`xenstore`] — the transactional configuration database with watches;
//! * [`xenbus`] — the PV device connection state machine and path scheme;
//! * [`ring`] — the shared I/O ring protocol including notification
//!   suppression, byte-exact with `xen/include/public/io/ring.h`;
//! * [`netif`] / [`blkif`] — network and block PV ABIs;
//! * [`hypercall`] — the cost model and per-domain accounting;
//! * [`pci`] / [`iommu`] — passthrough and DMA confinement;
//! * [`hypervisor`] — the composed machine with charged operation wrappers.
//!
//! Data movement is real (bytes flow between real pages); only *time* is
//! modeled, via [`hypercall::CostModel`].

pub mod blkif;
pub mod domain;
pub mod error;
pub mod evtchn;
pub mod fault;
pub mod grant;
pub mod hypercall;
pub mod hypervisor;
pub mod iommu;
pub mod mem;
pub mod netif;
pub mod pci;
pub mod ring;
pub mod xenbus;
pub mod xenstore;

pub use domain::{Domain, DomainId, DomainKind, DomainState, DomainTable};
pub use error::{Result, XenError};
pub use evtchn::{EventChannels, Notification, Port};
pub use fault::{FaultPlan, FaultStats};
pub use grant::{
    CopyMode, CopySide, CopyStatus, GrantCopyOp, GrantRef, GrantTables, MapHandle, Mapping,
};
pub use hypercall::{CostModel, HypercallKind, HypercallMeter};
pub use hypervisor::{BatchResult, Hypervisor};
pub use iommu::{Iommu, IommuFault};
pub use kite_trace::reqtrace::{ReqId, ReqTracer, SlotClass, Stage as ReqStage};
pub use mem::{MachineMemory, PageId, PAGE_SIZE};
pub use pci::{Bdf, PciBus, PciClass, PciDevice};
pub use ring::{BackRing, FrontRing, RingEntry};
pub use xenbus::{DeviceKind, DevicePaths, QueueMode, XenbusState};
pub use xenstore::{Perm, TxId, WatchEvent, WatchId, Xenstore};
