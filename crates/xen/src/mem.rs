//! Simulated machine memory.
//!
//! All inter-domain data movement in the reproduction goes through real
//! 4 KiB pages owned by domains, so grant-table bugs (out-of-bounds copies,
//! writes through read-only grants, use-after-revoke) are actual detectable
//! failures rather than modeling hand-waves.

use crate::domain::{DomainId, DomainTable};
use crate::error::{Result, XenError};

/// Size of one machine page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A machine frame number — a global handle to one page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u64);

struct Frame {
    owner: DomainId,
    data: Box<[u8; PAGE_SIZE]>,
}

/// All machine memory, indexed by [`PageId`].
///
/// Pages are never physically reused after free, which turns use-after-free
/// into a deterministic [`XenError::BadPage`] instead of silent corruption.
#[derive(Default)]
pub struct MachineMemory {
    frames: Vec<Option<Frame>>,
}

impl MachineMemory {
    /// Creates an empty memory.
    pub fn new() -> MachineMemory {
        MachineMemory::default()
    }

    /// Allocates a zeroed page for `owner`, honoring its reservation.
    pub fn alloc(&mut self, domains: &mut DomainTable, owner: DomainId) -> Result<PageId> {
        let dom = domains.get_mut(owner)?;
        if dom.pages_allocated >= dom.page_limit() {
            return Err(XenError::OutOfMemory);
        }
        dom.pages_allocated += 1;
        let id = PageId(self.frames.len() as u64);
        self.frames.push(Some(Frame {
            owner,
            data: Box::new([0u8; PAGE_SIZE]),
        }));
        Ok(id)
    }

    /// Frees a page. Only the owner may free.
    pub fn free(&mut self, domains: &mut DomainTable, owner: DomainId, page: PageId) -> Result<()> {
        let slot = self
            .frames
            .get_mut(page.0 as usize)
            .ok_or(XenError::BadPage)?;
        match slot {
            Some(f) if f.owner == owner => {
                *slot = None;
                if let Ok(d) = domains.get_mut(owner) {
                    d.pages_allocated = d.pages_allocated.saturating_sub(1);
                }
                Ok(())
            }
            Some(_) => Err(XenError::Perm),
            None => Err(XenError::BadPage),
        }
    }

    /// The owner of a page.
    pub fn owner(&self, page: PageId) -> Result<DomainId> {
        self.frame(page).map(|f| f.owner)
    }

    fn frame(&self, page: PageId) -> Result<&Frame> {
        self.frames
            .get(page.0 as usize)
            .and_then(|f| f.as_ref())
            .ok_or(XenError::BadPage)
    }

    fn frame_mut(&mut self, page: PageId) -> Result<&mut Frame> {
        self.frames
            .get_mut(page.0 as usize)
            .and_then(|f| f.as_mut())
            .ok_or(XenError::BadPage)
    }

    /// Read-only view of a page's bytes.
    pub fn page(&self, page: PageId) -> Result<&[u8; PAGE_SIZE]> {
        self.frame(page).map(|f| &*f.data)
    }

    /// Mutable view of a page's bytes.
    ///
    /// This is the *hypervisor's* view: grant permission checks are done by
    /// the grant table before handing callers a page id to use here.
    pub fn page_mut(&mut self, page: PageId) -> Result<&mut [u8; PAGE_SIZE]> {
        self.frame_mut(page).map(|f| &mut *f.data)
    }

    /// Copies bytes between two pages with bounds checks.
    ///
    /// `src` and `dst` may be the same page (copy within a page); ranges
    /// must not overlap in that case or the result is the same as
    /// `copy_within` (we forbid overlap for simplicity and return
    /// [`XenError::OutOfBounds`]).
    pub fn copy(
        &mut self,
        src: PageId,
        src_off: usize,
        dst: PageId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        if src_off + len > PAGE_SIZE || dst_off + len > PAGE_SIZE {
            return Err(XenError::OutOfBounds);
        }
        if src == dst {
            let overlap = src_off < dst_off + len && dst_off < src_off + len;
            if overlap && len > 0 {
                return Err(XenError::OutOfBounds);
            }
            let f = self.frame_mut(src)?;
            let (a, b) = if src_off < dst_off {
                let (l, r) = f.data.split_at_mut(dst_off);
                (&l[src_off..src_off + len], &mut r[..len])
            } else {
                let (l, r) = f.data.split_at_mut(src_off);
                (&r[..len], &mut l[dst_off..dst_off + len])
            };
            // Clippy: manual copy is fine; slices proven disjoint above.
            b.copy_from_slice(a);
            return Ok(());
        }
        // Distinct pages: read then write (two lookups keeps borrowck happy
        // without unsafe).
        let tmp: Vec<u8> = {
            let f = self.frame(src)?;
            f.data[src_off..src_off + len].to_vec()
        };
        let g = self.frame_mut(dst)?;
        g.data[dst_off..dst_off + len].copy_from_slice(&tmp);
        Ok(())
    }

    /// Number of live pages (for leak assertions in tests).
    pub fn live_pages(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainKind;

    fn setup() -> (MachineMemory, DomainTable, DomainId, DomainId) {
        let mut t = DomainTable::new();
        let d0 = t.create("Domain-0", DomainKind::Dom0, 64, 4);
        let dd = t.create("dd", DomainKind::Driver, 1, 1); // 256-page limit
        (MachineMemory::new(), t, d0, dd)
    }

    #[test]
    fn alloc_zeroed_and_owned() {
        let (mut m, mut t, d0, _) = setup();
        let p = m.alloc(&mut t, d0).unwrap();
        assert_eq!(m.owner(p).unwrap(), d0);
        assert!(m.page(p).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn reservation_enforced() {
        let (mut m, mut t, _, dd) = setup();
        for _ in 0..256 {
            m.alloc(&mut t, dd).unwrap();
        }
        assert_eq!(m.alloc(&mut t, dd), Err(XenError::OutOfMemory));
    }

    #[test]
    fn free_returns_quota_and_forbids_reuse() {
        let (mut m, mut t, _, dd) = setup();
        let p = m.alloc(&mut t, dd).unwrap();
        m.free(&mut t, dd, p).unwrap();
        assert_eq!(m.page(p).err(), Some(XenError::BadPage));
        assert_eq!(m.free(&mut t, dd, p), Err(XenError::BadPage));
        assert_eq!(t.get(dd).unwrap().pages_allocated, 0);
    }

    #[test]
    fn only_owner_frees() {
        let (mut m, mut t, d0, dd) = setup();
        let p = m.alloc(&mut t, dd).unwrap();
        assert_eq!(m.free(&mut t, d0, p), Err(XenError::Perm));
    }

    #[test]
    fn copy_moves_bytes() {
        let (mut m, mut t, d0, dd) = setup();
        let a = m.alloc(&mut t, d0).unwrap();
        let b = m.alloc(&mut t, dd).unwrap();
        m.page_mut(a).unwrap()[100..104].copy_from_slice(b"kite");
        m.copy(a, 100, b, 200, 4).unwrap();
        assert_eq!(&m.page(b).unwrap()[200..204], b"kite");
    }

    #[test]
    fn copy_bounds_checked() {
        let (mut m, mut t, d0, _) = setup();
        let a = m.alloc(&mut t, d0).unwrap();
        let b = m.alloc(&mut t, d0).unwrap();
        assert_eq!(m.copy(a, 4000, b, 0, 200), Err(XenError::OutOfBounds));
        assert_eq!(m.copy(a, 0, b, 4000, 200), Err(XenError::OutOfBounds));
        // Exactly at the boundary is fine.
        m.copy(a, 4000, b, 0, 96).unwrap();
    }

    #[test]
    fn same_page_disjoint_copy_allowed() {
        let (mut m, mut t, d0, _) = setup();
        let a = m.alloc(&mut t, d0).unwrap();
        m.page_mut(a).unwrap()[0..4].copy_from_slice(b"abcd");
        m.copy(a, 0, a, 8, 4).unwrap();
        assert_eq!(&m.page(a).unwrap()[8..12], b"abcd");
        // Reverse direction too.
        m.copy(a, 8, a, 100, 4).unwrap();
        assert_eq!(&m.page(a).unwrap()[100..104], b"abcd");
    }

    #[test]
    fn same_page_overlap_rejected() {
        let (mut m, mut t, d0, _) = setup();
        let a = m.alloc(&mut t, d0).unwrap();
        assert_eq!(m.copy(a, 0, a, 2, 4), Err(XenError::OutOfBounds));
    }

    #[test]
    fn live_pages_counts() {
        let (mut m, mut t, d0, dd) = setup();
        let p1 = m.alloc(&mut t, d0).unwrap();
        let _p2 = m.alloc(&mut t, dd).unwrap();
        assert_eq!(m.live_pages(), 2);
        m.free(&mut t, d0, p1).unwrap();
        assert_eq!(m.live_pages(), 1);
    }
}
