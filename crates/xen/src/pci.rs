//! PCI passthrough: assigning physical devices to driver domains.
//!
//! Mirrors the `xl pci-assignable-add` / `pci=[ "BDF" ]` workflow from the
//! paper's artifact appendix: Dom0 first marks a device assignable (binds
//! it to `xen-pciback`), then a domain config claims it.

use core::fmt;
use std::collections::HashMap;
use std::str::FromStr;

use crate::domain::DomainId;
use crate::error::{Result, XenError};

/// A PCI bus/device/function address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Bdf {
    /// Bus number.
    pub bus: u8,
    /// Device number (0–31).
    pub dev: u8,
    /// Function number (0–7).
    pub func: u8,
}

impl fmt::Display for Bdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}:{:02x}.{:x}", self.bus, self.dev, self.func)
    }
}

impl FromStr for Bdf {
    type Err = XenError;

    fn from_str(s: &str) -> Result<Bdf> {
        let (bus, rest) = s.split_once(':').ok_or(XenError::Inval)?;
        let (dev, func) = rest.split_once('.').ok_or(XenError::Inval)?;
        Ok(Bdf {
            bus: u8::from_str_radix(bus, 16).map_err(|_| XenError::Inval)?,
            dev: u8::from_str_radix(dev, 16).map_err(|_| XenError::Inval)?,
            func: u8::from_str_radix(func, 16).map_err(|_| XenError::Inval)?,
        })
    }
}

/// The class of physical device behind a BDF.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PciClass {
    /// A network interface controller.
    Network,
    /// An NVMe storage controller.
    Nvme,
}

/// A physical PCI device present in the machine.
#[derive(Clone, Debug)]
pub struct PciDevice {
    /// Its address.
    pub bdf: Bdf,
    /// Device class.
    pub class: PciClass,
    /// Marketing name (`lspci` style).
    pub name: String,
}

/// PCI passthrough state for the whole machine.
#[derive(Default)]
pub struct PciBus {
    devices: HashMap<Bdf, PciDevice>,
    assignable: HashMap<Bdf, bool>,
    assigned: HashMap<Bdf, DomainId>,
}

impl PciBus {
    /// Creates an empty bus.
    pub fn new() -> PciBus {
        PciBus::default()
    }

    /// Registers a physical device (platform construction).
    pub fn add_device(&mut self, dev: PciDevice) {
        self.assignable.insert(dev.bdf, false);
        self.devices.insert(dev.bdf, dev);
    }

    /// `xl pci-assignable-add`: marks a device available for passthrough.
    pub fn make_assignable(&mut self, bdf: Bdf) -> Result<()> {
        match self.assignable.get_mut(&bdf) {
            Some(a) => {
                *a = true;
                Ok(())
            }
            None => Err(XenError::PciUnavailable),
        }
    }

    /// Assigns an assignable, unassigned device to a domain.
    pub fn assign(&mut self, bdf: Bdf, dom: DomainId) -> Result<()> {
        if !self.assignable.get(&bdf).copied().unwrap_or(false) {
            return Err(XenError::PciUnavailable);
        }
        if self.assigned.contains_key(&bdf) {
            return Err(XenError::PciUnavailable);
        }
        self.assigned.insert(bdf, dom);
        Ok(())
    }

    /// Detaches a device from its domain.
    pub fn detach(&mut self, bdf: Bdf, dom: DomainId) -> Result<()> {
        match self.assigned.get(&bdf) {
            Some(&d) if d == dom => {
                self.assigned.remove(&bdf);
                Ok(())
            }
            Some(_) => Err(XenError::Perm),
            None => Err(XenError::PciUnavailable),
        }
    }

    /// The domain a device is assigned to, if any.
    pub fn owner(&self, bdf: Bdf) -> Option<DomainId> {
        self.assigned.get(&bdf).copied()
    }

    /// Device info lookup.
    pub fn device(&self, bdf: Bdf) -> Option<&PciDevice> {
        self.devices.get(&bdf)
    }

    /// Devices assigned to `dom`.
    pub fn devices_of(&self, dom: DomainId) -> Vec<&PciDevice> {
        self.assigned
            .iter()
            .filter(|&(_, &d)| d == dom)
            .filter_map(|(bdf, _)| self.devices.get(bdf))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> PciDevice {
        PciDevice {
            bdf: "03:00.0".parse().unwrap(),
            class: PciClass::Network,
            name: "Intel 82599ES 10-Gigabit SFI/SFP+".into(),
        }
    }

    #[test]
    fn bdf_parse_display_roundtrip() {
        let b: Bdf = "03:00.1".parse().unwrap();
        assert_eq!(b.to_string(), "03:00.1");
        let b: Bdf = "af:1f.7".parse().unwrap();
        assert_eq!((b.bus, b.dev, b.func), (0xaf, 0x1f, 7));
        assert!("zz:00.0".parse::<Bdf>().is_err());
        assert!("03-00.0".parse::<Bdf>().is_err());
    }

    #[test]
    fn passthrough_workflow() {
        let mut bus = PciBus::new();
        let d = nic();
        let bdf = d.bdf;
        bus.add_device(d);
        // Must be made assignable first.
        assert_eq!(bus.assign(bdf, DomainId(1)), Err(XenError::PciUnavailable));
        bus.make_assignable(bdf).unwrap();
        bus.assign(bdf, DomainId(1)).unwrap();
        assert_eq!(bus.owner(bdf), Some(DomainId(1)));
        // Double assignment rejected.
        assert_eq!(bus.assign(bdf, DomainId(2)), Err(XenError::PciUnavailable));
        // Only the owner detaches.
        assert_eq!(bus.detach(bdf, DomainId(2)), Err(XenError::Perm));
        bus.detach(bdf, DomainId(1)).unwrap();
        assert_eq!(bus.owner(bdf), None);
    }

    #[test]
    fn devices_of_lists_assignments() {
        let mut bus = PciBus::new();
        let d = nic();
        let bdf = d.bdf;
        bus.add_device(d);
        bus.make_assignable(bdf).unwrap();
        bus.assign(bdf, DomainId(1)).unwrap();
        let devs = bus.devices_of(DomainId(1));
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].class, PciClass::Network);
        assert!(bus.devices_of(DomainId(2)).is_empty());
    }

    #[test]
    fn unknown_device_not_assignable() {
        let mut bus = PciBus::new();
        assert_eq!(
            bus.make_assignable("00:00.0".parse().unwrap()),
            Err(XenError::PciUnavailable)
        );
    }
}
