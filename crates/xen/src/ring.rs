//! The Xen shared I/O ring protocol (`xen/include/public/io/ring.h`).
//!
//! A ring lives in a single granted 4 KiB page shared between a frontend
//! (request producer / response consumer) and a backend (request consumer /
//! response producer). Requests and responses share the same slot array —
//! a slot holding a served request is reused for its response.
//!
//! The shared header carries four free-running `u32` indices:
//!
//! ```text
//! offset 0  req_prod   — frontend publishes requests up to here
//! offset 4  req_event  — backend asks to be notified when req_prod passes this
//! offset 8  rsp_prod   — backend publishes responses up to here
//! offset 12 rsp_event  — frontend asks to be notified when rsp_prod passes this
//! offset 64 slots[]    — power-of-two request/response union slots
//! ```
//!
//! The `*_event` fields implement *notification suppression*: a producer
//! only sends an event-channel notification when the consumer declared
//! interest past the previous producer index — exactly the
//! `RING_PUSH_*_AND_CHECK_NOTIFY` / `RING_FINAL_CHECK_FOR_*` macro dance.
//! Getting this right matters for performance fidelity: it is what lets
//! batched rings avoid a hypercall per packet.

use core::marker::PhantomData;

use crate::error::{Result, XenError};
use crate::mem::PAGE_SIZE;

/// Byte offset of the first slot in the shared page.
pub const RING_HEADER_SIZE: usize = 64;

/// A fixed-size entry serializable into a ring slot.
pub trait RingEntry: Clone {
    /// Serialized size in bytes.
    const SIZE: usize;
    /// Writes the entry into `buf` (`buf.len() == Self::SIZE`).
    fn write_to(&self, buf: &mut [u8]);
    /// Reads an entry back from `buf`.
    fn read_from(buf: &[u8]) -> Self;
}

/// Number of slots for a ring whose slots must hold both `Req` and `Rsp`.
///
/// Mirrors `__CONST_RING_SIZE`: the largest power of two that fits.
pub const fn ring_size(req_size: usize, rsp_size: usize) -> u32 {
    let slot = if req_size > rsp_size {
        req_size
    } else {
        rsp_size
    };
    let max = (PAGE_SIZE - RING_HEADER_SIZE) / slot;
    // Largest power of two <= max.
    let mut n = 1u32;
    while (n as usize) * 2 <= max {
        n *= 2;
    }
    n
}

const fn slot_bytes(req_size: usize, rsp_size: usize) -> usize {
    if req_size > rsp_size {
        req_size
    } else {
        rsp_size
    }
}

fn read_u32(page: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([page[off], page[off + 1], page[off + 2], page[off + 3]])
}

fn write_u32(page: &mut [u8], off: usize, v: u32) {
    page[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Raw accessors for the shared header (used by both halves and by tests
/// that deliberately corrupt rings).
pub mod sring {
    use super::{read_u32, write_u32};

    /// Reads `req_prod`.
    pub fn req_prod(page: &[u8]) -> u32 {
        read_u32(page, 0)
    }
    /// Writes `req_prod`.
    pub fn set_req_prod(page: &mut [u8], v: u32) {
        write_u32(page, 0, v)
    }
    /// Reads `req_event`.
    pub fn req_event(page: &[u8]) -> u32 {
        read_u32(page, 4)
    }
    /// Writes `req_event`.
    pub fn set_req_event(page: &mut [u8], v: u32) {
        write_u32(page, 4, v)
    }
    /// Reads `rsp_prod`.
    pub fn rsp_prod(page: &[u8]) -> u32 {
        read_u32(page, 8)
    }
    /// Writes `rsp_prod`.
    pub fn set_rsp_prod(page: &mut [u8], v: u32) {
        write_u32(page, 8, v)
    }
    /// Reads `rsp_event`.
    pub fn rsp_event(page: &[u8]) -> u32 {
        read_u32(page, 12)
    }
    /// Writes `rsp_event`.
    pub fn set_rsp_event(page: &mut [u8], v: u32) {
        write_u32(page, 12, v)
    }

    /// `SHARED_RING_INIT`: zero producer indices, arm both event fields.
    pub fn init(page: &mut [u8]) {
        set_req_prod(page, 0);
        set_rsp_prod(page, 0);
        set_req_event(page, 1);
        set_rsp_event(page, 1);
    }
}

fn slot_range(idx: u32, size: u32, slot: usize) -> core::ops::Range<usize> {
    let i = (idx & (size - 1)) as usize;
    let start = RING_HEADER_SIZE + i * slot;
    start..start + slot
}

/// Frontend half: produces requests, consumes responses.
#[derive(Clone, Debug)]
pub struct FrontRing<Req, Rsp> {
    req_prod_pvt: u32,
    rsp_cons: u32,
    size: u32,
    _marker: PhantomData<(Req, Rsp)>,
}

impl<Req: RingEntry, Rsp: RingEntry> Default for FrontRing<Req, Rsp> {
    fn default() -> Self {
        FrontRing {
            req_prod_pvt: 0,
            rsp_cons: 0,
            size: ring_size(Req::SIZE, Rsp::SIZE),
            _marker: PhantomData,
        }
    }
}

impl<Req: RingEntry, Rsp: RingEntry> FrontRing<Req, Rsp> {
    /// `FRONT_RING_INIT` — also initializes the shared page.
    pub fn init(page: &mut [u8]) -> Self {
        sring::init(page);
        Self::default()
    }

    /// Number of slots in the ring.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Free request slots (`RING_FREE_REQUESTS`).
    pub fn free_requests(&self) -> u32 {
        self.size - (self.req_prod_pvt.wrapping_sub(self.rsp_cons))
    }

    /// True when the ring is full (`RING_FULL`).
    pub fn full(&self) -> bool {
        self.free_requests() == 0
    }

    /// Stages a request at the private producer index.
    pub fn push_request(&mut self, page: &mut [u8], req: &Req) -> Result<()> {
        if self.full() {
            return Err(XenError::RingFull);
        }
        let mut buf = vec![0u8; Req::SIZE];
        req.write_to(&mut buf);
        let r = slot_range(
            self.req_prod_pvt,
            self.size,
            slot_bytes(Req::SIZE, Rsp::SIZE),
        );
        page[r.start..r.start + Req::SIZE].copy_from_slice(&buf);
        self.req_prod_pvt = self.req_prod_pvt.wrapping_add(1);
        Ok(())
    }

    /// `RING_PUSH_REQUESTS_AND_CHECK_NOTIFY`: publishes staged requests.
    ///
    /// Returns `true` when the backend must be notified via the event
    /// channel (it armed `req_event` past the old producer index).
    pub fn push_requests(&mut self, page: &mut [u8]) -> bool {
        let old = sring::req_prod(page);
        let new = self.req_prod_pvt;
        sring::set_req_prod(page, new);
        let req_event = sring::req_event(page);
        new.wrapping_sub(req_event) < new.wrapping_sub(old)
    }

    /// Unconsumed responses available (`RING_HAS_UNCONSUMED_RESPONSES`).
    pub fn unconsumed_responses(&self, page: &[u8]) -> u32 {
        sring::rsp_prod(page).wrapping_sub(self.rsp_cons)
    }

    /// Consumes the next response, if any.
    pub fn consume_response(&mut self, page: &[u8]) -> Result<Option<Rsp>> {
        let avail = self.unconsumed_responses(page);
        if avail == 0 {
            return Ok(None);
        }
        if avail > self.size {
            return Err(XenError::RingCorrupt);
        }
        let r = slot_range(self.rsp_cons, self.size, slot_bytes(Req::SIZE, Rsp::SIZE));
        let rsp = Rsp::read_from(&page[r.start..r.start + Rsp::SIZE]);
        self.rsp_cons = self.rsp_cons.wrapping_add(1);
        Ok(Some(rsp))
    }

    /// `RING_FINAL_CHECK_FOR_RESPONSES`: arms `rsp_event` and re-checks.
    ///
    /// Returns `true` when responses slipped in between the last consume and
    /// arming — the caller must loop again instead of sleeping.
    pub fn final_check_for_responses(&mut self, page: &mut [u8]) -> bool {
        if self.unconsumed_responses(page) > 0 {
            return true;
        }
        sring::set_rsp_event(page, self.rsp_cons.wrapping_add(1));
        self.unconsumed_responses(page) > 0
    }
}

/// Backend half: consumes requests, produces responses.
#[derive(Clone, Debug)]
pub struct BackRing<Req, Rsp> {
    rsp_prod_pvt: u32,
    req_cons: u32,
    size: u32,
    _marker: PhantomData<(Req, Rsp)>,
}

impl<Req: RingEntry, Rsp: RingEntry> Default for BackRing<Req, Rsp> {
    fn default() -> Self {
        BackRing {
            rsp_prod_pvt: 0,
            req_cons: 0,
            size: ring_size(Req::SIZE, Rsp::SIZE),
            _marker: PhantomData,
        }
    }
}

impl<Req: RingEntry, Rsp: RingEntry> BackRing<Req, Rsp> {
    /// `BACK_RING_INIT` — attaches to an already-initialized shared page.
    pub fn attach() -> Self {
        Self::default()
    }

    /// Number of slots in the ring.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Unconsumed requests available (`RING_HAS_UNCONSUMED_REQUESTS`).
    pub fn unconsumed_requests(&self, page: &[u8]) -> u32 {
        sring::req_prod(page).wrapping_sub(self.req_cons)
    }

    /// The free-running request-consumer index — the backend's progress
    /// watermark. Health monitors compare successive samples: a ring with
    /// unconsumed requests whose `req_cons` has not moved is stalled.
    pub fn req_cons(&self) -> u32 {
        self.req_cons
    }

    /// Consumes the next request, if any.
    pub fn consume_request(&mut self, page: &[u8]) -> Result<Option<Req>> {
        let avail = self.unconsumed_requests(page);
        if avail == 0 {
            return Ok(None);
        }
        if avail > self.size {
            return Err(XenError::RingCorrupt);
        }
        let r = slot_range(self.req_cons, self.size, slot_bytes(Req::SIZE, Rsp::SIZE));
        let req = Req::read_from(&page[r.start..r.start + Req::SIZE]);
        self.req_cons = self.req_cons.wrapping_add(1);
        Ok(Some(req))
    }

    /// Free response slots: responses may only fill slots whose requests
    /// were already consumed.
    pub fn free_responses(&self) -> u32 {
        self.req_cons.wrapping_sub(self.rsp_prod_pvt)
    }

    /// Stages a response at the private producer index.
    pub fn push_response(&mut self, page: &mut [u8], rsp: &Rsp) -> Result<()> {
        if self.free_responses() == 0 {
            return Err(XenError::RingFull);
        }
        let mut buf = vec![0u8; Rsp::SIZE];
        rsp.write_to(&mut buf);
        let r = slot_range(
            self.rsp_prod_pvt,
            self.size,
            slot_bytes(Req::SIZE, Rsp::SIZE),
        );
        page[r.start..r.start + Rsp::SIZE].copy_from_slice(&buf);
        self.rsp_prod_pvt = self.rsp_prod_pvt.wrapping_add(1);
        Ok(())
    }

    /// `RING_PUSH_RESPONSES_AND_CHECK_NOTIFY`.
    pub fn push_responses(&mut self, page: &mut [u8]) -> bool {
        let old = sring::rsp_prod(page);
        let new = self.rsp_prod_pvt;
        sring::set_rsp_prod(page, new);
        let rsp_event = sring::rsp_event(page);
        new.wrapping_sub(rsp_event) < new.wrapping_sub(old)
    }

    /// `RING_FINAL_CHECK_FOR_REQUESTS`: arms `req_event` and re-checks.
    pub fn final_check_for_requests(&mut self, page: &mut [u8]) -> bool {
        if self.unconsumed_requests(page) > 0 {
            return true;
        }
        sring::set_req_event(page, self.req_cons.wrapping_add(1));
        self.unconsumed_requests(page) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 8-byte entry for protocol tests.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct E(u64);

    impl RingEntry for E {
        const SIZE: usize = 8;
        fn write_to(&self, buf: &mut [u8]) {
            buf.copy_from_slice(&self.0.to_le_bytes());
        }
        fn read_from(buf: &[u8]) -> Self {
            E(u64::from_le_bytes(buf[..8].try_into().unwrap()))
        }
    }

    fn page() -> Vec<u8> {
        vec![0u8; PAGE_SIZE]
    }

    #[test]
    fn ring_size_is_power_of_two() {
        // 8-byte slots: (4096-64)/8 = 504 -> 256.
        assert_eq!(ring_size(8, 8), 256);
        // Xen blkif: 112-byte requests -> (4032/112)=36 -> 32 slots.
        assert_eq!(ring_size(112, 16), 32);
        // Xen netif: 16-byte union -> 252 -> 128 slots.
        assert_eq!(ring_size(12, 16), 128);
    }

    #[test]
    fn request_roundtrip() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        f.push_request(&mut p, &E(0xdead)).unwrap();
        f.push_request(&mut p, &E(0xbeef)).unwrap();
        // Backend sees nothing until the producer publishes.
        assert_eq!(b.unconsumed_requests(&p), 0);
        let notify = f.push_requests(&mut p);
        assert!(notify, "fresh ring has req_event armed at 1");
        assert_eq!(b.unconsumed_requests(&p), 2);
        assert_eq!(b.consume_request(&p).unwrap(), Some(E(0xdead)));
        assert_eq!(b.consume_request(&p).unwrap(), Some(E(0xbeef)));
        assert_eq!(b.consume_request(&p).unwrap(), None);
    }

    #[test]
    fn response_roundtrip_reuses_slots() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        f.push_request(&mut p, &E(1)).unwrap();
        f.push_requests(&mut p);
        assert_eq!(b.free_responses(), 0, "no consumed request yet");
        b.consume_request(&p).unwrap();
        assert_eq!(b.free_responses(), 1);
        b.push_response(&mut p, &E(101)).unwrap();
        let notify = b.push_responses(&mut p);
        assert!(notify);
        assert_eq!(f.consume_response(&p).unwrap(), Some(E(101)));
        assert_eq!(f.consume_response(&p).unwrap(), None);
    }

    #[test]
    fn ring_full_rejected() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        for i in 0..f.size() {
            f.push_request(&mut p, &E(i as u64)).unwrap();
        }
        assert!(f.full());
        assert_eq!(f.push_request(&mut p, &E(999)), Err(XenError::RingFull));
    }

    #[test]
    fn slots_free_after_response_consumed() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        let n = f.size();
        for i in 0..n {
            f.push_request(&mut p, &E(i as u64)).unwrap();
        }
        f.push_requests(&mut p);
        assert!(f.full());
        // Backend serves one.
        b.consume_request(&p).unwrap();
        b.push_response(&mut p, &E(100)).unwrap();
        b.push_responses(&mut p);
        // Frontend must consume the response to free the slot.
        assert!(f.full());
        f.consume_response(&p).unwrap();
        assert_eq!(f.free_requests(), 1);
        f.push_request(&mut p, &E(7)).unwrap();
    }

    #[test]
    fn wraparound_many_times_preserves_order() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        let mut next_val = 0u64;
        let mut expect = 0u64;
        // 10x ring size in small irregular batches.
        for round in 0..(10 * f.size() as u64) {
            let batch = (round % 3) + 1;
            for _ in 0..batch {
                if !f.full() {
                    f.push_request(&mut p, &E(next_val)).unwrap();
                    next_val += 1;
                }
            }
            f.push_requests(&mut p);
            while let Some(req) = b.consume_request(&p).unwrap() {
                assert_eq!(req, E(expect));
                expect += 1;
                b.push_response(&mut p, &E(req.0 | 0x8000_0000_0000_0000))
                    .unwrap();
            }
            b.push_responses(&mut p);
            while let Some(_r) = f.consume_response(&p).unwrap() {}
        }
        assert!(expect > 500, "exercised wraparound");
    }

    #[test]
    fn notification_suppression_requests() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        // First push notifies (event armed at 1).
        f.push_request(&mut p, &E(1)).unwrap();
        assert!(f.push_requests(&mut p));
        // Backend consumes but does NOT re-arm: further pushes are silent.
        b.consume_request(&p).unwrap();
        f.push_request(&mut p, &E(2)).unwrap();
        assert!(!f.push_requests(&mut p), "backend did not ask for events");
        // Backend drains then arms via final-check; next push notifies.
        b.consume_request(&p).unwrap();
        assert!(!b.final_check_for_requests(&mut p));
        f.push_request(&mut p, &E(3)).unwrap();
        assert!(f.push_requests(&mut p));
    }

    #[test]
    fn final_check_catches_race() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        f.push_request(&mut p, &E(1)).unwrap();
        f.push_requests(&mut p);
        b.consume_request(&p).unwrap();
        // A request sneaks in before the backend arms the event.
        f.push_request(&mut p, &E(2)).unwrap();
        f.push_requests(&mut p);
        // final_check must report more work instead of letting the backend
        // sleep (the classic lost-wakeup race the protocol exists to solve).
        assert!(b.final_check_for_requests(&mut p));
    }

    #[test]
    fn corrupt_producer_detected() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        f.push_request(&mut p, &E(1)).unwrap();
        f.push_requests(&mut p);
        // A malicious frontend lies about req_prod.
        sring::set_req_prod(&mut p, 100_000);
        assert_eq!(b.consume_request(&p), Err(XenError::RingCorrupt));
    }

    #[test]
    fn response_notification_suppression() {
        let mut p = page();
        let mut f: FrontRing<E, E> = FrontRing::init(&mut p);
        let mut b: BackRing<E, E> = BackRing::attach();
        for i in 0..4 {
            f.push_request(&mut p, &E(i)).unwrap();
        }
        f.push_requests(&mut p);
        for _ in 0..4 {
            b.consume_request(&p).unwrap();
        }
        b.push_response(&mut p, &E(0)).unwrap();
        assert!(b.push_responses(&mut p), "rsp_event armed at 1 initially");
        f.consume_response(&p).unwrap();
        // Frontend has not re-armed: silent.
        b.push_response(&mut p, &E(1)).unwrap();
        assert!(!b.push_responses(&mut p));
        // Frontend drains and arms.
        while f.consume_response(&p).unwrap().is_some() {}
        assert!(!f.final_check_for_responses(&mut p));
        b.push_response(&mut p, &E(2)).unwrap();
        assert!(b.push_responses(&mut p));
    }
}
