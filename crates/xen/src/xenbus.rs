//! Xenbus: the PV device connection state machine over xenstore.
//!
//! Each PV device has a *frontend area* under the guest's xenstore home and
//! a *backend area* under the driver domain's home. Both sides publish a
//! `state` node and watch the other side's; connection is a lock-step walk
//! through [`XenbusState`].

use crate::domain::DomainId;
use crate::error::{Result, XenError};
use crate::xenstore::Xenstore;

/// PV device connection states (`xenbus_state` ABI values).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum XenbusState {
    /// Initial/unknown.
    Unknown = 0,
    /// Device being set up by its toolstack.
    Initialising = 1,
    /// Backend waits for frontend details.
    InitWait = 2,
    /// Frontend published its details; waiting for backend connect.
    Initialised = 3,
    /// Both ends operational.
    Connected = 4,
    /// Shutdown requested.
    Closing = 5,
    /// Device closed.
    Closed = 6,
}

impl XenbusState {
    /// Parses an ABI value.
    pub fn from_value(v: u8) -> XenbusState {
        match v {
            1 => XenbusState::Initialising,
            2 => XenbusState::InitWait,
            3 => XenbusState::Initialised,
            4 => XenbusState::Connected,
            5 => XenbusState::Closing,
            6 => XenbusState::Closed,
            _ => XenbusState::Unknown,
        }
    }

    /// The ABI value.
    pub fn value(self) -> u8 {
        self as u8
    }

    /// Lower-case state name, as used in trace events and renderings.
    pub fn name(self) -> &'static str {
        match self {
            XenbusState::Unknown => "unknown",
            XenbusState::Initialising => "initialising",
            XenbusState::InitWait => "initwait",
            XenbusState::Initialised => "initialised",
            XenbusState::Connected => "connected",
            XenbusState::Closing => "closing",
            XenbusState::Closed => "closed",
        }
    }

    /// Whether `self -> next` is a legal transition.
    ///
    /// `Closing` may be entered from any live state (crash/unplug); a
    /// `Closed` device may be re-provisioned back to `Initialising`
    /// (driver-domain restart); all other transitions follow the connect
    /// handshake.
    pub fn can_transition_to(self, next: XenbusState) -> bool {
        use XenbusState::*;
        if next == Closing {
            return !matches!(self, Closed | Unknown);
        }
        matches!(
            (self, next),
            (Unknown, Initialising)
                | (Closed, Initialising)
                | (Initialising, InitWait)
                | (Initialising, Initialised)
                | (InitWait, Initialised)
                | (InitWait, Connected)
                | (Initialised, Connected)
                | (Closing, Closed)
        )
    }
}

/// Kind of a PV device, as named in xenstore paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceKind {
    /// Virtual network interface (`vif`).
    Vif,
    /// Virtual block device (`vbd`).
    Vbd,
}

impl DeviceKind {
    /// The path component used in xenstore.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceKind::Vif => "vif",
            DeviceKind::Vbd => "vbd",
        }
    }
}

/// How many shared rings a backend device pair runs.
///
/// The multi-queue ablation knob threaded through the system layers:
/// [`QueueMode::Single`] is the legacy one-ring layout; `Multi(n)`
/// negotiates `n` queues through xenstore. `Multi(1)` normalizes to the
/// same single-ring layout — both sides fall back to the legacy flat
/// key scheme whenever the negotiated count is 1, so `Multi(1)` is
/// behaviorally identical to `Single` by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueMode {
    /// Legacy single shared ring (pre-multi-queue layout).
    #[default]
    Single,
    /// `n` negotiated queues, each with its own ring(s) and event
    /// channel under `queue-<k>/` subpaths.
    Multi(u32),
}

impl QueueMode {
    /// The queue count this mode asks for (at least 1).
    pub fn queues(self) -> u32 {
        match self {
            QueueMode::Single => 1,
            QueueMode::Multi(n) => n.max(1),
        }
    }

    /// Stable label for scenario names, e.g. `"queues_4"`.
    pub fn label(self) -> String {
        format!("queues_{}", self.queues())
    }
}

/// Frontend advertisement key: the most queues the frontend can drive.
pub const MQ_MAX_QUEUES_KEY: &str = "multi-queue-max-queues";

/// Negotiated queue-count key, written by the backend once it has
/// clamped the frontend's advertisement to its own capacity.
pub const MQ_NUM_QUEUES_KEY: &str = "multi-queue-num-queues";

/// The negotiated queue count: the smaller of the two sides' maxima,
/// never below 1. Either side offering 1 forces the legacy layout.
pub fn negotiate_queues(front_max: u32, back_max: u32) -> u32 {
    front_max.max(1).min(back_max.max(1))
}

/// Segmentation-offload advertisement key (`feature-gso-tcpv4`). The
/// toolstack writes `1` under the backend path when the backend can
/// segment super-frames; a willing frontend echoes `1` under its own
/// path. GSO descriptor chains are legal on the rings only when both
/// writes happened — either side staying silent falls back to
/// single-slot frames.
pub const FEATURE_GSO_KEY: &str = "feature-gso-tcpv4";

/// Checksum-offload veto key (`feature-no-csum-offload`). Offload is
/// implied by a GSO-capable pair; a frontend that insists on software
/// checksums writes `1` under its own path to decline.
pub const FEATURE_NO_CSUM_KEY: &str = "feature-no-csum-offload";

/// Path helpers for one frontend/backend device pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DevicePaths {
    /// Guest domain running the frontend.
    pub front: DomainId,
    /// Driver domain running the backend.
    pub back: DomainId,
    /// Device kind.
    pub kind: DeviceKind,
    /// Device index within the guest (0 for the first vif/vbd).
    pub index: u32,
}

impl DevicePaths {
    /// Creates path helpers for device `index` of `kind` between domains.
    pub fn new(front: DomainId, back: DomainId, kind: DeviceKind, index: u32) -> DevicePaths {
        DevicePaths {
            front,
            back,
            kind,
            index,
        }
    }

    /// The frontend area: `/local/domain/<front>/device/<kind>/<index>`.
    pub fn frontend(&self) -> String {
        format!(
            "/local/domain/{}/device/{}/{}",
            self.front.0,
            self.kind.as_str(),
            self.index
        )
    }

    /// The backend area:
    /// `/local/domain/<back>/backend/<kind>/<front>/<index>`.
    pub fn backend(&self) -> String {
        format!(
            "/local/domain/{}/backend/{}/{}/{}",
            self.back.0,
            self.kind.as_str(),
            self.front.0,
            self.index
        )
    }

    /// The backend watch root for discovering new frontends:
    /// `/local/domain/<back>/backend/<kind>`.
    pub fn backend_root(back: DomainId, kind: DeviceKind) -> String {
        format!("/local/domain/{}/backend/{}", back.0, kind.as_str())
    }

    /// Per-queue frontend subdirectory:
    /// `<frontend>/queue-<k>` (multi-queue layouts only).
    pub fn queue_frontend(&self, k: u32) -> String {
        format!("{}/queue-{}", self.frontend(), k)
    }

    /// Per-queue backend subdirectory:
    /// `<backend>/queue-<k>` (multi-queue layouts only).
    pub fn queue_backend(&self, k: u32) -> String {
        format!("{}/queue-{}", self.backend(), k)
    }

    /// The frontend directory holding queue `k`'s ring keys under an
    /// `nqueues`-queue layout: the flat legacy frontend area when the
    /// negotiated count is 1, the `queue-<k>/` subdirectory otherwise.
    /// Keeping the count-of-one case on the flat layout is what makes
    /// [`QueueMode::Multi`]`(1)` byte-identical to the legacy protocol.
    pub fn frontend_queue_root(&self, nqueues: u32, k: u32) -> String {
        if nqueues <= 1 {
            self.frontend()
        } else {
            self.queue_frontend(k)
        }
    }

    /// Frontend `state` node path.
    pub fn frontend_state(&self) -> String {
        format!("{}/state", self.frontend())
    }

    /// Backend `state` node path.
    pub fn backend_state(&self) -> String {
        format!("{}/state", self.backend())
    }

    /// Parses a backend-area path back into its device coordinates.
    ///
    /// Accepts any path at or below a backend device directory; returns
    /// `None` for paths that do not identify a complete device.
    pub fn parse_backend_path(path: &str) -> Option<DevicePaths> {
        let segs: Vec<&str> = path.strip_prefix('/')?.split('/').collect();
        // local domain <back> backend <kind> <front> <index> ...
        if segs.len() < 7 || segs[0] != "local" || segs[1] != "domain" || segs[3] != "backend" {
            return None;
        }
        let back = DomainId(segs[2].parse().ok()?);
        let kind = match segs[4] {
            "vif" => DeviceKind::Vif,
            "vbd" => DeviceKind::Vbd,
            _ => return None,
        };
        let front = DomainId(segs[5].parse().ok()?);
        let index = segs[6].parse().ok()?;
        Some(DevicePaths::new(front, back, kind, index))
    }
}

/// Reads a device `state` node, treating absence as `Unknown`.
pub fn read_state(xs: &mut Xenstore, caller: DomainId, state_path: &str) -> XenbusState {
    match xs.read(caller, None, state_path) {
        Ok(v) => XenbusState::from_value(v.parse().unwrap_or(0)),
        Err(_) => XenbusState::Unknown,
    }
}

/// Writes a device `state` node, validating the transition.
pub fn switch_state(
    xs: &mut Xenstore,
    caller: DomainId,
    state_path: &str,
    next: XenbusState,
) -> Result<()> {
    let cur = read_state(xs, caller, state_path);
    if cur == next {
        return Ok(());
    }
    if !cur.can_transition_to(next) {
        return Err(XenError::Inval);
    }
    xs.write(caller, None, state_path, &next.value().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_values_match_abi() {
        assert_eq!(XenbusState::Initialising.value(), 1);
        assert_eq!(XenbusState::Connected.value(), 4);
        assert_eq!(XenbusState::from_value(6), XenbusState::Closed);
        assert_eq!(XenbusState::from_value(99), XenbusState::Unknown);
    }

    #[test]
    fn handshake_transitions_legal() {
        use XenbusState::*;
        assert!(Unknown.can_transition_to(Initialising));
        assert!(Initialising.can_transition_to(InitWait));
        assert!(InitWait.can_transition_to(Initialised));
        assert!(Initialised.can_transition_to(Connected));
        assert!(Connected.can_transition_to(Closing));
        assert!(Closing.can_transition_to(Closed));
        // Re-provision after teardown (driver-domain restart).
        assert!(Closed.can_transition_to(Initialising));
        // Illegal jumps.
        assert!(!Unknown.can_transition_to(Connected));
        assert!(!Connected.can_transition_to(Initialising));
        assert!(!Closed.can_transition_to(Closing));
        assert!(!Closed.can_transition_to(Connected));
    }

    #[test]
    fn paths_follow_convention() {
        let p = DevicePaths::new(DomainId(2), DomainId(1), DeviceKind::Vif, 0);
        assert_eq!(p.frontend(), "/local/domain/2/device/vif/0");
        assert_eq!(p.backend(), "/local/domain/1/backend/vif/2/0");
        assert_eq!(p.backend_state(), "/local/domain/1/backend/vif/2/0/state");
        assert_eq!(
            DevicePaths::backend_root(DomainId(1), DeviceKind::Vbd),
            "/local/domain/1/backend/vbd"
        );
    }

    #[test]
    fn queue_paths_and_negotiation() {
        let p = DevicePaths::new(DomainId(2), DomainId(1), DeviceKind::Vif, 0);
        assert_eq!(p.queue_frontend(3), "/local/domain/2/device/vif/0/queue-3");
        assert_eq!(
            p.queue_backend(0),
            "/local/domain/1/backend/vif/2/0/queue-0"
        );
        // Negotiated count of 1 keeps the legacy flat layout.
        assert_eq!(p.frontend_queue_root(1, 0), p.frontend());
        assert_eq!(p.frontend_queue_root(4, 2), p.queue_frontend(2));
        assert_eq!(negotiate_queues(8, 4), 4);
        assert_eq!(negotiate_queues(2, 8), 2);
        assert_eq!(negotiate_queues(0, 4), 1, "zero offers clamp to one");
        assert_eq!(QueueMode::Single.queues(), 1);
        assert_eq!(QueueMode::Multi(0).queues(), 1);
        assert_eq!(QueueMode::Multi(4).label(), "queues_4");
    }

    #[test]
    fn parse_backend_path_roundtrip() {
        let p = DevicePaths::new(DomainId(3), DomainId(1), DeviceKind::Vbd, 2);
        assert_eq!(
            DevicePaths::parse_backend_path(&p.backend_state()),
            Some(p.clone())
        );
        assert_eq!(DevicePaths::parse_backend_path(&p.backend()), Some(p));
        assert_eq!(
            DevicePaths::parse_backend_path("/local/domain/1/backend/vif"),
            None
        );
        assert_eq!(DevicePaths::parse_backend_path("/foo/bar"), None);
    }

    #[test]
    fn switch_state_enforces_machine() {
        let mut xs = Xenstore::new();
        let d0 = DomainId::DOM0;
        let path = "/local/domain/1/backend/vif/2/0/state";
        switch_state(&mut xs, d0, path, XenbusState::Initialising).unwrap();
        assert_eq!(read_state(&mut xs, d0, path), XenbusState::Initialising);
        switch_state(&mut xs, d0, path, XenbusState::InitWait).unwrap();
        // Cannot jump back.
        assert_eq!(
            switch_state(&mut xs, d0, path, XenbusState::Initialising),
            Err(XenError::Inval)
        );
        // Idempotent writes are fine.
        switch_state(&mut xs, d0, path, XenbusState::InitWait).unwrap();
        // Crash path: anything live may close.
        switch_state(&mut xs, d0, path, XenbusState::Closing).unwrap();
        switch_state(&mut xs, d0, path, XenbusState::Closed).unwrap();
    }
}
