//! The composed hypervisor: all subsystems plus per-domain cost accounting.
//!
//! Drivers and frontends should use the charged wrappers here for hot-path
//! operations (grant copies, maps, event sends, xenstore traffic) so every
//! hypercall both *does its work* on the real data structures and *bills
//! its cost* to the calling domain's meter. Raw subsystem access stays
//! public for setup code and tests.

use std::collections::HashMap;

use kite_sim::Nanos;
use kite_trace::{EventKind, NotifyOutcome, ReqTracer, Tracer};

use crate::domain::{DomainId, DomainKind, DomainTable};
use crate::error::Result;
use crate::evtchn::{EventChannels, Notification, Port};
use crate::fault::FaultPlan;
use crate::grant::{CopySide, CopyStatus, GrantCopyOp, GrantRef, GrantTables, MapHandle, Mapping};
use crate::hypercall::{CostModel, HypercallKind, HypercallMeter};
use crate::iommu::Iommu;
use crate::mem::{MachineMemory, PageId};
use crate::pci::PciBus;
use crate::xenstore::Xenstore;

/// Outcome of one batched `GNTTABOP_copy` hypercall.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Per-op status, in op order (empty batches issue no hypercall).
    pub statuses: Vec<CopyStatus>,
    /// Bytes actually moved by the ops that succeeded.
    pub bytes: usize,
    /// Modeled cost of the hypercall, charged to the caller.
    pub cost: Nanos,
}

impl BatchResult {
    /// Number of ops that completed successfully.
    pub fn ok_ops(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_okay()).count()
    }

    /// True when every op in the batch succeeded.
    pub fn all_ok(&self) -> bool {
        self.statuses.iter().all(|s| s.is_okay())
    }
}

/// The whole simulated Xen machine.
pub struct Hypervisor {
    /// Domain registry.
    pub domains: DomainTable,
    /// Machine memory.
    pub mem: MachineMemory,
    /// Grant tables.
    pub grants: GrantTables,
    /// Event channels.
    pub evtchn: EventChannels,
    /// Xenstore (served by xenstored in Dom0).
    pub store: Xenstore,
    /// PCI passthrough state.
    pub pci: PciBus,
    /// IOMMU (DMA remapping).
    pub iommu: Iommu,
    /// Hypercall cost model.
    pub costs: CostModel,
    /// Fault-injection plan (inert by default).
    pub faults: FaultPlan,
    /// Structured event recorder (disabled by default; a disabled
    /// tracer's emit path is one branch and no allocation).
    pub trace: Tracer,
    /// Per-request stage recorder (disabled by default; same one-branch
    /// zero-allocation contract as `trace`).
    pub req: ReqTracer,
    meters: HashMap<DomainId, HypercallMeter>,
}

impl Default for Hypervisor {
    fn default() -> Self {
        Hypervisor::new()
    }
}

impl Hypervisor {
    /// Creates a machine with an empty domain table.
    pub fn new() -> Hypervisor {
        Hypervisor {
            domains: DomainTable::new(),
            mem: MachineMemory::new(),
            grants: GrantTables::new(),
            evtchn: EventChannels::new(),
            store: Xenstore::new(),
            pci: PciBus::new(),
            iommu: Iommu::new(),
            costs: CostModel::default(),
            faults: FaultPlan::none(),
            trace: Tracer::disabled(),
            req: ReqTracer::disabled(),
            meters: HashMap::new(),
        }
    }

    /// Creates a domain (first call must create Dom0).
    pub fn create_domain(
        &mut self,
        name: impl Into<String>,
        kind: DomainKind,
        mem_mib: u64,
        vcpus: u32,
    ) -> DomainId {
        let name = name.into();
        let id = self.domains.create(name.clone(), kind, mem_mib, vcpus);
        // xenstored provisions the domain's home directory at creation and
        // delegates it to the domain.
        let home = format!("/local/domain/{}", id.0);
        self.store
            .write(DomainId::DOM0, None, &format!("{home}/name"), &name)
            .expect("home provisioning");
        self.store
            .set_perm(DomainId::DOM0, &home, id, crate::xenstore::Perm::ReadWrite)
            .expect("home perm");
        id
    }

    /// Destroys a domain the way a crash (or `xl destroy`) does: marks it
    /// dead, reclaims every foreign mapping it held (so peers' grants are
    /// no longer busy), drops its grant table, closes all its event
    /// channels (killing the peer ends), and force-detaches its PCI
    /// devices back to the assignable pool. Its xenstore subtree is left
    /// in place — xenstored outlives domains; the toolstack cleans up.
    pub fn destroy_domain(&mut self, dom: DomainId) -> Result<()> {
        self.domains.destroy(dom)?;
        self.grants.reclaim_domain(dom);
        self.evtchn.close_domain(dom);
        let held: Vec<crate::Bdf> = self.pci.devices_of(dom).iter().map(|d| d.bdf).collect();
        for bdf in held {
            let _ = self.pci.detach(bdf, dom);
        }
        Ok(())
    }

    /// The hypercall meter of a domain.
    pub fn meter(&self, dom: DomainId) -> HypercallMeter {
        self.meters.get(&dom).cloned().unwrap_or_default()
    }

    /// Charges a hypercall to `dom` and returns its modeled cost.
    pub fn charge(&mut self, dom: DomainId, kind: HypercallKind, bytes: usize) -> Nanos {
        self.meters
            .entry(dom)
            .or_default()
            .charge(&self.costs, kind, bytes)
    }

    /// Allocates a page for `dom` (no hypercall charge; guest-local).
    pub fn alloc_page(&mut self, dom: DomainId) -> Result<PageId> {
        self.mem.alloc(&mut self.domains, dom)
    }

    /// Frees a page.
    pub fn free_page(&mut self, dom: DomainId, page: PageId) -> Result<()> {
        self.mem.free(&mut self.domains, dom, page)
    }

    /// Grants `peer` access to `page` (table write, no hypercall).
    pub fn grant_access(
        &mut self,
        granter: DomainId,
        peer: DomainId,
        page: PageId,
        readonly: bool,
    ) -> Result<GrantRef> {
        self.grants
            .grant_access(&self.mem, granter, peer, page, readonly)
    }

    /// Revokes a grant.
    pub fn end_access(&mut self, granter: DomainId, gref: GrantRef) -> Result<()> {
        self.grants.end_access(granter, gref)
    }

    /// Charged `GNTTABOP_map_grant_ref`.
    pub fn map_grant(
        &mut self,
        mapper: DomainId,
        granter: DomainId,
        gref: GrantRef,
    ) -> Result<(Mapping, Nanos)> {
        let m = self.grants.map(mapper, granter, gref)?;
        let c = self.charge(mapper, HypercallKind::GntMap, 0);
        self.trace.emit_with(mapper.0, || EventKind::Hypercall {
            op: HypercallKind::GntMap.name(),
            bytes: 0,
            cost: c,
        });
        Ok((m, c))
    }

    /// Charged `GNTTABOP_unmap_grant_ref`.
    pub fn unmap_grant(&mut self, mapper: DomainId, handle: MapHandle) -> Result<Nanos> {
        self.grants.unmap(mapper, handle)?;
        let c = self.charge(mapper, HypercallKind::GntUnmap, 0);
        self.trace.emit_with(mapper.0, || EventKind::Hypercall {
            op: HypercallKind::GntUnmap.name(),
            bytes: 0,
            cost: c,
        });
        Ok(c)
    }

    /// Charged batched `GNTTABOP_copy`: one hypercall executes the whole
    /// op array, with per-op statuses.
    ///
    /// The caller is billed one hypercall base cost per **batch** plus a
    /// fixed descriptor cost per op and a per-byte copy cost — the shape
    /// drivers amortize per-packet hypervisor work against. Failed ops
    /// report in their status and do not abort the batch; the hypercall
    /// is charged regardless (the domain still crossed into the
    /// hypervisor). An empty op array issues no hypercall and is free.
    pub fn grant_copy_batch(&mut self, caller: DomainId, ops: &[GrantCopyOp]) -> BatchResult {
        if ops.is_empty() {
            return BatchResult::default();
        }
        let mut statuses = self.grants.copy_batch(&mut self.mem, caller, ops);
        if self.faults.copy_fail_rate > 0.0 {
            // Injected per-op failures surface exactly like real ones: in
            // the status array, with the batch continuing past them. The
            // bytes may already have moved; drivers must treat errored ops
            // as not transferred, which is what the status contract says.
            for s in statuses.iter_mut() {
                if s.is_okay() && self.faults.fail_copy_op() {
                    *s = CopyStatus::Error(crate::XenError::BadGrant);
                }
            }
        }
        let bytes = ops
            .iter()
            .zip(&statuses)
            .filter(|(_, s)| s.is_okay())
            .map(|(op, _)| op.len)
            .sum();
        let cost = self.costs.gnt_copy_batch(ops.len(), bytes);
        self.meters
            .entry(caller)
            .or_default()
            .charge_costed(HypercallKind::GntCopy, cost);
        let result = BatchResult {
            statuses,
            bytes,
            cost,
        };
        self.trace
            .emit_with(caller.0, || EventKind::GrantCopyBatch {
                ops: ops.len() as u32,
                ok_ops: result.ok_ops() as u32,
                bytes: result.bytes as u64,
                cost,
            });
        result
    }

    /// Issues `ops` under the given [`CopyMode`](crate::grant::CopyMode): one batched hypercall,
    /// or the legacy one-hypercall-per-op shape. The two modes move the
    /// same bytes and produce the same statuses; only the hypercall count
    /// and modeled cost differ — which is what the drivers' ablation
    /// benches and equivalence tests measure.
    pub fn grant_copy_ops(
        &mut self,
        caller: DomainId,
        ops: &[GrantCopyOp],
        mode: crate::grant::CopyMode,
    ) -> BatchResult {
        let _prof = kite_prof::span(kite_prof::Phase::GrantCopy);
        match mode {
            crate::grant::CopyMode::Batched => self.grant_copy_batch(caller, ops),
            crate::grant::CopyMode::SingleOp => {
                let mut out = BatchResult::default();
                for op in ops {
                    let b = self.grant_copy_batch(caller, core::slice::from_ref(op));
                    out.statuses.extend(b.statuses);
                    out.bytes += b.bytes;
                    out.cost += b.cost;
                }
                out
            }
        }
    }

    /// Charged single-op `GNTTABOP_copy` — a thin one-element wrapper over
    /// [`Hypervisor::grant_copy_batch`], kept for setup paths and as the
    /// migration-era comparison shape for the drivers' batched fast paths.
    pub fn grant_copy(
        &mut self,
        caller: DomainId,
        src: CopySide,
        dst: CopySide,
        len: usize,
    ) -> Result<Nanos> {
        let batch = self.grant_copy_batch(caller, &[GrantCopyOp { src, dst, len }]);
        match batch.statuses[0] {
            CopyStatus::Okay => Ok(batch.cost),
            CopyStatus::Error(e) => Err(e),
        }
    }

    /// Charged `EVTCHNOP_send`.
    ///
    /// Returns the notification (if the peer transitioned to pending) plus
    /// the caller-side cost. The system layer delivers the notification
    /// after [`CostModel::irq_delivery`].
    pub fn evtchn_send(
        &mut self,
        caller: DomainId,
        port: Port,
    ) -> Result<(Option<Notification>, Nanos)> {
        let mut n = self.evtchn.send(caller, port)?;
        let mut outcome = if n.is_some() {
            NotifyOutcome::Delivered
        } else {
            NotifyOutcome::Coalesced
        };
        if let Some(note) = &n {
            if self.faults.drop_notify() {
                // The edge is lost entirely: clear the peer's pending bit
                // so a later kick can raise a fresh notification instead
                // of coalescing into the one that never arrived.
                let _ = self.evtchn.clear_pending(note.domain, note.port);
                n = None;
                outcome = NotifyOutcome::Dropped;
            }
        }
        let c = self.charge(caller, HypercallKind::EvtchnSend, 0);
        if self.trace.is_enabled() {
            // A coalesced send returns no notification; resolve the peer
            // from the channel so the trace still names the receiver.
            let (to_dom, to_port) = self
                .evtchn
                .peer(caller, port)
                .map(|(d, p)| (d.0, p.0))
                .unwrap_or((u16::MAX, u32::MAX));
            self.trace.emit_with(caller.0, || EventKind::Notify {
                to_dom,
                port: to_port,
                outcome,
                cost: c,
            });
        }
        Ok((n, c))
    }

    /// IRQ delivery latency for the next notification: the cost model's
    /// base plus any fault-injected delay. System layers should schedule
    /// interrupt events this far after the send completes.
    pub fn irq_delay(&mut self) -> Nanos {
        let extra = self.faults.notify_delay();
        if extra > Nanos::ZERO {
            // Attributed to Dom0: the delay models contention in the
            // delivery path, not work done by either channel end.
            self.trace
                .emit_with(DomainId::DOM0.0, || EventKind::NotifyDelayed { extra });
        }
        self.costs.irq_delivery + extra
    }

    /// Charged event-channel allocation.
    pub fn evtchn_alloc_unbound(
        &mut self,
        owner: DomainId,
        remote_allowed: DomainId,
    ) -> (Port, Nanos) {
        let p = self.evtchn.alloc_unbound(owner, remote_allowed);
        let c = self.charge(owner, HypercallKind::EvtchnOp, 0);
        self.trace.emit_with(owner.0, || EventKind::Hypercall {
            op: HypercallKind::EvtchnOp.name(),
            bytes: 0,
            cost: c,
        });
        (p, c)
    }

    /// Charged interdomain bind.
    pub fn evtchn_bind(
        &mut self,
        binder: DomainId,
        remote: DomainId,
        remote_port: Port,
    ) -> Result<(Port, Nanos)> {
        let p = self.evtchn.bind_interdomain(binder, remote, remote_port)?;
        let c = self.charge(binder, HypercallKind::EvtchnOp, 0);
        self.trace.emit_with(binder.0, || EventKind::Hypercall {
            op: HypercallKind::EvtchnOp.name(),
            bytes: 0,
            cost: c,
        });
        Ok((p, c))
    }

    fn charge_xs(&mut self, caller: DomainId) -> Nanos {
        let c = self.charge(caller, HypercallKind::XsOp, 0);
        self.trace.emit_with(caller.0, || EventKind::Hypercall {
            op: HypercallKind::XsOp.name(),
            bytes: 0,
            cost: c,
        });
        c
    }

    /// Charged xenstore read.
    pub fn xs_read(&mut self, caller: DomainId, path: &str) -> (Result<String>, Nanos) {
        let c = self.charge_xs(caller);
        if let Some(e) = self.faults.fail_xs() {
            return (Err(e), c);
        }
        let r = self.store.read(caller, None, path);
        (r, c)
    }

    /// Charged xenstore directory listing.
    pub fn xs_directory(&mut self, caller: DomainId, path: &str) -> (Result<Vec<String>>, Nanos) {
        let c = self.charge_xs(caller);
        if let Some(e) = self.faults.fail_xs() {
            return (Err(e), c);
        }
        let r = self.store.directory(caller, path);
        (r, c)
    }

    /// Charged xenstore write.
    pub fn xs_write(&mut self, caller: DomainId, path: &str, value: &str) -> (Result<()>, Nanos) {
        let c = self.charge_xs(caller);
        if let Some(e) = self.faults.fail_xs() {
            return (Err(e), c);
        }
        let r = self.store.write(caller, None, path, value);
        (r, c)
    }

    /// Switches a device `state` node (validated transition, see
    /// [`crate::xenbus::switch_state`]) and records it as a trace event.
    ///
    /// Drivers and toolstack paths go through this wrapper so every
    /// handshake step and teardown walk lands in the trace; the free
    /// function remains for setup code that has only a [`Xenstore`].
    pub fn switch_state(
        &mut self,
        caller: DomainId,
        state_path: &str,
        next: crate::xenbus::XenbusState,
    ) -> Result<()> {
        crate::xenbus::switch_state(&mut self.store, caller, state_path, next)?;
        self.trace.emit_with(caller.0, || EventKind::XenbusState {
            path: state_path.to_string(),
            state: next.name(),
        });
        Ok(())
    }

    /// Renders the recorded trace as a Chrome-trace/Perfetto JSON
    /// document with one named track per domain ever created. When
    /// request tracing is on, every completed sampled request draws a
    /// Perfetto flow arrow across the tracks it crossed.
    pub fn export_chrome_trace(&self) -> String {
        let tracks: Vec<(u16, String)> = self
            .domains
            .iter_all()
            .map(|d| (d.id.0, d.name.clone()))
            .collect();
        let req = self.req.is_enabled().then_some(&self.req);
        kite_trace::chrome::export_with_flows(&self.trace, &tracks, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grant::CopySide;

    #[test]
    fn charged_ops_bill_the_caller() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);

        let gpage = hv.alloc_page(gu).unwrap();
        let dpage = hv.alloc_page(dd).unwrap();
        hv.mem.page_mut(gpage).unwrap()[0..4].copy_from_slice(b"ping");
        let gref = hv.grant_access(gu, dd, gpage, true).unwrap();
        let cost = hv
            .grant_copy(
                dd,
                CopySide::Grant {
                    granter: gu,
                    gref,
                    offset: 0,
                },
                CopySide::Local {
                    page: dpage,
                    offset: 0,
                },
                4,
            )
            .unwrap();
        assert!(cost > Nanos::ZERO);
        assert_eq!(&hv.mem.page(dpage).unwrap()[0..4], b"ping");
        assert_eq!(hv.meter(dd).count(HypercallKind::GntCopy), 1);
        assert_eq!(hv.meter(gu).total_count(), 0, "guest issued no hypercall");
    }

    #[test]
    fn batched_copy_is_one_hypercall_and_cheaper_than_single_ops() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
        let mut ops = Vec::new();
        for i in 0..8u8 {
            let src = hv.alloc_page(gu).unwrap();
            let dst = hv.alloc_page(dd).unwrap();
            hv.mem.page_mut(src).unwrap()[0] = i;
            let gref = hv.grant_access(gu, dd, src, true).unwrap();
            ops.push(GrantCopyOp {
                src: CopySide::Grant {
                    granter: gu,
                    gref,
                    offset: 0,
                },
                dst: CopySide::Local {
                    page: dst,
                    offset: 0,
                },
                len: 64,
            });
        }
        let batch = hv.grant_copy_batch(dd, &ops);
        assert!(batch.all_ok());
        assert_eq!(batch.bytes, 8 * 64);
        assert_eq!(hv.meter(dd).count(HypercallKind::GntCopy), 1);
        // The same ops issued one at a time cost strictly more: seven
        // extra hypercall base crossings.
        let single: Nanos = ops
            .iter()
            .map(|op| hv.costs.gnt_copy_batch(1, op.len))
            .sum();
        assert!(batch.cost < single);
        // Saved exactly seven hypercall base crossings, modulo the ±1ns
        // integer rounding of the per-byte term.
        let delta = single.as_nanos() - batch.cost.as_nanos();
        let base7 = 7 * hv.costs.hypercall_base.as_nanos();
        assert!(delta.abs_diff(base7) <= ops.len() as u64, "delta={delta}");
    }

    #[test]
    fn batch_continues_past_failed_op() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
        let src = hv.alloc_page(gu).unwrap();
        let dst = hv.alloc_page(dd).unwrap();
        hv.mem.page_mut(src).unwrap()[..2].copy_from_slice(b"ok");
        let ro = hv.grant_access(gu, dd, src, true).unwrap();
        let ops = [
            // Writing through a read-only grant fails...
            GrantCopyOp {
                src: CopySide::Local {
                    page: dst,
                    offset: 0,
                },
                dst: CopySide::Grant {
                    granter: gu,
                    gref: ro,
                    offset: 0,
                },
                len: 4,
            },
            // ...but the next op still executes.
            GrantCopyOp {
                src: CopySide::Grant {
                    granter: gu,
                    gref: ro,
                    offset: 0,
                },
                dst: CopySide::Local {
                    page: dst,
                    offset: 0,
                },
                len: 2,
            },
        ];
        let batch = hv.grant_copy_batch(dd, &ops);
        assert_eq!(
            batch.statuses[0],
            CopyStatus::Error(crate::XenError::ReadOnlyGrant)
        );
        assert_eq!(batch.statuses[1], CopyStatus::Okay);
        assert_eq!(batch.ok_ops(), 1);
        assert_eq!(batch.bytes, 2);
        assert_eq!(&hv.mem.page(dst).unwrap()[..2], b"ok");
        assert_eq!(hv.meter(dd).count(HypercallKind::GntCopy), 1);
    }

    #[test]
    fn empty_batch_issues_no_hypercall() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let batch = hv.grant_copy_batch(dd, &[]);
        assert!(batch.statuses.is_empty());
        assert_eq!(batch.cost, Nanos::ZERO);
        assert_eq!(hv.meter(dd).total_count(), 0);
    }

    #[test]
    fn single_op_wrapper_costs_exactly_a_one_op_batch() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let a = hv.alloc_page(dd).unwrap();
        let b = hv.alloc_page(dd).unwrap();
        let cost = hv
            .grant_copy(
                dd,
                CopySide::Local { page: a, offset: 0 },
                CopySide::Local { page: b, offset: 0 },
                512,
            )
            .unwrap();
        assert_eq!(cost, hv.costs.gnt_copy_batch(1, 512));
        assert_eq!(cost, hv.costs.cost(HypercallKind::GntCopy, 512));
    }

    #[test]
    fn evtchn_send_charges_and_notifies() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
        let (p_gu, _) = hv.evtchn_alloc_unbound(gu, dd);
        let (p_dd, _) = hv.evtchn_bind(dd, gu, p_gu).unwrap();
        let (n, c) = hv.evtchn_send(dd, p_dd).unwrap();
        assert!(c > Nanos::ZERO);
        let n = n.unwrap();
        assert_eq!(n.domain, gu);
        assert_eq!(n.port, p_gu);
        assert_eq!(hv.meter(dd).count(HypercallKind::EvtchnSend), 1);
    }

    #[test]
    fn injected_copy_faults_surface_in_statuses() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        hv.faults = FaultPlan::seeded(11).with_copy_failures(0.5);
        let a = hv.alloc_page(dd).unwrap();
        let b = hv.alloc_page(dd).unwrap();
        let ops: Vec<GrantCopyOp> = (0..64)
            .map(|i| GrantCopyOp {
                src: CopySide::Local {
                    page: a,
                    offset: i * 8,
                },
                dst: CopySide::Local {
                    page: b,
                    offset: i * 8,
                },
                len: 8,
            })
            .collect();
        let batch = hv.grant_copy_batch(dd, &ops);
        let failed = batch.statuses.iter().filter(|s| !s.is_okay()).count();
        assert!(failed > 10, "half the ops should fault: {failed}");
        assert!(batch.ok_ops() > 10, "batch continues past faults");
        assert_eq!(batch.bytes, batch.ok_ops() * 8, "faulted ops move nothing");
        assert_eq!(hv.faults.stats.copy_faults, failed as u64);
        // Still one hypercall, still charged.
        assert_eq!(hv.meter(dd).count(HypercallKind::GntCopy), 1);
    }

    #[test]
    fn dropped_notify_loses_edge_but_next_send_reraises() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
        let (p_gu, _) = hv.evtchn_alloc_unbound(gu, dd);
        let (p_dd, _) = hv.evtchn_bind(dd, gu, p_gu).unwrap();
        hv.faults = FaultPlan::seeded(1).with_notify_drops(1.0);
        let (n, _) = hv.evtchn_send(dd, p_dd).unwrap();
        assert!(n.is_none(), "notification swallowed");
        assert_eq!(hv.faults.stats.notifies_dropped, 1);
        // The pending bit was cleared with the lost edge, so a later kick
        // (faults disarmed) raises a fresh notification.
        hv.faults = FaultPlan::none();
        let (n, _) = hv.evtchn_send(dd, p_dd).unwrap();
        assert!(n.is_some(), "edge re-raised after loss");
    }

    #[test]
    fn xs_faults_and_irq_delay_inject() {
        let mut hv = Hypervisor::new();
        let d0 = hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let base = hv.irq_delay();
        assert_eq!(base, hv.costs.irq_delivery, "no delay when unarmed");
        hv.faults = FaultPlan::seeded(2)
            .with_xs_failures(1.0)
            .with_notify_delays(1.0, Nanos::from_micros(50));
        let (r, _) = hv.xs_write(d0, "/k", "v");
        assert_eq!(r, Err(crate::XenError::Again));
        let (r, _) = hv.xs_read(d0, "/k");
        assert_eq!(r, Err(crate::XenError::Again));
        assert_eq!(hv.faults.stats.xs_faults, 2);
        assert_eq!(hv.irq_delay(), base + Nanos::from_micros(50));
        assert_eq!(hv.faults.stats.notifies_delayed, 1);
    }

    #[test]
    fn trace_records_hypercalls_notifies_and_xenbus_transitions() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
        hv.trace.enable(1024);
        hv.trace.set_now(Nanos::from_micros(7));

        let a = hv.alloc_page(dd).unwrap();
        let b = hv.alloc_page(dd).unwrap();
        let ops = [crate::grant::GrantCopyOp {
            src: CopySide::Local { page: a, offset: 0 },
            dst: CopySide::Local { page: b, offset: 0 },
            len: 64,
        }];
        let batch = hv.grant_copy_batch(dd, &ops);
        let (p_gu, _) = hv.evtchn_alloc_unbound(gu, dd);
        let (p_dd, _) = hv.evtchn_bind(dd, gu, p_gu).unwrap();
        hv.evtchn_send(dd, p_dd).unwrap(); // delivered
        hv.evtchn_send(dd, p_dd).unwrap(); // pending bit set: coalesced

        assert_eq!(hv.trace.query().kind("gnttab_copy").count(), 1);
        let copy = hv
            .trace
            .query()
            .kind("gnttab_copy")
            .first()
            .unwrap()
            .clone();
        assert_eq!(copy.at, Nanos::from_micros(7));
        assert_eq!(copy.dom, dd.0);
        match copy.kind {
            EventKind::GrantCopyBatch {
                ops: n,
                ok_ops,
                bytes,
                cost,
            } => {
                assert_eq!((n, ok_ops, bytes), (1, 1, 64));
                assert_eq!(cost, batch.cost);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let outcomes: Vec<NotifyOutcome> = hv
            .trace
            .query()
            .kind("notify")
            .iter()
            .map(|e| match e.kind {
                EventKind::Notify { outcome, .. } => outcome,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            outcomes,
            vec![NotifyOutcome::Delivered, NotifyOutcome::Coalesced]
        );

        // A traced state switch lands with path and state name.
        let state_path = "/local/domain/1/device/vif/0/state";
        hv.switch_state(
            DomainId::DOM0,
            state_path,
            crate::xenbus::XenbusState::Initialising,
        )
        .unwrap();
        let ev = hv
            .trace
            .query()
            .kind("xenbus_state")
            .last()
            .unwrap()
            .clone();
        match &ev.kind {
            EventKind::XenbusState { path, state } => {
                assert_eq!(path, state_path);
                assert_eq!(*state, "initialising");
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Every emission got a distinct, increasing seq.
        let seqs: Vec<u64> = hv.trace.events().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn xs_ops_charge() {
        let mut hv = Hypervisor::new();
        let d0 = hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let (r, _) = hv.xs_write(d0, "/k", "v");
        r.unwrap();
        let (r, _) = hv.xs_read(d0, "/k");
        assert_eq!(r.unwrap(), "v");
        assert_eq!(hv.meter(d0).count(HypercallKind::XsOp), 2);
    }
}
