//! The composed hypervisor: all subsystems plus per-domain cost accounting.
//!
//! Drivers and frontends should use the charged wrappers here for hot-path
//! operations (grant copies, maps, event sends, xenstore traffic) so every
//! hypercall both *does its work* on the real data structures and *bills
//! its cost* to the calling domain's meter. Raw subsystem access stays
//! public for setup code and tests.

use std::collections::HashMap;

use kite_sim::Nanos;

use crate::domain::{DomainId, DomainKind, DomainTable};
use crate::error::Result;
use crate::evtchn::{EventChannels, Notification, Port};
use crate::grant::{CopySide, GrantRef, GrantTables, MapHandle, Mapping};
use crate::hypercall::{CostModel, HypercallKind, HypercallMeter};
use crate::iommu::Iommu;
use crate::mem::{MachineMemory, PageId};
use crate::pci::PciBus;
use crate::xenstore::Xenstore;

/// The whole simulated Xen machine.
pub struct Hypervisor {
    /// Domain registry.
    pub domains: DomainTable,
    /// Machine memory.
    pub mem: MachineMemory,
    /// Grant tables.
    pub grants: GrantTables,
    /// Event channels.
    pub evtchn: EventChannels,
    /// Xenstore (served by xenstored in Dom0).
    pub store: Xenstore,
    /// PCI passthrough state.
    pub pci: PciBus,
    /// IOMMU (DMA remapping).
    pub iommu: Iommu,
    /// Hypercall cost model.
    pub costs: CostModel,
    meters: HashMap<DomainId, HypercallMeter>,
}

impl Default for Hypervisor {
    fn default() -> Self {
        Hypervisor::new()
    }
}

impl Hypervisor {
    /// Creates a machine with an empty domain table.
    pub fn new() -> Hypervisor {
        Hypervisor {
            domains: DomainTable::new(),
            mem: MachineMemory::new(),
            grants: GrantTables::new(),
            evtchn: EventChannels::new(),
            store: Xenstore::new(),
            pci: PciBus::new(),
            iommu: Iommu::new(),
            costs: CostModel::default(),
            meters: HashMap::new(),
        }
    }

    /// Creates a domain (first call must create Dom0).
    pub fn create_domain(
        &mut self,
        name: impl Into<String>,
        kind: DomainKind,
        mem_mib: u64,
        vcpus: u32,
    ) -> DomainId {
        let name = name.into();
        let id = self.domains.create(name.clone(), kind, mem_mib, vcpus);
        // xenstored provisions the domain's home directory at creation and
        // delegates it to the domain.
        let home = format!("/local/domain/{}", id.0);
        self.store
            .write(DomainId::DOM0, None, &format!("{home}/name"), &name)
            .expect("home provisioning");
        self.store
            .set_perm(DomainId::DOM0, &home, id, crate::xenstore::Perm::ReadWrite)
            .expect("home perm");
        id
    }

    /// The hypercall meter of a domain.
    pub fn meter(&self, dom: DomainId) -> HypercallMeter {
        self.meters.get(&dom).cloned().unwrap_or_default()
    }

    /// Charges a hypercall to `dom` and returns its modeled cost.
    pub fn charge(&mut self, dom: DomainId, kind: HypercallKind, bytes: usize) -> Nanos {
        self.meters
            .entry(dom)
            .or_default()
            .charge(&self.costs, kind, bytes)
    }

    /// Allocates a page for `dom` (no hypercall charge; guest-local).
    pub fn alloc_page(&mut self, dom: DomainId) -> Result<PageId> {
        self.mem.alloc(&mut self.domains, dom)
    }

    /// Frees a page.
    pub fn free_page(&mut self, dom: DomainId, page: PageId) -> Result<()> {
        self.mem.free(&mut self.domains, dom, page)
    }

    /// Grants `peer` access to `page` (table write, no hypercall).
    pub fn grant_access(
        &mut self,
        granter: DomainId,
        peer: DomainId,
        page: PageId,
        readonly: bool,
    ) -> Result<GrantRef> {
        self.grants
            .grant_access(&self.mem, granter, peer, page, readonly)
    }

    /// Revokes a grant.
    pub fn end_access(&mut self, granter: DomainId, gref: GrantRef) -> Result<()> {
        self.grants.end_access(granter, gref)
    }

    /// Charged `GNTTABOP_map_grant_ref`.
    pub fn map_grant(
        &mut self,
        mapper: DomainId,
        granter: DomainId,
        gref: GrantRef,
    ) -> Result<(Mapping, Nanos)> {
        let m = self.grants.map(mapper, granter, gref)?;
        let c = self.charge(mapper, HypercallKind::GntMap, 0);
        Ok((m, c))
    }

    /// Charged `GNTTABOP_unmap_grant_ref`.
    pub fn unmap_grant(&mut self, mapper: DomainId, handle: MapHandle) -> Result<Nanos> {
        self.grants.unmap(mapper, handle)?;
        Ok(self.charge(mapper, HypercallKind::GntUnmap, 0))
    }

    /// Charged `GNTTABOP_copy`.
    pub fn grant_copy(
        &mut self,
        caller: DomainId,
        src: CopySide,
        dst: CopySide,
        len: usize,
    ) -> Result<Nanos> {
        self.grants.copy(&mut self.mem, caller, src, dst, len)?;
        Ok(self.charge(caller, HypercallKind::GntCopy, len))
    }

    /// Charged `EVTCHNOP_send`.
    ///
    /// Returns the notification (if the peer transitioned to pending) plus
    /// the caller-side cost. The system layer delivers the notification
    /// after [`CostModel::irq_delivery`].
    pub fn evtchn_send(
        &mut self,
        caller: DomainId,
        port: Port,
    ) -> Result<(Option<Notification>, Nanos)> {
        let n = self.evtchn.send(caller, port)?;
        let c = self.charge(caller, HypercallKind::EvtchnSend, 0);
        Ok((n, c))
    }

    /// Charged event-channel allocation.
    pub fn evtchn_alloc_unbound(
        &mut self,
        owner: DomainId,
        remote_allowed: DomainId,
    ) -> (Port, Nanos) {
        let p = self.evtchn.alloc_unbound(owner, remote_allowed);
        let c = self.charge(owner, HypercallKind::EvtchnOp, 0);
        (p, c)
    }

    /// Charged interdomain bind.
    pub fn evtchn_bind(
        &mut self,
        binder: DomainId,
        remote: DomainId,
        remote_port: Port,
    ) -> Result<(Port, Nanos)> {
        let p = self.evtchn.bind_interdomain(binder, remote, remote_port)?;
        let c = self.charge(binder, HypercallKind::EvtchnOp, 0);
        Ok((p, c))
    }

    /// Charged xenstore read.
    pub fn xs_read(&mut self, caller: DomainId, path: &str) -> (Result<String>, Nanos) {
        let r = self.store.read(caller, None, path);
        let c = self.charge(caller, HypercallKind::XsOp, 0);
        (r, c)
    }

    /// Charged xenstore write.
    pub fn xs_write(&mut self, caller: DomainId, path: &str, value: &str) -> (Result<()>, Nanos) {
        let r = self.store.write(caller, None, path, value);
        let c = self.charge(caller, HypercallKind::XsOp, 0);
        (r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grant::CopySide;

    #[test]
    fn charged_ops_bill_the_caller() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);

        let gpage = hv.alloc_page(gu).unwrap();
        let dpage = hv.alloc_page(dd).unwrap();
        hv.mem.page_mut(gpage).unwrap()[0..4].copy_from_slice(b"ping");
        let gref = hv.grant_access(gu, dd, gpage, true).unwrap();
        let cost = hv
            .grant_copy(
                dd,
                CopySide::Grant {
                    granter: gu,
                    gref,
                    offset: 0,
                },
                CopySide::Local {
                    page: dpage,
                    offset: 0,
                },
                4,
            )
            .unwrap();
        assert!(cost > Nanos::ZERO);
        assert_eq!(&hv.mem.page(dpage).unwrap()[0..4], b"ping");
        assert_eq!(hv.meter(dd).count(HypercallKind::GntCopy), 1);
        assert_eq!(hv.meter(gu).total_count(), 0, "guest issued no hypercall");
    }

    #[test]
    fn evtchn_send_charges_and_notifies() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
        let (p_gu, _) = hv.evtchn_alloc_unbound(gu, dd);
        let (p_dd, _) = hv.evtchn_bind(dd, gu, p_gu).unwrap();
        let (n, c) = hv.evtchn_send(dd, p_dd).unwrap();
        assert!(c > Nanos::ZERO);
        let n = n.unwrap();
        assert_eq!(n.domain, gu);
        assert_eq!(n.port, p_gu);
        assert_eq!(hv.meter(dd).count(HypercallKind::EvtchnSend), 1);
    }

    #[test]
    fn xs_ops_charge() {
        let mut hv = Hypervisor::new();
        let d0 = hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let (r, _) = hv.xs_write(d0, "/k", "v");
        r.unwrap();
        let (r, _) = hv.xs_read(d0, "/k");
        assert_eq!(r.unwrap(), "v");
        assert_eq!(hv.meter(d0).count(HypercallKind::XsOp), 2);
    }
}
