//! Deterministic fault injection for the simulated hypervisor.
//!
//! A [`FaultPlan`] is a seeded description of the misbehaviour a scenario
//! wants to exercise: grant-copy ops that fail mid-batch, event-channel
//! notifications that are dropped or delayed, xenstore ops that error, and
//! a domain kill at a chosen virtual time. The plan is installed on the
//! [`Hypervisor`](crate::Hypervisor) (`hv.faults`) and consulted from the
//! charged hypercall wrappers, so drivers under test see faults exactly
//! where real Xen would surface them: in per-op copy statuses, in missing
//! interrupts, and in hypercall return values.
//!
//! Determinism: the plan carries its own PCG stream, and the stream is
//! advanced **only** when the corresponding fault class is armed (a
//! nonzero rate). A default plan therefore consumes no randomness at all, so
//! pre-existing seeded scenarios reproduce byte-for-byte with the fault
//! layer compiled in.

use kite_sim::{Nanos, Pcg};

use crate::error::XenError;

/// Running counters of injected faults, for assertions and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Grant-copy ops forced to fail.
    pub copy_faults: u64,
    /// Event-channel notifications swallowed.
    pub notifies_dropped: u64,
    /// Event-channel notifications delivered late.
    pub notifies_delayed: u64,
    /// Xenstore ops forced to fail.
    pub xs_faults: u64,
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates are probabilities in `[0, 1]` applied independently per
/// operation. `kill_at` and `hang_at` are not interpreted by the
/// hypervisor itself — the system layer polls [`FaultPlan::take_kill`] /
/// [`FaultPlan::take_hang`] and performs the domain destroy + restart
/// (or livelock) choreography, since domain death is a scheduler-level
/// event, not a hypercall-level one.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: Pcg,
    /// Probability that an individual grant-copy op fails with `BadGrant`.
    pub copy_fail_rate: f64,
    /// Probability that an `EVTCHNOP_send` notification is dropped.
    pub notify_drop_rate: f64,
    /// Probability that a notification is delayed by `notify_delay`.
    pub notify_delay_rate: f64,
    /// Extra latency added to delayed notifications.
    pub notify_delay: Nanos,
    /// Probability that a charged xenstore op fails with `Again`.
    pub xs_fail_rate: f64,
    /// Virtual time at which the scenario's driver domain should be killed.
    pub kill_at: Option<Nanos>,
    /// Virtual time at which the scenario's driver domain should hang: it
    /// stops consuming ring requests but tears nothing down (and its
    /// heartbeat may or may not keep beating — a livelock, not a crash).
    pub hang_at: Option<Nanos>,
    /// Counters of faults actually injected.
    pub stats: FaultStats,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (and consumes no randomness).
    pub fn none() -> FaultPlan {
        FaultPlan::seeded(0)
    }

    /// An empty plan with its own RNG stream; arm fault classes with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: Pcg::new(seed, 0xfa17_fa17_fa17_fa17),
            copy_fail_rate: 0.0,
            notify_drop_rate: 0.0,
            notify_delay_rate: 0.0,
            notify_delay: Nanos::ZERO,
            xs_fail_rate: 0.0,
            kill_at: None,
            hang_at: None,
            stats: FaultStats::default(),
        }
    }

    /// Arms per-op grant-copy failures.
    pub fn with_copy_failures(mut self, rate: f64) -> FaultPlan {
        self.copy_fail_rate = rate;
        self
    }

    /// Arms notification drops.
    pub fn with_notify_drops(mut self, rate: f64) -> FaultPlan {
        self.notify_drop_rate = rate;
        self
    }

    /// Arms notification delays of `delay` each.
    pub fn with_notify_delays(mut self, rate: f64, delay: Nanos) -> FaultPlan {
        self.notify_delay_rate = rate;
        self.notify_delay = delay;
        self
    }

    /// Arms xenstore op failures.
    pub fn with_xs_failures(mut self, rate: f64) -> FaultPlan {
        self.xs_fail_rate = rate;
        self
    }

    /// Schedules a driver-domain kill at virtual time `t`.
    pub fn with_kill_at(mut self, t: Nanos) -> FaultPlan {
        self.kill_at = Some(t);
        self
    }

    /// Schedules a driver-domain hang (livelock) at virtual time `t`.
    pub fn with_hang_at(mut self, t: Nanos) -> FaultPlan {
        self.hang_at = Some(t);
        self
    }

    /// True when any fault class is armed.
    pub fn armed(&self) -> bool {
        self.copy_fail_rate > 0.0
            || self.notify_drop_rate > 0.0
            || self.notify_delay_rate > 0.0
            || self.xs_fail_rate > 0.0
            || self.kill_at.is_some()
            || self.hang_at.is_some()
    }

    /// Consumes the scheduled kill time, if any.
    pub fn take_kill(&mut self) -> Option<Nanos> {
        self.kill_at.take()
    }

    /// Consumes the scheduled hang time, if any.
    pub fn take_hang(&mut self) -> Option<Nanos> {
        self.hang_at.take()
    }

    /// Decides whether the next grant-copy op should fail.
    pub fn fail_copy_op(&mut self) -> bool {
        if self.copy_fail_rate <= 0.0 {
            return false;
        }
        let hit = self.rng.chance(self.copy_fail_rate);
        if hit {
            self.stats.copy_faults += 1;
        }
        hit
    }

    /// Decides whether the next notification is dropped.
    pub fn drop_notify(&mut self) -> bool {
        if self.notify_drop_rate <= 0.0 {
            return false;
        }
        let hit = self.rng.chance(self.notify_drop_rate);
        if hit {
            self.stats.notifies_dropped += 1;
        }
        hit
    }

    /// Extra delivery latency for the next notification (usually zero).
    pub fn notify_delay(&mut self) -> Nanos {
        if self.notify_delay_rate <= 0.0 {
            return Nanos::ZERO;
        }
        if self.rng.chance(self.notify_delay_rate) {
            self.stats.notifies_delayed += 1;
            self.notify_delay
        } else {
            Nanos::ZERO
        }
    }

    /// Decides whether the next charged xenstore op fails, and with what.
    pub fn fail_xs(&mut self) -> Option<XenError> {
        if self.xs_fail_rate <= 0.0 {
            return None;
        }
        if self.rng.chance(self.xs_fail_rate) {
            self.stats.xs_faults += 1;
            // EAGAIN: the transient, retry-me shape real xenstored clients
            // must already handle.
            Some(XenError::Again)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_is_inert_and_random_free() {
        let mut p = FaultPlan::none();
        assert!(!p.armed());
        for _ in 0..100 {
            assert!(!p.fail_copy_op());
            assert!(!p.drop_notify());
            assert_eq!(p.notify_delay(), Nanos::ZERO);
            assert_eq!(p.fail_xs(), None);
        }
        // The RNG never advanced: same internal stream as a fresh plan.
        let mut fresh = FaultPlan::none().with_copy_failures(0.5);
        p.copy_fail_rate = 0.5;
        for _ in 0..64 {
            assert_eq!(p.fail_copy_op(), fresh.fail_copy_op());
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let run = |seed| {
            let mut p = FaultPlan::seeded(seed)
                .with_copy_failures(0.25)
                .with_notify_drops(0.25);
            let mut pattern = Vec::new();
            for _ in 0..256 {
                pattern.push((p.fail_copy_op(), p.drop_notify()));
            }
            (pattern, p.stats)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn rates_hit_roughly_that_often() {
        let mut p = FaultPlan::seeded(3).with_xs_failures(0.3);
        let mut hits = 0;
        for _ in 0..10_000 {
            if p.fail_xs().is_some() {
                hits += 1;
            }
        }
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
        assert_eq!(p.stats.xs_faults, hits);
    }

    #[test]
    fn kill_time_is_consumed_once() {
        let mut p = FaultPlan::none().with_kill_at(Nanos::from_millis(5));
        assert!(p.armed());
        assert_eq!(p.take_kill(), Some(Nanos::from_millis(5)));
        assert_eq!(p.take_kill(), None);
    }

    #[test]
    fn hang_time_is_consumed_once_and_arms_the_plan() {
        let mut p = FaultPlan::none().with_hang_at(Nanos::from_millis(9));
        assert!(p.armed());
        assert_eq!(p.take_hang(), Some(Nanos::from_millis(9)));
        assert_eq!(p.take_hang(), None);
        assert!(!p.armed(), "hang consumed, nothing else armed");
        // Kill and hang are independent slots.
        let mut both = FaultPlan::none()
            .with_kill_at(Nanos::from_millis(1))
            .with_hang_at(Nanos::from_millis(2));
        assert_eq!(both.take_hang(), Some(Nanos::from_millis(2)));
        assert!(both.armed(), "kill still pending");
    }
}
