//! Domain identities and the domain registry.
//!
//! In Xen terms: Dom0 is the privileged administrative VM, driver domains
//! are unprivileged VMs granted PCI devices, and DomUs are plain guests.

use crate::error::{Result, XenError};

/// A Xen domain identifier. Dom0 is always id 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DomainId(pub u16);

impl DomainId {
    /// The privileged administrative domain.
    pub const DOM0: DomainId = DomainId(0);

    /// True for Dom0.
    pub fn is_dom0(self) -> bool {
        self.0 == 0
    }
}

/// The role a domain plays in the scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainKind {
    /// The privileged administrative VM (runs xenstored).
    Dom0,
    /// An unprivileged VM running physical drivers + backends.
    Driver,
    /// An unprivileged application guest (runs frontends).
    Guest,
}

/// Lifecycle state of a domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainState {
    /// Created but not yet finished booting.
    Booting,
    /// Running normally.
    Running,
    /// Shut down or destroyed; its grants and ports are dead.
    Dead,
}

/// Static + dynamic information about one domain.
#[derive(Clone, Debug)]
pub struct Domain {
    /// This domain's id.
    pub id: DomainId,
    /// Human-readable name (`xl list` style).
    pub name: String,
    /// Role of the domain.
    pub kind: DomainKind,
    /// Memory reservation in MiB (limits page allocations).
    pub mem_mib: u64,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Lifecycle state.
    pub state: DomainState,
    /// Pages currently allocated to the domain.
    pub pages_allocated: u64,
}

impl Domain {
    /// Maximum number of 4 KiB pages this domain may allocate.
    pub fn page_limit(&self) -> u64 {
        self.mem_mib * 256 // 256 pages per MiB
    }
}

/// Registry of all domains in the machine.
#[derive(Clone, Debug, Default)]
pub struct DomainTable {
    domains: Vec<Domain>,
}

impl DomainTable {
    /// Creates an empty registry (no Dom0 yet).
    pub fn new() -> DomainTable {
        DomainTable::default()
    }

    /// Creates a domain and returns its id. Ids are assigned sequentially,
    /// so the first domain created is Dom0.
    pub fn create(
        &mut self,
        name: impl Into<String>,
        kind: DomainKind,
        mem_mib: u64,
        vcpus: u32,
    ) -> DomainId {
        let id = DomainId(self.domains.len() as u16);
        debug_assert!(
            (id.is_dom0()) == matches!(kind, DomainKind::Dom0),
            "the first domain must be Dom0 and only the first"
        );
        self.domains.push(Domain {
            id,
            name: name.into(),
            kind,
            mem_mib,
            vcpus,
            state: DomainState::Booting,
            pages_allocated: 0,
        });
        id
    }

    /// Looks up a domain.
    pub fn get(&self, id: DomainId) -> Result<&Domain> {
        self.domains
            .get(id.0 as usize)
            .filter(|d| d.state != DomainState::Dead)
            .ok_or(XenError::NoSuchDomain(id))
    }

    /// Looks up a domain mutably.
    pub fn get_mut(&mut self, id: DomainId) -> Result<&mut Domain> {
        self.domains
            .get_mut(id.0 as usize)
            .filter(|d| d.state != DomainState::Dead)
            .ok_or(XenError::NoSuchDomain(id))
    }

    /// Returns true if the domain exists and is not dead.
    pub fn alive(&self, id: DomainId) -> bool {
        self.get(id).is_ok()
    }

    /// Marks a domain as running (boot complete).
    pub fn set_running(&mut self, id: DomainId) -> Result<()> {
        self.get_mut(id)?.state = DomainState::Running;
        Ok(())
    }

    /// Destroys a domain. Its id is never reused.
    pub fn destroy(&mut self, id: DomainId) -> Result<()> {
        self.get_mut(id)?.state = DomainState::Dead;
        Ok(())
    }

    /// Iterates over live domains.
    pub fn iter(&self) -> impl Iterator<Item = &Domain> {
        self.domains.iter().filter(|d| d.state != DomainState::Dead)
    }

    /// Iterates every domain ever created, dead ones included — trace
    /// exports keep a named track for a crashed driver domain.
    pub fn iter_all(&self) -> impl Iterator<Item = &Domain> {
        self.domains.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_domain_is_dom0() {
        let mut t = DomainTable::new();
        let d0 = t.create("Domain-0", DomainKind::Dom0, 8192, 4);
        assert_eq!(d0, DomainId::DOM0);
        assert!(d0.is_dom0());
    }

    #[test]
    fn sequential_ids_and_lookup() {
        let mut t = DomainTable::new();
        t.create("Domain-0", DomainKind::Dom0, 8192, 4);
        let dd = t.create("netbackend", DomainKind::Driver, 1024, 1);
        let gu = t.create("guest", DomainKind::Guest, 5120, 22);
        assert_eq!(dd, DomainId(1));
        assert_eq!(gu, DomainId(2));
        assert_eq!(t.get(dd).unwrap().name, "netbackend");
        assert_eq!(t.get(gu).unwrap().vcpus, 22);
    }

    #[test]
    fn destroy_makes_domain_unreachable() {
        let mut t = DomainTable::new();
        t.create("Domain-0", DomainKind::Dom0, 8192, 4);
        let dd = t.create("dd", DomainKind::Driver, 1024, 1);
        t.destroy(dd).unwrap();
        assert!(!t.alive(dd));
        assert_eq!(t.get(dd).err(), Some(XenError::NoSuchDomain(dd)));
        // Ids are not reused.
        let g = t.create("g", DomainKind::Guest, 512, 1);
        assert_eq!(g, DomainId(2));
    }

    #[test]
    fn page_limit_scales_with_reservation() {
        let mut t = DomainTable::new();
        t.create("Domain-0", DomainKind::Dom0, 8192, 4);
        let dd = t.create("dd", DomainKind::Driver, 1024, 1);
        assert_eq!(t.get(dd).unwrap().page_limit(), 1024 * 256);
    }

    #[test]
    fn lifecycle_transitions() {
        let mut t = DomainTable::new();
        let d0 = t.create("Domain-0", DomainKind::Dom0, 8192, 4);
        assert_eq!(t.get(d0).unwrap().state, DomainState::Booting);
        t.set_running(d0).unwrap();
        assert_eq!(t.get(d0).unwrap().state, DomainState::Running);
    }
}
