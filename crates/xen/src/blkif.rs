//! Block PV device ABI (`xen/include/public/io/blkif.h`).
//!
//! One ring carries both directions. A *direct* request holds at most
//! [`BLKIF_MAX_SEGMENTS_PER_REQUEST`] (11) segments — 44 KiB per request,
//! the limit the paper calls out as insufficient for NVMe. An *indirect*
//! request instead carries grants for up to 8 pages, each packed with
//! 512 segment descriptors; Kite (like Linux) caps usable indirect
//! segments at 32.
//!
//! Request slots are 112 bytes, giving the canonical 32-slot blkif ring.

use crate::grant::GrantRef;
use crate::ring::{ring_size, RingEntry};

/// Read sectors.
pub const BLKIF_OP_READ: u8 = 0;
/// Write sectors.
pub const BLKIF_OP_WRITE: u8 = 1;
/// Write barrier (legacy).
pub const BLKIF_OP_WRITE_BARRIER: u8 = 2;
/// Flush the disk cache.
pub const BLKIF_OP_FLUSH_DISKCACHE: u8 = 3;
/// Discard (TRIM) sectors.
pub const BLKIF_OP_DISCARD: u8 = 5;
/// Indirect descriptor request.
pub const BLKIF_OP_INDIRECT: u8 = 6;

/// Maximum segments in a direct request (ring-slot limited).
pub const BLKIF_MAX_SEGMENTS_PER_REQUEST: usize = 11;
/// Maximum indirect descriptor pages per indirect request.
pub const BLKIF_MAX_INDIRECT_PAGES_PER_REQUEST: usize = 8;
/// Segment descriptors that fit in one indirect page (4096 / 8).
pub const SEGS_PER_INDIRECT_FRAME: usize = 512;

/// Response status: success.
pub const BLKIF_RSP_OKAY: i16 = 0;
/// Response status: error.
pub const BLKIF_RSP_ERROR: i16 = -1;
/// Response status: operation not supported.
pub const BLKIF_RSP_EOPNOTSUPP: i16 = -2;

/// Sector size assumed by the protocol (512 bytes).
pub const SECTOR_SIZE: usize = 512;

/// One data segment: a granted page plus a first/last sector range inside
/// it (each page holds 8 × 512-byte sectors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlkifSegment {
    /// Grant for the data page.
    pub gref: GrantRef,
    /// First 512-byte sector of the page to transfer (0–7).
    pub first_sect: u8,
    /// Last sector of the page to transfer, inclusive (0–7).
    pub last_sect: u8,
}

impl BlkifSegment {
    /// Serialized size of one segment descriptor.
    pub const SIZE: usize = 8;

    /// Number of sectors this segment covers.
    pub fn sectors(&self) -> u64 {
        (self.last_sect as u64 + 1).saturating_sub(self.first_sect as u64)
    }

    /// Bytes this segment covers.
    pub fn len(&self) -> usize {
        self.sectors() as usize * SECTOR_SIZE
    }

    /// True if the segment covers no sectors (malformed).
    pub fn is_empty(&self) -> bool {
        self.last_sect < self.first_sect
    }

    /// Serializes into an 8-byte descriptor.
    pub fn write_to(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.gref.0.to_le_bytes());
        buf[4] = self.first_sect;
        buf[5] = self.last_sect;
        buf[6] = 0;
        buf[7] = 0;
    }

    /// Deserializes an 8-byte descriptor.
    pub fn read_from(buf: &[u8]) -> Self {
        BlkifSegment {
            gref: GrantRef(u32::from_le_bytes(buf[0..4].try_into().unwrap())),
            first_sect: buf[4],
            last_sect: buf[5],
        }
    }
}

/// A block request: direct (inline segments) or indirect (segment pages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlkifRequest {
    /// Direct request with up to 11 inline segments.
    Direct {
        /// `BLKIF_OP_READ`/`WRITE`/`FLUSH_DISKCACHE`/…
        operation: u8,
        /// Virtual device handle.
        handle: u16,
        /// Frontend-chosen id echoed in the response.
        id: u64,
        /// Starting absolute 512-byte sector on the device.
        sector_number: u64,
        /// Data segments.
        segments: Vec<BlkifSegment>,
    },
    /// Indirect request: segments live in separately granted pages.
    Indirect {
        /// The actual I/O operation (`BLKIF_OP_READ`/`WRITE`).
        indirect_op: u8,
        /// Virtual device handle.
        handle: u16,
        /// Frontend-chosen id echoed in the response.
        id: u64,
        /// Starting absolute 512-byte sector.
        sector_number: u64,
        /// Total number of segments across the indirect pages.
        nr_segments: u16,
        /// Grants for up to 8 pages of packed segment descriptors.
        indirect_grefs: Vec<GrantRef>,
    },
}

impl BlkifRequest {
    /// The frontend-chosen request id.
    pub fn id(&self) -> u64 {
        match self {
            BlkifRequest::Direct { id, .. } => *id,
            BlkifRequest::Indirect { id, .. } => *id,
        }
    }

    /// The effective I/O operation (resolving indirection).
    pub fn io_op(&self) -> u8 {
        match self {
            BlkifRequest::Direct { operation, .. } => *operation,
            BlkifRequest::Indirect { indirect_op, .. } => *indirect_op,
        }
    }

    /// The starting sector.
    pub fn sector(&self) -> u64 {
        match self {
            BlkifRequest::Direct { sector_number, .. } => *sector_number,
            BlkifRequest::Indirect { sector_number, .. } => *sector_number,
        }
    }
}

impl RingEntry for BlkifRequest {
    const SIZE: usize = 112;

    fn write_to(&self, buf: &mut [u8]) {
        buf.fill(0);
        match self {
            BlkifRequest::Direct {
                operation,
                handle,
                id,
                sector_number,
                segments,
            } => {
                buf[0] = *operation;
                buf[1] = segments.len() as u8;
                buf[2..4].copy_from_slice(&handle.to_le_bytes());
                buf[8..16].copy_from_slice(&id.to_le_bytes());
                buf[16..24].copy_from_slice(&sector_number.to_le_bytes());
                for (i, seg) in segments
                    .iter()
                    .enumerate()
                    .take(BLKIF_MAX_SEGMENTS_PER_REQUEST)
                {
                    seg.write_to(&mut buf[24 + i * 8..32 + i * 8]);
                }
            }
            BlkifRequest::Indirect {
                indirect_op,
                handle,
                id,
                sector_number,
                nr_segments,
                indirect_grefs,
            } => {
                buf[0] = BLKIF_OP_INDIRECT;
                buf[1] = *indirect_op;
                buf[2..4].copy_from_slice(&nr_segments.to_le_bytes());
                buf[4..6].copy_from_slice(&handle.to_le_bytes());
                buf[8..16].copy_from_slice(&id.to_le_bytes());
                buf[16..24].copy_from_slice(&sector_number.to_le_bytes());
                for (i, g) in indirect_grefs
                    .iter()
                    .enumerate()
                    .take(BLKIF_MAX_INDIRECT_PAGES_PER_REQUEST)
                {
                    buf[24 + i * 4..28 + i * 4].copy_from_slice(&g.0.to_le_bytes());
                }
            }
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        let operation = buf[0];
        if operation == BLKIF_OP_INDIRECT {
            let indirect_op = buf[1];
            let nr_segments = u16::from_le_bytes(buf[2..4].try_into().unwrap());
            let handle = u16::from_le_bytes(buf[4..6].try_into().unwrap());
            let id = u64::from_le_bytes(buf[8..16].try_into().unwrap());
            let sector_number = u64::from_le_bytes(buf[16..24].try_into().unwrap());
            let pages = (nr_segments as usize).div_ceil(SEGS_PER_INDIRECT_FRAME);
            let indirect_grefs = (0..pages.min(BLKIF_MAX_INDIRECT_PAGES_PER_REQUEST))
                .map(|i| {
                    GrantRef(u32::from_le_bytes(
                        buf[24 + i * 4..28 + i * 4].try_into().unwrap(),
                    ))
                })
                .collect();
            BlkifRequest::Indirect {
                indirect_op,
                handle,
                id,
                sector_number,
                nr_segments,
                indirect_grefs,
            }
        } else {
            let nr = (buf[1] as usize).min(BLKIF_MAX_SEGMENTS_PER_REQUEST);
            let handle = u16::from_le_bytes(buf[2..4].try_into().unwrap());
            let id = u64::from_le_bytes(buf[8..16].try_into().unwrap());
            let sector_number = u64::from_le_bytes(buf[16..24].try_into().unwrap());
            let segments = (0..nr)
                .map(|i| BlkifSegment::read_from(&buf[24 + i * 8..32 + i * 8]))
                .collect();
            BlkifRequest::Direct {
                operation,
                handle,
                id,
                sector_number,
                segments,
            }
        }
    }
}

/// A block response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlkifResponse {
    /// Echoed request id.
    pub id: u64,
    /// Echoed operation.
    pub operation: u8,
    /// `BLKIF_RSP_*` status.
    pub status: i16,
}

impl RingEntry for BlkifResponse {
    const SIZE: usize = 16;
    fn write_to(&self, buf: &mut [u8]) {
        buf.fill(0);
        buf[0..8].copy_from_slice(&self.id.to_le_bytes());
        buf[8] = self.operation;
        buf[10..12].copy_from_slice(&self.status.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        BlkifResponse {
            id: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            operation: buf[8],
            status: i16::from_le_bytes(buf[10..12].try_into().unwrap()),
        }
    }
}

/// Slot count of the blkif ring (matches Xen's 32).
pub const BLK_RING_SIZE: u32 = ring_size(BlkifRequest::SIZE, BlkifResponse::SIZE);

/// Packs segment descriptors into an indirect page's bytes.
pub fn pack_indirect_segments(page: &mut [u8], segs: &[BlkifSegment]) {
    for (i, s) in segs.iter().enumerate().take(SEGS_PER_INDIRECT_FRAME) {
        s.write_to(&mut page[i * 8..i * 8 + 8]);
    }
}

/// Unpacks `n` segment descriptors from an indirect page's bytes.
pub fn unpack_indirect_segments(page: &[u8], n: usize) -> Vec<BlkifSegment> {
    (0..n.min(SEGS_PER_INDIRECT_FRAME))
        .map(|i| BlkifSegment::read_from(&page[i * 8..i * 8 + 8]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_size_matches_xen() {
        assert_eq!(BLK_RING_SIZE, 32);
    }

    #[test]
    fn direct_request_roundtrip() {
        let r = BlkifRequest::Direct {
            operation: BLKIF_OP_WRITE,
            handle: 51712, // xvda
            id: 0xfeed,
            sector_number: 123456,
            segments: (0..11)
                .map(|i| BlkifSegment {
                    gref: GrantRef(100 + i),
                    first_sect: 0,
                    last_sect: 7,
                })
                .collect(),
        };
        let mut buf = [0u8; BlkifRequest::SIZE];
        r.write_to(&mut buf);
        assert_eq!(BlkifRequest::read_from(&buf), r);
    }

    #[test]
    fn indirect_request_roundtrip() {
        let r = BlkifRequest::Indirect {
            indirect_op: BLKIF_OP_READ,
            handle: 51712,
            id: 7,
            sector_number: 999,
            nr_segments: 32,
            indirect_grefs: vec![GrantRef(1)],
        };
        let mut buf = [0u8; BlkifRequest::SIZE];
        r.write_to(&mut buf);
        assert_eq!(BlkifRequest::read_from(&buf), r);
    }

    #[test]
    fn response_roundtrip() {
        let r = BlkifResponse {
            id: u64::MAX,
            operation: BLKIF_OP_READ,
            status: BLKIF_RSP_ERROR,
        };
        let mut buf = [0u8; BlkifResponse::SIZE];
        r.write_to(&mut buf);
        assert_eq!(BlkifResponse::read_from(&buf), r);
    }

    #[test]
    fn segment_geometry() {
        let s = BlkifSegment {
            gref: GrantRef(1),
            first_sect: 2,
            last_sect: 5,
        };
        assert_eq!(s.sectors(), 4);
        assert_eq!(s.len(), 2048);
        assert!(!s.is_empty());
        let bad = BlkifSegment {
            gref: GrantRef(1),
            first_sect: 5,
            last_sect: 2,
        };
        assert!(bad.is_empty());
        assert_eq!(bad.sectors(), 0);
    }

    #[test]
    fn direct_request_max_44kib() {
        // 11 segments x 8 sectors x 512B = 44 KiB, the paper's figure.
        let max_bytes = BLKIF_MAX_SEGMENTS_PER_REQUEST * 8 * SECTOR_SIZE;
        assert_eq!(max_bytes, 44 * 1024);
    }

    #[test]
    fn indirect_packing_roundtrip() {
        let segs: Vec<BlkifSegment> = (0..512)
            .map(|i| BlkifSegment {
                gref: GrantRef(i),
                first_sect: (i % 8) as u8,
                last_sect: 7,
            })
            .collect();
        let mut page = vec![0u8; 4096];
        pack_indirect_segments(&mut page, &segs);
        assert_eq!(unpack_indirect_segments(&page, 512), segs);
    }

    #[test]
    fn indirect_capacity_16mib() {
        // 8 pages x 512 segs x 4 KiB = 16 MiB per request, per the paper.
        let bytes = BLKIF_MAX_INDIRECT_PAGES_PER_REQUEST * SEGS_PER_INDIRECT_FRAME * 4096;
        assert_eq!(bytes, 16 * 1024 * 1024);
    }
}
