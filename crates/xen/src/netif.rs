//! Network PV device ABI (`xen/include/public/io/netif.h`).
//!
//! Netfront and netback exchange fixed-layout request/response structs over
//! two rings: **Tx** (guest → backend) and **Rx** (backend → guest). The
//! layouts below match the x86-64 ABI byte-for-byte, so the ring math
//! (slot counts, paper's batching behaviour) is identical to real Xen:
//! 256 Tx slots and 256 Rx slots per 4 KiB ring page.

use crate::grant::GrantRef;
use crate::ring::{ring_size, RingEntry};

/// Tx flag: checksum not yet computed (`NETTXF_csum_blank`).
pub const NETTXF_CSUM_BLANK: u16 = 1;
/// Tx flag: packet data already validated (`NETTXF_data_validated`).
pub const NETTXF_DATA_VALIDATED: u16 = 2;
/// Tx flag: more fragments follow (`NETTXF_more_data`).
pub const NETTXF_MORE_DATA: u16 = 4;
/// Tx flag: an extra-info slot follows (`NETTXF_extra_info`).
pub const NETTXF_EXTRA_INFO: u16 = 8;

/// Rx flag: packet data already validated (`NETRXF_data_validated`).
pub const NETRXF_DATA_VALIDATED: u16 = 1;
/// Rx flag: checksum not yet computed (`NETRXF_csum_blank`).
pub const NETRXF_CSUM_BLANK: u16 = 2;
/// Rx flag: more fragments of this packet follow (`NETRXF_more_data`).
pub const NETRXF_MORE_DATA: u16 = 4;
/// Rx flag: an extra-info slot follows (`NETRXF_extra_info`).
pub const NETRXF_EXTRA_INFO: u16 = 8;

/// Response status: success.
pub const NETIF_RSP_OKAY: i16 = 0;
/// Response status: generic error.
pub const NETIF_RSP_ERROR: i16 = -1;
/// Response status: packet dropped.
pub const NETIF_RSP_DROPPED: i16 = -2;
/// Response status for a slot that carried a [`NetifExtraInfo`] rather
/// than packet data (`NETIF_RSP_NULL`). The ring protocol produces
/// exactly one response per consumed request slot, so extra-info slots
/// are answered too — with a status the frontend must skip.
pub const NETIF_RSP_NULL: i16 = 1;

/// `XEN_NETIF_EXTRA_TYPE_GSO`: the extra-info slot describes a GSO
/// super-frame.
pub const XEN_NETIF_EXTRA_TYPE_GSO: u8 = 1;

/// Largest super-frame a GSO descriptor chain may carry, in bytes
/// (matches Linux's 64 KiB GSO limit).
pub const NETIF_MAX_GSO_FRAME: usize = 65536;

/// Most data fragments one descriptor chain may span: a 64 KiB
/// super-frame across 4 KiB granted pages, plus slack for an unaligned
/// first fragment. Chains longer than this are malformed.
pub const NETIF_MAX_TX_CHAIN: usize = NETIF_MAX_GSO_FRAME / crate::mem::PAGE_SIZE + 1;

/// A GSO descriptor (`struct netif_extra_info`). It does not travel in
/// a struct of its own: the frontend encodes it into the Tx ring slot
/// immediately after a request flagged [`NETTXF_EXTRA_INFO`], exactly
/// like Xen's request/extra-info union.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifExtraInfo {
    /// Extra-info discriminator (`XEN_NETIF_EXTRA_TYPE_*`).
    pub kind: u8,
    /// Maximum segment size the NIC should cut the super-frame into
    /// (the flow's MSS); `gso.size` in real Xen.
    pub gso_size: u16,
    /// Number of wire segments the sender claims the super-frame
    /// resolves to. Real Xen derives this in the backend; carrying the
    /// guest's claim lets the backend cross-check it (SoK validation).
    pub gso_segs: u16,
    /// Total payload bytes across every data fragment of the chain.
    pub total_len: u32,
}

impl NetifExtraInfo {
    /// Encodes the descriptor into a Tx ring slot. Real Xen overlays
    /// `struct netif_extra_info` on the request union; this mapping is
    /// the same idea with the fields spelled out:
    /// `gref` carries `total_len`, `offset` carries `gso_size`,
    /// `flags` carries `gso_segs`, `id` carries the extra type, and
    /// `size` is zero.
    pub fn to_tx_slot(self) -> NetifTxRequest {
        NetifTxRequest {
            gref: GrantRef(self.total_len),
            offset: self.gso_size,
            flags: self.gso_segs,
            id: self.kind as u16,
            size: 0,
        }
    }

    /// Decodes an extra-info descriptor from a Tx ring slot (the slot
    /// following a request flagged `NETTXF_EXTRA_INFO`).
    pub fn from_tx_slot(slot: &NetifTxRequest) -> Self {
        NetifExtraInfo {
            kind: slot.id as u8,
            gso_size: slot.offset,
            gso_segs: slot.flags,
            total_len: slot.gref.0,
        }
    }
}

/// A transmit request: the guest offers `size` bytes at `offset` within the
/// page granted via `gref`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifTxRequest {
    /// Grant for the page holding packet data.
    pub gref: GrantRef,
    /// Byte offset of the data within the granted page.
    pub offset: u16,
    /// `NETTXF_*` flags.
    pub flags: u16,
    /// Frontend-chosen id echoed in the response.
    pub id: u16,
    /// Packet (or fragment) length in bytes.
    pub size: u16,
}

impl RingEntry for NetifTxRequest {
    const SIZE: usize = 12;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.gref.0.to_le_bytes());
        buf[4..6].copy_from_slice(&self.offset.to_le_bytes());
        buf[6..8].copy_from_slice(&self.flags.to_le_bytes());
        buf[8..10].copy_from_slice(&self.id.to_le_bytes());
        buf[10..12].copy_from_slice(&self.size.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifTxRequest {
            gref: GrantRef(u32::from_le_bytes(buf[0..4].try_into().unwrap())),
            offset: u16::from_le_bytes(buf[4..6].try_into().unwrap()),
            flags: u16::from_le_bytes(buf[6..8].try_into().unwrap()),
            id: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
            size: u16::from_le_bytes(buf[10..12].try_into().unwrap()),
        }
    }
}

/// A transmit response: `status` for the request with matching `id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifTxResponse {
    /// Echoed request id.
    pub id: u16,
    /// `NETIF_RSP_*` status.
    pub status: i16,
}

impl RingEntry for NetifTxResponse {
    const SIZE: usize = 4;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.id.to_le_bytes());
        buf[2..4].copy_from_slice(&self.status.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifTxResponse {
            id: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            status: i16::from_le_bytes(buf[2..4].try_into().unwrap()),
        }
    }
}

/// A receive request: the guest posts an empty granted page for the backend
/// to fill with an incoming packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifRxRequest {
    /// Frontend-chosen id echoed in the response.
    pub id: u16,
    /// Grant for the empty buffer page (backend copies into it).
    pub gref: GrantRef,
}

impl RingEntry for NetifRxRequest {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.id.to_le_bytes());
        buf[2..4].copy_from_slice(&0u16.to_le_bytes()); // pad
        buf[4..8].copy_from_slice(&self.gref.0.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifRxRequest {
            id: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            gref: GrantRef(u32::from_le_bytes(buf[4..8].try_into().unwrap())),
        }
    }
}

/// A receive response: non-negative `status` is the packet length written
/// into the posted buffer at `offset`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifRxResponse {
    /// Echoed request id.
    pub id: u16,
    /// Offset of data within the buffer page.
    pub offset: u16,
    /// `NETRXF_*` flags (unused by this reproduction).
    pub flags: u16,
    /// Packet length, or a negative `NETIF_RSP_*` error.
    pub status: i16,
}

impl RingEntry for NetifRxResponse {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.id.to_le_bytes());
        buf[2..4].copy_from_slice(&self.offset.to_le_bytes());
        buf[4..6].copy_from_slice(&self.flags.to_le_bytes());
        buf[6..8].copy_from_slice(&self.status.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifRxResponse {
            id: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            offset: u16::from_le_bytes(buf[2..4].try_into().unwrap()),
            flags: u16::from_le_bytes(buf[4..6].try_into().unwrap()),
            status: i16::from_le_bytes(buf[6..8].try_into().unwrap()),
        }
    }
}

/// Slot count of the Tx ring (matches Xen's `NET_TX_RING_SIZE` = 256).
pub const NET_TX_RING_SIZE: u32 = ring_size(NetifTxRequest::SIZE, NetifTxResponse::SIZE);

/// Slot count of the Rx ring (matches Xen's `NET_RX_RING_SIZE` = 256).
pub const NET_RX_RING_SIZE: u32 = ring_size(NetifRxRequest::SIZE, NetifRxResponse::SIZE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sizes_match_xen() {
        assert_eq!(NET_TX_RING_SIZE, 256);
        assert_eq!(NET_RX_RING_SIZE, 256);
    }

    #[test]
    fn tx_request_roundtrip() {
        let r = NetifTxRequest {
            gref: GrantRef(0xabcd1234),
            offset: 64,
            flags: NETTXF_MORE_DATA | NETTXF_CSUM_BLANK,
            id: 17,
            size: 1514,
        };
        let mut buf = [0u8; NetifTxRequest::SIZE];
        r.write_to(&mut buf);
        assert_eq!(NetifTxRequest::read_from(&buf), r);
    }

    #[test]
    fn tx_response_roundtrip_negative_status() {
        let r = NetifTxResponse {
            id: 9,
            status: NETIF_RSP_DROPPED,
        };
        let mut buf = [0u8; NetifTxResponse::SIZE];
        r.write_to(&mut buf);
        assert_eq!(NetifTxResponse::read_from(&buf), r);
    }

    #[test]
    fn extra_info_roundtrips_through_a_tx_slot() {
        let e = NetifExtraInfo {
            kind: XEN_NETIF_EXTRA_TYPE_GSO,
            gso_size: 1448,
            gso_segs: 43,
            total_len: 61824,
        };
        let slot = e.to_tx_slot();
        // The carrier slot serializes like any other Tx request.
        let mut buf = [0u8; NetifTxRequest::SIZE];
        slot.write_to(&mut buf);
        let back = NetifExtraInfo::from_tx_slot(&NetifTxRequest::read_from(&buf));
        assert_eq!(back, e);
        assert_eq!(slot.size, 0, "extra slots carry no packet data");
    }

    #[test]
    fn chain_bounds_cover_a_64k_super_frame() {
        assert_eq!(NETIF_MAX_GSO_FRAME, 65536);
        // 16 full pages of data plus one slot of slack; with the
        // extra-info slot a maximal chain still fits a 256-slot ring.
        assert_eq!(NETIF_MAX_TX_CHAIN, 17);
        assert!(NETIF_MAX_TX_CHAIN + 1 < NET_TX_RING_SIZE as usize);
    }

    #[test]
    fn rx_roundtrips() {
        let req = NetifRxRequest {
            id: 3,
            gref: GrantRef(77),
        };
        let mut buf = [0u8; NetifRxRequest::SIZE];
        req.write_to(&mut buf);
        assert_eq!(NetifRxRequest::read_from(&buf), req);

        let rsp = NetifRxResponse {
            id: 3,
            offset: 0,
            flags: 0,
            status: 1514,
        };
        let mut buf = [0u8; NetifRxResponse::SIZE];
        rsp.write_to(&mut buf);
        assert_eq!(NetifRxResponse::read_from(&buf), rsp);
    }
}
