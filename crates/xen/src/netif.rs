//! Network PV device ABI (`xen/include/public/io/netif.h`).
//!
//! Netfront and netback exchange fixed-layout request/response structs over
//! two rings: **Tx** (guest → backend) and **Rx** (backend → guest). The
//! layouts below match the x86-64 ABI byte-for-byte, so the ring math
//! (slot counts, paper's batching behaviour) is identical to real Xen:
//! 256 Tx slots and 256 Rx slots per 4 KiB ring page.

use crate::grant::GrantRef;
use crate::ring::{ring_size, RingEntry};

/// Tx flag: checksum not yet computed (`NETTXF_csum_blank`).
pub const NETTXF_CSUM_BLANK: u16 = 1;
/// Tx flag: packet data already validated (`NETTXF_data_validated`).
pub const NETTXF_DATA_VALIDATED: u16 = 2;
/// Tx flag: more fragments follow (`NETTXF_more_data`).
pub const NETTXF_MORE_DATA: u16 = 4;
/// Tx flag: an extra-info slot follows (`NETTXF_extra_info`).
pub const NETTXF_EXTRA_INFO: u16 = 8;

/// Response status: success.
pub const NETIF_RSP_OKAY: i16 = 0;
/// Response status: generic error.
pub const NETIF_RSP_ERROR: i16 = -1;
/// Response status: packet dropped.
pub const NETIF_RSP_DROPPED: i16 = -2;

/// A transmit request: the guest offers `size` bytes at `offset` within the
/// page granted via `gref`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifTxRequest {
    /// Grant for the page holding packet data.
    pub gref: GrantRef,
    /// Byte offset of the data within the granted page.
    pub offset: u16,
    /// `NETTXF_*` flags.
    pub flags: u16,
    /// Frontend-chosen id echoed in the response.
    pub id: u16,
    /// Packet (or fragment) length in bytes.
    pub size: u16,
}

impl RingEntry for NetifTxRequest {
    const SIZE: usize = 12;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.gref.0.to_le_bytes());
        buf[4..6].copy_from_slice(&self.offset.to_le_bytes());
        buf[6..8].copy_from_slice(&self.flags.to_le_bytes());
        buf[8..10].copy_from_slice(&self.id.to_le_bytes());
        buf[10..12].copy_from_slice(&self.size.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifTxRequest {
            gref: GrantRef(u32::from_le_bytes(buf[0..4].try_into().unwrap())),
            offset: u16::from_le_bytes(buf[4..6].try_into().unwrap()),
            flags: u16::from_le_bytes(buf[6..8].try_into().unwrap()),
            id: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
            size: u16::from_le_bytes(buf[10..12].try_into().unwrap()),
        }
    }
}

/// A transmit response: `status` for the request with matching `id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifTxResponse {
    /// Echoed request id.
    pub id: u16,
    /// `NETIF_RSP_*` status.
    pub status: i16,
}

impl RingEntry for NetifTxResponse {
    const SIZE: usize = 4;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.id.to_le_bytes());
        buf[2..4].copy_from_slice(&self.status.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifTxResponse {
            id: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            status: i16::from_le_bytes(buf[2..4].try_into().unwrap()),
        }
    }
}

/// A receive request: the guest posts an empty granted page for the backend
/// to fill with an incoming packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifRxRequest {
    /// Frontend-chosen id echoed in the response.
    pub id: u16,
    /// Grant for the empty buffer page (backend copies into it).
    pub gref: GrantRef,
}

impl RingEntry for NetifRxRequest {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.id.to_le_bytes());
        buf[2..4].copy_from_slice(&0u16.to_le_bytes()); // pad
        buf[4..8].copy_from_slice(&self.gref.0.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifRxRequest {
            id: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            gref: GrantRef(u32::from_le_bytes(buf[4..8].try_into().unwrap())),
        }
    }
}

/// A receive response: non-negative `status` is the packet length written
/// into the posted buffer at `offset`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetifRxResponse {
    /// Echoed request id.
    pub id: u16,
    /// Offset of data within the buffer page.
    pub offset: u16,
    /// `NETRXF_*` flags (unused by this reproduction).
    pub flags: u16,
    /// Packet length, or a negative `NETIF_RSP_*` error.
    pub status: i16,
}

impl RingEntry for NetifRxResponse {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.id.to_le_bytes());
        buf[2..4].copy_from_slice(&self.offset.to_le_bytes());
        buf[4..6].copy_from_slice(&self.flags.to_le_bytes());
        buf[6..8].copy_from_slice(&self.status.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        NetifRxResponse {
            id: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            offset: u16::from_le_bytes(buf[2..4].try_into().unwrap()),
            flags: u16::from_le_bytes(buf[4..6].try_into().unwrap()),
            status: i16::from_le_bytes(buf[6..8].try_into().unwrap()),
        }
    }
}

/// Slot count of the Tx ring (matches Xen's `NET_TX_RING_SIZE` = 256).
pub const NET_TX_RING_SIZE: u32 = ring_size(NetifTxRequest::SIZE, NetifTxResponse::SIZE);

/// Slot count of the Rx ring (matches Xen's `NET_RX_RING_SIZE` = 256).
pub const NET_RX_RING_SIZE: u32 = ring_size(NetifRxRequest::SIZE, NetifRxResponse::SIZE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sizes_match_xen() {
        assert_eq!(NET_TX_RING_SIZE, 256);
        assert_eq!(NET_RX_RING_SIZE, 256);
    }

    #[test]
    fn tx_request_roundtrip() {
        let r = NetifTxRequest {
            gref: GrantRef(0xabcd1234),
            offset: 64,
            flags: NETTXF_MORE_DATA | NETTXF_CSUM_BLANK,
            id: 17,
            size: 1514,
        };
        let mut buf = [0u8; NetifTxRequest::SIZE];
        r.write_to(&mut buf);
        assert_eq!(NetifTxRequest::read_from(&buf), r);
    }

    #[test]
    fn tx_response_roundtrip_negative_status() {
        let r = NetifTxResponse {
            id: 9,
            status: NETIF_RSP_DROPPED,
        };
        let mut buf = [0u8; NetifTxResponse::SIZE];
        r.write_to(&mut buf);
        assert_eq!(NetifTxResponse::read_from(&buf), r);
    }

    #[test]
    fn rx_roundtrips() {
        let req = NetifRxRequest {
            id: 3,
            gref: GrantRef(77),
        };
        let mut buf = [0u8; NetifRxRequest::SIZE];
        req.write_to(&mut buf);
        assert_eq!(NetifRxRequest::read_from(&buf), req);

        let rsp = NetifRxResponse {
            id: 3,
            offset: 0,
            flags: 0,
            status: 1514,
        };
        let mut buf = [0u8; NetifRxResponse::SIZE];
        rsp.write_to(&mut buf);
        assert_eq!(NetifRxResponse::read_from(&buf), rsp);
    }
}
