//! Grant tables: Xen's page-sharing permission mechanism.
//!
//! A domain *grants* a peer access to one of its pages and hands the peer a
//! [`GrantRef`]. The peer can then either *map* the page (getting direct
//! access until it unmaps) or ask the hypervisor to *copy* bytes in or out
//! (`GNTTABOP_copy` — the "hypervisor copy" that Kite's netback uses, since
//! the hypervisor has all machine memory mapped).
//!
//! Permission checks are real: mapping a grant issued to a different domain,
//! writing through a read-only grant, or using a revoked grant all fail
//! deterministically, which the security tests rely on.

use std::collections::HashMap;

use crate::domain::DomainId;
use crate::error::{Result, XenError};
use crate::mem::{MachineMemory, PageId, PAGE_SIZE};

/// A grant reference: an index into the granting domain's grant table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GrantRef(pub u32);

/// A handle to an active grant mapping, returned by [`GrantTables::map`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MapHandle(u64);

#[derive(Clone, Debug)]
struct GrantEntry {
    peer: DomainId,
    page: PageId,
    readonly: bool,
    map_count: u32,
}

/// One domain's grant table.
#[derive(Clone, Debug, Default)]
struct GrantTable {
    entries: Vec<Option<GrantEntry>>,
    free: Vec<u32>,
}

impl GrantTable {
    fn insert(&mut self, e: GrantEntry) -> GrantRef {
        if let Some(idx) = self.free.pop() {
            self.entries[idx as usize] = Some(e);
            GrantRef(idx)
        } else {
            self.entries.push(Some(e));
            GrantRef(self.entries.len() as u32 - 1)
        }
    }

    fn get(&self, r: GrantRef) -> Result<&GrantEntry> {
        self.entries
            .get(r.0 as usize)
            .and_then(|e| e.as_ref())
            .ok_or(XenError::BadGrant)
    }

    fn get_mut(&mut self, r: GrantRef) -> Result<&mut GrantEntry> {
        self.entries
            .get_mut(r.0 as usize)
            .and_then(|e| e.as_mut())
            .ok_or(XenError::BadGrant)
    }

    fn remove(&mut self, r: GrantRef) -> Result<GrantEntry> {
        let slot = self
            .entries
            .get_mut(r.0 as usize)
            .ok_or(XenError::BadGrant)?;
        let e = slot.take().ok_or(XenError::BadGrant)?;
        self.free.push(r.0);
        Ok(e)
    }
}

/// Details of an active mapping.
#[derive(Clone, Copy, Debug)]
pub struct Mapping {
    /// The mapping handle (needed for unmap).
    pub handle: MapHandle,
    /// The machine page now accessible to the mapper.
    pub page: PageId,
    /// Whether the mapping is read-only.
    pub readonly: bool,
}

#[derive(Clone, Debug)]
struct MapRecord {
    mapper: DomainId,
    granter: DomainId,
    gref: GrantRef,
}

/// Per-direction descriptor for a grant copy.
#[derive(Clone, Copy, Debug)]
pub enum CopySide {
    /// A page the calling domain owns directly.
    Local { page: PageId, offset: usize },
    /// A foreign page referenced via a grant issued *to the caller*.
    Grant {
        granter: DomainId,
        gref: GrantRef,
        offset: usize,
    },
}

/// One copy descriptor in a batched `GNTTABOP_copy` (`gnttab_copy_t`).
#[derive(Clone, Copy, Debug)]
pub struct GrantCopyOp {
    /// Where the bytes come from.
    pub src: CopySide,
    /// Where the bytes go.
    pub dst: CopySide,
    /// Bytes to move; with the offsets, must stay within one page.
    pub len: usize,
}

/// Per-op completion status of a batched copy (Xen's `GNTST_*` field).
///
/// A batch is processed op by op; a failing op never aborts the batch,
/// it just reports its error here while later ops still execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyStatus {
    /// The op copied all its bytes.
    Okay,
    /// The op failed the stated permission/bounds check; no bytes moved.
    Error(XenError),
}

impl CopyStatus {
    /// True for [`CopyStatus::Okay`].
    pub fn is_okay(self) -> bool {
        matches!(self, CopyStatus::Okay)
    }
}

/// How a driver issues its grant copies (migration switch for benches and
/// equivalence tests; production paths use [`CopyMode::Batched`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CopyMode {
    /// One `GNTTABOP_copy` hypercall carrying the whole op array.
    #[default]
    Batched,
    /// The legacy shape: one hypercall per op.
    SingleOp,
}

/// All grant tables in the machine plus the active-mapping registry.
#[derive(Default)]
pub struct GrantTables {
    tables: HashMap<DomainId, GrantTable>,
    maps: HashMap<MapHandle, MapRecord>,
    next_handle: u64,
}

impl GrantTables {
    /// Creates an empty set of tables.
    pub fn new() -> GrantTables {
        GrantTables::default()
    }

    /// `granter` grants `peer` access to `page`.
    ///
    /// The granter must own the page.
    pub fn grant_access(
        &mut self,
        mem: &MachineMemory,
        granter: DomainId,
        peer: DomainId,
        page: PageId,
        readonly: bool,
    ) -> Result<GrantRef> {
        if mem.owner(page)? != granter {
            return Err(XenError::Perm);
        }
        Ok(self.tables.entry(granter).or_default().insert(GrantEntry {
            peer,
            page,
            readonly,
            map_count: 0,
        }))
    }

    /// `granter` revokes a grant it previously issued.
    ///
    /// Fails with [`XenError::GrantInUse`] while the peer still has it
    /// mapped (mirroring `gnttab_end_foreign_access_ref` returning busy).
    pub fn end_access(&mut self, granter: DomainId, gref: GrantRef) -> Result<()> {
        let table = self.tables.get_mut(&granter).ok_or(XenError::BadGrant)?;
        if table.get(gref)?.map_count > 0 {
            return Err(XenError::GrantInUse);
        }
        table.remove(gref).map(|_| ())
    }

    /// `mapper` maps a grant issued by `granter`.
    pub fn map(&mut self, mapper: DomainId, granter: DomainId, gref: GrantRef) -> Result<Mapping> {
        let table = self.tables.get_mut(&granter).ok_or(XenError::BadGrant)?;
        let entry = table.get_mut(gref)?;
        if entry.peer != mapper {
            return Err(XenError::BadGrant);
        }
        entry.map_count += 1;
        let handle = MapHandle(self.next_handle);
        self.next_handle += 1;
        self.maps.insert(
            handle,
            MapRecord {
                mapper,
                granter,
                gref,
            },
        );
        Ok(Mapping {
            handle,
            page: entry.page,
            readonly: entry.readonly,
        })
    }

    /// Reclaims everything a dead domain holds: drops all mappings it
    /// established (releasing the granters' busy counts) and its own
    /// grant table. What Xen does on domain destruction — the peers'
    /// grants become revocable again without the dead domain's help.
    /// Returns the number of mappings torn down.
    pub fn reclaim_domain(&mut self, dead: DomainId) -> usize {
        let handles: Vec<MapHandle> = self
            .maps
            .iter()
            .filter(|(_, r)| r.mapper == dead)
            .map(|(&h, _)| h)
            .collect();
        let n = handles.len();
        for h in handles {
            let rec = self.maps.remove(&h).expect("collected above");
            if let Some(table) = self.tables.get_mut(&rec.granter) {
                if let Ok(entry) = table.get_mut(rec.gref) {
                    entry.map_count = entry.map_count.saturating_sub(1);
                }
            }
        }
        self.tables.remove(&dead);
        n
    }

    /// `mapper` unmaps a previously established mapping.
    pub fn unmap(&mut self, mapper: DomainId, handle: MapHandle) -> Result<()> {
        let rec = self.maps.get(&handle).ok_or(XenError::BadGrant)?;
        if rec.mapper != mapper {
            return Err(XenError::Perm);
        }
        let rec = self.maps.remove(&handle).expect("checked above");
        if let Some(table) = self.tables.get_mut(&rec.granter) {
            if let Ok(entry) = table.get_mut(rec.gref) {
                entry.map_count = entry.map_count.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Resolves one side of a grant copy into `(page, offset, readonly)`.
    fn resolve(
        &self,
        mem: &MachineMemory,
        caller: DomainId,
        side: CopySide,
        writing: bool,
    ) -> Result<(PageId, usize)> {
        match side {
            CopySide::Local { page, offset } => {
                if mem.owner(page)? != caller {
                    return Err(XenError::Perm);
                }
                Ok((page, offset))
            }
            CopySide::Grant {
                granter,
                gref,
                offset,
            } => {
                let table = self.tables.get(&granter).ok_or(XenError::BadGrant)?;
                let entry = table.get(gref)?;
                if entry.peer != caller {
                    return Err(XenError::BadGrant);
                }
                if writing && entry.readonly {
                    return Err(XenError::ReadOnlyGrant);
                }
                Ok((entry.page, offset))
            }
        }
    }

    /// Hypervisor copy (`GNTTABOP_copy`): moves `len` bytes from `src` to
    /// `dst` on behalf of `caller`.
    ///
    /// Each side is either a local page or a grant issued to the caller.
    /// Offsets+len must stay within a single page, as in Xen.
    pub fn copy(
        &self,
        mem: &mut MachineMemory,
        caller: DomainId,
        src: CopySide,
        dst: CopySide,
        len: usize,
    ) -> Result<()> {
        match self.copy_op(mem, caller, &GrantCopyOp { src, dst, len }) {
            CopyStatus::Okay => Ok(()),
            CopyStatus::Error(e) => Err(e),
        }
    }

    /// Executes one descriptor of a batch, reporting a status instead of
    /// aborting (Xen fills the op's `status` field the same way).
    fn copy_op(&self, mem: &mut MachineMemory, caller: DomainId, op: &GrantCopyOp) -> CopyStatus {
        if op.len > PAGE_SIZE {
            return CopyStatus::Error(XenError::OutOfBounds);
        }
        let (sp, so) = match self.resolve(mem, caller, op.src, false) {
            Ok(r) => r,
            Err(e) => return CopyStatus::Error(e),
        };
        let (dp, dof) = match self.resolve(mem, caller, op.dst, true) {
            Ok(r) => r,
            Err(e) => return CopyStatus::Error(e),
        };
        match mem.copy(sp, so, dp, dof, op.len) {
            Ok(()) => CopyStatus::Okay,
            Err(e) => CopyStatus::Error(e),
        }
    }

    /// Batched hypervisor copy: executes every descriptor of one
    /// `GNTTABOP_copy` hypercall, returning one status per op.
    ///
    /// Ops are independent: a failed op reports its error and the batch
    /// continues, exactly like real Xen's per-op `status` field. Charging
    /// (one hypercall for the whole array) is the hypervisor wrapper's
    /// job — see `Hypervisor::grant_copy_batch`.
    pub fn copy_batch(
        &self,
        mem: &mut MachineMemory,
        caller: DomainId,
        ops: &[GrantCopyOp],
    ) -> Vec<CopyStatus> {
        ops.iter().map(|op| self.copy_op(mem, caller, op)).collect()
    }

    /// Number of active mappings held by `mapper` (leak checks in tests).
    pub fn active_maps(&self, mapper: DomainId) -> usize {
        self.maps.values().filter(|m| m.mapper == mapper).count()
    }

    /// Number of live grant entries issued by `granter`.
    pub fn live_grants(&self, granter: DomainId) -> usize {
        self.tables
            .get(&granter)
            .map(|t| t.entries.iter().filter(|e| e.is_some()).count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{DomainKind, DomainTable};

    struct Fix {
        mem: MachineMemory,
        doms: DomainTable,
        gt: GrantTables,
        guest: DomainId,
        driver: DomainId,
    }

    fn fix() -> Fix {
        let mut doms = DomainTable::new();
        doms.create("Domain-0", DomainKind::Dom0, 64, 4);
        let driver = doms.create("dd", DomainKind::Driver, 64, 1);
        let guest = doms.create("guest", DomainKind::Guest, 64, 2);
        Fix {
            mem: MachineMemory::new(),
            doms,
            gt: GrantTables::new(),
            guest,
            driver,
        }
    }

    #[test]
    fn grant_map_unmap_roundtrip() {
        let mut f = fix();
        let page = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        f.mem.page_mut(page).unwrap()[0..4].copy_from_slice(b"data");
        let gref =
            f.gt.grant_access(&f.mem, f.guest, f.driver, page, false)
                .unwrap();
        let m = f.gt.map(f.driver, f.guest, gref).unwrap();
        assert_eq!(m.page, page);
        assert_eq!(&f.mem.page(m.page).unwrap()[0..4], b"data");
        f.gt.unmap(f.driver, m.handle).unwrap();
        f.gt.end_access(f.guest, gref).unwrap();
        assert_eq!(f.gt.live_grants(f.guest), 0);
        assert_eq!(f.gt.active_maps(f.driver), 0);
    }

    #[test]
    fn cannot_grant_unowned_page() {
        let mut f = fix();
        let page = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        assert_eq!(
            f.gt.grant_access(&f.mem, f.driver, f.guest, page, false),
            Err(XenError::Perm)
        );
    }

    #[test]
    fn wrong_peer_cannot_map() {
        let mut f = fix();
        let page = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let gref =
            f.gt.grant_access(&f.mem, f.guest, f.driver, page, false)
                .unwrap();
        // Dom0 was not the grant peer.
        assert_eq!(
            f.gt.map(DomainId::DOM0, f.guest, gref).err(),
            Some(XenError::BadGrant)
        );
    }

    #[test]
    fn revoke_while_mapped_is_busy() {
        let mut f = fix();
        let page = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let gref =
            f.gt.grant_access(&f.mem, f.guest, f.driver, page, false)
                .unwrap();
        let m = f.gt.map(f.driver, f.guest, gref).unwrap();
        assert_eq!(f.gt.end_access(f.guest, gref), Err(XenError::GrantInUse));
        f.gt.unmap(f.driver, m.handle).unwrap();
        f.gt.end_access(f.guest, gref).unwrap();
    }

    #[test]
    fn use_after_revoke_fails() {
        let mut f = fix();
        let page = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let gref =
            f.gt.grant_access(&f.mem, f.guest, f.driver, page, false)
                .unwrap();
        f.gt.end_access(f.guest, gref).unwrap();
        assert_eq!(
            f.gt.map(f.driver, f.guest, gref).err(),
            Some(XenError::BadGrant)
        );
    }

    #[test]
    fn copy_from_guest_grant() {
        let mut f = fix();
        let gpage = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let dpage = f.mem.alloc(&mut f.doms, f.driver).unwrap();
        f.mem.page_mut(gpage).unwrap()[128..133].copy_from_slice(b"hello");
        let gref =
            f.gt.grant_access(&f.mem, f.guest, f.driver, gpage, true)
                .unwrap();
        f.gt.copy(
            &mut f.mem,
            f.driver,
            CopySide::Grant {
                granter: f.guest,
                gref,
                offset: 128,
            },
            CopySide::Local {
                page: dpage,
                offset: 0,
            },
            5,
        )
        .unwrap();
        assert_eq!(&f.mem.page(dpage).unwrap()[0..5], b"hello");
    }

    #[test]
    fn copy_to_readonly_grant_rejected() {
        let mut f = fix();
        let gpage = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let dpage = f.mem.alloc(&mut f.doms, f.driver).unwrap();
        let gref =
            f.gt.grant_access(&f.mem, f.guest, f.driver, gpage, true)
                .unwrap();
        let err = f.gt.copy(
            &mut f.mem,
            f.driver,
            CopySide::Local {
                page: dpage,
                offset: 0,
            },
            CopySide::Grant {
                granter: f.guest,
                gref,
                offset: 0,
            },
            4,
        );
        assert_eq!(err, Err(XenError::ReadOnlyGrant));
    }

    #[test]
    fn copy_with_foreign_local_page_rejected() {
        let mut f = fix();
        let gpage = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let dpage = f.mem.alloc(&mut f.doms, f.driver).unwrap();
        // Driver tries to use the guest's page as its "local" side.
        let err = f.gt.copy(
            &mut f.mem,
            f.driver,
            CopySide::Local {
                page: gpage,
                offset: 0,
            },
            CopySide::Local {
                page: dpage,
                offset: 0,
            },
            4,
        );
        assert_eq!(err, Err(XenError::Perm));
    }

    #[test]
    fn copy_len_capped_at_page() {
        let mut f = fix();
        let a = f.mem.alloc(&mut f.doms, f.driver).unwrap();
        let b = f.mem.alloc(&mut f.doms, f.driver).unwrap();
        let err = f.gt.copy(
            &mut f.mem,
            f.driver,
            CopySide::Local { page: a, offset: 0 },
            CopySide::Local { page: b, offset: 0 },
            PAGE_SIZE + 1,
        );
        assert_eq!(err, Err(XenError::OutOfBounds));
    }

    #[test]
    fn grant_refs_are_recycled() {
        let mut f = fix();
        let page = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let r1 =
            f.gt.grant_access(&f.mem, f.guest, f.driver, page, false)
                .unwrap();
        f.gt.end_access(f.guest, r1).unwrap();
        let r2 =
            f.gt.grant_access(&f.mem, f.guest, f.driver, page, false)
                .unwrap();
        assert_eq!(r1, r2, "freed slot should be reused");
    }

    #[test]
    fn unmap_wrong_domain_rejected() {
        let mut f = fix();
        let page = f.mem.alloc(&mut f.doms, f.guest).unwrap();
        let gref =
            f.gt.grant_access(&f.mem, f.guest, f.driver, page, false)
                .unwrap();
        let m = f.gt.map(f.driver, f.guest, gref).unwrap();
        assert_eq!(f.gt.unmap(f.guest, m.handle), Err(XenError::Perm));
    }
}
