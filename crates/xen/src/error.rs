//! Error type shared by all hypervisor subsystems.

use core::fmt;

use crate::domain::DomainId;

/// Errors returned by simulated hypercalls and xenstore operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XenError {
    /// The referenced domain does not exist.
    NoSuchDomain(DomainId),
    /// The referenced page does not exist or was freed.
    BadPage,
    /// A grant reference is invalid, revoked, or granted to another domain.
    BadGrant,
    /// A grant cannot be ended/revoked because it is still mapped.
    GrantInUse,
    /// Access beyond page bounds.
    OutOfBounds,
    /// Writing through a read-only grant mapping.
    ReadOnlyGrant,
    /// The referenced event-channel port is invalid or closed.
    BadPort,
    /// The event channel is not in the expected state for the operation.
    PortInUse,
    /// Xenstore: path does not exist.
    NoEnt,
    /// Xenstore: permission denied for the calling domain.
    Perm,
    /// Xenstore: transaction conflicted and must be retried.
    Again,
    /// Xenstore: invalid path syntax.
    Inval,
    /// Xenstore: unknown transaction id.
    BadTransaction,
    /// The ring is full; the producer must wait for the consumer.
    RingFull,
    /// The ring indices are corrupt (consumer overtook producer).
    RingCorrupt,
    /// PCI device is not assignable or already assigned.
    PciUnavailable,
    /// DMA attempted to a machine page not mapped in the domain's IOMMU.
    IommuFault,
    /// Domain memory allocation failed (over its reservation).
    OutOfMemory,
    /// Xenstore: per-domain node quota exhausted.
    Quota,
}

impl fmt::Display for XenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XenError::NoSuchDomain(d) => write!(f, "no such domain {d:?}"),
            XenError::BadPage => write!(f, "bad page reference"),
            XenError::BadGrant => write!(f, "bad grant reference"),
            XenError::GrantInUse => write!(f, "grant still mapped"),
            XenError::OutOfBounds => write!(f, "access beyond page bounds"),
            XenError::ReadOnlyGrant => write!(f, "write through read-only grant"),
            XenError::BadPort => write!(f, "bad event-channel port"),
            XenError::PortInUse => write!(f, "event-channel port in use"),
            XenError::NoEnt => write!(f, "xenstore: no such node"),
            XenError::Perm => write!(f, "xenstore: permission denied"),
            XenError::Again => write!(f, "xenstore: transaction conflict"),
            XenError::Inval => write!(f, "xenstore: invalid path"),
            XenError::BadTransaction => write!(f, "xenstore: unknown transaction"),
            XenError::RingFull => write!(f, "ring full"),
            XenError::RingCorrupt => write!(f, "ring indices corrupt"),
            XenError::PciUnavailable => write!(f, "pci device unavailable"),
            XenError::IommuFault => write!(f, "iommu fault"),
            XenError::OutOfMemory => write!(f, "domain out of memory"),
            XenError::Quota => write!(f, "xenstore: node quota exhausted"),
        }
    }
}

impl std::error::Error for XenError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, XenError>;
