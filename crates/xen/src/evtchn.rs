//! Event channels: Xen's virtual interrupt mechanism.
//!
//! A backend/frontend pair binds an interdomain channel; `send` on one end
//! marks the other end pending. Delivery latency (interrupt injection,
//! vmexit/vmentry) is modeled by the system layer — this module implements
//! the port state machine and the pending/mask bits exactly.

use std::collections::HashMap;

use crate::domain::DomainId;
use crate::error::{Result, XenError};

/// An event-channel port number, local to a domain.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Port(pub u32);

#[derive(Clone, Debug, PartialEq, Eq)]
enum PortState {
    /// Allocated, waiting for the remote domain to bind.
    Unbound { remote_allowed: DomainId },
    /// Connected to a remote (domain, port).
    Interdomain { remote: DomainId, remote_port: Port },
    /// Closed; slot dead until freed.
    Closed,
}

#[derive(Clone, Debug)]
struct PortInfo {
    state: PortState,
    pending: bool,
    masked: bool,
}

/// A notification produced by [`EventChannels::send`], to be delivered by
/// the system layer after its modeled latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Notification {
    /// Domain to interrupt.
    pub domain: DomainId,
    /// The local port in that domain that became pending.
    pub port: Port,
}

/// All event channels in the machine.
#[derive(Default)]
pub struct EventChannels {
    ports: HashMap<DomainId, Vec<PortInfo>>,
}

impl EventChannels {
    /// Creates an empty table.
    pub fn new() -> EventChannels {
        EventChannels::default()
    }

    fn dom(&mut self, d: DomainId) -> &mut Vec<PortInfo> {
        self.ports.entry(d).or_default()
    }

    fn info(&self, d: DomainId, p: Port) -> Result<&PortInfo> {
        self.ports
            .get(&d)
            .and_then(|v| v.get(p.0 as usize))
            .filter(|i| i.state != PortState::Closed)
            .ok_or(XenError::BadPort)
    }

    fn info_mut(&mut self, d: DomainId, p: Port) -> Result<&mut PortInfo> {
        self.ports
            .get_mut(&d)
            .and_then(|v| v.get_mut(p.0 as usize))
            .filter(|i| i.state != PortState::Closed)
            .ok_or(XenError::BadPort)
    }

    /// `EVTCHNOP_alloc_unbound`: `owner` allocates a port that only
    /// `remote_allowed` may later bind to.
    pub fn alloc_unbound(&mut self, owner: DomainId, remote_allowed: DomainId) -> Port {
        let v = self.dom(owner);
        v.push(PortInfo {
            state: PortState::Unbound { remote_allowed },
            pending: false,
            masked: false,
        });
        Port(v.len() as u32 - 1)
    }

    /// `EVTCHNOP_bind_interdomain`: `binder` connects to `(remote,
    /// remote_port)`, which must be unbound and reserved for `binder`.
    ///
    /// Returns the binder's new local port.
    pub fn bind_interdomain(
        &mut self,
        binder: DomainId,
        remote: DomainId,
        remote_port: Port,
    ) -> Result<Port> {
        {
            let ri = self.info(remote, remote_port)?;
            match ri.state {
                PortState::Unbound { remote_allowed } if remote_allowed == binder => {}
                PortState::Unbound { .. } => return Err(XenError::Perm),
                _ => return Err(XenError::PortInUse),
            }
        }
        let local = {
            let v = self.dom(binder);
            v.push(PortInfo {
                state: PortState::Interdomain {
                    remote,
                    remote_port,
                },
                pending: false,
                masked: false,
            });
            Port(v.len() as u32 - 1)
        };
        let ri = self.info_mut(remote, remote_port)?;
        ri.state = PortState::Interdomain {
            remote: binder,
            remote_port: local,
        };
        Ok(local)
    }

    /// `EVTCHNOP_send`: raises the remote end of an interdomain channel.
    ///
    /// Returns a [`Notification`] when the remote end transitioned from
    /// not-pending to pending and is unmasked — Xen coalesces repeated sends
    /// into a single pending bit, which is exactly the behaviour ring
    /// notification suppression depends on.
    pub fn send(&mut self, sender: DomainId, port: Port) -> Result<Option<Notification>> {
        let (remote, remote_port) = match self.info(sender, port)?.state {
            PortState::Interdomain {
                remote,
                remote_port,
            } => (remote, remote_port),
            _ => return Err(XenError::BadPort),
        };
        let ri = self.info_mut(remote, remote_port)?;
        let fire = !ri.pending && !ri.masked;
        ri.pending = true;
        Ok(if fire {
            Some(Notification {
                domain: remote,
                port: remote_port,
            })
        } else {
            None
        })
    }

    /// The remote end of an interdomain channel, for diagnostics (the
    /// tracer records the receiver even when a send coalesces and no
    /// [`Notification`] is returned).
    pub fn peer(&self, d: DomainId, p: Port) -> Result<(DomainId, Port)> {
        match self.info(d, p)?.state {
            PortState::Interdomain {
                remote,
                remote_port,
            } => Ok((remote, remote_port)),
            _ => Err(XenError::BadPort),
        }
    }

    /// Clears the pending bit (the guest's interrupt handler ack).
    ///
    /// Returns whether the port was pending.
    pub fn clear_pending(&mut self, d: DomainId, p: Port) -> Result<bool> {
        let i = self.info_mut(d, p)?;
        let was = i.pending;
        i.pending = false;
        Ok(was)
    }

    /// Whether a port is pending.
    pub fn is_pending(&self, d: DomainId, p: Port) -> Result<bool> {
        Ok(self.info(d, p)?.pending)
    }

    /// Masks a port: sends still set pending but produce no notification.
    pub fn mask(&mut self, d: DomainId, p: Port) -> Result<()> {
        self.info_mut(d, p)?.masked = true;
        Ok(())
    }

    /// Unmasks a port; if it was pending, a notification fires immediately.
    pub fn unmask(&mut self, d: DomainId, p: Port) -> Result<Option<Notification>> {
        let i = self.info_mut(d, p)?;
        i.masked = false;
        Ok(if i.pending {
            Some(Notification { domain: d, port: p })
        } else {
            None
        })
    }

    /// Number of non-closed ports a domain holds (observability only;
    /// this is the `kitetop` event-channel column).
    pub fn open_ports(&self, d: DomainId) -> usize {
        self.ports.get(&d).map_or(0, |v| {
            v.iter().filter(|i| i.state != PortState::Closed).count()
        })
    }

    /// Closes every port of a dead domain (and, per `close`, the peer end
    /// of each interdomain channel). What Xen does on domain destruction.
    pub fn close_domain(&mut self, dead: DomainId) {
        let live: Vec<Port> = self
            .ports
            .get(&dead)
            .map(|v| {
                v.iter()
                    .enumerate()
                    .filter(|(_, i)| i.state != PortState::Closed)
                    .map(|(n, _)| Port(n as u32))
                    .collect()
            })
            .unwrap_or_default();
        for p in live {
            let _ = self.close(dead, p);
        }
    }

    /// Closes a port; the peer end (if any) reverts to closed as well.
    pub fn close(&mut self, d: DomainId, p: Port) -> Result<()> {
        let state = self.info(d, p)?.state.clone();
        self.info_mut(d, p)?.state = PortState::Closed;
        if let PortState::Interdomain {
            remote,
            remote_port,
        } = state
        {
            if let Ok(ri) = self.info_mut(remote, remote_port) {
                ri.state = PortState::Closed;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: DomainId = DomainId(1);
    const B: DomainId = DomainId(2);
    const C: DomainId = DomainId(3);

    fn connected() -> (EventChannels, Port, Port) {
        let mut ec = EventChannels::new();
        let pa = ec.alloc_unbound(A, B);
        let pb = ec.bind_interdomain(B, A, pa).unwrap();
        (ec, pa, pb)
    }

    #[test]
    fn bind_connects_both_ends() {
        let (mut ec, pa, pb) = connected();
        // A -> B.
        let n = ec.send(A, pa).unwrap().unwrap();
        assert_eq!(
            n,
            Notification {
                domain: B,
                port: pb
            }
        );
        // B -> A.
        let n = ec.send(B, pb).unwrap().unwrap();
        assert_eq!(
            n,
            Notification {
                domain: A,
                port: pa
            }
        );
    }

    #[test]
    fn only_reserved_domain_may_bind() {
        let mut ec = EventChannels::new();
        let pa = ec.alloc_unbound(A, B);
        assert_eq!(ec.bind_interdomain(C, A, pa), Err(XenError::Perm));
    }

    #[test]
    fn double_bind_rejected() {
        let (mut ec, pa, _) = connected();
        assert_eq!(ec.bind_interdomain(B, A, pa), Err(XenError::PortInUse));
    }

    #[test]
    fn sends_coalesce_while_pending() {
        let (mut ec, pa, pb) = connected();
        assert!(ec.send(A, pa).unwrap().is_some());
        // Second send while pending: no new notification.
        assert!(ec.send(A, pa).unwrap().is_none());
        assert!(ec.is_pending(B, pb).unwrap());
        // After the handler clears pending, sends notify again.
        assert!(ec.clear_pending(B, pb).unwrap());
        assert!(ec.send(A, pa).unwrap().is_some());
    }

    #[test]
    fn masked_port_swallows_notification_until_unmask() {
        let (mut ec, pa, pb) = connected();
        ec.mask(B, pb).unwrap();
        assert!(ec.send(A, pa).unwrap().is_none());
        assert!(ec.is_pending(B, pb).unwrap());
        let n = ec.unmask(B, pb).unwrap().unwrap();
        assert_eq!(n.port, pb);
    }

    #[test]
    fn send_on_unbound_port_fails() {
        let mut ec = EventChannels::new();
        let pa = ec.alloc_unbound(A, B);
        assert_eq!(ec.send(A, pa), Err(XenError::BadPort));
    }

    #[test]
    fn close_kills_both_ends() {
        let (mut ec, pa, pb) = connected();
        ec.close(A, pa).unwrap();
        assert_eq!(ec.send(A, pa), Err(XenError::BadPort));
        assert_eq!(ec.send(B, pb), Err(XenError::BadPort));
    }

    #[test]
    fn unknown_port_fails() {
        let ec = EventChannels::new();
        assert_eq!(ec.is_pending(A, Port(7)), Err(XenError::BadPort));
    }
}
