//! Disabled-tracer overhead guarantee: with tracing off, an emit on the
//! hypercall hot path is a single branch and performs **no allocation**.
//! Measured with a counting global allocator; one test so no other test
//! thread's allocations pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kite_xen::{CopyMode, CopySide, DomainKind, GrantCopyOp, Hypervisor};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracer_hot_path_allocates_nothing() {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
    let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
    let mut ops = Vec::with_capacity(8);
    for _ in 0..8 {
        let src = hv.alloc_page(gu).unwrap();
        let dst = hv.alloc_page(dd).unwrap();
        let gref = hv.grant_access(gu, dd, src, true).unwrap();
        ops.push(GrantCopyOp {
            src: CopySide::Grant {
                granter: gu,
                gref,
                offset: 0,
            },
            dst: CopySide::Local {
                page: dst,
                offset: 0,
            },
            len: 256,
        });
    }
    assert!(!hv.trace.is_enabled(), "tracing is off by default");

    // The disabled emit itself: the closure never runs (it would panic)
    // and not one allocation happens across 100k emits.
    let before = allocs();
    for _ in 0..100_000 {
        hv.trace
            .emit_with(dd.0, || unreachable!("closure must not run"));
    }
    assert_eq!(allocs() - before, 0, "disabled emit allocated");

    // The grant-copy hot path in steady state: identical windows must
    // allocate identically — the disabled trace branch adds nothing and
    // nothing accumulates per call.
    let mut window = || {
        let before = allocs();
        for _ in 0..100 {
            let r = hv.grant_copy_ops(dd, &ops, CopyMode::Batched);
            assert_eq!(r.bytes, 8 * 256);
        }
        allocs() - before
    };
    let _warmup = window();
    let first = window();
    let second = window();
    assert_eq!(first, second, "hot-path allocations drift between windows");
}
