//! Security analysis for the Kite reproduction (§5.1, Figures 1, 4, 5,
//! Table 3).
//!
//! * [`gadgets`] — a real x86-64 gadget scanner (decoder + Ropper-style
//!   backward walk) run over synthetic images generated per OS profile;
//! * [`cves`] — the CVE database with the paper's syscall-based mitigation
//!   methodology;
//! * [`surface`] — the combined Figure 4 attack-surface report.

pub mod cves;
pub mod gadgets;
pub mod surface;

pub use cves::{
    driver_cves_by_year, environment_cves, table3_cves, AttackVector, Cve, DomainSurface,
    CRAFTED_APPLICATION_CVES, SHELL_CVES,
};
pub use gadgets::{analyze, figure5_profiles, Category, GadgetCounts, InsnMix, OsImageProfile};
pub use surface::{surface_report, SurfaceRow};
