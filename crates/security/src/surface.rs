//! Combined attack-surface report (Figure 4 + §5.1 rolled together).

use crate::cves::{table3_cves, DomainSurface};

/// One row of the attack-surface comparison.
#[derive(Clone, Debug)]
pub struct SurfaceRow {
    /// Domain name.
    pub name: String,
    /// Linked/available syscall count (Fig 4a).
    pub syscalls: usize,
    /// Image size in bytes (Fig 4b).
    pub image_bytes: u64,
    /// Boot time in seconds (Fig 4c).
    pub boot_secs: f64,
    /// Table 3 CVEs mitigated (of 11).
    pub cves_mitigated: usize,
}

/// Builds the comparison table for the canonical three domains.
pub fn surface_report() -> Vec<SurfaceRow> {
    let cves = table3_cves();
    vec![
        SurfaceRow {
            name: "Kite (network)".into(),
            syscalls: kite_rumprun::kite_network_syscalls().len(),
            image_bytes: kite_rumprun::kite_network_image().total_bytes,
            boot_secs: kite_rumprun::kite_boot().total().as_secs_f64(),
            cves_mitigated: DomainSurface::kite_network().mitigated(&cves).len(),
        },
        SurfaceRow {
            name: "Kite (storage)".into(),
            syscalls: kite_rumprun::kite_storage_syscalls().len(),
            image_bytes: kite_rumprun::kite_storage_image().total_bytes,
            boot_secs: kite_rumprun::kite_boot().total().as_secs_f64(),
            cves_mitigated: DomainSurface::kite_storage().mitigated(&cves).len(),
        },
        SurfaceRow {
            name: "Ubuntu".into(),
            syscalls: kite_linux::ubuntu_driver_domain_syscalls().len(),
            image_bytes: kite_linux::ubuntu_image_bytes(),
            boot_secs: kite_linux::ubuntu_boot().total().as_secs_f64(),
            cves_mitigated: DomainSurface::ubuntu().mitigated(&cves).len(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reproduces_figure4_claims() {
        let rows = surface_report();
        let kite = &rows[0];
        let ubuntu = &rows[2];
        assert!(
            ubuntu.syscalls >= 10 * kite.syscalls,
            "Fig 4a: 10x syscalls"
        );
        assert!(
            ubuntu.image_bytes as f64 / kite.image_bytes as f64 >= 8.0,
            "Fig 4b: ~10x image"
        );
        assert!(
            ubuntu.boot_secs / kite.boot_secs >= 10.0,
            "Fig 4c: 10x boot"
        );
        assert_eq!(kite.cves_mitigated, 11);
        assert!(ubuntu.cves_mitigated <= 2);
    }
}
