//! Synthetic `.text` generation from per-OS instruction-mix profiles.
//!
//! We cannot ship real kernel binaries, so each OS image is synthesized:
//! a deterministic stream of valid x86-64 encodings whose category mix and
//! function density (ret frequency) approximate compiler output for that
//! OS's size class. The gadget counts the scanner then finds scale with
//! text size and ret density — precisely the effect Figures 1b and 5
//! measure across kernels.

use kite_sim::Pcg;

use super::decode::Category;

/// Relative instruction-mix weights by category.
#[derive(Clone, Debug)]
pub struct InsnMix {
    /// `(category, weight)` pairs; weights need not sum to anything.
    pub weights: Vec<(Category, u32)>,
    /// Mean instructions per function (one `ret` per function).
    pub insns_per_function: u32,
}

impl InsnMix {
    /// A compiler-output-like mix (mov-dominated, per Follner et al.).
    pub fn kernel_default() -> InsnMix {
        InsnMix {
            weights: vec![
                (Category::DataMove, 420),
                (Category::Arithmetic, 130),
                (Category::Logic, 60),
                (Category::ControlFlow, 170),
                (Category::ShiftAndRotate, 25),
                (Category::SettingFlags, 110),
                (Category::String, 8),
                (Category::Floating, 12),
                (Category::Misc, 15),
                (Category::Mmx, 4),
                (Category::Nop, 46),
            ],
            insns_per_function: 60,
        }
    }

    /// Rumprun/NetBSD mix: slightly fewer SIMD/string ops (no FPU in the
    /// kernel paths), otherwise compiler-typical.
    pub fn rumprun() -> InsnMix {
        InsnMix {
            weights: vec![
                (Category::DataMove, 430),
                (Category::Arithmetic, 135),
                (Category::Logic, 62),
                (Category::ControlFlow, 175),
                (Category::ShiftAndRotate, 26),
                (Category::SettingFlags, 115),
                (Category::String, 5),
                (Category::Floating, 3),
                (Category::Misc, 12),
                (Category::Mmx, 1),
                (Category::Nop, 40),
            ],
            insns_per_function: 55,
        }
    }
}

fn emit(category: Category, rng: &mut Pcg, out: &mut Vec<u8>) {
    let reg = (rng.next_u32() & 7) as u8;
    let reg2 = (rng.next_u32() & 7) as u8;
    let modrm_rr = 0xc0 | (reg2 << 3) | reg;
    match category {
        Category::DataMove => match rng.index(4) {
            0 => out.extend_from_slice(&[0x48, 0x89, modrm_rr]), // mov r,r
            1 => out.push(0x50 + reg),                           // push
            2 => out.push(0x58 + reg),                           // pop
            _ => {
                out.push(0xb8 + reg); // mov r, imm32
                out.extend_from_slice(&rng.next_u32().to_le_bytes());
            }
        },
        Category::Arithmetic => match rng.index(3) {
            0 => out.extend_from_slice(&[0x48, 0x01, modrm_rr]), // add
            1 => out.extend_from_slice(&[0x48, 0x29, modrm_rr]), // sub
            _ => {
                // add r, imm8
                out.extend_from_slice(&[0x48, 0x83, 0xc0 | reg, (rng.next_u32() & 0x7f) as u8]);
            }
        },
        Category::Logic => match rng.index(3) {
            0 => out.extend_from_slice(&[0x48, 0x21, modrm_rr]), // and
            1 => out.extend_from_slice(&[0x48, 0x09, modrm_rr]), // or
            _ => out.extend_from_slice(&[0x48, 0x31, modrm_rr]), // xor
        },
        Category::ControlFlow => match rng.index(3) {
            0 => {
                out.push(0xe8); // call rel32
                out.extend_from_slice(&rng.next_u32().to_le_bytes());
            }
            1 => out.extend_from_slice(&[0xeb, (rng.next_u32() & 0x7f) as u8]), // jmp rel8
            _ => out.extend_from_slice(&[0x74, (rng.next_u32() & 0x7f) as u8]), // je rel8
        },
        Category::ShiftAndRotate => {
            // shl r, imm8
            out.extend_from_slice(&[0x48, 0xc1, 0xe0 | reg, (rng.next_u32() & 0x3f) as u8]);
        }
        Category::SettingFlags => match rng.index(2) {
            0 => out.extend_from_slice(&[0x48, 0x39, modrm_rr]), // cmp
            _ => out.extend_from_slice(&[0x48, 0x85, modrm_rr]), // test
        },
        Category::String => {
            if rng.chance(0.5) {
                out.push(0xf3); // rep
            }
            out.push([0xa4, 0xa5, 0xaa, 0xab][rng.index(4)]);
        }
        Category::Floating => {
            out.extend_from_slice(&[0xf3, 0x0f, 0x58, modrm_rr]); // addss
        }
        Category::Mmx => {
            out.extend_from_slice(&[0x0f, 0x6f, modrm_rr]); // movq mm
        }
        Category::Misc => match rng.index(3) {
            0 => out.extend_from_slice(&[0x0f, 0xa2]), // cpuid
            1 => out.push(0xc9),                       // leave
            _ => out.extend_from_slice(&[0x0f, 0x31]), // rdtsc
        },
        Category::Nop => {
            if rng.chance(0.7) {
                out.push(0x90);
            } else {
                out.extend_from_slice(&[0x0f, 0x1f, 0xc0 | reg]);
            }
        }
        Category::Ret => {
            if rng.chance(0.9) {
                out.push(0xc3);
            } else {
                out.push(0xc2);
                out.extend_from_slice(&[(rng.next_u32() & 0x18) as u8, 0]);
            }
        }
    }
}

/// Generates `size` bytes of synthetic text with the given mix.
pub fn generate_text(size: usize, mix: &InsnMix, rng: &mut Pcg) -> Vec<u8> {
    let total: u32 = mix.weights.iter().map(|&(_, w)| w).sum();
    let mut out = Vec::with_capacity(size + 16);
    let mut since_ret = 0u32;
    while out.len() < size {
        // One ret per function on average.
        if since_ret >= mix.insns_per_function
            || (since_ret > 4 && rng.chance(1.0 / mix.insns_per_function as f64))
        {
            emit(Category::Ret, rng, &mut out);
            since_ret = 0;
            continue;
        }
        let mut pick = rng.range_u64(0, total as u64) as u32;
        let mut chosen = Category::DataMove;
        for &(c, w) in &mix.weights {
            if pick < w {
                chosen = c;
                break;
            }
            pick -= w;
        }
        emit(chosen, rng, &mut out);
        since_ret += 1;
    }
    out.truncate(size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::decode::decode;

    #[test]
    fn generated_text_decodes_from_start() {
        let mut rng = Pcg::seeded(1);
        let text = generate_text(20_000, &InsnMix::kernel_default(), &mut rng);
        assert_eq!(text.len(), 20_000);
        // Walking from offset 0 must decode instruction-by-instruction
        // until near the (truncated) end.
        let mut off = 0;
        while off < text.len().saturating_sub(16) {
            let insn = decode(&text[off..]).unwrap_or_else(|| {
                panic!("undecodable generated byte at {off}: {:02x}", text[off])
            });
            off += insn.len;
        }
    }

    #[test]
    fn text_contains_rets_at_function_density() {
        let mut rng = Pcg::seeded(2);
        let mix = InsnMix::kernel_default();
        let text = generate_text(100_000, &mix, &mut rng);
        let rets = text.iter().filter(|&&b| b == 0xc3).count();
        // ~1 ret per function of ~60 insns * ~3.2 bytes ≈ every ~190 bytes;
        // plus 0xc3 bytes occurring inside immediates.
        assert!(rets > 300, "rets={rets}");
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_text(5000, &InsnMix::rumprun(), &mut Pcg::seeded(7));
        let b = generate_text(5000, &InsnMix::rumprun(), &mut Pcg::seeded(7));
        assert_eq!(a, b);
    }
}
