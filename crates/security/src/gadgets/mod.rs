//! ROP-gadget analysis (Figures 1b and 5).
//!
//! Pipeline: [`imagegen`] synthesizes a `.text` proportional to each OS's
//! measured image size → [`scan`] counts gadgets per Follner category with
//! a real instruction [`decode`]r. Synthetic images are generated at
//! 1/[`SCAN_SCALE`] of true size and counts scaled back up (gadget counts
//! are linear in text size — asserted by the scanner's tests).

pub mod decode;
pub mod imagegen;
pub mod scan;

use kite_sim::Pcg;

pub use decode::Category;
pub use imagegen::InsnMix;
pub use scan::GadgetCounts;

/// Size scale-down factor for synthetic image scanning.
pub const SCAN_SCALE: u64 = 64;

/// One OS's gadget-analysis subject.
#[derive(Clone, Debug)]
pub struct OsImageProfile {
    /// Display name.
    pub name: &'static str,
    /// True text size in bytes (kernel + modules for Linux; whole image
    /// for Kite — matching the paper's measurement method).
    pub text_bytes: u64,
    /// Instruction mix.
    pub mix: InsnMix,
}

/// The six subjects of Figure 5, sizes consistent with `kite-rumprun` /
/// `kite-linux` image models (distro kernels carry progressively larger
/// module trees).
pub fn figure5_profiles() -> Vec<OsImageProfile> {
    vec![
        OsImageProfile {
            name: "Kite",
            text_bytes: kite_rumprun::kite_network_image().total_bytes,
            mix: InsnMix::rumprun(),
        },
        OsImageProfile {
            name: "Default",
            text_bytes: 88 * 1024 * 1024,
            mix: InsnMix::kernel_default(),
        },
        OsImageProfile {
            name: "CentOS",
            text_bytes: 196 * 1024 * 1024,
            mix: InsnMix::kernel_default(),
        },
        OsImageProfile {
            name: "Fedora",
            text_bytes: 232 * 1024 * 1024,
            mix: InsnMix::kernel_default(),
        },
        OsImageProfile {
            name: "Debian",
            text_bytes: 254 * 1024 * 1024,
            mix: InsnMix::kernel_default(),
        },
        OsImageProfile {
            name: "Ubuntu",
            text_bytes: kite_linux::ubuntu_image_bytes() + 63 * 1024 * 1024,
            mix: InsnMix::kernel_default(),
        },
    ]
}

/// Scans one profile (scaled) and returns size-corrected counts.
pub fn analyze(profile: &OsImageProfile, seed: u64) -> GadgetCounts {
    let mut rng = Pcg::seeded(seed ^ profile.text_bytes);
    let sample = (profile.text_bytes / SCAN_SCALE) as usize;
    let text = imagegen::generate_text(sample, &profile.mix, &mut rng);
    scan::scan(&text).scaled(SCAN_SCALE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kite_has_fewest_gadgets_default_about_4x() {
        // Use small direct samples (unscaled math identical, faster).
        let profiles = figure5_profiles();
        let mut totals = Vec::new();
        for p in &profiles {
            // Sample at a deeper scale for test speed; linearity asserted
            // in the scanner tests.
            let mut rng = Pcg::seeded(1);
            let sample = (p.text_bytes / 1024) as usize;
            let text = imagegen::generate_text(sample, &p.mix, &mut rng);
            totals.push((p.name, scan::scan(&text).total()));
        }
        let kite = totals[0].1 as f64;
        let default = totals[1].1 as f64;
        let ubuntu = totals[5].1 as f64;
        assert!(
            (3.0..6.0).contains(&(default / kite)),
            "Fig 1b: default ≈ 4x Kite, got {:.1}",
            default / kite
        );
        assert!(
            ubuntu / kite > 8.0,
            "Ubuntu ≫ Kite, got {:.1}",
            ubuntu / kite
        );
        // Monotone: each distro kernel has more than the default config.
        for w in totals[1..].windows(2) {
            assert!(w[1].1 > w[0].1, "{:?}", totals);
        }
    }
}
