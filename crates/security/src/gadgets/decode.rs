//! A compact x86-64 instruction decoder for gadget scanning.
//!
//! Covers the instruction subset the synthetic image generator emits plus
//! common encodings found in compiled kernels: one- and two-byte opcodes,
//! REX/operand-size/rep prefixes, ModRM/SIB/displacement addressing and
//! immediates. Unknown opcodes decode to `None`, which terminates a
//! backward gadget walk — conservative in the same direction as Ropper
//! (an undecodable byte ends the chain).

/// Gadget/instruction categories following Follner et al. (ESSoS'16),
/// the taxonomy the paper's Figures 1b and 5 use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// mov/push/pop/xchg/lea.
    DataMove,
    /// add/sub/inc/dec/imul/neg/adc/sbb.
    Arithmetic,
    /// and/or/xor/not.
    Logic,
    /// jmp/jcc/call (and ret itself, reported separately).
    ControlFlow,
    /// shl/shr/sar/rol/ror.
    ShiftAndRotate,
    /// cmp/test/clc/stc/cmc.
    SettingFlags,
    /// movs/stos/lods/scas/cmps (optionally rep-prefixed).
    String,
    /// SSE scalar/packed float ops.
    Floating,
    /// cpuid/rdtsc/hlt/leave/int3 and other odds and ends.
    Misc,
    /// MMX register ops.
    Mmx,
    /// nop (including multi-byte).
    Nop,
    /// ret / ret imm16.
    Ret,
}

impl Category {
    /// All categories in the figures' display order.
    pub fn all() -> [Category; 12] {
        [
            Category::DataMove,
            Category::Arithmetic,
            Category::Logic,
            Category::ControlFlow,
            Category::ShiftAndRotate,
            Category::SettingFlags,
            Category::String,
            Category::Floating,
            Category::Misc,
            Category::Mmx,
            Category::Nop,
            Category::Ret,
        ]
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            Category::DataMove => "DataMove",
            Category::Arithmetic => "Arithmetic",
            Category::Logic => "Logic",
            Category::ControlFlow => "ControlFlow",
            Category::ShiftAndRotate => "ShiftAndRotate",
            Category::SettingFlags => "SettingFlags",
            Category::String => "String",
            Category::Floating => "Floating",
            Category::Misc => "Misc",
            Category::Mmx => "MMX",
            Category::Nop => "Nop",
            Category::Ret => "Ret",
        }
    }
}

/// A decoded instruction: its length and category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insn {
    /// Total encoded length in bytes.
    pub len: usize,
    /// Category.
    pub category: Category,
}

/// Bytes consumed by a ModRM byte's addressing form (ModRM itself + SIB +
/// displacement), or `None` for truncated input.
fn modrm_len(bytes: &[u8]) -> Option<usize> {
    let modrm = *bytes.first()?;
    let mod_ = modrm >> 6;
    let rm = modrm & 7;
    let mut len = 1;
    if mod_ != 3 && rm == 4 {
        // SIB byte.
        let sib = *bytes.get(1)?;
        len += 1;
        if mod_ == 0 && (sib & 7) == 5 {
            len += 4; // disp32 with no base
        }
    }
    match mod_ {
        0 if rm == 5 => len += 4, // RIP-relative disp32
        1 => len += 1,
        2 => len += 4,
        _ => {}
    }
    if bytes.len() < len {
        return None;
    }
    Some(len)
}

/// Decodes one instruction at the start of `bytes`.
pub fn decode(bytes: &[u8]) -> Option<Insn> {
    let mut i = 0;
    let mut rep = false;
    let mut f2 = false;
    // Prefixes (at most a few; bail on absurd runs).
    while i < bytes.len() && i < 4 {
        match bytes[i] {
            0x40..=0x4f => i += 1, // REX
            0x66 => i += 1,        // operand size
            0xf3 => {
                rep = true;
                i += 1;
            }
            0xf2 => {
                f2 = true;
                i += 1;
            }
            _ => break,
        }
    }
    let op = *bytes.get(i)?;
    i += 1;
    let rest = &bytes[i..];
    let with_modrm = |cat: Category| -> Option<Insn> {
        let m = modrm_len(rest)?;
        Some(Insn {
            len: i + m,
            category: cat,
        })
    };
    let plain = |len_after: usize, cat: Category| -> Option<Insn> {
        if rest.len() < len_after {
            None
        } else {
            Some(Insn {
                len: i + len_after,
                category: cat,
            })
        }
    };
    match op {
        // Two-byte opcodes.
        0x0f => {
            let op2 = *rest.first()?;
            let i2 = i + 1;
            let rest2 = &bytes[i2..];
            let with_modrm2 = |cat: Category| -> Option<Insn> {
                let m = modrm_len(rest2)?;
                Some(Insn {
                    len: i2 + m,
                    category: cat,
                })
            };
            match op2 {
                0x1f => with_modrm2(Category::Nop),
                0xaf => with_modrm2(Category::Arithmetic), // imul
                0x28 | 0x29 | 0x10 | 0x11 => with_modrm2(Category::Floating), // movaps/movups
                0x58 | 0x59 | 0x5c | 0x5e | 0x51 => {
                    // add/mul/sub/div/sqrt ss/sd/ps/pd depending on prefix.
                    let _ = (rep, f2);
                    with_modrm2(Category::Floating)
                }
                0x6f | 0x7f => with_modrm2(Category::Mmx), // movq mm
                0xfc | 0xfd | 0xfe | 0xd4 => with_modrm2(Category::Mmx), // padd
                0x77 => {
                    if rest2.is_empty() && bytes.len() < i2 {
                        None
                    } else {
                        Some(Insn {
                            len: i2,
                            category: Category::Mmx, // emms
                        })
                    }
                }
                0xa2 => Some(Insn {
                    len: i2,
                    category: Category::Misc, // cpuid
                }),
                0x31 => Some(Insn {
                    len: i2,
                    category: Category::Misc, // rdtsc
                }),
                0x05 => Some(Insn {
                    len: i2,
                    category: Category::Misc, // syscall
                }),
                0x80..=0x8f => {
                    // jcc rel32
                    if rest2.len() < 4 {
                        None
                    } else {
                        Some(Insn {
                            len: i2 + 4,
                            category: Category::ControlFlow,
                        })
                    }
                }
                0x90..=0x9f => with_modrm2(Category::SettingFlags), // setcc
                0xb6 | 0xb7 | 0xbe | 0xbf => with_modrm2(Category::DataMove), // movzx/movsx
                _ => None,
            }
        }
        // One-byte opcodes.
        0x88..=0x8b => with_modrm(Category::DataMove), // mov
        0x8d => with_modrm(Category::DataMove),        // lea
        0x50..=0x57 => plain(0, Category::DataMove),   // push r
        0x58..=0x5f => plain(0, Category::DataMove),   // pop r
        0x86 | 0x87 => with_modrm(Category::DataMove), // xchg
        0xb8..=0xbf => plain(4, Category::DataMove),   // mov r, imm32
        0xc6 | 0xc7 => {
            // mov r/m, imm8/imm32
            let m = modrm_len(rest)?;
            let imm = if op == 0xc6 { 1 } else { 4 };
            if rest.len() < m + imm {
                None
            } else {
                Some(Insn {
                    len: i + m + imm,
                    category: Category::DataMove,
                })
            }
        }
        0x00..=0x03 => with_modrm(Category::Arithmetic), // add
        0x28..=0x2b => with_modrm(Category::Arithmetic), // sub
        0x10..=0x13 => with_modrm(Category::Arithmetic), // adc
        0x18..=0x1b => with_modrm(Category::Arithmetic), // sbb
        0x83 => {
            // group1 r/m, imm8 — classify as arithmetic (common case).
            let m = modrm_len(rest)?;
            if rest.len() < m + 1 {
                None
            } else {
                Some(Insn {
                    len: i + m + 1,
                    category: Category::Arithmetic,
                })
            }
        }
        0x20..=0x23 => with_modrm(Category::Logic), // and
        0x08..=0x0b => with_modrm(Category::Logic), // or
        0x30..=0x33 => with_modrm(Category::Logic), // xor
        0xf7 => with_modrm(Category::Logic),        // group3 (not/neg/...)
        0xff => with_modrm(Category::ControlFlow),  // group5 inc/dec/call/jmp r/m
        0xc1 | 0xd1 | 0xd3 => {
            // shift group
            let m = modrm_len(rest)?;
            let imm = if op == 0xc1 { 1 } else { 0 };
            if rest.len() < m + imm {
                None
            } else {
                Some(Insn {
                    len: i + m + imm,
                    category: Category::ShiftAndRotate,
                })
            }
        }
        0x38..=0x3b => with_modrm(Category::SettingFlags), // cmp
        0x84 | 0x85 => with_modrm(Category::SettingFlags), // test
        0xf5 | 0xf8 | 0xf9 => plain(0, Category::SettingFlags), // cmc/clc/stc
        0xa4 | 0xa5 | 0xaa | 0xab | 0xac | 0xad | 0xa6 | 0xa7 | 0xae | 0xaf => {
            plain(0, Category::String)
        }
        0xeb => plain(1, Category::ControlFlow), // jmp rel8
        0xe9 => plain(4, Category::ControlFlow), // jmp rel32
        0xe8 => plain(4, Category::ControlFlow), // call rel32
        0x70..=0x7f => plain(1, Category::ControlFlow), // jcc rel8
        0xc3 => plain(0, Category::Ret),
        0xc2 => plain(2, Category::Ret), // ret imm16
        0x90 => plain(0, Category::Nop),
        0xc9 => plain(0, Category::Misc), // leave
        0xcc => plain(0, Category::Misc), // int3
        0xf4 => plain(0, Category::Misc), // hlt
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_encodings() {
        // ret
        assert_eq!(
            decode(&[0xc3]).unwrap(),
            Insn {
                len: 1,
                category: Category::Ret
            }
        );
        // push rax
        assert_eq!(decode(&[0x50]).unwrap().category, Category::DataMove);
        // nop
        assert_eq!(decode(&[0x90]).unwrap().category, Category::Nop);
        // mov rax, rbx : REX.W 89 D8
        let i = decode(&[0x48, 0x89, 0xd8]).unwrap();
        assert_eq!(i.len, 3);
        assert_eq!(i.category, Category::DataMove);
    }

    #[test]
    fn modrm_forms() {
        // add [rax+8], rcx : 48 01 48 08 (mod=01 disp8)
        let i = decode(&[0x48, 0x01, 0x48, 0x08]).unwrap();
        assert_eq!(i.len, 4);
        assert_eq!(i.category, Category::Arithmetic);
        // mov rax, [rip+disp32] : 48 8b 05 xx xx xx xx
        let i = decode(&[0x48, 0x8b, 0x05, 1, 2, 3, 4]).unwrap();
        assert_eq!(i.len, 7);
        // SIB with disp32 base: 8b 04 25 xx xx xx xx
        let i = decode(&[0x8b, 0x04, 0x25, 1, 2, 3, 4]).unwrap();
        assert_eq!(i.len, 7);
    }

    #[test]
    fn immediates() {
        // mov eax, imm32
        assert_eq!(decode(&[0xb8, 1, 2, 3, 4]).unwrap().len, 5);
        // shl rax, 5 : 48 c1 e0 05
        let i = decode(&[0x48, 0xc1, 0xe0, 0x05]).unwrap();
        assert_eq!(i.len, 4);
        assert_eq!(i.category, Category::ShiftAndRotate);
        // ret imm16
        assert_eq!(decode(&[0xc2, 0x08, 0x00]).unwrap().len, 3);
    }

    #[test]
    fn two_byte_opcodes() {
        // imul rax, rbx : 48 0f af c3
        let i = decode(&[0x48, 0x0f, 0xaf, 0xc3]).unwrap();
        assert_eq!(i.category, Category::Arithmetic);
        assert_eq!(i.len, 4);
        // addss xmm0, xmm1 : f3 0f 58 c1
        let i = decode(&[0xf3, 0x0f, 0x58, 0xc1]).unwrap();
        assert_eq!(i.category, Category::Floating);
        // movq mm0, mm1 : 0f 6f c1
        assert_eq!(decode(&[0x0f, 0x6f, 0xc1]).unwrap().category, Category::Mmx);
        // cpuid
        assert_eq!(decode(&[0x0f, 0xa2]).unwrap().category, Category::Misc);
    }

    #[test]
    fn string_ops_with_rep() {
        assert_eq!(decode(&[0xa4]).unwrap().category, Category::String);
        let i = decode(&[0xf3, 0xa5]).unwrap();
        assert_eq!(i.category, Category::String);
        assert_eq!(i.len, 2);
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[0xb8, 1, 2]), None); // imm32 cut short
        assert_eq!(decode(&[0x48, 0x8b]), None); // missing modrm
        assert_eq!(decode(&[0xe9, 1, 2]), None); // rel32 cut short
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode(&[0x06]), None); // invalid in 64-bit mode
        assert_eq!(decode(&[0x0f, 0xff, 0x00]), None);
    }
}
