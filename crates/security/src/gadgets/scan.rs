//! The gadget scanner: Ropper-style backward walk from every `ret`.
//!
//! For each `ret`/`ret imm16` byte in the text, candidate gadget starts up
//! to [`MAX_GADGET_BYTES`] before it are tried; a candidate counts when a
//! chain of valid instructions decodes from the start and lands exactly on
//! the `ret`. Gadgets are categorized by the operation of their first
//! instruction (the taxonomy of Follner et al. used by the paper).

use std::collections::HashMap;

use super::decode::{decode, Category};

/// Maximum gadget body length considered, matching common tool defaults.
pub const MAX_GADGET_BYTES: usize = 20;

/// Per-category gadget counts.
#[derive(Clone, Debug, Default)]
pub struct GadgetCounts {
    counts: HashMap<Category, u64>,
}

impl GadgetCounts {
    /// Count for one category.
    pub fn get(&self, c: Category) -> u64 {
        self.counts.get(&c).copied().unwrap_or(0)
    }

    /// Total across all categories.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Scales all counts (for size-scaled synthetic images).
    pub fn scaled(&self, factor: u64) -> GadgetCounts {
        GadgetCounts {
            counts: self.counts.iter().map(|(&c, &n)| (c, n * factor)).collect(),
        }
    }

    fn add(&mut self, c: Category) {
        *self.counts.entry(c).or_insert(0) += 1;
    }
}

/// Validates that a chain of instructions decodes from `start` and ends
/// exactly at `ret_end` (exclusive). Returns the first instruction's
/// category.
fn valid_chain(text: &[u8], start: usize, ret_start: usize) -> Option<Category> {
    let mut off = start;
    let mut first = None;
    while off < ret_start {
        let insn = decode(&text[off..])?;
        if insn.category == Category::Ret {
            // An earlier ret inside the candidate: this window is really a
            // shorter gadget counted at a later start.
            return None;
        }
        if first.is_none() {
            first = Some(insn.category);
        }
        off += insn.len;
    }
    if off != ret_start {
        return None;
    }
    // The chain must contain at least one instruction before the ret.
    first
}

/// Scans `text` and counts gadgets per category.
pub fn scan(text: &[u8]) -> GadgetCounts {
    let mut out = GadgetCounts::default();
    for (pos, &b) in text.iter().enumerate() {
        if b != 0xc3 && b != 0xc2 {
            continue;
        }
        // `ret imm16` needs its immediate present.
        if b == 0xc2 && pos + 3 > text.len() {
            continue;
        }
        // The bare ret itself is a (trivial) gadget.
        out.add(Category::Ret);
        let lo = pos.saturating_sub(MAX_GADGET_BYTES);
        for start in lo..pos {
            if let Some(cat) = valid_chain(text, start, pos) {
                out.add(cat);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::imagegen::{generate_text, InsnMix};
    use kite_sim::Pcg;

    #[test]
    fn finds_handcrafted_gadget() {
        // pop rax; ret  — the canonical gadget.
        let text = [0x90, 0x58, 0xc3];
        let counts = scan(&text);
        assert!(counts.get(Category::DataMove) >= 1, "{counts:?}");
        assert_eq!(counts.get(Category::Ret), 1);
        // nop; pop rax; ret also matched (starting at the nop).
        assert!(counts.get(Category::Nop) >= 1);
    }

    #[test]
    fn unaligned_suffixes_count() {
        // mov eax, imm32 where imm contains c3: b8 c3 01 01 01 — the c3 at
        // offset 1 is a hidden ret reachable at that offset.
        let text = [0x90, 0xb8, 0xc3, 0x01, 0x01, 0x01];
        let counts = scan(&text);
        // The nop at offset 0 cannot chain to it (mov swallows the c3),
        // but the ret itself is counted.
        assert_eq!(counts.get(Category::Ret), 1);
    }

    #[test]
    fn no_rets_no_gadgets() {
        let text = [0x90, 0x50, 0x58, 0x48, 0x89, 0xc0];
        assert_eq!(scan(&text).total(), 0);
    }

    #[test]
    fn chain_must_land_exactly_on_ret() {
        // e8 xx xx xx xx (call rel32) followed by ret: starting inside the
        // immediate is invalid unless the bytes happen to decode.
        let text = [0xe8, 0x00, 0x00, 0x00, 0x00, 0xc3];
        let counts = scan(&text);
        // call; ret is a valid 1-instruction chain.
        assert!(counts.get(Category::ControlFlow) >= 1);
    }

    #[test]
    fn counts_scale_roughly_linearly_with_size() {
        let mix = InsnMix::kernel_default();
        let small = scan(&generate_text(40_000, &mix, &mut Pcg::seeded(3)));
        let large = scan(&generate_text(160_000, &mix, &mut Pcg::seeded(4)));
        let ratio = large.total() as f64 / small.total() as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected ~4x, got {ratio:.2} ({} vs {})",
            large.total(),
            small.total()
        );
    }

    #[test]
    fn datamove_dominates_compiler_mix() {
        let mix = InsnMix::kernel_default();
        let counts = scan(&generate_text(120_000, &mix, &mut Pcg::seeded(5)));
        let dm = counts.get(Category::DataMove);
        for c in [
            Category::Logic,
            Category::String,
            Category::Mmx,
            Category::Floating,
        ] {
            assert!(dm > counts.get(c), "DataMove should dominate {c:?}");
        }
        assert!(counts.total() > 1000);
    }

    #[test]
    fn scaled_multiplies() {
        let mix = InsnMix::rumprun();
        let counts = scan(&generate_text(20_000, &mix, &mut Pcg::seeded(6)));
        let scaled = counts.scaled(16);
        assert_eq!(scaled.total(), counts.total() * 16);
        assert_eq!(scaled.get(Category::Ret), counts.get(Category::Ret) * 16);
    }
}
