//! CVE database and mitigation analysis (Figure 1a, Table 3, §5.1.1).
//!
//! Each CVE record names the syscalls (or userspace components) it needs
//! to be exploitable. A domain mitigates a CVE when *none* of the CVE's
//! required syscalls are linked into its image — the paper's Table 3
//! methodology made executable.

use kite_rumprun::SyscallSet;

/// How a CVE reaches the kernel/userspace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackVector {
    /// Via specific syscalls (Table 3).
    Syscalls,
    /// Via a crafted application run in the domain.
    CraftedApplication,
    /// Via an interactive shell in the domain.
    Shell,
    /// Via the xen-utils/libxl toolstack in the domain.
    Toolstack,
}

/// One CVE record.
#[derive(Clone, Debug)]
pub struct Cve {
    /// CVE identifier.
    pub id: &'static str,
    /// Syscalls the exploit path requires (empty for non-syscall vectors).
    pub syscalls: &'static [&'static str],
    /// Vector class.
    pub vector: AttackVector,
    /// The paper's one-line description.
    pub description: &'static str,
}

/// The 11 CVEs of Table 3.
pub fn table3_cves() -> Vec<Cve> {
    vec![
        Cve {
            id: "CVE-2021-35039",
            syscalls: &["init_module"],
            vector: AttackVector::Syscalls,
            description: "loading unsigned kernel modules via init_module",
        },
        Cve {
            id: "CVE-2019-3901",
            syscalls: &["execve"],
            vector: AttackVector::Syscalls,
            description: "race lets local attackers leak data from setuid programs",
        },
        Cve {
            id: "CVE-2018-18281",
            syscalls: &["ftruncate", "mremap"],
            vector: AttackVector::Syscalls,
            description: "access to an already freed and reused physical page",
        },
        Cve {
            id: "CVE-2018-1068",
            syscalls: &["setsockopt"],
            vector: AttackVector::Syscalls,
            description: "privileged arbitrary write to a range of kernel memory",
        },
        Cve {
            id: "CVE-2017-18344",
            syscalls: &["timer_create"],
            vector: AttackVector::Syscalls,
            description: "userspace can read arbitrary kernel memory",
        },
        Cve {
            id: "CVE-2017-17053",
            syscalls: &["modify_ldt", "clone"],
            vector: AttackVector::Syscalls,
            description: "use-after-free via a crafted program",
        },
        Cve {
            id: "CVE-2016-6198",
            syscalls: &["rename"],
            vector: AttackVector::Syscalls,
            description: "local denial of service",
        },
        Cve {
            id: "CVE-2016-6197",
            syscalls: &["rename", "unlink"],
            vector: AttackVector::Syscalls,
            description: "local denial of service",
        },
        Cve {
            id: "CVE-2014-3180",
            syscalls: &["nanosleep"],
            vector: AttackVector::Syscalls,
            description: "uninitialized data allows out-of-bounds read",
        },
        Cve {
            id: "CVE-2009-0028",
            syscalls: &["clone"],
            vector: AttackVector::Syscalls,
            description: "unprivileged child can signal arbitrary parent",
        },
        Cve {
            id: "CVE-2009-0835",
            syscalls: &["chmod", "stat"],
            vector: AttackVector::Syscalls,
            description: "bypass of access restrictions via crafted syscalls",
        },
    ]
}

/// Non-syscall CVE classes the paper cites: libxl/xen-utils issues and the
/// crafted-application/shell populations (172 and 92 reported CVEs).
pub fn environment_cves() -> Vec<Cve> {
    vec![
        Cve {
            id: "CVE-2016-4963",
            syscalls: &[],
            vector: AttackVector::Toolstack,
            description: "libxl allows guest administrators to change backend settings",
        },
        Cve {
            id: "CVE-2013-2072",
            syscalls: &[],
            vector: AttackVector::Toolstack,
            description: "buffer overflow in the Python xl toolstack bindings",
        },
    ]
}

/// Count of reported Linux CVEs using crafted applications (paper's citation \[19\]).
pub const CRAFTED_APPLICATION_CVES: u32 = 172;
/// Count of reported Linux CVEs using shells (paper's citation \[20\]).
pub const SHELL_CVES: u32 = 92;

/// A domain's exposure characteristics.
#[derive(Clone, Debug)]
pub struct DomainSurface {
    /// Display name.
    pub name: String,
    /// Linked/available syscalls.
    pub syscalls: SyscallSet,
    /// Can the attacker run arbitrary applications in the domain?
    pub runs_applications: bool,
    /// Does the domain have a shell?
    pub has_shell: bool,
    /// Does the domain carry xen-utils/libxl?
    pub has_toolstack: bool,
}

impl DomainSurface {
    /// The Kite network driver domain.
    pub fn kite_network() -> DomainSurface {
        DomainSurface {
            name: "Kite network domain".into(),
            syscalls: kite_rumprun::kite_network_syscalls(),
            runs_applications: false,
            has_shell: false,
            has_toolstack: false,
        }
    }

    /// The Kite storage driver domain.
    pub fn kite_storage() -> DomainSurface {
        DomainSurface {
            name: "Kite storage domain".into(),
            syscalls: kite_rumprun::kite_storage_syscalls(),
            runs_applications: false,
            has_shell: false,
            has_toolstack: false,
        }
    }

    /// The Ubuntu driver domain baseline.
    pub fn ubuntu() -> DomainSurface {
        DomainSurface {
            name: "Ubuntu driver domain".into(),
            syscalls: kite_linux::ubuntu_driver_domain_syscalls(),
            runs_applications: true,
            has_shell: true,
            has_toolstack: true,
        }
    }

    /// Whether this domain mitigates `cve` by construction.
    pub fn mitigates(&self, cve: &Cve) -> bool {
        match cve.vector {
            AttackVector::Syscalls => !cve.syscalls.iter().any(|s| self.syscalls.contains(s)),
            AttackVector::CraftedApplication => !self.runs_applications,
            AttackVector::Shell => !self.has_shell,
            AttackVector::Toolstack => !self.has_toolstack,
        }
    }

    /// The Table 3 verdict: which of the given CVEs are mitigated.
    pub fn mitigated<'a>(&self, cves: &'a [Cve]) -> Vec<&'a Cve> {
        cves.iter().filter(|c| self.mitigates(c)).collect()
    }
}

/// Figure 1a's context data: driver CVE counts per year (cve.mitre.org,
/// as read off the paper's chart).
pub fn driver_cves_by_year() -> Vec<(u32, u32, u32)> {
    // (year, linux_driver_cves, windows_driver_cves)
    vec![
        (2015, 28, 18),
        (2016, 44, 26),
        (2017, 95, 55),
        (2018, 82, 63),
        (2019, 103, 82),
        (2020, 110, 98),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kite_mitigates_all_table3() {
        let cves = table3_cves();
        assert_eq!(cves.len(), 11, "Table 3 lists 11 CVEs");
        let net = DomainSurface::kite_network();
        let st = DomainSurface::kite_storage();
        assert_eq!(
            net.mitigated(&cves).len(),
            11,
            "network domain mitigates all"
        );
        assert_eq!(
            st.mitigated(&cves).len(),
            11,
            "storage domain mitigates all"
        );
    }

    #[test]
    fn ubuntu_mitigates_none_of_table3() {
        let cves = table3_cves();
        let ub = DomainSurface::ubuntu();
        let mitigated = ub.mitigated(&cves);
        assert!(
            mitigated.len() <= 2,
            "most Table 3 syscalls are essential to Linux: {mitigated:?}"
        );
        // The headline ones are definitely present.
        assert!(!ub.mitigates(&cves[0]), "init_module is required");
        assert!(!ub.mitigates(&cves[1]), "execve is required");
    }

    #[test]
    fn environment_cves_blocked_by_unikernelization() {
        let ub = DomainSurface::ubuntu();
        let kite = DomainSurface::kite_network();
        for cve in environment_cves() {
            assert!(!ub.mitigates(&cve), "{} hits Ubuntu", cve.id);
            assert!(kite.mitigates(&cve), "{} blocked on Kite", cve.id);
        }
    }

    #[test]
    fn crafted_app_and_shell_classes() {
        let kite = DomainSurface::kite_network();
        let crafted = Cve {
            id: "class-crafted",
            syscalls: &[],
            vector: AttackVector::CraftedApplication,
            description: "",
        };
        let shell = Cve {
            id: "class-shell",
            syscalls: &[],
            vector: AttackVector::Shell,
            description: "",
        };
        assert!(kite.mitigates(&crafted));
        assert!(kite.mitigates(&shell));
        assert!(!DomainSurface::ubuntu().mitigates(&crafted));
        const { assert!(CRAFTED_APPLICATION_CVES == 172 && SHELL_CVES == 92) }
    }

    #[test]
    fn cve_year_series_grows() {
        let series = driver_cves_by_year();
        assert!(series.len() >= 5);
        assert!(series.last().unwrap().1 > series.first().unwrap().1);
    }
}
