//! Netfront: the guest-side PV network driver.
//!
//! Allocates the Tx/Rx shared rings and packet buffer pools, grants them to
//! the driver domain, publishes its details in xenstore and exchanges
//! frames with netback through the rings — the standard, unmodified guest
//! driver the paper's DomU runs (its whole point is that frontends need no
//! changes to talk to a Kite backend).
//!
//! Multi-queue works the way Linux `xen-netfront` does it: the backend
//! advertises `multi-queue-max-queues`, the frontend clamps its own
//! capacity against it, writes the negotiated `multi-queue-num-queues`,
//! and publishes one ring pair + event channel per queue under
//! `queue-<k>/` subpaths. A negotiated count of 1 keeps the legacy flat
//! key layout, so single-queue behavior is bit-for-bit unchanged. Tx
//! steering hashes the flow tuple ([`kite_net::flow`]), so one flow's
//! frames always ride one queue and per-flow ordering survives.

use std::collections::VecDeque;

use kite_net::MacAddr;
use kite_sim::Nanos;
use kite_xen::netif::{
    NetifExtraInfo, NetifRxRequest, NetifRxResponse, NetifTxRequest, NetifTxResponse,
    NETIF_MAX_GSO_FRAME, NETIF_RSP_NULL, NETRXF_DATA_VALIDATED, NETRXF_MORE_DATA,
    NETTXF_EXTRA_INFO, NETTXF_MORE_DATA, XEN_NETIF_EXTRA_TYPE_GSO,
};
use kite_xen::ring::FrontRing;
use kite_xen::xenbus::{
    negotiate_queues, switch_state, FEATURE_GSO_KEY, FEATURE_NO_CSUM_KEY, MQ_MAX_QUEUES_KEY,
    MQ_NUM_QUEUES_KEY,
};
use kite_xen::{
    DevicePaths, DomainId, GrantRef, Hypervisor, PageId, Port, ReqId, ReqStage, Result, SlotClass,
    XenError, XenbusState,
};

/// Number of packet buffer pages in each direction's pool, per queue.
const POOL: usize = 256;

struct BufPool {
    pages: Vec<PageId>,
    grefs: Vec<GrantRef>,
    free: Vec<u16>,
}

impl BufPool {
    fn alloc_id(&mut self) -> Option<u16> {
        self.free.pop()
    }
    fn release_id(&mut self, id: u16) {
        debug_assert!(!self.free.contains(&id));
        self.free.push(id);
    }
}

/// Outcome of a frontend operation that may require notifying the backend.
#[derive(Debug, Default)]
pub struct FrontOp {
    /// The backend must be notified via the event channel.
    pub notify: bool,
    /// Guest-side CPU cost of the operation.
    pub cost: Nanos,
}

/// One queue's worth of frontend state: a Tx/Rx ring pair, its event
/// channel, and the buffer pools feeding it.
struct NfQueue {
    evtchn: Port,
    tx: FrontRing<NetifTxRequest, NetifTxResponse>,
    rx: FrontRing<NetifRxRequest, NetifRxResponse>,
    tx_page: PageId,
    rx_page: PageId,
    tx_pool: BufPool,
    rx_pool: BufPool,
    // Tx requests pushed but not yet acknowledged: (buffer id, length,
    // first-slot-of-frame), oldest first. What a crashed backend leaves
    // unacknowledged; the first-markers let recovery reassemble GSO
    // chains back into whole frames.
    in_flight_tx: VecDeque<(u16, u16, bool)>,
    // Rx super-frame reassembly: fragments flagged `NETRXF_MORE_DATA`
    // accumulate here until the closing fragment arrives. A mid-chain
    // error poisons the chain and the whole partial frame is dropped.
    rx_partial: Vec<u8>,
    rx_poisoned: bool,
}

/// The netfront driver instance.
pub struct Netfront {
    /// Guest domain.
    pub guest: DomainId,
    /// Driver domain on the other end.
    pub backend: DomainId,
    /// Device index.
    pub index: u32,
    /// The interface MAC.
    pub mac: MacAddr,
    queues: Vec<NfQueue>,
    received: VecDeque<Vec<u8>>,
    tx_dropped: u64,
    gso: bool,
    csum_offload: bool,
}

fn make_pool(
    hv: &mut Hypervisor,
    owner: DomainId,
    peer: DomainId,
    readonly: bool,
) -> Result<BufPool> {
    let mut pages = Vec::with_capacity(POOL);
    let mut grefs = Vec::with_capacity(POOL);
    for _ in 0..POOL {
        let p = hv.alloc_page(owner)?;
        pages.push(p);
        grefs.push(hv.grant_access(owner, peer, p, readonly)?);
    }
    Ok(BufPool {
        pages,
        grefs,
        free: (0..POOL as u16).rev().collect(),
    })
}

fn make_queue(hv: &mut Hypervisor, paths: &DevicePaths, root: &str) -> Result<NfQueue> {
    let guest = paths.front;
    let backend = paths.back;
    let tx_page = hv.alloc_page(guest)?;
    let rx_page = hv.alloc_page(guest)?;
    let tx = {
        let p = hv.mem.page_mut(tx_page)?;
        FrontRing::init(p)
    };
    let rx = {
        let p = hv.mem.page_mut(rx_page)?;
        FrontRing::init(p)
    };
    let tx_ref = hv.grant_access(guest, backend, tx_page, false)?;
    let rx_ref = hv.grant_access(guest, backend, rx_page, false)?;
    // Tx payload pages are read-only to the backend; Rx pages must be
    // writable (the backend copies into them).
    let tx_pool = make_pool(hv, guest, backend, true)?;
    let rx_pool = make_pool(hv, guest, backend, false)?;
    let (port, _) = hv.evtchn_alloc_unbound(guest, backend);
    hv.store.write(
        guest,
        None,
        &format!("{root}/tx-ring-ref"),
        &tx_ref.0.to_string(),
    )?;
    hv.store.write(
        guest,
        None,
        &format!("{root}/rx-ring-ref"),
        &rx_ref.0.to_string(),
    )?;
    hv.store.write(
        guest,
        None,
        &format!("{root}/event-channel"),
        &port.0.to_string(),
    )?;
    Ok(NfQueue {
        evtchn: port,
        tx,
        rx,
        tx_page,
        rx_page,
        tx_pool,
        rx_pool,
        in_flight_tx: VecDeque::new(),
        rx_partial: Vec::new(),
        rx_poisoned: false,
    })
}

impl Netfront {
    /// Creates a legacy single-queue device: allocates rings and pools,
    /// grants them, binds the event channel, publishes frontend details
    /// and flips the state to `Initialised`. Also pre-posts the entire
    /// Rx buffer pool.
    pub fn connect(hv: &mut Hypervisor, paths: &DevicePaths, mac: MacAddr) -> Result<Netfront> {
        Netfront::connect_with_queues(hv, paths, mac, 1)
    }

    /// [`Netfront::connect`] with multi-queue negotiation: the frontend
    /// offers up to `max_queues`, clamps against the backend's
    /// `multi-queue-max-queues` advertisement, and builds one ring set
    /// per negotiated queue. A result of 1 (either side offering 1)
    /// falls back to the legacy flat single-ring layout.
    pub fn connect_with_queues(
        hv: &mut Hypervisor,
        paths: &DevicePaths,
        mac: MacAddr,
        max_queues: u32,
    ) -> Result<Netfront> {
        Netfront::connect_with_features(hv, paths, mac, max_queues, true, false)
    }

    /// [`Netfront::connect_with_queues`] with explicit offload choices.
    ///
    /// `want_gso` declines segmentation offload even when the backend
    /// advertises `feature-gso-tcpv4` (the frontend simply never echoes
    /// the key — graceful fallback, not an error). `veto_csum` writes
    /// `feature-no-csum-offload`, keeping full-cost checksumming on the
    /// guest even when GSO chains are negotiated.
    pub fn connect_with_features(
        hv: &mut Hypervisor,
        paths: &DevicePaths,
        mac: MacAddr,
        max_queues: u32,
        want_gso: bool,
        veto_csum: bool,
    ) -> Result<Netfront> {
        let guest = paths.front;
        let fe = paths.frontend();
        let back_max = hv
            .store
            .read(
                guest,
                None,
                &format!("{}/{}", paths.backend(), MQ_MAX_QUEUES_KEY),
            )
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1);
        let nqueues = negotiate_queues(max_queues, back_max);
        if max_queues > 1 {
            hv.store.write(
                guest,
                None,
                &format!("{fe}/{MQ_MAX_QUEUES_KEY}"),
                &max_queues.to_string(),
            )?;
        }
        if nqueues > 1 {
            hv.store.write(
                guest,
                None,
                &format!("{fe}/{MQ_NUM_QUEUES_KEY}"),
                &nqueues.to_string(),
            )?;
        }
        // Offload negotiation: echo the backend's GSO advertisement only
        // if this frontend wants it. A backend that never advertised the
        // key (or a frontend that declines) leaves both sides in the
        // legacy single-slot protocol — no keys, no behavior change.
        let back_gso = hv
            .store
            .read(
                guest,
                None,
                &format!("{}/{}", paths.backend(), FEATURE_GSO_KEY),
            )
            .map(|v| v == "1")
            .unwrap_or(false);
        let gso = want_gso && back_gso;
        if gso {
            hv.store
                .write(guest, None, &format!("{fe}/{FEATURE_GSO_KEY}"), "1")?;
            if veto_csum {
                hv.store
                    .write(guest, None, &format!("{fe}/{FEATURE_NO_CSUM_KEY}"), "1")?;
            }
        }
        let mut queues = Vec::with_capacity(nqueues as usize);
        for k in 0..nqueues {
            let root = paths.frontend_queue_root(nqueues, k);
            queues.push(make_queue(hv, paths, &root)?);
        }
        hv.store
            .write(guest, None, &format!("{fe}/mac"), &mac.to_string())?;
        switch_state(
            &mut hv.store,
            guest,
            &paths.frontend_state(),
            XenbusState::Initialised,
        )?;
        let mut nf = Netfront {
            guest,
            backend: paths.back,
            index: paths.index,
            mac,
            queues,
            received: VecDeque::new(),
            tx_dropped: 0,
            gso,
            csum_offload: gso && !veto_csum,
        };
        nf.post_rx_buffers(hv)?;
        Ok(nf)
    }

    /// Number of negotiated queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Whether GSO descriptor chains were negotiated with the backend.
    pub fn gso(&self) -> bool {
        self.gso
    }

    /// Largest frame [`Netfront::send`] accepts: one page without GSO,
    /// a 64KB super-frame with it.
    pub fn max_tx_frame(&self) -> usize {
        if self.gso {
            NETIF_MAX_GSO_FRAME
        } else {
            kite_xen::PAGE_SIZE
        }
    }

    /// Queue `q`'s guest-local event-channel port.
    pub fn port_of(&self, q: usize) -> Port {
        self.queues[q].evtchn
    }

    /// True if `port` belongs to any of this device's queues.
    pub fn owns_port(&self, port: Port) -> bool {
        self.queues.iter().any(|qu| qu.evtchn == port)
    }

    /// Posts every free Rx buffer on every queue. Returns the queues
    /// whose backend end should be notified.
    pub fn post_rx_buffers(&mut self, hv: &mut Hypervisor) -> Result<Vec<usize>> {
        let mut notify = Vec::new();
        for (q, qu) in self.queues.iter_mut().enumerate() {
            let mut posted = false;
            while !qu.rx.full() {
                let id = match qu.rx_pool.alloc_id() {
                    Some(i) => i,
                    None => break,
                };
                let gref = qu.rx_pool.grefs[id as usize];
                let page = hv.mem.page_mut(qu.rx_page)?;
                qu.rx.push_request(page, &NetifRxRequest { id, gref })?;
                posted = true;
            }
            if posted {
                let page = hv.mem.page_mut(qu.rx_page)?;
                if qu.rx.push_requests(page) {
                    notify.push(q);
                }
            }
        }
        Ok(notify)
    }

    /// Sends one frame on the queue its flow steers to. Returns the
    /// queue index (whose [`Netfront::port_of`] port the caller notifies
    /// when `FrontOp::notify` is set). Fails with [`XenError::RingFull`]
    /// when the steered queue has no Tx slot or buffer free (UDP
    /// workloads count that as a drop).
    ///
    /// With GSO negotiated a frame larger than one page becomes a
    /// descriptor chain: a head slot flagged `NETTXF_EXTRA_INFO |
    /// NETTXF_MORE_DATA`, the GSO extra-info slot, then continuation
    /// fragments (`NETTXF_MORE_DATA` on all but the last). The chain is
    /// pushed atomically — if the ring or pool cannot hold every slot,
    /// nothing is pushed and the whole frame drops.
    ///
    /// A traced request (`req`) is mapped to the Tx ring slot it lands
    /// in and stamped [`ReqStage::RingSubmit`], so the backend's drain
    /// can pick the id back up from the slot.
    ///
    /// [`ReqStage::RingSubmit`]: kite_xen::ReqStage::RingSubmit
    pub fn send(
        &mut self,
        hv: &mut Hypervisor,
        frame: &[u8],
        req: Option<ReqId>,
    ) -> Result<(usize, FrontOp)> {
        if frame.len() > self.max_tx_frame() {
            return Err(XenError::OutOfBounds);
        }
        let q = kite_net::flow::steer(frame, self.queues.len() as u32) as usize;
        let multi = self.queues.len() > 1;
        let nfrags = frame.len().div_ceil(kite_xen::PAGE_SIZE).max(1);
        let chained = self.gso && nfrags > 1;
        // Data slots plus, for a chain, the extra-info slot.
        let slots = if chained { nfrags + 1 } else { nfrags };
        let qu = &mut self.queues[q];
        if (qu.tx.free_requests() as usize) < slots || qu.tx_pool.free.len() < nfrags {
            self.tx_dropped += 1;
            return Err(XenError::RingFull);
        }
        let mss = kite_net::ether::TSO_MSS;
        let mut head_id = 0u16;
        let mut off = 0usize;
        for f in 0..nfrags {
            let id = qu.tx_pool.alloc_id().expect("checked pool headroom");
            let len = (frame.len() - off).min(kite_xen::PAGE_SIZE);
            let buf = qu.tx_pool.pages[id as usize];
            hv.mem.page_mut(buf)?[..len].copy_from_slice(&frame[off..off + len]);
            let mut flags = 0u16;
            if chained {
                if f == 0 {
                    flags = NETTXF_EXTRA_INFO | NETTXF_MORE_DATA;
                } else if f + 1 < nfrags {
                    flags = NETTXF_MORE_DATA;
                }
            }
            let req_tx = NetifTxRequest {
                gref: qu.tx_pool.grefs[id as usize],
                offset: 0,
                flags,
                id,
                size: len as u16,
            };
            let page = hv.mem.page_mut(qu.tx_page)?;
            qu.tx.push_request(page, &req_tx)?;
            qu.in_flight_tx.push_back((id, len as u16, f == 0));
            if f == 0 {
                head_id = id;
                if chained {
                    // The extra-info slot rides immediately after the
                    // head, before any continuation fragment.
                    let extra = NetifExtraInfo {
                        kind: XEN_NETIF_EXTRA_TYPE_GSO,
                        gso_size: mss as u16,
                        gso_segs: frame.len().div_ceil(mss) as u16,
                        total_len: frame.len() as u32,
                    };
                    let page = hv.mem.page_mut(qu.tx_page)?;
                    qu.tx.push_request(page, &extra.to_tx_slot())?;
                }
            }
            off += len;
        }
        let page = hv.mem.page_mut(qu.tx_page)?;
        let notify = qu.tx.push_requests(page);
        if let Some(r) = req {
            let key = (q as u64) << 32 | head_id as u64;
            hv.req.map(SlotClass::NetTx, key, r);
            let qid = multi.then_some(q as u16);
            hv.req.stamp(r, ReqStage::RingSubmit, self.guest.0, qid);
        }
        // Guest-side cost: buffer copy + ring bookkeeping. With checksum
        // offload the guest skips the software csum pass, halving the
        // per-byte term.
        let per_byte = if self.csum_offload { 32 } else { 16 };
        Ok((
            q,
            FrontOp {
                notify,
                cost: Nanos::from_nanos(150 + frame.len() as u64 / per_byte),
            },
        ))
    }

    /// The guest's interrupt handler: reaps Tx completions (freeing
    /// buffers) and Rx deliveries (queueing frames for the stack) on
    /// every queue, then reposts Rx buffers. Returns the cost and the
    /// queues whose backend must be notified (for reposted buffers).
    pub fn on_irq(&mut self, hv: &mut Hypervisor) -> Result<(FrontOp, Vec<usize>)> {
        let mut cost = Nanos::ZERO;
        for qu in &mut self.queues {
            // Tx completions.
            loop {
                let rsp = {
                    let page = hv.mem.page(qu.tx_page)?;
                    qu.tx.consume_response(page)?
                };
                let Some(rsp) = rsp else { break };
                if rsp.status == NETIF_RSP_NULL {
                    // Extra-info slot acknowledgment: its id field held
                    // the descriptor kind, not a pool id — nothing to
                    // release.
                    continue;
                }
                qu.tx_pool.release_id(rsp.id);
                qu.in_flight_tx.retain(|&(i, _, _)| i != rsp.id);
                cost += Nanos::from_nanos(80);
            }
            {
                let page = hv.mem.page_mut(qu.tx_page)?;
                qu.tx.final_check_for_responses(page);
            }
            // Rx deliveries.
            loop {
                let rsp = {
                    let page = hv.mem.page(qu.rx_page)?;
                    qu.rx.consume_response(page)?
                };
                let Some(rsp) = rsp else { break };
                let more = rsp.flags & NETRXF_MORE_DATA != 0;
                if rsp.status > 0 {
                    let len = rsp.status as usize;
                    let buf = qu.rx_pool.pages[rsp.id as usize];
                    let data = &hv.mem.page(buf)?[rsp.offset as usize..rsp.offset as usize + len];
                    qu.rx_partial.extend_from_slice(data);
                    // The backend validated the checksum for us when it
                    // set `NETRXF_DATA_VALIDATED`; the guest's software
                    // pass is skipped and the per-byte cost halves.
                    let per_byte = if rsp.flags & NETRXF_DATA_VALIDATED != 0 {
                        32
                    } else {
                        16
                    };
                    cost += Nanos::from_nanos(120 + len as u64 / per_byte);
                } else {
                    // A failed fragment poisons the chain it belongs
                    // to: nothing already accumulated may be delivered.
                    qu.rx_poisoned = true;
                }
                if !more {
                    if !qu.rx_poisoned && !qu.rx_partial.is_empty() {
                        self.received.push_back(std::mem::take(&mut qu.rx_partial));
                    } else {
                        qu.rx_partial.clear();
                    }
                    qu.rx_poisoned = false;
                }
                qu.rx_pool.release_id(rsp.id);
            }
            {
                let page = hv.mem.page_mut(qu.rx_page)?;
                qu.rx.final_check_for_responses(page);
            }
        }
        let notify = self.post_rx_buffers(hv)?;
        Ok((
            FrontOp {
                notify: !notify.is_empty(),
                cost,
            },
            notify,
        ))
    }

    /// Takes the next received frame, if any.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        self.received.pop_front()
    }

    /// Frames received and not yet taken.
    pub fn pending_rx(&self) -> usize {
        self.received.len()
    }

    /// Frames dropped at send time for want of ring space.
    pub fn tx_dropped(&self) -> u64 {
        self.tx_dropped
    }

    /// Tx frames pushed to the rings but never acknowledged, queue by
    /// queue and oldest first within each — the payloads a crashed
    /// backend may or may not have moved. The guest's recovery path
    /// retransmits these through the replacement device (retrying an
    /// already-delivered frame is the UDP analog of an idempotent
    /// replay; TCP would dedup by sequence number).
    pub fn take_unacked(&mut self, hv: &Hypervisor) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for qu in &mut self.queues {
            // First-markers delimit GSO chains: a head slot flushes the
            // frame accumulated so far, continuation slots append.
            let mut partial: Vec<u8> = Vec::new();
            while let Some((id, len, first)) = qu.in_flight_tx.pop_front() {
                if first && !partial.is_empty() {
                    out.push(std::mem::take(&mut partial));
                }
                let buf = qu.tx_pool.pages[id as usize];
                if let Ok(page) = hv.mem.page(buf) {
                    partial.extend_from_slice(&page[..len as usize]);
                }
            }
            if !partial.is_empty() {
                out.push(partial);
            }
        }
        out
    }
}
