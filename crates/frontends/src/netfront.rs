//! Netfront: the guest-side PV network driver.
//!
//! Allocates the Tx/Rx shared rings and packet buffer pools, grants them to
//! the driver domain, publishes its details in xenstore and exchanges
//! frames with netback through the rings — the standard, unmodified guest
//! driver the paper's DomU runs (its whole point is that frontends need no
//! changes to talk to a Kite backend).

use std::collections::VecDeque;

use kite_net::MacAddr;
use kite_sim::Nanos;
use kite_xen::netif::{NetifRxRequest, NetifRxResponse, NetifTxRequest, NetifTxResponse};
use kite_xen::ring::FrontRing;
use kite_xen::xenbus::switch_state;
use kite_xen::{
    DevicePaths, DomainId, GrantRef, Hypervisor, PageId, Port, Result, XenError, XenbusState,
};

/// Number of packet buffer pages in each direction's pool.
const POOL: usize = 256;

struct BufPool {
    pages: Vec<PageId>,
    grefs: Vec<GrantRef>,
    free: Vec<u16>,
}

impl BufPool {
    fn alloc_id(&mut self) -> Option<u16> {
        self.free.pop()
    }
    fn release_id(&mut self, id: u16) {
        debug_assert!(!self.free.contains(&id));
        self.free.push(id);
    }
}

/// Outcome of a frontend operation that may require notifying the backend.
#[derive(Debug, Default)]
pub struct FrontOp {
    /// The backend must be notified via the event channel.
    pub notify: bool,
    /// Guest-side CPU cost of the operation.
    pub cost: Nanos,
}

/// The netfront driver instance.
pub struct Netfront {
    /// Guest domain.
    pub guest: DomainId,
    /// Driver domain on the other end.
    pub backend: DomainId,
    /// Device index.
    pub index: u32,
    /// Guest-local event-channel port.
    pub evtchn: Port,
    /// The interface MAC.
    pub mac: MacAddr,
    tx: FrontRing<NetifTxRequest, NetifTxResponse>,
    rx: FrontRing<NetifRxRequest, NetifRxResponse>,
    tx_page: PageId,
    rx_page: PageId,
    tx_pool: BufPool,
    rx_pool: BufPool,
    received: VecDeque<Vec<u8>>,
    // Tx requests pushed but not yet acknowledged: (buffer id, length),
    // oldest first. What a crashed backend leaves unacknowledged.
    in_flight_tx: VecDeque<(u16, u16)>,
    tx_dropped: u64,
}

fn make_pool(
    hv: &mut Hypervisor,
    owner: DomainId,
    peer: DomainId,
    readonly: bool,
) -> Result<BufPool> {
    let mut pages = Vec::with_capacity(POOL);
    let mut grefs = Vec::with_capacity(POOL);
    for _ in 0..POOL {
        let p = hv.alloc_page(owner)?;
        pages.push(p);
        grefs.push(hv.grant_access(owner, peer, p, readonly)?);
    }
    Ok(BufPool {
        pages,
        grefs,
        free: (0..POOL as u16).rev().collect(),
    })
}

impl Netfront {
    /// Creates the device: allocates rings and pools, grants them, binds
    /// the event channel, publishes frontend details and flips the state
    /// to `Initialised`. Also pre-posts the entire Rx buffer pool.
    pub fn connect(hv: &mut Hypervisor, paths: &DevicePaths, mac: MacAddr) -> Result<Netfront> {
        let guest = paths.front;
        let backend = paths.back;
        let tx_page = hv.alloc_page(guest)?;
        let rx_page = hv.alloc_page(guest)?;
        let tx = {
            let p = hv.mem.page_mut(tx_page)?;
            FrontRing::init(p)
        };
        let rx = {
            let p = hv.mem.page_mut(rx_page)?;
            FrontRing::init(p)
        };
        let tx_ref = hv.grant_access(guest, backend, tx_page, false)?;
        let rx_ref = hv.grant_access(guest, backend, rx_page, false)?;
        // Tx payload pages are read-only to the backend; Rx pages must be
        // writable (the backend copies into them).
        let tx_pool = make_pool(hv, guest, backend, true)?;
        let rx_pool = make_pool(hv, guest, backend, false)?;
        let (port, _) = hv.evtchn_alloc_unbound(guest, backend);
        let fe = paths.frontend();
        hv.store.write(
            guest,
            None,
            &format!("{fe}/tx-ring-ref"),
            &tx_ref.0.to_string(),
        )?;
        hv.store.write(
            guest,
            None,
            &format!("{fe}/rx-ring-ref"),
            &rx_ref.0.to_string(),
        )?;
        hv.store.write(
            guest,
            None,
            &format!("{fe}/event-channel"),
            &port.0.to_string(),
        )?;
        hv.store
            .write(guest, None, &format!("{fe}/mac"), &mac.to_string())?;
        switch_state(
            &mut hv.store,
            guest,
            &paths.frontend_state(),
            XenbusState::Initialised,
        )?;
        let mut nf = Netfront {
            guest,
            backend,
            index: paths.index,
            evtchn: port,
            mac,
            tx,
            rx,
            tx_page,
            rx_page,
            tx_pool,
            rx_pool,
            received: VecDeque::new(),
            in_flight_tx: VecDeque::new(),
            tx_dropped: 0,
        };
        nf.post_rx_buffers(hv)?;
        Ok(nf)
    }

    /// Posts every free Rx buffer as a request. Returns whether the
    /// backend should be notified.
    pub fn post_rx_buffers(&mut self, hv: &mut Hypervisor) -> Result<bool> {
        let mut posted = false;
        while !self.rx.full() {
            let id = match self.rx_pool.alloc_id() {
                Some(i) => i,
                None => break,
            };
            let gref = self.rx_pool.grefs[id as usize];
            let page = hv.mem.page_mut(self.rx_page)?;
            self.rx.push_request(page, &NetifRxRequest { id, gref })?;
            posted = true;
        }
        if posted {
            let page = hv.mem.page_mut(self.rx_page)?;
            Ok(self.rx.push_requests(page))
        } else {
            Ok(false)
        }
    }

    /// Sends one frame. Fails with [`XenError::RingFull`] when no Tx slot
    /// or buffer is free (UDP workloads count that as a drop).
    pub fn send(&mut self, hv: &mut Hypervisor, frame: &[u8]) -> Result<FrontOp> {
        if frame.len() > kite_xen::PAGE_SIZE {
            return Err(XenError::OutOfBounds);
        }
        if self.tx.full() {
            self.tx_dropped += 1;
            return Err(XenError::RingFull);
        }
        let id = match self.tx_pool.alloc_id() {
            Some(i) => i,
            None => {
                self.tx_dropped += 1;
                return Err(XenError::RingFull);
            }
        };
        let buf = self.tx_pool.pages[id as usize];
        hv.mem.page_mut(buf)?[..frame.len()].copy_from_slice(frame);
        let req = NetifTxRequest {
            gref: self.tx_pool.grefs[id as usize],
            offset: 0,
            flags: 0,
            id,
            size: frame.len() as u16,
        };
        let page = hv.mem.page_mut(self.tx_page)?;
        self.tx.push_request(page, &req)?;
        self.in_flight_tx.push_back((id, frame.len() as u16));
        let notify = self.tx.push_requests(page);
        Ok(FrontOp {
            notify,
            // Guest-side cost: buffer copy + ring bookkeeping.
            cost: Nanos::from_nanos(150 + frame.len() as u64 / 16),
        })
    }

    /// The guest's interrupt handler: reaps Tx completions (freeing
    /// buffers) and Rx deliveries (queueing frames for the stack), then
    /// reposts Rx buffers. Returns whether the backend must be notified
    /// (for the reposted buffers).
    pub fn on_irq(&mut self, hv: &mut Hypervisor) -> Result<FrontOp> {
        let mut cost = Nanos::ZERO;
        // Tx completions.
        loop {
            let rsp = {
                let page = hv.mem.page(self.tx_page)?;
                self.tx.consume_response(page)?
            };
            let Some(rsp) = rsp else { break };
            self.tx_pool.release_id(rsp.id);
            self.in_flight_tx.retain(|&(i, _)| i != rsp.id);
            cost += Nanos::from_nanos(80);
        }
        {
            let page = hv.mem.page_mut(self.tx_page)?;
            self.tx.final_check_for_responses(page);
        }
        // Rx deliveries.
        loop {
            let rsp = {
                let page = hv.mem.page(self.rx_page)?;
                self.rx.consume_response(page)?
            };
            let Some(rsp) = rsp else { break };
            if rsp.status > 0 {
                let len = rsp.status as usize;
                let buf = self.rx_pool.pages[rsp.id as usize];
                let data =
                    hv.mem.page(buf)?[rsp.offset as usize..rsp.offset as usize + len].to_vec();
                self.received.push_back(data);
                cost += Nanos::from_nanos(120 + len as u64 / 16);
            }
            self.rx_pool.release_id(rsp.id);
        }
        {
            let page = hv.mem.page_mut(self.rx_page)?;
            self.rx.final_check_for_responses(page);
        }
        let notify = self.post_rx_buffers(hv)?;
        Ok(FrontOp { notify, cost })
    }

    /// Takes the next received frame, if any.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        self.received.pop_front()
    }

    /// Frames received and not yet taken.
    pub fn pending_rx(&self) -> usize {
        self.received.len()
    }

    /// Frames dropped at send time for want of ring space.
    pub fn tx_dropped(&self) -> u64 {
        self.tx_dropped
    }

    /// Tx frames pushed to the ring but never acknowledged, oldest first
    /// — the payloads a crashed backend may or may not have moved. The
    /// guest's recovery path retransmits these through the replacement
    /// device (retrying an already-delivered frame is the UDP analog of
    /// an idempotent replay; TCP would dedup by sequence number).
    pub fn take_unacked(&mut self, hv: &Hypervisor) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(self.in_flight_tx.len());
        while let Some((id, len)) = self.in_flight_tx.pop_front() {
            let buf = self.tx_pool.pages[id as usize];
            if let Ok(page) = hv.mem.page(buf) {
                out.push(page[..len as usize].to_vec());
            }
        }
        out
    }
}
