//! Netfront: the guest-side PV network driver.
//!
//! Allocates the Tx/Rx shared rings and packet buffer pools, grants them to
//! the driver domain, publishes its details in xenstore and exchanges
//! frames with netback through the rings — the standard, unmodified guest
//! driver the paper's DomU runs (its whole point is that frontends need no
//! changes to talk to a Kite backend).
//!
//! Multi-queue works the way Linux `xen-netfront` does it: the backend
//! advertises `multi-queue-max-queues`, the frontend clamps its own
//! capacity against it, writes the negotiated `multi-queue-num-queues`,
//! and publishes one ring pair + event channel per queue under
//! `queue-<k>/` subpaths. A negotiated count of 1 keeps the legacy flat
//! key layout, so single-queue behavior is bit-for-bit unchanged. Tx
//! steering hashes the flow tuple ([`kite_net::flow`]), so one flow's
//! frames always ride one queue and per-flow ordering survives.

use std::collections::VecDeque;

use kite_net::MacAddr;
use kite_sim::Nanos;
use kite_xen::netif::{NetifRxRequest, NetifRxResponse, NetifTxRequest, NetifTxResponse};
use kite_xen::ring::FrontRing;
use kite_xen::xenbus::{negotiate_queues, switch_state, MQ_MAX_QUEUES_KEY, MQ_NUM_QUEUES_KEY};
use kite_xen::{
    DevicePaths, DomainId, GrantRef, Hypervisor, PageId, Port, ReqId, ReqStage, Result, SlotClass,
    XenError, XenbusState,
};

/// Number of packet buffer pages in each direction's pool, per queue.
const POOL: usize = 256;

struct BufPool {
    pages: Vec<PageId>,
    grefs: Vec<GrantRef>,
    free: Vec<u16>,
}

impl BufPool {
    fn alloc_id(&mut self) -> Option<u16> {
        self.free.pop()
    }
    fn release_id(&mut self, id: u16) {
        debug_assert!(!self.free.contains(&id));
        self.free.push(id);
    }
}

/// Outcome of a frontend operation that may require notifying the backend.
#[derive(Debug, Default)]
pub struct FrontOp {
    /// The backend must be notified via the event channel.
    pub notify: bool,
    /// Guest-side CPU cost of the operation.
    pub cost: Nanos,
}

/// One queue's worth of frontend state: a Tx/Rx ring pair, its event
/// channel, and the buffer pools feeding it.
struct NfQueue {
    evtchn: Port,
    tx: FrontRing<NetifTxRequest, NetifTxResponse>,
    rx: FrontRing<NetifRxRequest, NetifRxResponse>,
    tx_page: PageId,
    rx_page: PageId,
    tx_pool: BufPool,
    rx_pool: BufPool,
    // Tx requests pushed but not yet acknowledged: (buffer id, length),
    // oldest first. What a crashed backend leaves unacknowledged.
    in_flight_tx: VecDeque<(u16, u16)>,
}

/// The netfront driver instance.
pub struct Netfront {
    /// Guest domain.
    pub guest: DomainId,
    /// Driver domain on the other end.
    pub backend: DomainId,
    /// Device index.
    pub index: u32,
    /// The interface MAC.
    pub mac: MacAddr,
    queues: Vec<NfQueue>,
    received: VecDeque<Vec<u8>>,
    tx_dropped: u64,
}

fn make_pool(
    hv: &mut Hypervisor,
    owner: DomainId,
    peer: DomainId,
    readonly: bool,
) -> Result<BufPool> {
    let mut pages = Vec::with_capacity(POOL);
    let mut grefs = Vec::with_capacity(POOL);
    for _ in 0..POOL {
        let p = hv.alloc_page(owner)?;
        pages.push(p);
        grefs.push(hv.grant_access(owner, peer, p, readonly)?);
    }
    Ok(BufPool {
        pages,
        grefs,
        free: (0..POOL as u16).rev().collect(),
    })
}

fn make_queue(hv: &mut Hypervisor, paths: &DevicePaths, root: &str) -> Result<NfQueue> {
    let guest = paths.front;
    let backend = paths.back;
    let tx_page = hv.alloc_page(guest)?;
    let rx_page = hv.alloc_page(guest)?;
    let tx = {
        let p = hv.mem.page_mut(tx_page)?;
        FrontRing::init(p)
    };
    let rx = {
        let p = hv.mem.page_mut(rx_page)?;
        FrontRing::init(p)
    };
    let tx_ref = hv.grant_access(guest, backend, tx_page, false)?;
    let rx_ref = hv.grant_access(guest, backend, rx_page, false)?;
    // Tx payload pages are read-only to the backend; Rx pages must be
    // writable (the backend copies into them).
    let tx_pool = make_pool(hv, guest, backend, true)?;
    let rx_pool = make_pool(hv, guest, backend, false)?;
    let (port, _) = hv.evtchn_alloc_unbound(guest, backend);
    hv.store.write(
        guest,
        None,
        &format!("{root}/tx-ring-ref"),
        &tx_ref.0.to_string(),
    )?;
    hv.store.write(
        guest,
        None,
        &format!("{root}/rx-ring-ref"),
        &rx_ref.0.to_string(),
    )?;
    hv.store.write(
        guest,
        None,
        &format!("{root}/event-channel"),
        &port.0.to_string(),
    )?;
    Ok(NfQueue {
        evtchn: port,
        tx,
        rx,
        tx_page,
        rx_page,
        tx_pool,
        rx_pool,
        in_flight_tx: VecDeque::new(),
    })
}

impl Netfront {
    /// Creates a legacy single-queue device: allocates rings and pools,
    /// grants them, binds the event channel, publishes frontend details
    /// and flips the state to `Initialised`. Also pre-posts the entire
    /// Rx buffer pool.
    pub fn connect(hv: &mut Hypervisor, paths: &DevicePaths, mac: MacAddr) -> Result<Netfront> {
        Netfront::connect_with_queues(hv, paths, mac, 1)
    }

    /// [`Netfront::connect`] with multi-queue negotiation: the frontend
    /// offers up to `max_queues`, clamps against the backend's
    /// `multi-queue-max-queues` advertisement, and builds one ring set
    /// per negotiated queue. A result of 1 (either side offering 1)
    /// falls back to the legacy flat single-ring layout.
    pub fn connect_with_queues(
        hv: &mut Hypervisor,
        paths: &DevicePaths,
        mac: MacAddr,
        max_queues: u32,
    ) -> Result<Netfront> {
        let guest = paths.front;
        let fe = paths.frontend();
        let back_max = hv
            .store
            .read(
                guest,
                None,
                &format!("{}/{}", paths.backend(), MQ_MAX_QUEUES_KEY),
            )
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1);
        let nqueues = negotiate_queues(max_queues, back_max);
        if max_queues > 1 {
            hv.store.write(
                guest,
                None,
                &format!("{fe}/{MQ_MAX_QUEUES_KEY}"),
                &max_queues.to_string(),
            )?;
        }
        if nqueues > 1 {
            hv.store.write(
                guest,
                None,
                &format!("{fe}/{MQ_NUM_QUEUES_KEY}"),
                &nqueues.to_string(),
            )?;
        }
        let mut queues = Vec::with_capacity(nqueues as usize);
        for k in 0..nqueues {
            let root = paths.frontend_queue_root(nqueues, k);
            queues.push(make_queue(hv, paths, &root)?);
        }
        hv.store
            .write(guest, None, &format!("{fe}/mac"), &mac.to_string())?;
        switch_state(
            &mut hv.store,
            guest,
            &paths.frontend_state(),
            XenbusState::Initialised,
        )?;
        let mut nf = Netfront {
            guest,
            backend: paths.back,
            index: paths.index,
            mac,
            queues,
            received: VecDeque::new(),
            tx_dropped: 0,
        };
        nf.post_rx_buffers(hv)?;
        Ok(nf)
    }

    /// Number of negotiated queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Queue `q`'s guest-local event-channel port.
    pub fn port_of(&self, q: usize) -> Port {
        self.queues[q].evtchn
    }

    /// True if `port` belongs to any of this device's queues.
    pub fn owns_port(&self, port: Port) -> bool {
        self.queues.iter().any(|qu| qu.evtchn == port)
    }

    /// Posts every free Rx buffer on every queue. Returns the queues
    /// whose backend end should be notified.
    pub fn post_rx_buffers(&mut self, hv: &mut Hypervisor) -> Result<Vec<usize>> {
        let mut notify = Vec::new();
        for (q, qu) in self.queues.iter_mut().enumerate() {
            let mut posted = false;
            while !qu.rx.full() {
                let id = match qu.rx_pool.alloc_id() {
                    Some(i) => i,
                    None => break,
                };
                let gref = qu.rx_pool.grefs[id as usize];
                let page = hv.mem.page_mut(qu.rx_page)?;
                qu.rx.push_request(page, &NetifRxRequest { id, gref })?;
                posted = true;
            }
            if posted {
                let page = hv.mem.page_mut(qu.rx_page)?;
                if qu.rx.push_requests(page) {
                    notify.push(q);
                }
            }
        }
        Ok(notify)
    }

    /// Sends one frame on the queue its flow steers to. Returns the
    /// queue index (whose [`Netfront::port_of`] port the caller notifies
    /// when `FrontOp::notify` is set). Fails with [`XenError::RingFull`]
    /// when the steered queue has no Tx slot or buffer free (UDP
    /// workloads count that as a drop).
    ///
    /// A traced request (`req`) is mapped to the Tx ring slot it lands
    /// in and stamped [`ReqStage::RingSubmit`], so the backend's drain
    /// can pick the id back up from the slot.
    ///
    /// [`ReqStage::RingSubmit`]: kite_xen::ReqStage::RingSubmit
    pub fn send(
        &mut self,
        hv: &mut Hypervisor,
        frame: &[u8],
        req: Option<ReqId>,
    ) -> Result<(usize, FrontOp)> {
        if frame.len() > kite_xen::PAGE_SIZE {
            return Err(XenError::OutOfBounds);
        }
        let q = kite_net::flow::steer(frame, self.queues.len() as u32) as usize;
        let multi = self.queues.len() > 1;
        let qu = &mut self.queues[q];
        if qu.tx.full() {
            self.tx_dropped += 1;
            return Err(XenError::RingFull);
        }
        let id = match qu.tx_pool.alloc_id() {
            Some(i) => i,
            None => {
                self.tx_dropped += 1;
                return Err(XenError::RingFull);
            }
        };
        let buf = qu.tx_pool.pages[id as usize];
        hv.mem.page_mut(buf)?[..frame.len()].copy_from_slice(frame);
        let req_tx = NetifTxRequest {
            gref: qu.tx_pool.grefs[id as usize],
            offset: 0,
            flags: 0,
            id,
            size: frame.len() as u16,
        };
        let page = hv.mem.page_mut(qu.tx_page)?;
        qu.tx.push_request(page, &req_tx)?;
        qu.in_flight_tx.push_back((id, frame.len() as u16));
        let notify = qu.tx.push_requests(page);
        if let Some(r) = req {
            let key = (q as u64) << 32 | id as u64;
            hv.req.map(SlotClass::NetTx, key, r);
            let qid = multi.then_some(q as u16);
            hv.req.stamp(r, ReqStage::RingSubmit, self.guest.0, qid);
        }
        Ok((
            q,
            FrontOp {
                notify,
                // Guest-side cost: buffer copy + ring bookkeeping.
                cost: Nanos::from_nanos(150 + frame.len() as u64 / 16),
            },
        ))
    }

    /// The guest's interrupt handler: reaps Tx completions (freeing
    /// buffers) and Rx deliveries (queueing frames for the stack) on
    /// every queue, then reposts Rx buffers. Returns the cost and the
    /// queues whose backend must be notified (for reposted buffers).
    pub fn on_irq(&mut self, hv: &mut Hypervisor) -> Result<(FrontOp, Vec<usize>)> {
        let mut cost = Nanos::ZERO;
        for qu in &mut self.queues {
            // Tx completions.
            loop {
                let rsp = {
                    let page = hv.mem.page(qu.tx_page)?;
                    qu.tx.consume_response(page)?
                };
                let Some(rsp) = rsp else { break };
                qu.tx_pool.release_id(rsp.id);
                qu.in_flight_tx.retain(|&(i, _)| i != rsp.id);
                cost += Nanos::from_nanos(80);
            }
            {
                let page = hv.mem.page_mut(qu.tx_page)?;
                qu.tx.final_check_for_responses(page);
            }
            // Rx deliveries.
            loop {
                let rsp = {
                    let page = hv.mem.page(qu.rx_page)?;
                    qu.rx.consume_response(page)?
                };
                let Some(rsp) = rsp else { break };
                if rsp.status > 0 {
                    let len = rsp.status as usize;
                    let buf = qu.rx_pool.pages[rsp.id as usize];
                    let data =
                        hv.mem.page(buf)?[rsp.offset as usize..rsp.offset as usize + len].to_vec();
                    self.received.push_back(data);
                    cost += Nanos::from_nanos(120 + len as u64 / 16);
                }
                qu.rx_pool.release_id(rsp.id);
            }
            {
                let page = hv.mem.page_mut(qu.rx_page)?;
                qu.rx.final_check_for_responses(page);
            }
        }
        let notify = self.post_rx_buffers(hv)?;
        Ok((
            FrontOp {
                notify: !notify.is_empty(),
                cost,
            },
            notify,
        ))
    }

    /// Takes the next received frame, if any.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        self.received.pop_front()
    }

    /// Frames received and not yet taken.
    pub fn pending_rx(&self) -> usize {
        self.received.len()
    }

    /// Frames dropped at send time for want of ring space.
    pub fn tx_dropped(&self) -> u64 {
        self.tx_dropped
    }

    /// Tx frames pushed to the rings but never acknowledged, queue by
    /// queue and oldest first within each — the payloads a crashed
    /// backend may or may not have moved. The guest's recovery path
    /// retransmits these through the replacement device (retrying an
    /// already-delivered frame is the UDP analog of an idempotent
    /// replay; TCP would dedup by sequence number).
    pub fn take_unacked(&mut self, hv: &Hypervisor) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for qu in &mut self.queues {
            while let Some((id, len)) = qu.in_flight_tx.pop_front() {
                let buf = qu.tx_pool.pages[id as usize];
                if let Ok(page) = hv.mem.page(buf) {
                    out.push(page[..len as usize].to_vec());
                }
            }
        }
        out
    }
}
