//! Guest-side PV frontends.
//!
//! These are the *unmodified* drivers every Xen guest already ships —
//! Kite's claim is precisely that its unikernel backends interoperate with
//! stock frontends. [`netfront::Netfront`] and [`blkfront::Blkfront`]
//! speak the byte-exact ring ABIs from `kite-xen` and negotiate through
//! xenstore exactly as Linux's drivers do.

pub mod blkfront;
pub mod netfront;

pub use blkfront::{BlkCompletion, Blkfront};
pub use netfront::{FrontOp, Netfront};
