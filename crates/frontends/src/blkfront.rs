//! Blkfront: the guest-side PV block driver.
//!
//! Builds direct or indirect requests according to the features the
//! backend advertised in xenstore, keeps a granted buffer-page pool
//! (persistent from the frontend's perspective), and reaps completions.
//!
//! With [`Blkfront::connect_with_queues`] the frontend negotiates up to
//! `n` hardware queues (rings): requests spread across rings round-robin
//! (block I/O carries no flow-ordering constraint), responses return on
//! the ring that carried the request.

use std::collections::HashMap;

use kite_sim::Nanos;
use kite_xen::blkif::{
    pack_indirect_segments, BlkifRequest, BlkifResponse, BlkifSegment,
    BLKIF_MAX_SEGMENTS_PER_REQUEST, BLKIF_OP_FLUSH_DISKCACHE, BLKIF_OP_READ, BLKIF_OP_WRITE,
    BLKIF_RSP_OKAY, SECTOR_SIZE,
};
use kite_xen::ring::FrontRing;
use kite_xen::xenbus::{negotiate_queues, switch_state, MQ_MAX_QUEUES_KEY, MQ_NUM_QUEUES_KEY};
use kite_xen::{
    DevicePaths, DomainId, GrantRef, Hypervisor, PageId, Port, Result, XenError, XenbusState,
};

use crate::netfront::FrontOp;

/// A completed block request as seen by the guest.
#[derive(Debug)]
pub struct BlkCompletion {
    /// Request id.
    pub id: u64,
    /// The operation that completed.
    pub op: u8,
    /// True on success.
    pub ok: bool,
    /// Read data (present for successful reads).
    pub data: Option<Vec<u8>>,
}

struct Pending {
    op: u8,
    ring: usize,                 // ring the request went out on
    pages: Vec<(PageId, usize)>, // page + byte length used
    indirect_idx: Option<usize>, // indirect descriptor page to recycle
}

/// One ring of the frontend: the shared ring page and its event channel.
struct BfRing {
    evtchn: Port,
    ring: FrontRing<BlkifRequest, BlkifResponse>,
    ring_page: PageId,
}

/// The blkfront driver instance.
pub struct Blkfront {
    /// Guest domain.
    pub guest: DomainId,
    /// Driver domain.
    pub backend: DomainId,
    /// Device capacity in sectors (read from the backend's advertisement).
    pub sectors: u64,
    /// Backend supports indirect segments up to this many.
    pub max_indirect: usize,
    rings: Vec<BfRing>,
    /// Round-robin cursor for spreading submissions across rings.
    rr: usize,
    pool_pages: Vec<PageId>,
    pool_grefs: Vec<GrantRef>,
    pool_free: Vec<usize>,
    indirect_pages: Vec<PageId>,
    indirect_grefs: Vec<GrantRef>,
    indirect_free: Vec<usize>,
    next_id: u64,
    pending: HashMap<u64, Pending>,
    completions: Vec<BlkCompletion>,
}

/// Buffer pool size in pages: enough for a full ring of indirect requests.
const POOL_PAGES: usize = 1024;

impl Blkfront {
    /// Connects with the legacy single-ring layout.
    pub fn connect(hv: &mut Hypervisor, paths: &DevicePaths) -> Result<Blkfront> {
        Blkfront::connect_with_queues(hv, paths, 1)
    }

    /// Connects, asking for up to `max_queues` rings: allocates each
    /// negotiated ring and the shared pools, publishes details, flips to
    /// `Initialised`.
    ///
    /// Queue negotiation reads the backend's `multi-queue-max-queues`
    /// advertisement (absent → 1) and clamps `max_queues` against it;
    /// with a single ring the flat legacy key layout is kept, so a
    /// `max_queues = 1` connect is indistinguishable from [`connect`].
    ///
    /// The backend writes its property keys when it connects; the system
    /// layer re-reads them via [`Blkfront::read_features`] once the
    /// backend reports `Connected`.
    ///
    /// [`connect`]: Blkfront::connect
    pub fn connect_with_queues(
        hv: &mut Hypervisor,
        paths: &DevicePaths,
        max_queues: u32,
    ) -> Result<Blkfront> {
        let guest = paths.front;
        let backend = paths.back;
        let fe = paths.frontend();
        let be = paths.backend();
        let back_max = hv
            .store
            .read(guest, None, &format!("{be}/{MQ_MAX_QUEUES_KEY}"))
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1);
        let nrings = negotiate_queues(max_queues, back_max);
        if max_queues > 1 {
            hv.store.write(
                guest,
                None,
                &format!("{fe}/{MQ_MAX_QUEUES_KEY}"),
                &max_queues.to_string(),
            )?;
        }
        if nrings > 1 {
            hv.store.write(
                guest,
                None,
                &format!("{fe}/{MQ_NUM_QUEUES_KEY}"),
                &nrings.to_string(),
            )?;
        }
        let mut rings = Vec::with_capacity(nrings as usize);
        for k in 0..nrings {
            let root = paths.frontend_queue_root(nrings, k);
            let ring_page = hv.alloc_page(guest)?;
            let ring = {
                let p = hv.mem.page_mut(ring_page)?;
                FrontRing::init(p)
            };
            let ring_ref = hv.grant_access(guest, backend, ring_page, false)?;
            let (port, _) = hv.evtchn_alloc_unbound(guest, backend);
            hv.store.write(
                guest,
                None,
                &format!("{root}/ring-ref"),
                &ring_ref.0.to_string(),
            )?;
            hv.store.write(
                guest,
                None,
                &format!("{root}/event-channel"),
                &port.0.to_string(),
            )?;
            rings.push(BfRing {
                evtchn: port,
                ring,
                ring_page,
            });
        }
        let mut pool_pages = Vec::with_capacity(POOL_PAGES);
        let mut pool_grefs = Vec::with_capacity(POOL_PAGES);
        for _ in 0..POOL_PAGES {
            let p = hv.alloc_page(guest)?;
            pool_pages.push(p);
            pool_grefs.push(hv.grant_access(guest, backend, p, false)?);
        }
        // One indirect descriptor page per possible in-flight request.
        let mut indirect_pages = Vec::with_capacity(32);
        let mut indirect_grefs = Vec::with_capacity(32);
        for _ in 0..32 {
            let p = hv.alloc_page(guest)?;
            indirect_pages.push(p);
            indirect_grefs.push(hv.grant_access(guest, backend, p, true)?);
        }
        hv.store
            .write(guest, None, &format!("{fe}/protocol"), "x86_64-abi")?;
        hv.store
            .write(guest, None, &format!("{fe}/feature-persistent"), "1")?;
        switch_state(
            &mut hv.store,
            guest,
            &paths.frontend_state(),
            XenbusState::Initialised,
        )?;
        Ok(Blkfront {
            guest,
            backend,
            sectors: 0,
            max_indirect: 0,
            rings,
            rr: 0,
            pool_pages,
            pool_grefs,
            pool_free: (0..POOL_PAGES).rev().collect(),
            indirect_pages,
            indirect_grefs,
            indirect_free: (0..32).rev().collect(),
            next_id: 1,
            pending: HashMap::new(),
            completions: Vec::new(),
        })
    }

    /// Number of negotiated rings.
    pub fn queue_count(&self) -> usize {
        self.rings.len()
    }

    /// Ring `q`'s guest-local event-channel port.
    pub fn port_of(&self, q: usize) -> Port {
        self.rings[q].evtchn
    }

    /// True if `port` belongs to any of this frontend's rings.
    pub fn owns_port(&self, port: Port) -> bool {
        self.rings.iter().any(|r| r.evtchn == port)
    }

    /// The ring a still-outstanding request went out on.
    pub fn ring_of(&self, id: u64) -> Option<usize> {
        self.pending.get(&id).map(|p| p.ring)
    }

    /// Reads the backend's advertised properties (sectors, indirect cap).
    pub fn read_features(&mut self, hv: &mut Hypervisor, paths: &DevicePaths) -> Result<()> {
        let be = paths.backend();
        self.sectors = hv
            .store
            .read(self.guest, None, &format!("{be}/sectors"))?
            .parse()
            .map_err(|_| XenError::Inval)?;
        self.max_indirect = hv
            .store
            .read(
                self.guest,
                None,
                &format!("{be}/feature-max-indirect-segments"),
            )?
            .parse()
            .map_err(|_| XenError::Inval)?;
        Ok(())
    }

    /// Largest single request in bytes given negotiated features.
    pub fn max_request_bytes(&self) -> usize {
        let segs = if self.max_indirect > 0 {
            self.max_indirect
        } else {
            BLKIF_MAX_SEGMENTS_PER_REQUEST
        };
        segs * kite_xen::PAGE_SIZE
    }

    /// Free request slots across all rings.
    pub fn free_slots(&self) -> u32 {
        self.rings.iter().map(|r| r.ring.free_requests()).sum()
    }

    /// Picks the next ring round-robin, skipping full rings.
    fn pick_ring(&mut self) -> Result<usize> {
        let n = self.rings.len();
        for i in 0..n {
            let q = (self.rr + i) % n;
            if !self.rings[q].ring.full() {
                self.rr = (q + 1) % n;
                return Ok(q);
            }
        }
        Err(XenError::RingFull)
    }

    fn alloc_pages(&mut self, n: usize) -> Option<Vec<usize>> {
        if self.pool_free.len() < n {
            return None;
        }
        Some(
            (0..n)
                .map(|_| self.pool_free.pop().expect("len checked"))
                .collect(),
        )
    }

    fn build_segments(&self, idxs: &[usize], len: usize) -> Vec<BlkifSegment> {
        let mut segs = Vec::with_capacity(idxs.len());
        let mut remaining = len.div_ceil(SECTOR_SIZE);
        for &i in idxs {
            let sectors = remaining.min(8);
            segs.push(BlkifSegment {
                gref: self.pool_grefs[i],
                first_sect: 0,
                last_sect: (sectors - 1) as u8,
            });
            remaining -= sectors;
        }
        segs
    }

    /// Submits a read of `len` bytes at `sector`. Returns the request id.
    ///
    /// `len` must be a multiple of 512 and at most
    /// [`Blkfront::max_request_bytes`]; callers split larger I/O.
    pub fn submit_read(
        &mut self,
        hv: &mut Hypervisor,
        sector: u64,
        len: usize,
    ) -> Result<(u64, FrontOp)> {
        self.submit_io(hv, BLKIF_OP_READ, sector, len, None)
    }

    /// Submits a write of `data` at `sector` (`data.len()` a multiple of
    /// 512, at most [`Blkfront::max_request_bytes`]).
    pub fn submit_write(
        &mut self,
        hv: &mut Hypervisor,
        sector: u64,
        data: &[u8],
    ) -> Result<(u64, FrontOp)> {
        self.submit_io(hv, BLKIF_OP_WRITE, sector, data.len(), Some(data))
    }

    /// Submits a cache flush barrier.
    pub fn submit_flush(&mut self, hv: &mut Hypervisor) -> Result<(u64, FrontOp)> {
        let q = self.pick_ring()?;
        let id = self.next_id;
        self.next_id += 1;
        let req = BlkifRequest::Direct {
            operation: BLKIF_OP_FLUSH_DISKCACHE,
            handle: 0,
            id,
            sector_number: 0,
            segments: Vec::new(),
        };
        let rq = &mut self.rings[q];
        let page = hv.mem.page_mut(rq.ring_page)?;
        rq.ring.push_request(page, &req)?;
        let notify = rq.ring.push_requests(page);
        self.pending.insert(
            id,
            Pending {
                op: BLKIF_OP_FLUSH_DISKCACHE,
                ring: q,
                pages: Vec::new(),
                indirect_idx: None,
            },
        );
        Ok((
            id,
            FrontOp {
                notify,
                cost: Nanos::from_nanos(300),
            },
        ))
    }

    fn submit_io(
        &mut self,
        hv: &mut Hypervisor,
        op: u8,
        sector: u64,
        len: usize,
        data: Option<&[u8]>,
    ) -> Result<(u64, FrontOp)> {
        if len == 0 || !len.is_multiple_of(SECTOR_SIZE) || len > self.max_request_bytes() {
            return Err(XenError::Inval);
        }
        let q = self.pick_ring()?;
        let n_pages = len.div_ceil(kite_xen::PAGE_SIZE);
        let idxs = self.alloc_pages(n_pages).ok_or(XenError::RingFull)?;
        let mut cost = Nanos::from_nanos(400);
        // For writes, fill the buffer pages with real data.
        if let Some(data) = data {
            for (k, &i) in idxs.iter().enumerate() {
                let off = k * kite_xen::PAGE_SIZE;
                let n = (data.len() - off).min(kite_xen::PAGE_SIZE);
                hv.mem.page_mut(self.pool_pages[i])?[..n].copy_from_slice(&data[off..off + n]);
            }
            cost += Nanos::from_nanos(len as u64 / 16); // guest memcpy
        }
        let segs = self.build_segments(&idxs, len);
        let id = self.next_id;
        self.next_id += 1;
        let mut indirect_idx = None;
        let req = if segs.len() <= BLKIF_MAX_SEGMENTS_PER_REQUEST {
            BlkifRequest::Direct {
                operation: op,
                handle: 0,
                id,
                sector_number: sector,
                segments: segs,
            }
        } else {
            let rollback = |me: &mut Self, idxs: Vec<usize>| {
                for i in idxs {
                    me.pool_free.push(i);
                }
            };
            if self.max_indirect == 0 || segs.len() > self.max_indirect {
                rollback(self, idxs);
                return Err(XenError::Inval);
            }
            let Some(ind) = self.indirect_free.pop() else {
                rollback(self, idxs);
                return Err(XenError::RingFull);
            };
            indirect_idx = Some(ind);
            let page = hv.mem.page_mut(self.indirect_pages[ind])?;
            pack_indirect_segments(page, &segs);
            BlkifRequest::Indirect {
                indirect_op: op,
                handle: 0,
                id,
                sector_number: sector,
                nr_segments: segs.len() as u16,
                indirect_grefs: vec![self.indirect_grefs[ind]],
            }
        };
        let rq = &mut self.rings[q];
        let page = hv.mem.page_mut(rq.ring_page)?;
        rq.ring.push_request(page, &req)?;
        let notify = rq.ring.push_requests(page);
        self.pending.insert(
            id,
            Pending {
                op,
                ring: q,
                pages: idxs.iter().map(|&i| (self.pool_pages[i], 0)).collect(),
                indirect_idx,
            },
        );
        // Remember lengths for read extraction.
        if let Some(p) = self.pending.get_mut(&id) {
            let mut remaining = len;
            for entry in &mut p.pages {
                entry.1 = remaining.min(kite_xen::PAGE_SIZE);
                remaining -= entry.1;
            }
        }
        Ok((id, FrontOp { notify, cost }))
    }

    /// The guest's interrupt handler: reaps completions from every ring.
    pub fn on_irq(&mut self, hv: &mut Hypervisor) -> Result<FrontOp> {
        let mut cost = Nanos::ZERO;
        for q in 0..self.rings.len() {
            loop {
                let rsp = {
                    let rq = &mut self.rings[q];
                    let page = hv.mem.page(rq.ring_page)?;
                    rq.ring.consume_response(page)?
                };
                let Some(rsp) = rsp else { break };
                let Some(p) = self.pending.remove(&rsp.id) else {
                    continue;
                };
                let ok = rsp.status == BLKIF_RSP_OKAY;
                let data = if ok && p.op == BLKIF_OP_READ {
                    let mut buf = Vec::new();
                    for (page_id, n) in &p.pages {
                        buf.extend_from_slice(&hv.mem.page(*page_id)?[..*n]);
                    }
                    cost += Nanos::from_nanos(buf.len() as u64 / 16);
                    Some(buf)
                } else {
                    None
                };
                if let Some(ind) = p.indirect_idx {
                    self.indirect_free.push(ind);
                }
                // Return buffer pages to the pool.
                for (page_id, _) in &p.pages {
                    let i = self
                        .pool_pages
                        .iter()
                        .position(|&pp| pp == *page_id)
                        .expect("pool page");
                    self.pool_free.push(i);
                }
                self.completions.push(BlkCompletion {
                    id: rsp.id,
                    op: p.op,
                    ok,
                    data,
                });
                cost += Nanos::from_nanos(200);
            }
            let rq = &mut self.rings[q];
            let page = hv.mem.page_mut(rq.ring_page)?;
            rq.ring.final_check_for_responses(page);
        }
        Ok(FrontOp {
            notify: false,
            cost,
        })
    }

    /// Takes all completions reaped so far.
    pub fn take_completions(&mut self) -> Vec<BlkCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Requests submitted and not yet completed.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}
