//! The ported NetBSD utilities (`ifconfig(8)` / `brconfig(8)`) — Table 1's
//! "Utilities" row.
//!
//! Kite ports these tools into the unikernel so its single-process network
//! application can configure interfaces and bridges without a shell. Here
//! they are command interpreters over [`kite_net::IfTable`] and
//! [`kite_net::Bridge`], accepting the same syntax the paper's artifact
//! scripts use:
//!
//! ```text
//! ifconfig ixg0 192.168.1.50 netmask 255.255.255.0 up
//! ifconfig vif2.0 up
//! ifconfig ixg0 down
//! brconfig bridge0 add ixg0 add vif2.0 up
//! brconfig bridge0 delete vif2.0
//! ```

use std::collections::HashMap;
use std::net::Ipv4Addr;

use kite_net::{Bridge, BridgePort, IfTable};

/// Errors from the utility interpreters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UtilError {
    /// Unknown or malformed command.
    Usage(String),
    /// Named interface does not exist.
    NoSuchInterface(String),
    /// Named bridge does not exist.
    NoSuchBridge(String),
    /// Interface already attached to the bridge.
    AlreadyMember(String),
}

impl core::fmt::Display for UtilError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UtilError::Usage(s) => write!(f, "usage: {s}"),
            UtilError::NoSuchInterface(s) => write!(f, "{s}: no such interface"),
            UtilError::NoSuchBridge(s) => write!(f, "{s}: no such bridge"),
            UtilError::AlreadyMember(s) => write!(f, "{s}: already a bridge member"),
        }
    }
}

impl std::error::Error for UtilError {}

/// Executes one `ifconfig` command line against an interface table.
///
/// Supported forms:
/// * `ifconfig <if>` — returns the formatted state;
/// * `ifconfig <if> <addr> netmask <mask> [up|down]`;
/// * `ifconfig <if> up` / `ifconfig <if> down`.
pub fn ifconfig(ifs: &mut IfTable, line: &str) -> Result<String, UtilError> {
    let argv: Vec<&str> = line.split_whitespace().collect();
    let usage = || UtilError::Usage("ifconfig <if> [<addr> netmask <mask>] [up|down]".into());
    if argv.first() != Some(&"ifconfig") || argv.len() < 2 {
        return Err(usage());
    }
    let name = argv[1];
    if ifs.get(name).is_none() {
        return Err(UtilError::NoSuchInterface(name.to_string()));
    }
    let mut i = 2;
    // Optional address assignment.
    if i < argv.len() && argv[i].parse::<Ipv4Addr>().is_ok() {
        let addr: Ipv4Addr = argv[i].parse().expect("checked");
        i += 1;
        if argv.get(i) != Some(&"netmask") {
            return Err(usage());
        }
        i += 1;
        let mask: Ipv4Addr = argv.get(i).and_then(|m| m.parse().ok()).ok_or_else(usage)?;
        i += 1;
        ifs.set_addr(name, addr, mask);
    }
    // Optional up/down.
    match argv.get(i) {
        Some(&"up") => {
            ifs.set_up(name, true);
            i += 1;
        }
        Some(&"down") => {
            ifs.set_up(name, false);
            i += 1;
        }
        _ => {}
    }
    if i != argv.len() {
        return Err(usage());
    }
    let ifc = ifs.get(name).expect("existence checked");
    let mut out = format!(
        "{}: flags={}<{}> mtu {}\n\tether {}",
        ifc.name,
        if ifc.up { "8843" } else { "8802" },
        if ifc.up {
            "UP,BROADCAST,RUNNING"
        } else {
            "BROADCAST"
        },
        ifc.mtu,
        ifc.mac
    );
    if let (Some(a), Some(m)) = (ifc.addr, ifc.netmask) {
        out.push_str(&format!("\n\tinet {a} netmask {m}"));
    }
    Ok(out)
}

/// State the `brconfig` interpreter operates on: named bridges plus the
/// port handles it created (so `delete` can find them).
#[derive(Default)]
pub struct BridgeTable {
    bridges: HashMap<String, Bridge>,
    ports: HashMap<(String, String), BridgePort>,
}

impl BridgeTable {
    /// Creates an empty table.
    pub fn new() -> BridgeTable {
        BridgeTable::default()
    }

    /// Creates a bridge (the kernel attach step; `brconfig` then manages it).
    pub fn create(&mut self, name: &str) {
        self.bridges
            .insert(name.to_string(), Bridge::new(name.to_string()));
    }

    /// Access to a bridge (for forwarding).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Bridge> {
        self.bridges.get_mut(name)
    }

    /// The port handle of a member interface.
    pub fn port_of(&self, bridge: &str, ifname: &str) -> Option<BridgePort> {
        self.ports
            .get(&(bridge.to_string(), ifname.to_string()))
            .copied()
    }
}

/// Executes one `brconfig` command line.
///
/// Supported forms (clauses may repeat, as in NetBSD):
/// * `brconfig <bridge>` — show members;
/// * `brconfig <bridge> add <if> [add <if>…] [up]`;
/// * `brconfig <bridge> delete <if>`.
pub fn brconfig(
    bridges: &mut BridgeTable,
    ifs: &mut IfTable,
    line: &str,
) -> Result<String, UtilError> {
    let argv: Vec<&str> = line.split_whitespace().collect();
    let usage = || UtilError::Usage("brconfig <bridge> [add <if>] [delete <if>] [up]".into());
    if argv.first() != Some(&"brconfig") || argv.len() < 2 {
        return Err(usage());
    }
    let bname = argv[1].to_string();
    if !bridges.bridges.contains_key(&bname) {
        return Err(UtilError::NoSuchBridge(bname));
    }
    let mut i = 2;
    while i < argv.len() {
        match argv[i] {
            "add" => {
                let ifname = argv.get(i + 1).ok_or_else(usage)?.to_string();
                if ifs.get(&ifname).is_none() {
                    return Err(UtilError::NoSuchInterface(ifname));
                }
                let key = (bname.clone(), ifname.clone());
                if bridges.ports.contains_key(&key) {
                    return Err(UtilError::AlreadyMember(ifname));
                }
                let port = bridges
                    .bridges
                    .get_mut(&bname)
                    .expect("checked")
                    .add_port(&ifname);
                bridges.ports.insert(key, port);
                i += 2;
            }
            "delete" => {
                let ifname = argv.get(i + 1).ok_or_else(usage)?.to_string();
                let key = (bname.clone(), ifname.clone());
                let port = bridges
                    .ports
                    .remove(&key)
                    .ok_or(UtilError::NoSuchInterface(ifname))?;
                bridges
                    .bridges
                    .get_mut(&bname)
                    .expect("checked")
                    .remove_port(port);
                i += 2;
            }
            "up" => {
                ifs.set_up(&bname, true);
                i += 1;
            }
            other => {
                return Err(UtilError::Usage(format!(
                    "brconfig: unknown clause {other}"
                )))
            }
        }
    }
    let members = bridges.bridges[&bname].members().join(" ");
    Ok(format!("{bname}: members: {members}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_net::{IfKind, MacAddr};

    fn table() -> IfTable {
        let mut t = IfTable::new();
        t.attach("ixg0", IfKind::Physical, MacAddr::local(1));
        t.attach("vif2.0", IfKind::Vif, MacAddr::local(2));
        t.attach("bridge0", IfKind::Bridge, MacAddr::ZERO);
        t
    }

    #[test]
    fn ifconfig_assigns_address_and_brings_up() {
        let mut ifs = table();
        let out = ifconfig(
            &mut ifs,
            "ifconfig ixg0 192.168.1.50 netmask 255.255.255.0 up",
        )
        .unwrap();
        assert!(
            out.contains("inet 192.168.1.50 netmask 255.255.255.0"),
            "{out}"
        );
        assert!(out.contains("UP"), "{out}");
        let i = ifs.get("ixg0").unwrap();
        assert!(i.up);
        assert_eq!(i.addr, Some("192.168.1.50".parse().unwrap()));
    }

    #[test]
    fn ifconfig_up_down_only() {
        let mut ifs = table();
        ifconfig(&mut ifs, "ifconfig vif2.0 up").unwrap();
        assert!(ifs.get("vif2.0").unwrap().up);
        ifconfig(&mut ifs, "ifconfig vif2.0 down").unwrap();
        assert!(!ifs.get("vif2.0").unwrap().up);
    }

    #[test]
    fn ifconfig_query_shows_state() {
        let mut ifs = table();
        let out = ifconfig(&mut ifs, "ifconfig ixg0").unwrap();
        assert!(out.starts_with("ixg0: flags="));
        assert!(out.contains("ether 02:00:00:00:00:01"));
    }

    #[test]
    fn ifconfig_errors() {
        let mut ifs = table();
        assert_eq!(
            ifconfig(&mut ifs, "ifconfig nope0 up"),
            Err(UtilError::NoSuchInterface("nope0".into()))
        );
        assert!(matches!(
            ifconfig(&mut ifs, "ifconfig ixg0 192.168.1.50 up"),
            Err(UtilError::Usage(_))
        ));
        assert!(matches!(
            ifconfig(&mut ifs, "ifconfig ixg0 10.0.0.1 netmask notamask"),
            Err(UtilError::Usage(_))
        ));
        assert!(matches!(
            ifconfig(&mut ifs, "ipconfig x"),
            Err(UtilError::Usage(_))
        ));
    }

    #[test]
    fn brconfig_add_up_and_delete() {
        let mut ifs = table();
        let mut br = BridgeTable::new();
        br.create("bridge0");
        let out = brconfig(&mut br, &mut ifs, "brconfig bridge0 add ixg0 add vif2.0 up").unwrap();
        assert_eq!(out, "bridge0: members: ixg0 vif2.0");
        assert!(ifs.get("bridge0").unwrap().up);
        assert!(br.port_of("bridge0", "vif2.0").is_some());

        let out = brconfig(&mut br, &mut ifs, "brconfig bridge0 delete vif2.0").unwrap();
        assert_eq!(out, "bridge0: members: ixg0");
        assert!(br.port_of("bridge0", "vif2.0").is_none());
    }

    #[test]
    fn brconfig_errors() {
        let mut ifs = table();
        let mut br = BridgeTable::new();
        br.create("bridge0");
        assert_eq!(
            brconfig(&mut br, &mut ifs, "brconfig nope0 add ixg0"),
            Err(UtilError::NoSuchBridge("nope0".into()))
        );
        assert_eq!(
            brconfig(&mut br, &mut ifs, "brconfig bridge0 add nope0"),
            Err(UtilError::NoSuchInterface("nope0".into()))
        );
        brconfig(&mut br, &mut ifs, "brconfig bridge0 add ixg0").unwrap();
        assert_eq!(
            brconfig(&mut br, &mut ifs, "brconfig bridge0 add ixg0"),
            Err(UtilError::AlreadyMember("ixg0".into()))
        );
        assert!(matches!(
            brconfig(&mut br, &mut ifs, "brconfig bridge0 frobnicate"),
            Err(UtilError::Usage(_))
        ));
    }

    #[test]
    fn bridge_forwarding_works_through_brconfig_ports() {
        let mut ifs = table();
        let mut br = BridgeTable::new();
        br.create("bridge0");
        brconfig(&mut br, &mut ifs, "brconfig bridge0 add ixg0 add vif2.0 up").unwrap();
        let p_if = br.port_of("bridge0", "ixg0").unwrap();
        let p_vif = br.port_of("bridge0", "vif2.0").unwrap();
        let b = br.get_mut("bridge0").unwrap();
        b.input(
            p_vif,
            MacAddr::local(9),
            MacAddr::BROADCAST,
            kite_sim::Nanos::ZERO,
        );
        assert_eq!(
            b.input(
                p_if,
                MacAddr::local(8),
                MacAddr::local(9),
                kite_sim::Nanos(1)
            ),
            kite_net::Forward::Unicast(p_vif)
        );
    }
}
