//! The Kite netback driver (§3.2, §4.2 of the paper).
//!
//! One instance serves one netfront. The structure follows the paper:
//!
//! * **split layers** — the bottom layer speaks Xen (rings, grants, event
//!   channel), the upper layer speaks the network stack (VIF frames);
//! * **hypervisor copy** — packet payloads move between domains with
//!   `GNTTABOP_copy`, the fast path modern netfronts use;
//! * **threads, not work queues** — the event handler only *wakes* the
//!   [`pusher`](NetbackInstance::pusher_run) thread (Tx drain: guest →
//!   VIF) and the VIF callback only wakes the
//!   [`soft_start`](NetbackInstance::soft_start_run) thread (Rx fill:
//!   VIF → guest). Both process bounded batches and report whether more
//!   work remains, so they never monopolize the non-preemptive vCPU;
//! * **notification suppression** — responses are pushed with the
//!   `RING_PUSH_*_AND_CHECK_NOTIFY` discipline, so a busy ring costs a
//!   fraction of a hypercall per packet;
//! * **multi-queue** — when the frontend negotiated
//!   `multi-queue-num-queues = n`, the instance runs `n` independent
//!   queues, each with its own ring pair, event channel, bounce pool and
//!   pusher/soft_start pair (one per-queue thread set, Linux
//!   `xen-netback` style). Incoming bridge frames steer to a queue by
//!   flow hash ([`kite_net::flow`]), preserving per-flow ordering.

use std::collections::VecDeque;

use kite_rumprun::OsProfile;
use kite_sim::Nanos;
use kite_trace::EventKind;
use kite_xen::netif::{
    NetifRxRequest, NetifRxResponse, NetifTxRequest, NetifTxResponse, NETIF_RSP_ERROR,
    NETIF_RSP_OKAY,
};
use kite_xen::ring::BackRing;
use kite_xen::xenbus::{MQ_MAX_QUEUES_KEY, MQ_NUM_QUEUES_KEY};
use kite_xen::{
    CopyMode, CopySide, DevicePaths, DomainId, GrantCopyOp, GrantRef, Hypervisor, MapHandle,
    PageId, Port, ReqId, ReqStage, Result, SlotClass, XenError, XenbusState, PAGE_SIZE,
};

use crate::stats::CopyStats;

/// Queues a backend accepts when the toolstack wrote no
/// `multi-queue-max-queues` advertisement for it.
pub const DEFAULT_MAX_QUEUES: u32 = 8;

/// Result of one pusher (Tx-drain) batch.
#[derive(Debug, Default)]
pub struct TxBatch {
    /// Frames copied out of the guest, ready for the VIF/bridge.
    pub frames: Vec<Vec<u8>>,
    /// vCPU cost of the batch (copies, ring work, per-packet OS cost).
    pub cost: Nanos,
    /// The frontend must be notified (responses pushed past its event).
    pub notify: bool,
    /// More requests remain (thread should re-queue instead of sleeping).
    pub more: bool,
}

/// Result of one soft_start (Rx-fill) batch.
#[derive(Debug, Default)]
pub struct RxBatch {
    /// Frames delivered into guest buffers.
    pub delivered: usize,
    /// vCPU cost of the batch.
    pub cost: Nanos,
    /// The frontend must be notified.
    pub notify: bool,
    /// Frames still queued (no Rx requests available or budget hit).
    pub more: bool,
}

/// Statistics of one netback instance (summed across its queues).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetbackStats {
    /// Packets guest → world.
    pub tx_packets: u64,
    /// Bytes guest → world.
    pub tx_bytes: u64,
    /// Packets world → guest.
    pub rx_packets: u64,
    /// Bytes world → guest.
    pub rx_bytes: u64,
    /// Frames dropped because the guest posted no Rx buffers in time, or
    /// because the hypervisor copy into the guest buffer failed.
    pub rx_dropped: u64,
    /// Malformed Tx requests rejected.
    pub tx_errors: u64,
    /// Grant-copy hypercall accounting for the Tx/Rx drains.
    pub copy: CopyStats,
}

impl NetbackStats {
    /// Mean payload bytes moved per grant-copy hypercall.
    pub fn bytes_per_hypercall(&self) -> f64 {
        self.copy.bytes_per_hypercall()
    }

    /// Folds another instance's counters into this one — used by the
    /// system layer to keep lifetime stats across backend restarts.
    pub fn merge(&mut self, other: &NetbackStats) {
        self.tx_packets += other.tx_packets;
        self.tx_bytes += other.tx_bytes;
        self.rx_packets += other.rx_packets;
        self.rx_bytes += other.rx_bytes;
        self.rx_dropped += other.rx_dropped;
        self.tx_errors += other.tx_errors;
        self.copy.merge(&other.copy);
    }

    /// Appends the Tx/Rx counters and copy accounting to a snapshot.
    pub fn append_metrics(&self, snap: &mut kite_trace::MetricsSnapshot) {
        snap.push_int("tx_packets", "count", self.tx_packets);
        snap.push_int("tx_bytes", "bytes", self.tx_bytes);
        snap.push_int("rx_packets", "count", self.rx_packets);
        snap.push_int("rx_bytes", "bytes", self.rx_bytes);
        snap.push_int("rx_dropped", "count", self.rx_dropped);
        snap.push_int("tx_errors", "count", self.tx_errors);
        self.copy.append_metrics(snap, "copy_");
    }
}

/// One queue of a netback instance: a Tx/Rx ring pair mapped from the
/// frontend, its event channel, the bounce-page pool its drains copy
/// through, and the world → guest frame queue awaiting Rx slots.
struct NbQueue {
    evtchn: Port,
    tx_ring: BackRing<NetifTxRequest, NetifTxResponse>,
    rx_ring: BackRing<NetifRxRequest, NetifRxResponse>,
    tx_page: PageId,
    rx_page: PageId,
    _tx_map: MapHandle,
    _rx_map: MapHandle,
    /// Per-queue frame buffers: one page per in-flight descriptor of a
    /// drain, so a whole ring batch moves in a single `GNTTABOP_copy`
    /// (the old design serialized every packet through one scratch page,
    /// forcing a hypercall per packet). Grown lazily to the drain budget.
    bounce: Vec<PageId>,
    to_guest: VecDeque<Vec<u8>>,
    /// Fault-injection: a wedged queue's pusher/soft_start threads never
    /// run (a stuck kthread), while the rest of the domain — heartbeats
    /// included — carries on. What per-queue stall detection must catch.
    wedged: bool,
}

/// One netback instance (one per connected netfront).
pub struct NetbackInstance {
    /// Driver domain running this backend.
    pub back: DomainId,
    /// Guest domain of the paired frontend.
    pub front: DomainId,
    /// Device index within the guest.
    pub index: u32,
    /// The VIF name exposed to the bridge, e.g. `vif2.0`.
    pub vif: String,
    queues: Vec<NbQueue>,
    copy_mode: CopyMode,
    /// Per-queue cap for world → guest frames awaiting Rx slots.
    pub rx_queue_cap: usize,
    profile: OsProfile,
    stats: NetbackStats,
    // Drain-path scratch, recycled across calls so a warmed-up drain
    // performs no bookkeeping allocations (frame payloads still
    // allocate — they leave the instance).
    scratch_tx: Vec<(u16, usize, Option<usize>)>,
    scratch_rx: Vec<(u16, usize)>,
    scratch_ops: Vec<GrantCopyOp>,
    scratch_req: Vec<ReqId>,
}

fn connect_queue(hv: &mut Hypervisor, paths: &DevicePaths, root: &str) -> Result<NbQueue> {
    let back = paths.back;
    let front = paths.front;
    let tx_ref = GrantRef(
        hv.store
            .read(back, None, &format!("{root}/tx-ring-ref"))?
            .parse()
            .map_err(|_| XenError::Inval)?,
    );
    let rx_ref = GrantRef(
        hv.store
            .read(back, None, &format!("{root}/rx-ring-ref"))?
            .parse()
            .map_err(|_| XenError::Inval)?,
    );
    let remote_port = Port(
        hv.store
            .read(back, None, &format!("{root}/event-channel"))?
            .parse()
            .map_err(|_| XenError::Inval)?,
    );
    let (tx_map, _) = hv.map_grant(back, front, tx_ref)?;
    let (rx_map, _) = hv.map_grant(back, front, rx_ref)?;
    let (evtchn, _) = hv.evtchn_bind(back, front, remote_port)?;
    Ok(NbQueue {
        evtchn,
        tx_ring: BackRing::attach(),
        rx_ring: BackRing::attach(),
        tx_page: tx_map.page,
        rx_page: rx_map.page,
        _tx_map: tx_map.handle,
        _rx_map: rx_map.handle,
        bounce: Vec::new(),
        to_guest: VecDeque::new(),
        wedged: false,
    })
}

impl NetbackInstance {
    /// Connects to a frontend that has published its details: reads the
    /// negotiated queue count, maps every queue's rings, binds its event
    /// channels, writes `feature-rx-copy` and flips the backend state to
    /// `Connected`.
    ///
    /// The queue count is whatever the frontend wrote to
    /// `multi-queue-num-queues` (1 when absent — the legacy layout),
    /// validated against this backend's own `multi-queue-max-queues`
    /// advertisement (the toolstack writes it; absent means
    /// [`DEFAULT_MAX_QUEUES`]). A frontend asking for more than the
    /// backend advertised is refused with [`XenError::Inval`].
    pub fn connect(hv: &mut Hypervisor, paths: &DevicePaths, profile: OsProfile) -> Result<Self> {
        let back = paths.back;
        let front = paths.front;
        let fe = paths.frontend();
        let be = paths.backend();
        let nqueues = hv
            .store
            .read(back, None, &format!("{fe}/{MQ_NUM_QUEUES_KEY}"))
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1)
            .max(1);
        let max = hv
            .store
            .read(back, None, &format!("{be}/{MQ_MAX_QUEUES_KEY}"))
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(DEFAULT_MAX_QUEUES);
        if nqueues > max {
            return Err(XenError::Inval);
        }
        let mut queues = Vec::with_capacity(nqueues as usize);
        for k in 0..nqueues {
            let root = paths.frontend_queue_root(nqueues, k);
            queues.push(connect_queue(hv, paths, &root)?);
        }
        hv.store
            .write(back, None, &format!("{be}/feature-rx-copy"), "1")?;
        hv.switch_state(back, &paths.backend_state(), XenbusState::Connected)?;
        Ok(NetbackInstance {
            back,
            front,
            index: paths.index,
            vif: format!("vif{}.{}", front.0, paths.index),
            queues,
            copy_mode: CopyMode::Batched,
            rx_queue_cap: 512,
            profile,
            stats: NetbackStats::default(),
            scratch_tx: Vec::new(),
            scratch_rx: Vec::new(),
            scratch_ops: Vec::new(),
            scratch_req: Vec::new(),
        })
    }

    /// Instance statistics.
    pub fn stats(&self) -> NetbackStats {
        self.stats
    }

    /// Number of negotiated queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Queue `q`'s backend-local event-channel port.
    pub fn port_of(&self, q: usize) -> Port {
        self.queues[q].evtchn
    }

    /// True if `port` belongs to any of this instance's queues.
    pub fn owns_port(&self, port: Port) -> bool {
        self.queues.iter().any(|qu| qu.evtchn == port)
    }

    /// How this instance issues its grant copies (batched by default).
    pub fn copy_mode(&self) -> CopyMode {
        self.copy_mode
    }

    /// Switches between the batched fast path and the legacy one-hypercall
    /// -per-packet shape (ablation benches, equivalence tests).
    pub fn set_copy_mode(&mut self, mode: CopyMode) {
        self.copy_mode = mode;
    }

    /// Wedges (or unwedges) one queue's threads — the fault-injection
    /// hook behind the "one queue stuck, domain still beating" scenario.
    pub fn set_queue_wedged(&mut self, q: usize, wedged: bool) {
        self.queues[q].wedged = wedged;
    }

    /// Whether queue `q` is wedged.
    pub fn queue_wedged(&self, q: usize) -> bool {
        self.queues[q].wedged
    }

    /// The cost of the event-channel interrupt handler itself: ack the
    /// port and wake the pusher. Nothing else happens in IRQ context —
    /// the paper's central latency argument.
    pub fn irq_handler_cost(&self) -> Nanos {
        self.profile.irq_overhead
    }

    /// The trace label for ring-drain events: per-queue tracks only make
    /// sense in a multi-queue layout, so single-queue instances keep the
    /// legacy anonymous label (and byte-identical trace exports).
    fn qid(&self, q: usize) -> Option<u16> {
        if self.queues.len() > 1 {
            Some(q as u16)
        } else {
            None
        }
    }

    /// The **pusher** thread body for queue `q`: drains up to `budget`
    /// Tx requests and hypervisor-copies every payload out of the guest
    /// with **one** batched `GNTTABOP_copy` for the whole drain,
    /// directly into the queue's frame buffers.
    ///
    /// The drain is three phases: walk the ring building the op list
    /// (validating each request), issue the batch, then push responses in
    /// ring order from the per-op statuses.
    pub fn pusher_run(&mut self, hv: &mut Hypervisor, q: usize, budget: usize) -> Result<TxBatch> {
        let _prof = kite_prof::span(kite_prof::Phase::NetbackTxDrain);
        let mut batch = TxBatch::default();
        if self.queues[q].wedged {
            return Ok(batch);
        }
        // A consumed request: its response id, and the index of its op in
        // the copy batch (None when validation already rejected it).
        let mut pending = std::mem::take(&mut self.scratch_tx);
        let mut ops = std::mem::take(&mut self.scratch_ops);
        for _ in 0..budget {
            let req = {
                let qu = &mut self.queues[q];
                let page = hv.mem.page(qu.tx_page)?;
                match qu.tx_ring.consume_request(page)? {
                    Some(r) => r,
                    None => break,
                }
            };
            let size = req.size as usize;
            let offset = req.offset as usize;
            // Validate offset before any subtraction: a malicious frontend
            // may send offset > PAGE_SIZE, which would underflow
            // `PAGE_SIZE - offset`.
            let valid = size != 0 && offset < PAGE_SIZE && size <= PAGE_SIZE - offset;
            if valid {
                while self.queues[q].bounce.len() < ops.len() + 1 {
                    let page = hv.alloc_page(self.back)?;
                    self.queues[q].bounce.push(page);
                }
                let dst = self.queues[q].bounce[ops.len()];
                ops.push(GrantCopyOp {
                    src: CopySide::Grant {
                        granter: self.front,
                        gref: req.gref,
                        offset,
                    },
                    dst: CopySide::Local {
                        page: dst,
                        offset: 0,
                    },
                    len: size,
                });
                pending.push((req.id, size, Some(ops.len() - 1)));
                // A traced request rides its ring slot into the drain.
                let key = (q as u64) << 32 | req.id as u64;
                if let Some(r) = hv.req.take(SlotClass::NetTx, key) {
                    hv.req
                        .stamp(r, ReqStage::BackendFetch, self.back.0, self.qid(q));
                    self.scratch_req.push(r);
                }
            } else {
                self.stats.tx_errors += 1;
                pending.push((req.id, size, None));
            }
            batch.cost += self.profile.per_packet;
        }

        // One hypercall for the whole drain (or per-op in legacy mode).
        let result = hv.grant_copy_ops(self.back, &ops, self.copy_mode);
        self.stats.copy.record(self.copy_mode, ops.len(), &result);
        batch.cost += result.cost;
        // Grant-copy stage: the batch completes one copy-cost after the
        // drain began (within-event time does not advance on its own).
        if !self.scratch_req.is_empty() {
            let done = hv.req.now() + result.cost;
            let qid = self.qid(q);
            for &r in &self.scratch_req {
                hv.req
                    .stamp_at(r, ReqStage::GrantCopy, self.back.0, qid, done);
            }
            self.scratch_req.clear();
        }

        for &(id, size, op_idx) in &pending {
            let status = match op_idx {
                Some(i) if result.statuses[i].is_okay() => {
                    let frame = hv.mem.page(self.queues[q].bounce[i])?[..size].to_vec();
                    self.stats.tx_packets += 1;
                    self.stats.tx_bytes += size as u64;
                    batch.frames.push(frame);
                    NETIF_RSP_OKAY
                }
                Some(_) => {
                    self.stats.tx_errors += 1;
                    NETIF_RSP_ERROR
                }
                None => NETIF_RSP_ERROR,
            };
            let qu = &mut self.queues[q];
            let page = hv.mem.page_mut(qu.tx_page)?;
            qu.tx_ring
                .push_response(page, &NetifTxResponse { id, status })?;
        }
        let qu = &mut self.queues[q];
        let page = hv.mem.page_mut(qu.tx_page)?;
        batch.notify = qu.tx_ring.push_responses(page);
        batch.more = qu.tx_ring.final_check_for_requests(page);
        if !pending.is_empty() {
            let (consumed, delivered, notify) = (
                pending.len() as u32,
                batch.frames.len() as u32,
                batch.notify,
            );
            let qid = self.qid(q);
            hv.trace.emit_with(self.back.0, || EventKind::RingDrain {
                queue: "netback_tx",
                qid,
                consumed,
                delivered,
                notify,
            });
        }
        pending.clear();
        ops.clear();
        self.scratch_tx = pending;
        self.scratch_ops = ops;
        Ok(batch)
    }

    /// The upper layer received a frame from the VIF (bridge) destined for
    /// this instance's guest: the Rx steering point. The frame's flow
    /// hash picks the queue (RSS), so one flow's frames stay ordered on
    /// one queue. Returns `false` (and counts a drop) when that queue is
    /// full — backpressure toward the bridge.
    pub fn enqueue_to_guest(&mut self, frame: Vec<u8>) -> bool {
        let q = kite_net::flow::steer(&frame, self.queues.len() as u32) as usize;
        let qu = &mut self.queues[q];
        if qu.to_guest.len() >= self.rx_queue_cap {
            self.stats.rx_dropped += 1;
            return false;
        }
        qu.to_guest.push_back(frame);
        true
    }

    /// Frames waiting for Rx ring slots, all queues.
    pub fn rx_backlog(&self) -> usize {
        self.queues.iter().map(|qu| qu.to_guest.len()).sum()
    }

    /// Per-queue Rx backlog depths (world → guest frames awaiting slots).
    pub fn rx_backlogs(&self) -> Vec<usize> {
        self.queues.iter().map(|qu| qu.to_guest.len()).collect()
    }

    /// Ring-progress sample for health monitoring, aggregated across
    /// queues: `(consumed, pending)`. See
    /// [`NetbackInstance::queue_progress`] for the per-queue watermarks a
    /// stall detector should prefer — an aggregate hides one wedged
    /// queue behind its siblings' progress.
    pub fn progress(&self, hv: &Hypervisor) -> (u64, u64) {
        self.queue_progress(hv)
            .into_iter()
            .fold((0, 0), |(c, p), (qc, qp)| (c + qc, p + qp))
    }

    /// Per-queue ring-progress watermarks: `(consumed, pending)` for
    /// each queue.
    ///
    /// `consumed` is the queue's lifetime consumer watermark across both
    /// rings — it only moves when the queue's threads actually run, so a
    /// health monitor comparing successive samples can tell a livelocked
    /// queue from an idle one. `pending` counts work the queue has not
    /// picked up yet: unconsumed Tx requests plus queued world → guest
    /// frames.
    pub fn queue_progress(&self, hv: &Hypervisor) -> Vec<(u64, u64)> {
        self.queues
            .iter()
            .map(|qu| {
                let consumed = qu.tx_ring.req_cons() as u64 + qu.rx_ring.req_cons() as u64;
                let tx_pending = match hv.mem.page(qu.tx_page) {
                    Ok(page) => qu.tx_ring.unconsumed_requests(page) as u64,
                    Err(_) => 0,
                };
                (consumed, tx_pending + qu.to_guest.len() as u64)
            })
            .collect()
    }

    /// The **soft_start** thread body for queue `q`: pairs the queue's
    /// waiting frames with posted Rx requests, staging each frame in its
    /// own buffer page and hypervisor-copying the whole fill into guest
    /// buffers with one batched `GNTTABOP_copy`.
    ///
    /// A frame whose copy fails (bad or revoked Rx grant) is dropped
    /// explicitly: counted in `rx_dropped` and answered with an error
    /// response so the frontend reclaims the buffer.
    pub fn soft_start_run(
        &mut self,
        hv: &mut Hypervisor,
        q: usize,
        budget: usize,
    ) -> Result<RxBatch> {
        let _prof = kite_prof::span(kite_prof::Phase::NetbackRxDrain);
        let mut batch = RxBatch::default();
        if self.queues[q].wedged {
            batch.more = !self.queues[q].to_guest.is_empty();
            return Ok(batch);
        }
        // (response id, frame length) per op, in ring order.
        let mut posted = std::mem::take(&mut self.scratch_rx);
        let mut ops = std::mem::take(&mut self.scratch_ops);
        for _ in 0..budget {
            if self.queues[q].to_guest.is_empty() {
                break;
            }
            let req = {
                let qu = &mut self.queues[q];
                let page = hv.mem.page(qu.rx_page)?;
                match qu.rx_ring.consume_request(page)? {
                    Some(r) => r,
                    None => break, // no posted buffers; frames stay queued
                }
            };
            let frame = self.queues[q]
                .to_guest
                .pop_front()
                .expect("checked non-empty");
            let len = frame.len().min(PAGE_SIZE);
            while self.queues[q].bounce.len() < ops.len() + 1 {
                let page = hv.alloc_page(self.back)?;
                self.queues[q].bounce.push(page);
            }
            let src = self.queues[q].bounce[ops.len()];
            hv.mem.page_mut(src)?[..len].copy_from_slice(&frame[..len]);
            ops.push(GrantCopyOp {
                src: CopySide::Local {
                    page: src,
                    offset: 0,
                },
                dst: CopySide::Grant {
                    granter: self.front,
                    gref: req.gref,
                    offset: 0,
                },
                len,
            });
            posted.push((req.id, len));
            batch.cost += self.profile.per_packet;
        }

        let result = hv.grant_copy_ops(self.back, &ops, self.copy_mode);
        self.stats.copy.record(self.copy_mode, ops.len(), &result);
        batch.cost += result.cost;

        for (i, &(id, len)) in posted.iter().enumerate() {
            let status = if result.statuses[i].is_okay() {
                self.stats.rx_packets += 1;
                self.stats.rx_bytes += len as u64;
                batch.delivered += 1;
                len as i16
            } else {
                self.stats.rx_dropped += 1;
                NETIF_RSP_ERROR
            };
            let qu = &mut self.queues[q];
            let page = hv.mem.page_mut(qu.rx_page)?;
            qu.rx_ring.push_response(
                page,
                &NetifRxResponse {
                    id,
                    offset: 0,
                    flags: 0,
                    status,
                },
            )?;
        }
        let qu = &mut self.queues[q];
        let page = hv.mem.page_mut(qu.rx_page)?;
        batch.notify = qu.rx_ring.push_responses(page);
        batch.more = !qu.to_guest.is_empty();
        if !posted.is_empty() {
            let (consumed, delivered, notify) =
                (posted.len() as u32, batch.delivered as u32, batch.notify);
            let qid = self.qid(q);
            hv.trace.emit_with(self.back.0, || EventKind::RingDrain {
                queue: "netback_rx",
                qid,
                consumed,
                delivered,
                notify,
            });
        }
        posted.clear();
        ops.clear();
        self.scratch_rx = posted;
        self.scratch_ops = ops;
        Ok(batch)
    }

    /// Quiesces the instance ahead of teardown: stops accepting new Rx
    /// frames and announces `Closing` so the frontend can unwind.
    /// Resources stay mapped until [`NetbackInstance::close`].
    pub fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()> {
        self.rx_queue_cap = 0;
        let paths = DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vif, self.index);
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closing)
    }

    /// Tears the instance down: closes every queue's channel, unmaps its
    /// rings, frees the frame-buffer pools, marks the backend `Closed`.
    pub fn close(self, hv: &mut Hypervisor) -> Result<()> {
        let paths = DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vif, self.index);
        for qu in self.queues {
            let _ = hv.evtchn.close(self.back, qu.evtchn);
            hv.unmap_grant(self.back, qu._tx_map)?;
            hv.unmap_grant(self.back, qu._rx_map)?;
            for page in qu.bounce {
                hv.free_page(self.back, page)?;
            }
        }
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closing)?;
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closed)?;
        Ok(())
    }
}

impl crate::lifecycle::BackendDevice for NetbackInstance {
    type Config = OsProfile;
    type RunCtx = ();
    type RunOutput = (TxBatch, RxBatch);
    const KIND: kite_xen::DeviceKind = kite_xen::DeviceKind::Vif;

    fn connect(hv: &mut Hypervisor, paths: &DevicePaths, cfg: &OsProfile) -> Result<Self> {
        NetbackInstance::connect(hv, paths, cfg.clone())
    }

    fn device_paths(&self) -> DevicePaths {
        DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vif, self.index)
    }

    fn run(
        &mut self,
        hv: &mut Hypervisor,
        _ctx: &mut (),
        _now: Nanos,
        budget: usize,
    ) -> Result<(TxBatch, RxBatch)> {
        let mut tx = TxBatch::default();
        let mut rx = RxBatch::default();
        for q in 0..self.queues.len() {
            let t = self.pusher_run(hv, q, budget)?;
            tx.frames.extend(t.frames);
            tx.cost += t.cost;
            tx.notify |= t.notify;
            tx.more |= t.more;
            let r = self.soft_start_run(hv, q, budget)?;
            rx.delivered += r.delivered;
            rx.cost += r.cost;
            rx.notify |= r.notify;
            rx.more |= r.more;
        }
        Ok((tx, rx))
    }

    fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()> {
        NetbackInstance::suspend(self, hv)
    }

    fn close(self, hv: &mut Hypervisor) -> Result<()> {
        NetbackInstance::close(self, hv)
    }
}
