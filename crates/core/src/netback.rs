//! The Kite netback driver (§3.2, §4.2 of the paper).
//!
//! One instance serves one netfront. The structure follows the paper:
//!
//! * **split layers** — the bottom layer speaks Xen (rings, grants, event
//!   channel), the upper layer speaks the network stack (VIF frames);
//! * **hypervisor copy** — packet payloads move between domains with
//!   `GNTTABOP_copy`, the fast path modern netfronts use;
//! * **threads, not work queues** — the event handler only *wakes* the
//!   [`pusher`](NetbackInstance::pusher_run) thread (Tx drain: guest →
//!   VIF) and the VIF callback only wakes the
//!   [`soft_start`](NetbackInstance::soft_start_run) thread (Rx fill:
//!   VIF → guest). Both process bounded batches and report whether more
//!   work remains, so they never monopolize the non-preemptive vCPU;
//! * **notification suppression** — responses are pushed with the
//!   `RING_PUSH_*_AND_CHECK_NOTIFY` discipline, so a busy ring costs a
//!   fraction of a hypercall per packet;
//! * **multi-queue** — when the frontend negotiated
//!   `multi-queue-num-queues = n`, the instance runs `n` independent
//!   queues, each with its own ring pair, event channel, bounce pool and
//!   pusher/soft_start pair (one per-queue thread set, Linux
//!   `xen-netback` style). Incoming bridge frames steer to a queue by
//!   flow hash ([`kite_net::flow`]), preserving per-flow ordering.

use std::collections::VecDeque;

use kite_rumprun::OsProfile;
use kite_sim::Nanos;
use kite_trace::EventKind;
use kite_xen::netif::{
    NetifExtraInfo, NetifRxRequest, NetifRxResponse, NetifTxRequest, NetifTxResponse,
    NETIF_MAX_GSO_FRAME, NETIF_MAX_TX_CHAIN, NETIF_RSP_ERROR, NETIF_RSP_NULL, NETIF_RSP_OKAY,
    NETRXF_DATA_VALIDATED, NETRXF_MORE_DATA, NETTXF_EXTRA_INFO, NETTXF_MORE_DATA,
    XEN_NETIF_EXTRA_TYPE_GSO,
};
use kite_xen::ring::BackRing;
use kite_xen::xenbus::{
    FEATURE_GSO_KEY, FEATURE_NO_CSUM_KEY, MQ_MAX_QUEUES_KEY, MQ_NUM_QUEUES_KEY,
};
use kite_xen::{
    CopyMode, CopySide, DevicePaths, DomainId, GrantCopyOp, GrantRef, Hypervisor, MapHandle,
    PageId, Port, ReqId, ReqStage, Result, SlotClass, XenError, XenbusState, PAGE_SIZE,
};

use crate::stats::CopyStats;

/// Queues a backend accepts when the toolstack wrote no
/// `multi-queue-max-queues` advertisement for it.
pub const DEFAULT_MAX_QUEUES: u32 = 8;

/// Result of one pusher (Tx-drain) batch.
#[derive(Debug, Default)]
pub struct TxBatch {
    /// Frames copied out of the guest, ready for the VIF/bridge.
    pub frames: Vec<Vec<u8>>,
    /// vCPU cost of the batch (copies, ring work, per-packet OS cost).
    pub cost: Nanos,
    /// The frontend must be notified (responses pushed past its event).
    pub notify: bool,
    /// More requests remain (thread should re-queue instead of sleeping).
    pub more: bool,
}

/// Result of one soft_start (Rx-fill) batch.
#[derive(Debug, Default)]
pub struct RxBatch {
    /// Frames delivered into guest buffers.
    pub delivered: usize,
    /// vCPU cost of the batch.
    pub cost: Nanos,
    /// The frontend must be notified.
    pub notify: bool,
    /// Frames still queued (no Rx requests available or budget hit).
    pub more: bool,
}

/// Statistics of one netback instance (summed across its queues).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetbackStats {
    /// Packets guest → world.
    pub tx_packets: u64,
    /// Bytes guest → world.
    pub tx_bytes: u64,
    /// Packets world → guest.
    pub rx_packets: u64,
    /// Bytes world → guest.
    pub rx_bytes: u64,
    /// Frames dropped because the guest posted no Rx buffers in time, or
    /// because the hypervisor copy into the guest buffer failed.
    pub rx_dropped: u64,
    /// Malformed Tx requests rejected.
    pub tx_errors: u64,
    /// GSO super-frames assembled from Tx descriptor chains.
    pub gso_tx_frames: u64,
    /// Wire segments those super-frames resolve to (what the NIC's TSO
    /// engine actually emits).
    pub gso_tx_segs: u64,
    /// World → guest super-frames delivered across multi-slot Rx chains
    /// (the LRO path).
    pub lro_rx_frames: u64,
    /// Chains rejected for a malformed GSO descriptor: zero MSS, zero
    /// or > 64 KiB total length, or an unknown extra-info type.
    pub gso_bad_size: u64,
    /// Chains rejected because the ring ended mid-chain: an extra-info
    /// or continuation slot was claimed but never published.
    pub gso_truncated: u64,
    /// Chains rejected because the claimed segment count, the fragment
    /// byte sum, or the slot count disagree with the descriptor.
    pub gso_seg_mismatch: u64,
    /// Chain flags seen on a ring whose pair never negotiated
    /// `feature-gso-tcpv4`.
    pub gso_unnegotiated: u64,
    /// Grant-copy hypercall accounting for the Tx/Rx drains.
    pub copy: CopyStats,
}

impl NetbackStats {
    /// Mean payload bytes moved per grant-copy hypercall.
    pub fn bytes_per_hypercall(&self) -> f64 {
        self.copy.bytes_per_hypercall()
    }

    /// Folds another instance's counters into this one — used by the
    /// system layer to keep lifetime stats across backend restarts.
    pub fn merge(&mut self, other: &NetbackStats) {
        self.tx_packets += other.tx_packets;
        self.tx_bytes += other.tx_bytes;
        self.rx_packets += other.rx_packets;
        self.rx_bytes += other.rx_bytes;
        self.rx_dropped += other.rx_dropped;
        self.tx_errors += other.tx_errors;
        self.gso_tx_frames += other.gso_tx_frames;
        self.gso_tx_segs += other.gso_tx_segs;
        self.lro_rx_frames += other.lro_rx_frames;
        self.gso_bad_size += other.gso_bad_size;
        self.gso_truncated += other.gso_truncated;
        self.gso_seg_mismatch += other.gso_seg_mismatch;
        self.gso_unnegotiated += other.gso_unnegotiated;
        self.copy.merge(&other.copy);
    }

    /// Malformed-chain rejections, all causes.
    pub fn gso_errors(&self) -> u64 {
        self.gso_bad_size + self.gso_truncated + self.gso_seg_mismatch + self.gso_unnegotiated
    }

    /// Appends the Tx/Rx counters and copy accounting to a snapshot.
    pub fn append_metrics(&self, snap: &mut kite_trace::MetricsSnapshot) {
        snap.push_int("tx_packets", "count", self.tx_packets);
        snap.push_int("tx_bytes", "bytes", self.tx_bytes);
        snap.push_int("rx_packets", "count", self.rx_packets);
        snap.push_int("rx_bytes", "bytes", self.rx_bytes);
        snap.push_int("rx_dropped", "count", self.rx_dropped);
        snap.push_int("tx_errors", "count", self.tx_errors);
        snap.push_int("gso_tx_frames", "count", self.gso_tx_frames);
        snap.push_int("gso_tx_segs", "count", self.gso_tx_segs);
        snap.push_int("lro_rx_frames", "count", self.lro_rx_frames);
        snap.push_int("gso_bad_size", "count", self.gso_bad_size);
        snap.push_int("gso_truncated", "count", self.gso_truncated);
        snap.push_int("gso_seg_mismatch", "count", self.gso_seg_mismatch);
        snap.push_int("gso_unnegotiated", "count", self.gso_unnegotiated);
        self.copy.append_metrics(snap, "copy_");
    }
}

/// One queue of a netback instance: a Tx/Rx ring pair mapped from the
/// frontend, its event channel, the bounce-page pool its drains copy
/// through, and the world → guest frame queue awaiting Rx slots.
struct NbQueue {
    evtchn: Port,
    tx_ring: BackRing<NetifTxRequest, NetifTxResponse>,
    rx_ring: BackRing<NetifRxRequest, NetifRxResponse>,
    tx_page: PageId,
    rx_page: PageId,
    _tx_map: MapHandle,
    _rx_map: MapHandle,
    /// Per-queue frame buffers: one page per in-flight descriptor of a
    /// drain, so a whole ring batch moves in a single `GNTTABOP_copy`
    /// (the old design serialized every packet through one scratch page,
    /// forcing a hypercall per packet). Grown lazily to the drain budget.
    bounce: Vec<PageId>,
    to_guest: VecDeque<Vec<u8>>,
    /// Fault-injection: a wedged queue's pusher/soft_start threads never
    /// run (a stuck kthread), while the rest of the domain — heartbeats
    /// included — carries on. What per-queue stall detection must catch.
    wedged: bool,
}

/// What became of one consumed Tx ring slot (drives its response).
#[derive(Clone, Copy, Debug)]
enum TxDisp {
    /// A single-slot frame: the op at this index carries its payload.
    Single(usize),
    /// A fragment of the descriptor chain at this chain index.
    Frag(usize),
    /// Rejected by validation; answered `NETIF_RSP_ERROR`.
    Reject,
    /// An extra-info carrier slot; answered `NETIF_RSP_NULL`.
    Null,
}

/// One GSO descriptor chain walked out of the Tx ring.
#[derive(Clone, Copy, Debug)]
struct TxChain {
    /// Ops `[op_start, op_end)` hold the chain's fragments in order.
    op_start: usize,
    op_end: usize,
    /// Super-frame length claimed by the descriptor.
    total: usize,
    /// Wire segments the NIC's TSO engine will cut it into.
    segs: u32,
    /// Whether validation accepted the chain.
    valid: bool,
    /// Filled after the copy batch: valid and every fragment copied.
    ok: bool,
}

/// One netback instance (one per connected netfront).
pub struct NetbackInstance {
    /// Driver domain running this backend.
    pub back: DomainId,
    /// Guest domain of the paired frontend.
    pub front: DomainId,
    /// Device index within the guest.
    pub index: u32,
    /// The VIF name exposed to the bridge, e.g. `vif2.0`.
    pub vif: String,
    queues: Vec<NbQueue>,
    copy_mode: CopyMode,
    /// Per-queue cap for world → guest frames awaiting Rx slots.
    pub rx_queue_cap: usize,
    profile: OsProfile,
    gso: bool,
    csum_offload: bool,
    stats: NetbackStats,
    // Drain-path scratch, recycled across calls so a warmed-up drain
    // performs no bookkeeping allocations (frame payloads still
    // allocate — they leave the instance).
    scratch_tx: Vec<(u16, TxDisp)>,
    scratch_chains: Vec<TxChain>,
    scratch_rx: Vec<(u16, usize, u16)>,
    scratch_rxchain: Vec<(usize, usize, usize)>,
    scratch_ops: Vec<GrantCopyOp>,
    scratch_req: Vec<ReqId>,
}

fn connect_queue(hv: &mut Hypervisor, paths: &DevicePaths, root: &str) -> Result<NbQueue> {
    let back = paths.back;
    let front = paths.front;
    let tx_ref = GrantRef(
        hv.store
            .read(back, None, &format!("{root}/tx-ring-ref"))?
            .parse()
            .map_err(|_| XenError::Inval)?,
    );
    let rx_ref = GrantRef(
        hv.store
            .read(back, None, &format!("{root}/rx-ring-ref"))?
            .parse()
            .map_err(|_| XenError::Inval)?,
    );
    let remote_port = Port(
        hv.store
            .read(back, None, &format!("{root}/event-channel"))?
            .parse()
            .map_err(|_| XenError::Inval)?,
    );
    let (tx_map, _) = hv.map_grant(back, front, tx_ref)?;
    let (rx_map, _) = hv.map_grant(back, front, rx_ref)?;
    let (evtchn, _) = hv.evtchn_bind(back, front, remote_port)?;
    Ok(NbQueue {
        evtchn,
        tx_ring: BackRing::attach(),
        rx_ring: BackRing::attach(),
        tx_page: tx_map.page,
        rx_page: rx_map.page,
        _tx_map: tx_map.handle,
        _rx_map: rx_map.handle,
        bounce: Vec::new(),
        to_guest: VecDeque::new(),
        wedged: false,
    })
}

impl NetbackInstance {
    /// Connects to a frontend that has published its details: reads the
    /// negotiated queue count, maps every queue's rings, binds its event
    /// channels, writes `feature-rx-copy` and flips the backend state to
    /// `Connected`.
    ///
    /// The queue count is whatever the frontend wrote to
    /// `multi-queue-num-queues` (1 when absent — the legacy layout),
    /// validated against this backend's own `multi-queue-max-queues`
    /// advertisement (the toolstack writes it; absent means
    /// [`DEFAULT_MAX_QUEUES`]). A frontend asking for more than the
    /// backend advertised is refused with [`XenError::Inval`].
    pub fn connect(hv: &mut Hypervisor, paths: &DevicePaths, profile: OsProfile) -> Result<Self> {
        let back = paths.back;
        let front = paths.front;
        let fe = paths.frontend();
        let be = paths.backend();
        let nqueues = hv
            .store
            .read(back, None, &format!("{fe}/{MQ_NUM_QUEUES_KEY}"))
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1)
            .max(1);
        let max = hv
            .store
            .read(back, None, &format!("{be}/{MQ_MAX_QUEUES_KEY}"))
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(DEFAULT_MAX_QUEUES);
        if nqueues > max {
            return Err(XenError::Inval);
        }
        // Offload negotiation: chains are legal only when the toolstack
        // advertised GSO under the backend path AND the frontend echoed
        // it. Checksum offload rides along unless the frontend vetoed
        // it with `feature-no-csum-offload` — either side staying
        // silent is a graceful fallback, never an error.
        let key_is_1 = |hv: &mut Hypervisor, path: &str| {
            hv.store
                .read(back, None, path)
                .map(|v| v == "1")
                .unwrap_or(false)
        };
        let gso = key_is_1(hv, &format!("{be}/{FEATURE_GSO_KEY}"))
            && key_is_1(hv, &format!("{fe}/{FEATURE_GSO_KEY}"));
        let csum_offload = gso && !key_is_1(hv, &format!("{fe}/{FEATURE_NO_CSUM_KEY}"));
        let mut queues = Vec::with_capacity(nqueues as usize);
        for k in 0..nqueues {
            let root = paths.frontend_queue_root(nqueues, k);
            queues.push(connect_queue(hv, paths, &root)?);
        }
        hv.store
            .write(back, None, &format!("{be}/feature-rx-copy"), "1")?;
        hv.switch_state(back, &paths.backend_state(), XenbusState::Connected)?;
        Ok(NetbackInstance {
            back,
            front,
            index: paths.index,
            vif: format!("vif{}.{}", front.0, paths.index),
            queues,
            copy_mode: CopyMode::Batched,
            rx_queue_cap: 512,
            profile,
            gso,
            csum_offload,
            stats: NetbackStats::default(),
            scratch_tx: Vec::new(),
            scratch_chains: Vec::new(),
            scratch_rx: Vec::new(),
            scratch_rxchain: Vec::new(),
            scratch_ops: Vec::new(),
            scratch_req: Vec::new(),
        })
    }

    /// Whether the pair negotiated GSO descriptor chains.
    pub fn gso(&self) -> bool {
        self.gso
    }

    /// Whether the pair negotiated checksum offload.
    pub fn csum_offload(&self) -> bool {
        self.csum_offload
    }

    /// Instance statistics.
    pub fn stats(&self) -> NetbackStats {
        self.stats
    }

    /// Number of negotiated queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Queue `q`'s backend-local event-channel port.
    pub fn port_of(&self, q: usize) -> Port {
        self.queues[q].evtchn
    }

    /// True if `port` belongs to any of this instance's queues.
    pub fn owns_port(&self, port: Port) -> bool {
        self.queues.iter().any(|qu| qu.evtchn == port)
    }

    /// How this instance issues its grant copies (batched by default).
    pub fn copy_mode(&self) -> CopyMode {
        self.copy_mode
    }

    /// Switches between the batched fast path and the legacy one-hypercall
    /// -per-packet shape (ablation benches, equivalence tests).
    pub fn set_copy_mode(&mut self, mode: CopyMode) {
        self.copy_mode = mode;
    }

    /// Wedges (or unwedges) one queue's threads — the fault-injection
    /// hook behind the "one queue stuck, domain still beating" scenario.
    pub fn set_queue_wedged(&mut self, q: usize, wedged: bool) {
        self.queues[q].wedged = wedged;
    }

    /// Whether queue `q` is wedged.
    pub fn queue_wedged(&self, q: usize) -> bool {
        self.queues[q].wedged
    }

    /// The cost of the event-channel interrupt handler itself: ack the
    /// port and wake the pusher. Nothing else happens in IRQ context —
    /// the paper's central latency argument.
    pub fn irq_handler_cost(&self) -> Nanos {
        self.profile.irq_overhead
    }

    /// The trace label for ring-drain events: per-queue tracks only make
    /// sense in a multi-queue layout, so single-queue instances keep the
    /// legacy anonymous label (and byte-identical trace exports).
    fn qid(&self, q: usize) -> Option<u16> {
        if self.queues.len() > 1 {
            Some(q as u16)
        } else {
            None
        }
    }

    /// Pops the next published Tx request of queue `q`, if any.
    fn consume_tx(&mut self, hv: &Hypervisor, q: usize) -> Result<Option<NetifTxRequest>> {
        let qu = &mut self.queues[q];
        let page = hv.mem.page(qu.tx_page)?;
        qu.tx_ring.consume_request(page)
    }

    /// Validates one data slot and, if sound, appends its grant-copy op
    /// (staged through the next bounce page). Returns whether the slot
    /// was accepted.
    fn push_tx_op(
        &mut self,
        hv: &mut Hypervisor,
        q: usize,
        req: &NetifTxRequest,
        ops: &mut Vec<GrantCopyOp>,
    ) -> Result<bool> {
        let size = req.size as usize;
        let offset = req.offset as usize;
        // Validate offset before any subtraction: a malicious frontend
        // may send offset > PAGE_SIZE, which would underflow
        // `PAGE_SIZE - offset`.
        if size == 0 || offset >= PAGE_SIZE || size > PAGE_SIZE - offset {
            return Ok(false);
        }
        while self.queues[q].bounce.len() < ops.len() + 1 {
            let page = hv.alloc_page(self.back)?;
            self.queues[q].bounce.push(page);
        }
        let dst = self.queues[q].bounce[ops.len()];
        ops.push(GrantCopyOp {
            src: CopySide::Grant {
                granter: self.front,
                gref: req.gref,
                offset,
            },
            dst: CopySide::Local {
                page: dst,
                offset: 0,
            },
            len: size,
        });
        Ok(true)
    }

    /// The **pusher** thread body for queue `q`: drains up to `budget`
    /// Tx ring slots and hypervisor-copies every payload out of the
    /// guest with **one** batched `GNTTABOP_copy` for the whole drain,
    /// directly into the queue's frame buffers.
    ///
    /// With GSO negotiated, a slot flagged `NETTXF_EXTRA_INFO` /
    /// `NETTXF_MORE_DATA` heads a descriptor chain: the extra-info slot
    /// carries the GSO descriptor and the fragments that follow are
    /// reassembled into one super-frame, charged **one** per-packet OS
    /// cost for the whole chain — the amortisation GSO exists for.
    /// Every consumed slot still gets exactly one response (extra-info
    /// slots get [`NETIF_RSP_NULL`]); malformed chains are answered
    /// with `NETIF_RSP_ERROR` on their data slots and land in a named
    /// error counter, never a panic and never a leaked grant.
    ///
    /// The drain is three phases: walk the ring building the op list
    /// (validating each request), issue the batch, then push responses in
    /// ring order from the per-op statuses.
    pub fn pusher_run(&mut self, hv: &mut Hypervisor, q: usize, budget: usize) -> Result<TxBatch> {
        let _prof = kite_prof::span(kite_prof::Phase::NetbackTxDrain);
        let mut batch = TxBatch::default();
        if self.queues[q].wedged {
            return Ok(batch);
        }
        // Consumed slots in ring order (each owes one response) and the
        // descriptor chains they form.
        let mut pending = std::mem::take(&mut self.scratch_tx);
        let mut chains = std::mem::take(&mut self.scratch_chains);
        let mut ops = std::mem::take(&mut self.scratch_ops);
        'drain: while pending.len() < budget {
            let head = match self.consume_tx(hv, q)? {
                Some(r) => r,
                None => break,
            };
            // A traced request rides its (head) ring slot into the drain.
            let key = (q as u64) << 32 | head.id as u64;
            if let Some(r) = hv.req.take(SlotClass::NetTx, key) {
                hv.req
                    .stamp(r, ReqStage::BackendFetch, self.back.0, self.qid(q));
                self.scratch_req.push(r);
            }
            let chained = head.flags & (NETTXF_EXTRA_INFO | NETTXF_MORE_DATA) != 0;
            if !chained {
                // Single-slot frame: the legacy path, byte-identical to
                // the pre-GSO drain.
                if self.push_tx_op(hv, q, &head, &mut ops)? {
                    pending.push((head.id, TxDisp::Single(ops.len() - 1)));
                } else {
                    self.stats.tx_errors += 1;
                    pending.push((head.id, TxDisp::Reject));
                }
                batch.cost += self.profile.per_packet;
                continue;
            }
            if !self.gso {
                // Chain flags on a pair that never negotiated GSO:
                // reject every slot of the chain (resyncing framing so
                // one bad guest cannot desynchronise the ring).
                self.stats.gso_unnegotiated += 1;
                let mut cur = head;
                loop {
                    pending.push((cur.id, TxDisp::Reject));
                    if cur.flags & NETTXF_EXTRA_INFO != 0 {
                        match self.consume_tx(hv, q)? {
                            Some(extra) => pending.push((extra.id, TxDisp::Reject)),
                            None => break,
                        }
                    }
                    if cur.flags & NETTXF_MORE_DATA == 0 {
                        break;
                    }
                    match self.consume_tx(hv, q)? {
                        Some(next) => cur = next,
                        None => break,
                    }
                }
                batch.cost += self.profile.per_packet;
                continue;
            }
            // GSO chain walk. Ring order: head data slot, extra-info
            // slot, then continuation fragments.
            let chain_idx = chains.len();
            let op_start = ops.len();
            let mut valid = true;
            pending.push((head.id, TxDisp::Frag(chain_idx)));
            let mut extra = None;
            if head.flags & NETTXF_EXTRA_INFO != 0 {
                match self.consume_tx(hv, q)? {
                    Some(slot) => {
                        pending.push((slot.id, TxDisp::Null));
                        extra = Some(NetifExtraInfo::from_tx_slot(&slot));
                    }
                    None => {
                        // Extra-info claimed but the ring ended: the
                        // guest published a torn chain.
                        self.stats.gso_truncated += 1;
                        let last = pending.len() - 1;
                        pending[last].1 = TxDisp::Reject;
                        batch.cost += self.profile.per_packet;
                        break 'drain;
                    }
                }
            }
            let mut total = 0usize;
            let mut nfrags = 0usize;
            let mut cur = head;
            loop {
                nfrags += 1;
                if nfrags <= NETIF_MAX_TX_CHAIN && valid {
                    if self.push_tx_op(hv, q, &cur, &mut ops)? {
                        total += cur.size as usize;
                    } else {
                        valid = false;
                    }
                } else {
                    valid = false;
                }
                if cur.flags & NETTXF_MORE_DATA == 0 {
                    break;
                }
                match self.consume_tx(hv, q)? {
                    Some(next) => {
                        pending.push((next.id, TxDisp::Frag(chain_idx)));
                        cur = next;
                    }
                    None => {
                        // Continuation claimed but the ring ended.
                        valid = false;
                        self.stats.gso_truncated += 1;
                        break;
                    }
                }
            }
            // Cross-check the descriptor against what the chain
            // actually carried (the SoK rule: every guest-parsed field
            // is validated with bounded failure accounting).
            let mut segs = 0u32;
            if valid {
                match extra {
                    None => {
                        // MORE_DATA without a GSO descriptor.
                        valid = false;
                        self.stats.gso_seg_mismatch += 1;
                    }
                    Some(e) => {
                        let tl = e.total_len as usize;
                        if e.kind != XEN_NETIF_EXTRA_TYPE_GSO
                            || e.gso_size == 0
                            || tl == 0
                            || tl > NETIF_MAX_GSO_FRAME
                        {
                            valid = false;
                            self.stats.gso_bad_size += 1;
                        } else if tl != total
                            || (e.total_len as u64).div_ceil(e.gso_size as u64) != e.gso_segs as u64
                        {
                            valid = false;
                            self.stats.gso_seg_mismatch += 1;
                        } else {
                            segs = e.gso_segs as u32;
                        }
                    }
                }
            } else if nfrags > NETIF_MAX_TX_CHAIN {
                self.stats.gso_seg_mismatch += 1;
            } else if extra.is_some() || cur.flags & NETTXF_MORE_DATA != 0 {
                // A fragment failed slot validation (frag rejections on
                // truncated chains were already counted above).
                self.stats.tx_errors += 1;
            }
            if !valid {
                // Drop the chain's staged copies: rejected descriptors
                // must not cost the backend grant-copy work.
                ops.truncate(op_start);
            }
            chains.push(TxChain {
                op_start,
                op_end: ops.len(),
                total,
                segs,
                valid,
                ok: false,
            });
            batch.cost += self.profile.per_packet;
        }

        // One hypercall for the whole drain (or per-op in legacy mode).
        let result = hv.grant_copy_ops(self.back, &ops, self.copy_mode);
        self.stats.copy.record(self.copy_mode, ops.len(), &result);
        batch.cost += result.cost;
        // Grant-copy stage: the batch completes one copy-cost after the
        // drain began (within-event time does not advance on its own).
        if !self.scratch_req.is_empty() {
            let done = hv.req.now() + result.cost;
            let qid = self.qid(q);
            for &r in &self.scratch_req {
                hv.req
                    .stamp_at(r, ReqStage::GrantCopy, self.back.0, qid, done);
            }
            self.scratch_req.clear();
        }

        for c in chains.iter_mut() {
            if !c.valid {
                continue;
            }
            c.ok = result.statuses[c.op_start..c.op_end]
                .iter()
                .all(|s| s.is_okay());
            if !c.ok {
                self.stats.tx_errors += 1;
            }
        }

        let mut emitted = 0usize; // chains whose super-frame was pushed
        for &(id, disp) in &pending {
            let status = match disp {
                TxDisp::Single(i) if result.statuses[i].is_okay() => {
                    let size = ops[i].len;
                    let frame = hv.mem.page(self.queues[q].bounce[i])?[..size].to_vec();
                    self.stats.tx_packets += 1;
                    self.stats.tx_bytes += size as u64;
                    batch.frames.push(frame);
                    NETIF_RSP_OKAY
                }
                TxDisp::Single(_) => {
                    self.stats.tx_errors += 1;
                    NETIF_RSP_ERROR
                }
                TxDisp::Frag(ci) if chains[ci].ok => {
                    // The chain's head slot assembles the super-frame;
                    // later fragments just acknowledge.
                    if ci >= emitted {
                        let c = chains[ci];
                        let mut frame = Vec::with_capacity(c.total);
                        for (op, &bounce) in ops[c.op_start..c.op_end]
                            .iter()
                            .zip(&self.queues[q].bounce[c.op_start..c.op_end])
                        {
                            frame.extend_from_slice(&hv.mem.page(bounce)?[..op.len]);
                        }
                        self.stats.tx_packets += 1;
                        self.stats.tx_bytes += c.total as u64;
                        self.stats.gso_tx_frames += 1;
                        self.stats.gso_tx_segs += c.segs as u64;
                        batch.frames.push(frame);
                        emitted = ci + 1;
                    }
                    NETIF_RSP_OKAY
                }
                TxDisp::Frag(_) => NETIF_RSP_ERROR,
                TxDisp::Reject => NETIF_RSP_ERROR,
                TxDisp::Null => NETIF_RSP_NULL,
            };
            let qu = &mut self.queues[q];
            let page = hv.mem.page_mut(qu.tx_page)?;
            qu.tx_ring
                .push_response(page, &NetifTxResponse { id, status })?;
        }
        let qu = &mut self.queues[q];
        let page = hv.mem.page_mut(qu.tx_page)?;
        batch.notify = qu.tx_ring.push_responses(page);
        batch.more = qu.tx_ring.final_check_for_requests(page);
        if !pending.is_empty() {
            let (consumed, delivered, notify) = (
                pending.len() as u32,
                batch.frames.len() as u32,
                batch.notify,
            );
            let qid = self.qid(q);
            hv.trace.emit_with(self.back.0, || EventKind::RingDrain {
                queue: "netback_tx",
                qid,
                consumed,
                delivered,
                notify,
            });
        }
        pending.clear();
        chains.clear();
        ops.clear();
        self.scratch_tx = pending;
        self.scratch_chains = chains;
        self.scratch_ops = ops;
        Ok(batch)
    }

    /// The upper layer received a frame from the VIF (bridge) destined for
    /// this instance's guest: the Rx steering point. The frame's flow
    /// hash picks the queue (RSS), so one flow's frames stay ordered on
    /// one queue. Returns `false` (and counts a drop) when that queue is
    /// full — backpressure toward the bridge.
    pub fn enqueue_to_guest(&mut self, frame: Vec<u8>) -> bool {
        let q = kite_net::flow::steer(&frame, self.queues.len() as u32) as usize;
        let qu = &mut self.queues[q];
        if qu.to_guest.len() >= self.rx_queue_cap {
            self.stats.rx_dropped += 1;
            return false;
        }
        qu.to_guest.push_back(frame);
        true
    }

    /// Frames waiting for Rx ring slots, all queues.
    pub fn rx_backlog(&self) -> usize {
        self.queues.iter().map(|qu| qu.to_guest.len()).sum()
    }

    /// Per-queue Rx backlog depths (world → guest frames awaiting slots).
    pub fn rx_backlogs(&self) -> Vec<usize> {
        self.queues.iter().map(|qu| qu.to_guest.len()).collect()
    }

    /// Ring-progress sample for health monitoring, aggregated across
    /// queues: `(consumed, pending)`. See
    /// [`NetbackInstance::queue_progress`] for the per-queue watermarks a
    /// stall detector should prefer — an aggregate hides one wedged
    /// queue behind its siblings' progress.
    pub fn progress(&self, hv: &Hypervisor) -> (u64, u64) {
        self.queue_progress(hv)
            .into_iter()
            .fold((0, 0), |(c, p), (qc, qp)| (c + qc, p + qp))
    }

    /// Per-queue ring-progress watermarks: `(consumed, pending)` for
    /// each queue.
    ///
    /// `consumed` is the queue's lifetime consumer watermark across both
    /// rings — it only moves when the queue's threads actually run, so a
    /// health monitor comparing successive samples can tell a livelocked
    /// queue from an idle one. `pending` counts work the queue has not
    /// picked up yet: unconsumed Tx requests plus queued world → guest
    /// frames.
    pub fn queue_progress(&self, hv: &Hypervisor) -> Vec<(u64, u64)> {
        self.queues
            .iter()
            .map(|qu| {
                let consumed = qu.tx_ring.req_cons() as u64 + qu.rx_ring.req_cons() as u64;
                let tx_pending = match hv.mem.page(qu.tx_page) {
                    Ok(page) => qu.tx_ring.unconsumed_requests(page) as u64,
                    Err(_) => 0,
                };
                (consumed, tx_pending + qu.to_guest.len() as u64)
            })
            .collect()
    }

    /// The **soft_start** thread body for queue `q`: pairs the queue's
    /// waiting frames with posted Rx requests, staging each frame in its
    /// own buffer page and hypervisor-copying the whole fill into guest
    /// buffers with one batched `GNTTABOP_copy`.
    ///
    /// A frame whose copy fails (bad or revoked Rx grant) is dropped
    /// explicitly: counted in `rx_dropped` and answered with an error
    /// response so the frontend reclaims the buffer.
    pub fn soft_start_run(
        &mut self,
        hv: &mut Hypervisor,
        q: usize,
        budget: usize,
    ) -> Result<RxBatch> {
        let _prof = kite_prof::span(kite_prof::Phase::NetbackRxDrain);
        let mut batch = RxBatch::default();
        if self.queues[q].wedged {
            batch.more = !self.queues[q].to_guest.is_empty();
            return Ok(batch);
        }
        // (response id, fragment length, response flags) per op, in
        // ring order, and the chain span each delivered frame occupies.
        let mut posted = std::mem::take(&mut self.scratch_rx);
        let mut rxchains = std::mem::take(&mut self.scratch_rxchain);
        let mut ops = std::mem::take(&mut self.scratch_ops);
        for _ in 0..budget {
            let Some(front_len) = self.queues[q].to_guest.front().map(Vec::len) else {
                break;
            };
            // With GSO negotiated a super-frame spans several posted
            // buffers; without it the legacy single-slot clamp applies.
            let nfrags = if self.gso {
                front_len.div_ceil(PAGE_SIZE).max(1)
            } else {
                1
            };
            let avail = {
                let qu = &self.queues[q];
                let page = hv.mem.page(qu.rx_page)?;
                qu.rx_ring.unconsumed_requests(page) as usize
            };
            if avail < nfrags {
                break; // never start a chain we cannot finish
            }
            let frame = self.queues[q]
                .to_guest
                .pop_front()
                .expect("checked non-empty");
            let total = if self.gso {
                frame.len()
            } else {
                frame.len().min(PAGE_SIZE)
            };
            let op_start = ops.len();
            let mut off = 0usize;
            for f in 0..nfrags {
                let req = {
                    let qu = &mut self.queues[q];
                    let page = hv.mem.page(qu.rx_page)?;
                    match qu.rx_ring.consume_request(page)? {
                        Some(r) => r,
                        None => break, // unreachable: avail checked
                    }
                };
                let len = (total - off).min(PAGE_SIZE);
                while self.queues[q].bounce.len() < ops.len() + 1 {
                    let page = hv.alloc_page(self.back)?;
                    self.queues[q].bounce.push(page);
                }
                let src = self.queues[q].bounce[ops.len()];
                hv.mem.page_mut(src)?[..len].copy_from_slice(&frame[off..off + len]);
                ops.push(GrantCopyOp {
                    src: CopySide::Local {
                        page: src,
                        offset: 0,
                    },
                    dst: CopySide::Grant {
                        granter: self.front,
                        gref: req.gref,
                        offset: 0,
                    },
                    len,
                });
                let mut flags = 0u16;
                if f + 1 < nfrags {
                    flags |= NETRXF_MORE_DATA;
                }
                if self.csum_offload {
                    flags |= NETRXF_DATA_VALIDATED;
                }
                posted.push((req.id, len, flags));
                off += len;
            }
            rxchains.push((op_start, ops.len(), total));
            // One per-packet OS cost per frame, however many slots it
            // spans — the receive-side (LRO) half of the amortisation.
            batch.cost += self.profile.per_packet;
        }

        let result = hv.grant_copy_ops(self.back, &ops, self.copy_mode);
        self.stats.copy.record(self.copy_mode, ops.len(), &result);
        batch.cost += result.cost;

        // A frame delivers only if every fragment copied; a failed
        // fragment drops the whole frame (the frontend discards the
        // poisoned chain when it sees the error response).
        for &(op_start, op_end, total) in &rxchains {
            let ok = result.statuses[op_start..op_end]
                .iter()
                .all(|s| s.is_okay());
            if ok {
                self.stats.rx_packets += 1;
                self.stats.rx_bytes += total as u64;
                if op_end - op_start > 1 {
                    self.stats.lro_rx_frames += 1;
                }
                batch.delivered += 1;
            } else {
                self.stats.rx_dropped += 1;
            }
        }

        for (i, &(id, len, flags)) in posted.iter().enumerate() {
            let status = if result.statuses[i].is_okay() {
                len as i16
            } else {
                NETIF_RSP_ERROR
            };
            let qu = &mut self.queues[q];
            let page = hv.mem.page_mut(qu.rx_page)?;
            qu.rx_ring.push_response(
                page,
                &NetifRxResponse {
                    id,
                    offset: 0,
                    flags,
                    status,
                },
            )?;
        }
        let qu = &mut self.queues[q];
        let page = hv.mem.page_mut(qu.rx_page)?;
        batch.notify = qu.rx_ring.push_responses(page);
        batch.more = !qu.to_guest.is_empty();
        if !posted.is_empty() {
            let (consumed, delivered, notify) =
                (posted.len() as u32, batch.delivered as u32, batch.notify);
            let qid = self.qid(q);
            hv.trace.emit_with(self.back.0, || EventKind::RingDrain {
                queue: "netback_rx",
                qid,
                consumed,
                delivered,
                notify,
            });
        }
        posted.clear();
        ops.clear();
        self.scratch_rx = posted;
        self.scratch_ops = ops;
        Ok(batch)
    }

    /// Quiesces the instance ahead of teardown: stops accepting new Rx
    /// frames and announces `Closing` so the frontend can unwind.
    /// Resources stay mapped until [`NetbackInstance::close`].
    pub fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()> {
        self.rx_queue_cap = 0;
        let paths = DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vif, self.index);
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closing)
    }

    /// Tears the instance down: closes every queue's channel, unmaps its
    /// rings, frees the frame-buffer pools, marks the backend `Closed`.
    pub fn close(self, hv: &mut Hypervisor) -> Result<()> {
        let paths = DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vif, self.index);
        for qu in self.queues {
            let _ = hv.evtchn.close(self.back, qu.evtchn);
            hv.unmap_grant(self.back, qu._tx_map)?;
            hv.unmap_grant(self.back, qu._rx_map)?;
            for page in qu.bounce {
                hv.free_page(self.back, page)?;
            }
        }
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closing)?;
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closed)?;
        Ok(())
    }
}

impl crate::lifecycle::BackendDevice for NetbackInstance {
    type Config = OsProfile;
    type RunCtx = ();
    type RunOutput = (TxBatch, RxBatch);
    const KIND: kite_xen::DeviceKind = kite_xen::DeviceKind::Vif;

    fn connect(hv: &mut Hypervisor, paths: &DevicePaths, cfg: &OsProfile) -> Result<Self> {
        NetbackInstance::connect(hv, paths, cfg.clone())
    }

    fn device_paths(&self) -> DevicePaths {
        DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vif, self.index)
    }

    fn run(
        &mut self,
        hv: &mut Hypervisor,
        _ctx: &mut (),
        _now: Nanos,
        budget: usize,
    ) -> Result<(TxBatch, RxBatch)> {
        let mut tx = TxBatch::default();
        let mut rx = RxBatch::default();
        for q in 0..self.queues.len() {
            let t = self.pusher_run(hv, q, budget)?;
            tx.frames.extend(t.frames);
            tx.cost += t.cost;
            tx.notify |= t.notify;
            tx.more |= t.more;
            let r = self.soft_start_run(hv, q, budget)?;
            rx.delivered += r.delivered;
            rx.cost += r.cost;
            rx.notify |= r.notify;
            rx.more |= r.more;
        }
        Ok((tx, rx))
    }

    fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()> {
        NetbackInstance::suspend(self, hv)
    }

    fn close(self, hv: &mut Hypervisor) -> Result<()> {
        NetbackInstance::close(self, hv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{provision_device, BackendManager};
    use kite_frontends::Netfront;
    use kite_net::MacAddr;
    use kite_rumprun::kite_profile;
    use kite_xen::ring::FrontRing;
    use kite_xen::{DeviceKind, DomainKind};

    fn machine() -> (Hypervisor, DevicePaths) {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
        let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);
        let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        mgr.drain_events(&mut hv).unwrap();
        (hv, paths)
    }

    fn advertise_gso(hv: &mut Hypervisor, paths: &DevicePaths) {
        hv.store
            .write(
                DomainId::DOM0,
                None,
                &format!("{}/{FEATURE_GSO_KEY}", paths.backend()),
                "1",
            )
            .unwrap();
    }

    /// Full pair with a real netfront and explicit feature choices.
    fn pair(
        be_gso: bool,
        fe_gso: bool,
        veto_csum: bool,
    ) -> (Hypervisor, DevicePaths, Netfront, NetbackInstance) {
        let (mut hv, paths) = machine();
        if be_gso {
            advertise_gso(&mut hv, &paths);
        }
        let nf = Netfront::connect_with_features(
            &mut hv,
            &paths,
            MacAddr::local(1),
            1,
            fe_gso,
            veto_csum,
        )
        .unwrap();
        let nb = NetbackInstance::connect(&mut hv, &paths, kite_profile()).unwrap();
        (hv, paths, nf, nb)
    }

    #[test]
    fn offload_negotiation_requires_both_sides() {
        let (_, _, nf, nb) = pair(true, false, false);
        assert!(!nb.gso(), "frontend declined");
        assert!(!nf.gso());
        let (_, _, nf, nb) = pair(false, true, false);
        assert!(!nb.gso(), "backend never advertised");
        assert!(!nf.gso());
        let (_, _, nf, nb) = pair(true, true, false);
        assert!(nb.gso() && nb.csum_offload());
        assert!(nf.gso());
        let (_, _, _, nb) = pair(true, true, true);
        assert!(nb.gso(), "csum veto leaves GSO up");
        assert!(!nb.csum_offload());
    }

    #[test]
    fn tx_chain_reassembles_a_super_frame() {
        let (mut hv, _, mut nf, mut nb) = pair(true, true, false);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i * 7) as u8).collect();
        let (q, _) = nf.send(&mut hv, &payload, None).unwrap();
        let batch = nb.pusher_run(&mut hv, q, 128).unwrap();
        assert_eq!(batch.frames.len(), 1);
        assert_eq!(batch.frames[0], payload, "super-frame is byte-identical");
        let s = nb.stats();
        assert_eq!((s.tx_packets, s.gso_tx_frames), (1, 1));
        assert_eq!(s.gso_tx_segs, 10_000u64.div_ceil(1472), "MSS segments");
        assert_eq!(s.gso_errors(), 0);
        // Every slot (head + extra + 2 frags) was answered; the frontend
        // reaps them all and holds nothing in flight.
        nf.on_irq(&mut hv).unwrap();
        assert!(nf.take_unacked(&hv).is_empty());
    }

    #[test]
    fn rx_chain_spans_posted_buffers() {
        let (mut hv, _, mut nf, mut nb) = pair(true, true, false);
        let frame: Vec<u8> = (0..9_500u32).map(|i| (i ^ 0x5a) as u8).collect();
        assert!(nb.enqueue_to_guest(frame.clone()));
        let batch = nb.soft_start_run(&mut hv, 0, 64).unwrap();
        assert_eq!(batch.delivered, 1);
        assert_eq!(nb.stats().lro_rx_frames, 1);
        assert_eq!(nb.stats().rx_bytes, 9_500);
        nf.on_irq(&mut hv).unwrap();
        assert_eq!(nf.recv().unwrap(), frame, "reassembled across 3 buffers");
        assert!(nf.recv().is_none());
    }

    #[test]
    fn oversized_sends_fail_without_gso() {
        let (mut hv, _, mut nf, _) = pair(false, false, false);
        let big = vec![0u8; PAGE_SIZE + 1];
        assert_eq!(
            nf.send(&mut hv, &big, None).err(),
            Some(XenError::OutOfBounds)
        );
        assert_eq!(nf.max_tx_frame(), PAGE_SIZE);
    }

    // ---- adversarial chains: a hand-driven frontend ---------------------

    /// A bare Tx/Rx ring pair published like a netfront's, but driven by
    /// hand so tests can publish malformed descriptor chains no real
    /// frontend would.
    struct RawFront {
        tx: FrontRing<NetifTxRequest, NetifTxResponse>,
        tx_page: PageId,
        grefs: Vec<GrantRef>,
    }

    impl RawFront {
        fn push(&mut self, hv: &mut Hypervisor, req: &NetifTxRequest) {
            let page = hv.mem.page_mut(self.tx_page).unwrap();
            self.tx.push_request(page, req).unwrap();
        }

        fn publish(&mut self, hv: &mut Hypervisor) {
            let page = hv.mem.page_mut(self.tx_page).unwrap();
            self.tx.push_requests(page);
        }

        fn responses(&mut self, hv: &Hypervisor) -> Vec<NetifTxResponse> {
            let mut out = Vec::new();
            let page = hv.mem.page(self.tx_page).unwrap();
            while let Some(rsp) = self.tx.consume_response(page).unwrap() {
                out.push(rsp);
            }
            out
        }
    }

    fn raw_pair(gso: bool) -> (Hypervisor, DevicePaths, RawFront, NetbackInstance) {
        let (mut hv, paths) = machine();
        let (gu, dd) = (paths.front, paths.back);
        if gso {
            advertise_gso(&mut hv, &paths);
            hv.store
                .write(
                    gu,
                    None,
                    &format!("{}/{FEATURE_GSO_KEY}", paths.frontend()),
                    "1",
                )
                .unwrap();
        }
        let tx_page = hv.alloc_page(gu).unwrap();
        let rx_page = hv.alloc_page(gu).unwrap();
        let tx = FrontRing::init(hv.mem.page_mut(tx_page).unwrap());
        let _rx: FrontRing<NetifRxRequest, NetifRxResponse> =
            FrontRing::init(hv.mem.page_mut(rx_page).unwrap());
        let tx_ref = hv.grant_access(gu, dd, tx_page, false).unwrap();
        let rx_ref = hv.grant_access(gu, dd, rx_page, false).unwrap();
        let (port, _) = hv.evtchn_alloc_unbound(gu, dd);
        let root = paths.frontend_queue_root(1, 0);
        for (key, val) in [
            ("tx-ring-ref", tx_ref.0.to_string()),
            ("rx-ring-ref", rx_ref.0.to_string()),
            ("event-channel", port.0.to_string()),
        ] {
            hv.store
                .write(gu, None, &format!("{root}/{key}"), &val)
                .unwrap();
        }
        let mut grefs = Vec::new();
        for _ in 0..8 {
            let p = hv.alloc_page(gu).unwrap();
            grefs.push(hv.grant_access(gu, dd, p, true).unwrap());
        }
        let nb = NetbackInstance::connect(&mut hv, &paths, kite_profile()).unwrap();
        (hv, paths, RawFront { tx, tx_page, grefs }, nb)
    }

    fn data_slot(rf: &RawFront, id: u16, size: u16, flags: u16) -> NetifTxRequest {
        NetifTxRequest {
            gref: rf.grefs[id as usize],
            offset: 0,
            flags,
            id,
            size,
        }
    }

    #[test]
    fn chain_with_extra_claimed_but_ring_empty_errors_cleanly() {
        let (mut hv, _, mut rf, mut nb) = raw_pair(true);
        let maps_before = hv.grants.active_maps(nb.back);
        let head = data_slot(&rf, 0, 100, NETTXF_EXTRA_INFO | NETTXF_MORE_DATA);
        rf.push(&mut hv, &head);
        rf.publish(&mut hv);
        let batch = nb.pusher_run(&mut hv, 0, 128).unwrap();
        assert!(batch.frames.is_empty());
        assert_eq!(nb.stats().gso_truncated, 1);
        let rsps = rf.responses(&hv);
        assert_eq!(rsps.len(), 1, "the torn head still gets its response");
        assert_eq!(rsps[0].status, NETIF_RSP_ERROR);
        assert_eq!(hv.grants.active_maps(nb.back), maps_before, "no leaked map");
    }

    #[test]
    fn descriptor_size_bounds_are_enforced() {
        let (mut hv, _, mut rf, mut nb) = raw_pair(true);
        // total_len = 0.
        rf.push(&mut hv, &data_slot(&rf, 0, 100, NETTXF_EXTRA_INFO));
        let zero = NetifExtraInfo {
            kind: XEN_NETIF_EXTRA_TYPE_GSO,
            gso_size: 1472,
            gso_segs: 1,
            total_len: 0,
        };
        rf.push(&mut hv, &zero.to_tx_slot());
        // total_len > 64 KiB.
        rf.push(&mut hv, &data_slot(&rf, 1, 100, NETTXF_EXTRA_INFO));
        let huge = NetifExtraInfo {
            kind: XEN_NETIF_EXTRA_TYPE_GSO,
            gso_size: 1472,
            gso_segs: 48,
            total_len: (NETIF_MAX_GSO_FRAME + 1) as u32,
        };
        rf.push(&mut hv, &huge.to_tx_slot());
        rf.publish(&mut hv);
        let batch = nb.pusher_run(&mut hv, 0, 128).unwrap();
        assert!(batch.frames.is_empty());
        assert_eq!(nb.stats().gso_bad_size, 2);
        let rsps = rf.responses(&hv);
        assert_eq!(rsps.len(), 4, "one response per consumed slot");
        assert_eq!(rsps[0].status, NETIF_RSP_ERROR);
        assert_eq!(rsps[1].status, NETIF_RSP_NULL, "extra slot acked NULL");
        assert_eq!(rsps[2].status, NETIF_RSP_ERROR);
        assert_eq!(rsps[3].status, NETIF_RSP_NULL);
    }

    #[test]
    fn seg_and_slot_count_disagreements_are_rejected() {
        let (mut hv, _, mut rf, mut nb) = raw_pair(true);
        // Claimed gso_segs disagrees with ceil(total/mss).
        rf.push(&mut hv, &data_slot(&rf, 0, 100, NETTXF_EXTRA_INFO));
        let wrong_segs = NetifExtraInfo {
            kind: XEN_NETIF_EXTRA_TYPE_GSO,
            gso_size: 50,
            gso_segs: 7,
            total_len: 100,
        };
        rf.push(&mut hv, &wrong_segs.to_tx_slot());
        // Fragment byte sum disagrees with total_len.
        rf.push(
            &mut hv,
            &data_slot(&rf, 1, 100, NETTXF_EXTRA_INFO | NETTXF_MORE_DATA),
        );
        let wrong_total = NetifExtraInfo {
            kind: XEN_NETIF_EXTRA_TYPE_GSO,
            gso_size: 100,
            gso_segs: 2,
            total_len: 200,
        };
        rf.push(&mut hv, &wrong_total.to_tx_slot());
        rf.push(&mut hv, &data_slot(&rf, 2, 50, 0));
        rf.publish(&mut hv);
        let batch = nb.pusher_run(&mut hv, 0, 128).unwrap();
        assert!(batch.frames.is_empty());
        assert_eq!(nb.stats().gso_seg_mismatch, 2);
        let rsps = rf.responses(&hv);
        assert_eq!(rsps.len(), 5);
        let errors = rsps.iter().filter(|r| r.status == NETIF_RSP_ERROR).count();
        let nulls = rsps.iter().filter(|r| r.status == NETIF_RSP_NULL).count();
        assert_eq!((errors, nulls), (3, 2));
    }

    #[test]
    fn chains_on_an_unnegotiated_pair_are_rejected_and_resynced() {
        let (mut hv, _, mut rf, mut nb) = raw_pair(false);
        assert!(!nb.gso());
        rf.push(
            &mut hv,
            &data_slot(&rf, 0, 100, NETTXF_EXTRA_INFO | NETTXF_MORE_DATA),
        );
        let extra = NetifExtraInfo {
            kind: XEN_NETIF_EXTRA_TYPE_GSO,
            gso_size: 100,
            gso_segs: 2,
            total_len: 150,
        };
        rf.push(&mut hv, &extra.to_tx_slot());
        rf.push(&mut hv, &data_slot(&rf, 1, 50, 0));
        // A well-formed single frame after the chain: framing resynced.
        rf.push(&mut hv, &data_slot(&rf, 2, 60, 0));
        rf.publish(&mut hv);
        let batch = nb.pusher_run(&mut hv, 0, 128).unwrap();
        assert_eq!(nb.stats().gso_unnegotiated, 1);
        assert_eq!(batch.frames.len(), 1, "the single frame still flows");
        assert_eq!(batch.frames[0].len(), 60);
        let rsps = rf.responses(&hv);
        assert_eq!(rsps.len(), 4);
        assert_eq!(
            rsps.iter().filter(|r| r.status == NETIF_RSP_ERROR).count(),
            3,
            "every chain slot rejected"
        );
        assert_eq!(rsps[3].status, NETIF_RSP_OKAY);
    }

    #[test]
    fn guest_teardown_after_chain_errors_reclaims_every_grant() {
        let (mut hv, paths, mut rf, mut nb) = raw_pair(true);
        rf.push(
            &mut hv,
            &data_slot(&rf, 0, 100, NETTXF_EXTRA_INFO | NETTXF_MORE_DATA),
        );
        rf.publish(&mut hv);
        nb.pusher_run(&mut hv, 0, 128).unwrap();
        assert_eq!(nb.stats().gso_truncated, 1);
        // Backend closes cleanly, then the guest dies: Xen must be able
        // to reclaim every grant — nothing pinned by the failed chain.
        nb.close(&mut hv).unwrap();
        assert_eq!(hv.grants.active_maps(paths.back), 0);
        hv.destroy_domain(paths.front).unwrap();
        assert_eq!(hv.grants.live_grants(paths.front), 0);
    }
}
