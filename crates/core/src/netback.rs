//! The Kite netback driver (§3.2, §4.2 of the paper).
//!
//! One instance serves one netfront. The structure follows the paper:
//!
//! * **split layers** — the bottom layer speaks Xen (rings, grants, event
//!   channel), the upper layer speaks the network stack (VIF frames);
//! * **hypervisor copy** — packet payloads move between domains with
//!   `GNTTABOP_copy`, the fast path modern netfronts use;
//! * **threads, not work queues** — the event handler only *wakes* the
//!   [`pusher`](NetbackInstance::pusher_run) thread (Tx drain: guest →
//!   VIF) and the VIF callback only wakes the
//!   [`soft_start`](NetbackInstance::soft_start_run) thread (Rx fill:
//!   VIF → guest). Both process bounded batches and report whether more
//!   work remains, so they never monopolize the non-preemptive vCPU;
//! * **notification suppression** — responses are pushed with the
//!   `RING_PUSH_*_AND_CHECK_NOTIFY` discipline, so a busy ring costs a
//!   fraction of a hypercall per packet.

use std::collections::VecDeque;

use kite_rumprun::OsProfile;
use kite_sim::Nanos;
use kite_xen::netif::{
    NetifRxRequest, NetifRxResponse, NetifTxRequest, NetifTxResponse, NETIF_RSP_ERROR,
    NETIF_RSP_OKAY,
};
use kite_xen::ring::BackRing;
use kite_xen::xenbus::switch_state;
use kite_xen::{
    CopySide, DevicePaths, DomainId, GrantRef, Hypervisor, MapHandle, PageId, Port, Result,
    XenbusState, XenError,
};

/// Result of one pusher (Tx-drain) batch.
#[derive(Debug, Default)]
pub struct TxBatch {
    /// Frames copied out of the guest, ready for the VIF/bridge.
    pub frames: Vec<Vec<u8>>,
    /// vCPU cost of the batch (copies, ring work, per-packet OS cost).
    pub cost: Nanos,
    /// The frontend must be notified (responses pushed past its event).
    pub notify: bool,
    /// More requests remain (thread should re-queue instead of sleeping).
    pub more: bool,
}

/// Result of one soft_start (Rx-fill) batch.
#[derive(Debug, Default)]
pub struct RxBatch {
    /// Frames delivered into guest buffers.
    pub delivered: usize,
    /// vCPU cost of the batch.
    pub cost: Nanos,
    /// The frontend must be notified.
    pub notify: bool,
    /// Frames still queued (no Rx requests available or budget hit).
    pub more: bool,
}

/// Statistics of one netback instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetbackStats {
    /// Packets guest → world.
    pub tx_packets: u64,
    /// Bytes guest → world.
    pub tx_bytes: u64,
    /// Packets world → guest.
    pub rx_packets: u64,
    /// Bytes world → guest.
    pub rx_bytes: u64,
    /// Frames dropped because the guest posted no Rx buffers in time.
    pub rx_dropped: u64,
    /// Malformed Tx requests rejected.
    pub tx_errors: u64,
}

/// One netback instance (one per connected netfront).
pub struct NetbackInstance {
    /// Driver domain running this backend.
    pub back: DomainId,
    /// Guest domain of the paired frontend.
    pub front: DomainId,
    /// Device index within the guest.
    pub index: u32,
    /// The VIF name exposed to the bridge, e.g. `vif2.0`.
    pub vif: String,
    /// Backend-local event-channel port.
    pub evtchn: Port,
    tx_ring: BackRing<NetifTxRequest, NetifTxResponse>,
    rx_ring: BackRing<NetifRxRequest, NetifRxResponse>,
    tx_page: PageId,
    rx_page: PageId,
    _tx_map: MapHandle,
    _rx_map: MapHandle,
    scratch: PageId,
    to_guest: VecDeque<Vec<u8>>,
    /// Queue cap for world → guest frames awaiting Rx slots.
    pub rx_queue_cap: usize,
    profile: OsProfile,
    stats: NetbackStats,
}

impl NetbackInstance {
    /// Connects to a frontend that has published its details: maps both
    /// rings, binds the event channel, writes `feature-rx-copy` and flips
    /// the backend state to `Connected`.
    pub fn connect(hv: &mut Hypervisor, paths: &DevicePaths, profile: OsProfile) -> Result<Self> {
        let back = paths.back;
        let front = paths.front;
        let fe = paths.frontend();
        let tx_ref = GrantRef(
            hv.store
                .read(back, None, &format!("{fe}/tx-ring-ref"))?
                .parse()
                .map_err(|_| XenError::Inval)?,
        );
        let rx_ref = GrantRef(
            hv.store
                .read(back, None, &format!("{fe}/rx-ring-ref"))?
                .parse()
                .map_err(|_| XenError::Inval)?,
        );
        let remote_port = Port(
            hv.store
                .read(back, None, &format!("{fe}/event-channel"))?
                .parse()
                .map_err(|_| XenError::Inval)?,
        );
        let (tx_map, _) = hv.map_grant(back, front, tx_ref)?;
        let (rx_map, _) = hv.map_grant(back, front, rx_ref)?;
        let (evtchn, _) = hv.evtchn_bind(back, front, remote_port)?;
        let scratch = hv.alloc_page(back)?;
        let be = paths.backend();
        hv.store
            .write(back, None, &format!("{be}/feature-rx-copy"), "1")?;
        switch_state(&mut hv.store, back, &paths.backend_state(), XenbusState::Connected)?;
        Ok(NetbackInstance {
            back,
            front,
            index: paths.index,
            vif: format!("vif{}.{}", front.0, paths.index),
            evtchn,
            tx_ring: BackRing::attach(),
            rx_ring: BackRing::attach(),
            tx_page: tx_map.page,
            rx_page: rx_map.page,
            _tx_map: tx_map.handle,
            _rx_map: rx_map.handle,
            scratch,
            to_guest: VecDeque::new(),
            rx_queue_cap: 512,
            profile,
            stats: NetbackStats::default(),
        })
    }

    /// Instance statistics.
    pub fn stats(&self) -> NetbackStats {
        self.stats
    }

    /// The cost of the event-channel interrupt handler itself: ack the
    /// port and wake the pusher. Nothing else happens in IRQ context —
    /// the paper's central latency argument.
    pub fn irq_handler_cost(&self) -> Nanos {
        self.profile.irq_overhead
    }

    /// The **pusher** thread body: drains up to `budget` Tx requests,
    /// hypervisor-copying each payload out of the guest and emitting the
    /// frames for the upper layer to push into the VIF/bridge.
    pub fn pusher_run(&mut self, hv: &mut Hypervisor, budget: usize) -> Result<TxBatch> {
        let mut batch = TxBatch::default();
        for _ in 0..budget {
            let req = {
                let page = hv.mem.page(self.tx_page)?;
                match self.tx_ring.consume_request(page)? {
                    Some(r) => r,
                    None => break,
                }
            };
            let size = req.size as usize;
            let status = if size == 0 || size > kite_xen::PAGE_SIZE - req.offset as usize {
                self.stats.tx_errors += 1;
                NETIF_RSP_ERROR
            } else {
                match hv.grant_copy(
                    self.back,
                    CopySide::Grant {
                        granter: self.front,
                        gref: req.gref,
                        offset: req.offset as usize,
                    },
                    CopySide::Local {
                        page: self.scratch,
                        offset: 0,
                    },
                    size,
                ) {
                    Ok(copy_cost) => {
                        batch.cost += copy_cost;
                        let frame = hv.mem.page(self.scratch)?[..size].to_vec();
                        self.stats.tx_packets += 1;
                        self.stats.tx_bytes += size as u64;
                        batch.frames.push(frame);
                        NETIF_RSP_OKAY
                    }
                    Err(_) => {
                        self.stats.tx_errors += 1;
                        NETIF_RSP_ERROR
                    }
                }
            };
            let page = hv.mem.page_mut(self.tx_page)?;
            self.tx_ring
                .push_response(page, &NetifTxResponse { id: req.id, status })?;
            batch.cost += self.profile.per_packet;
        }
        let page = hv.mem.page_mut(self.tx_page)?;
        batch.notify = self.tx_ring.push_responses(page);
        batch.more = self.tx_ring.final_check_for_requests(page);
        Ok(batch)
    }

    /// The upper layer received a frame from the VIF (bridge) destined for
    /// this instance's guest. Returns `false` (and counts a drop) when the
    /// internal queue is full — backpressure toward the bridge.
    pub fn enqueue_to_guest(&mut self, frame: Vec<u8>) -> bool {
        if self.to_guest.len() >= self.rx_queue_cap {
            self.stats.rx_dropped += 1;
            return false;
        }
        self.to_guest.push_back(frame);
        true
    }

    /// Frames waiting for Rx ring slots.
    pub fn rx_backlog(&self) -> usize {
        self.to_guest.len()
    }

    /// The **soft_start** thread body: pairs queued frames with posted Rx
    /// requests, hypervisor-copying payloads into guest buffers.
    pub fn soft_start_run(&mut self, hv: &mut Hypervisor, budget: usize) -> Result<RxBatch> {
        let mut batch = RxBatch::default();
        for _ in 0..budget {
            if self.to_guest.is_empty() {
                break;
            }
            let req = {
                let page = hv.mem.page(self.rx_page)?;
                match self.rx_ring.consume_request(page)? {
                    Some(r) => r,
                    None => break, // no posted buffers; frames stay queued
                }
            };
            let frame = self.to_guest.pop_front().expect("checked non-empty");
            let len = frame.len().min(kite_xen::PAGE_SIZE);
            // Stage in scratch, then hypervisor-copy into the guest buffer.
            hv.mem.page_mut(self.scratch)?[..len].copy_from_slice(&frame[..len]);
            let status = match hv.grant_copy(
                self.back,
                CopySide::Local {
                    page: self.scratch,
                    offset: 0,
                },
                CopySide::Grant {
                    granter: self.front,
                    gref: req.gref,
                    offset: 0,
                },
                len,
            ) {
                Ok(copy_cost) => {
                    batch.cost += copy_cost;
                    self.stats.rx_packets += 1;
                    self.stats.rx_bytes += len as u64;
                    batch.delivered += 1;
                    len as i16
                }
                Err(_) => NETIF_RSP_ERROR,
            };
            let page = hv.mem.page_mut(self.rx_page)?;
            self.rx_ring.push_response(
                page,
                &NetifRxResponse {
                    id: req.id,
                    offset: 0,
                    flags: 0,
                    status,
                },
            )?;
            batch.cost += self.profile.per_packet;
        }
        let page = hv.mem.page_mut(self.rx_page)?;
        batch.notify = self.rx_ring.push_responses(page);
        batch.more = !self.to_guest.is_empty();
        Ok(batch)
    }

    /// Tears the instance down: closes the channel, unmaps rings, frees
    /// the scratch page, marks the backend `Closed`.
    pub fn disconnect(self, hv: &mut Hypervisor) -> Result<()> {
        let paths = DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vif, self.index);
        let _ = hv.evtchn.close(self.back, self.evtchn);
        hv.unmap_grant(self.back, self._tx_map)?;
        hv.unmap_grant(self.back, self._rx_map)?;
        hv.free_page(self.back, self.scratch)?;
        switch_state(&mut hv.store, self.back, &paths.backend_state(), XenbusState::Closing)?;
        switch_state(&mut hv.store, self.back, &paths.backend_state(), XenbusState::Closed)?;
        Ok(())
    }
}
