//! The unikernelized DHCP server (§5.5): Kite's daemon-VM proof point.
//!
//! The paper ports OpenDHCP to rumprun with 16 lines of changes and shows
//! the daemon VM matching Linux latency. This is a complete single-threaded
//! DHCP server over the real RFC 2131 codec: lease pool, DISCOVER→OFFER,
//! REQUEST→ACK/NAK, RELEASE, lease expiry and renewal.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use kite_net::{DhcpMessage, DhcpMessageType, MacAddr};
use kite_sim::Nanos;

/// One lease record.
#[derive(Clone, Debug)]
pub struct Lease {
    /// Leased address.
    pub ip: Ipv4Addr,
    /// Client hardware address.
    pub mac: MacAddr,
    /// Expiry instant.
    pub expires: Nanos,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct DhcpConfig {
    /// Server's own address (option 54).
    pub server_ip: Ipv4Addr,
    /// First address of the pool.
    pub range_start: Ipv4Addr,
    /// Pool size.
    pub range_len: u32,
    /// Lease duration.
    pub lease_time: Nanos,
    /// Subnet mask handed out.
    pub subnet_mask: Ipv4Addr,
    /// Router handed out.
    pub router: Ipv4Addr,
}

impl Default for DhcpConfig {
    fn default() -> DhcpConfig {
        DhcpConfig {
            server_ip: Ipv4Addr::new(10, 0, 0, 1),
            range_start: Ipv4Addr::new(10, 0, 0, 100),
            range_len: 150,
            lease_time: Nanos::from_secs(3600),
            subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
            router: Ipv4Addr::new(10, 0, 0, 1),
        }
    }
}

/// Server statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DhcpStats {
    /// DISCOVERs seen.
    pub discovers: u64,
    /// OFFERs sent.
    pub offers: u64,
    /// ACKs sent.
    pub acks: u64,
    /// NAKs sent.
    pub naks: u64,
    /// RELEASEs processed.
    pub releases: u64,
}

/// The DHCP server.
pub struct DhcpServer {
    /// Configuration.
    pub config: DhcpConfig,
    leases: HashMap<MacAddr, Lease>,
    by_ip: HashMap<Ipv4Addr, MacAddr>,
    stats: DhcpStats,
}

fn ip_add(base: Ipv4Addr, off: u32) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(base).wrapping_add(off))
}

impl DhcpServer {
    /// Creates a server with the given configuration.
    pub fn new(config: DhcpConfig) -> DhcpServer {
        DhcpServer {
            config,
            leases: HashMap::new(),
            by_ip: HashMap::new(),
            stats: DhcpStats::default(),
        }
    }

    /// Server statistics.
    pub fn stats(&self) -> DhcpStats {
        self.stats
    }

    /// Active (unexpired) lease count at `now`.
    pub fn active_leases(&self, now: Nanos) -> usize {
        self.leases.values().filter(|l| l.expires > now).count()
    }

    /// An address is available to `for_mac` when it is unleased, expired,
    /// or already bound to that same client (renewal/re-offer).
    fn find_free_ip(
        &self,
        now: Nanos,
        prefer: Option<Ipv4Addr>,
        for_mac: MacAddr,
    ) -> Option<Ipv4Addr> {
        let in_pool = |ip: Ipv4Addr| {
            let off = u32::from(ip).wrapping_sub(u32::from(self.config.range_start));
            off < self.config.range_len
        };
        let free = |ip: Ipv4Addr| match self.by_ip.get(&ip) {
            None => true,
            Some(&mac) if mac == for_mac => true,
            Some(mac) => self
                .leases
                .get(mac)
                .map(|l| l.expires <= now)
                .unwrap_or(true),
        };
        if let Some(p) = prefer {
            if in_pool(p) && free(p) {
                return Some(p);
            }
        }
        (0..self.config.range_len)
            .map(|i| ip_add(self.config.range_start, i))
            .find(|&ip| free(ip))
    }

    fn lease(&mut self, mac: MacAddr, ip: Ipv4Addr, now: Nanos) {
        if let Some(old) = self.leases.get(&mac) {
            self.by_ip.remove(&old.ip);
        }
        self.by_ip.insert(ip, mac);
        self.leases.insert(
            mac,
            Lease {
                ip,
                mac,
                expires: now + self.config.lease_time,
            },
        );
    }

    fn reply_base(&self, req: &DhcpMessage, ty: DhcpMessageType) -> DhcpMessage {
        let mut m = DhcpMessage::client(ty, req.xid, req.chaddr);
        m.server_id = Some(self.config.server_ip);
        m.subnet_mask = Some(self.config.subnet_mask);
        m.router = Some(self.config.router);
        m.lease_secs = Some((self.config.lease_time.as_secs_f64()) as u32);
        m
    }

    /// Handles one inbound message; returns the reply to transmit, if any.
    pub fn handle(&mut self, msg: &DhcpMessage, now: Nanos) -> Option<DhcpMessage> {
        match msg.msg_type {
            DhcpMessageType::Discover => {
                self.stats.discovers += 1;
                // Re-offer an existing binding when we have one.
                let existing = self
                    .leases
                    .get(&msg.chaddr)
                    .map(|l| l.ip)
                    .or(msg.requested_ip);
                let ip = self.find_free_ip(now, existing, msg.chaddr)?;
                self.stats.offers += 1;
                let mut rep = self.reply_base(msg, DhcpMessageType::Offer);
                rep.yiaddr = ip;
                Some(rep)
            }
            DhcpMessageType::Request => {
                let want = msg.requested_ip.or(if msg.ciaddr.is_unspecified() {
                    None
                } else {
                    Some(msg.ciaddr)
                });
                let Some(want) = want else {
                    self.stats.naks += 1;
                    return Some(self.reply_base(msg, DhcpMessageType::Nak));
                };
                // Grant if it's our binding or the address is free.
                let ours = self
                    .leases
                    .get(&msg.chaddr)
                    .map(|l| l.ip == want && l.expires > now)
                    .unwrap_or(false);
                let available = self.find_free_ip(now, Some(want), msg.chaddr) == Some(want);
                if ours || available {
                    self.lease(msg.chaddr, want, now);
                    self.stats.acks += 1;
                    let mut rep = self.reply_base(msg, DhcpMessageType::Ack);
                    rep.yiaddr = want;
                    Some(rep)
                } else {
                    self.stats.naks += 1;
                    Some(self.reply_base(msg, DhcpMessageType::Nak))
                }
            }
            DhcpMessageType::Release => {
                self.stats.releases += 1;
                if let Some(l) = self.leases.remove(&msg.chaddr) {
                    self.by_ip.remove(&l.ip);
                }
                None
            }
            DhcpMessageType::Decline => {
                // Mark the declined address as bound to a sentinel so it is
                // skipped until expiry.
                if let Some(ip) = msg.requested_ip {
                    self.by_ip.insert(ip, MacAddr::BROADCAST);
                    self.leases.insert(
                        MacAddr::BROADCAST,
                        Lease {
                            ip,
                            mac: MacAddr::BROADCAST,
                            expires: now + self.config.lease_time,
                        },
                    );
                }
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> DhcpServer {
        DhcpServer::new(DhcpConfig::default())
    }

    fn discover(mac: u32, xid: u32) -> DhcpMessage {
        DhcpMessage::client(DhcpMessageType::Discover, xid, MacAddr::local(mac))
    }

    #[test]
    fn full_dora_cycle() {
        let mut s = server();
        let now = Nanos::ZERO;
        let offer = s.handle(&discover(1, 100), now).unwrap();
        assert_eq!(offer.msg_type, DhcpMessageType::Offer);
        assert_eq!(offer.xid, 100);
        let ip = offer.yiaddr;
        assert!(!ip.is_unspecified());

        let mut req = DhcpMessage::client(DhcpMessageType::Request, 100, MacAddr::local(1));
        req.requested_ip = Some(ip);
        let ack = s.handle(&req, now).unwrap();
        assert_eq!(ack.msg_type, DhcpMessageType::Ack);
        assert_eq!(ack.yiaddr, ip);
        assert_eq!(s.active_leases(now), 1);
        assert_eq!(s.stats().acks, 1);
    }

    #[test]
    fn distinct_clients_get_distinct_addresses() {
        let mut s = server();
        let now = Nanos::ZERO;
        let mut ips = std::collections::HashSet::new();
        for i in 0..10 {
            let offer = s.handle(&discover(i, i), now).unwrap();
            let mut req = DhcpMessage::client(DhcpMessageType::Request, i, MacAddr::local(i));
            req.requested_ip = Some(offer.yiaddr);
            let ack = s.handle(&req, now).unwrap();
            assert!(ips.insert(ack.yiaddr), "duplicate ip {}", ack.yiaddr);
        }
    }

    #[test]
    fn rediscover_reoffers_same_binding() {
        let mut s = server();
        let now = Nanos::ZERO;
        let o1 = s.handle(&discover(1, 1), now).unwrap();
        let mut req = DhcpMessage::client(DhcpMessageType::Request, 1, MacAddr::local(1));
        req.requested_ip = Some(o1.yiaddr);
        s.handle(&req, now).unwrap();
        let o2 = s.handle(&discover(1, 2), Nanos::from_secs(10)).unwrap();
        assert_eq!(o2.yiaddr, o1.yiaddr);
    }

    #[test]
    fn taken_address_naked() {
        let mut s = server();
        let now = Nanos::ZERO;
        let o1 = s.handle(&discover(1, 1), now).unwrap();
        let mut req1 = DhcpMessage::client(DhcpMessageType::Request, 1, MacAddr::local(1));
        req1.requested_ip = Some(o1.yiaddr);
        s.handle(&req1, now).unwrap();
        // Client 2 greedily requests client 1's address.
        let mut req2 = DhcpMessage::client(DhcpMessageType::Request, 2, MacAddr::local(2));
        req2.requested_ip = Some(o1.yiaddr);
        let rep = s.handle(&req2, now).unwrap();
        assert_eq!(rep.msg_type, DhcpMessageType::Nak);
    }

    #[test]
    fn release_frees_address() {
        let mut s = server();
        let now = Nanos::ZERO;
        let o = s.handle(&discover(1, 1), now).unwrap();
        let mut req = DhcpMessage::client(DhcpMessageType::Request, 1, MacAddr::local(1));
        req.requested_ip = Some(o.yiaddr);
        s.handle(&req, now).unwrap();
        let rel = DhcpMessage::client(DhcpMessageType::Release, 2, MacAddr::local(1));
        assert!(s.handle(&rel, now).is_none());
        assert_eq!(s.active_leases(now), 0);
        // Another client can now take it.
        let mut req2 = DhcpMessage::client(DhcpMessageType::Request, 3, MacAddr::local(2));
        req2.requested_ip = Some(o.yiaddr);
        assert_eq!(s.handle(&req2, now).unwrap().msg_type, DhcpMessageType::Ack);
    }

    #[test]
    fn leases_expire() {
        let mut s = server();
        let now = Nanos::ZERO;
        let o = s.handle(&discover(1, 1), now).unwrap();
        let mut req = DhcpMessage::client(DhcpMessageType::Request, 1, MacAddr::local(1));
        req.requested_ip = Some(o.yiaddr);
        s.handle(&req, now).unwrap();
        let later = Nanos::from_secs(3601);
        assert_eq!(s.active_leases(later), 0);
        // The expired address is reusable by another client.
        let mut req2 = DhcpMessage::client(DhcpMessageType::Request, 2, MacAddr::local(2));
        req2.requested_ip = Some(o.yiaddr);
        assert_eq!(
            s.handle(&req2, later).unwrap().msg_type,
            DhcpMessageType::Ack
        );
    }

    #[test]
    fn pool_exhaustion_stops_offers() {
        let cfg = DhcpConfig {
            range_len: 2,
            ..DhcpConfig::default()
        };
        let mut s = DhcpServer::new(cfg);
        let now = Nanos::ZERO;
        for i in 0..2 {
            let o = s.handle(&discover(i, i), now).unwrap();
            let mut req = DhcpMessage::client(DhcpMessageType::Request, i, MacAddr::local(i));
            req.requested_ip = Some(o.yiaddr);
            s.handle(&req, now).unwrap();
        }
        assert!(s.handle(&discover(99, 99), now).is_none());
    }

    #[test]
    fn request_without_address_is_naked() {
        let mut s = server();
        let req = DhcpMessage::client(DhcpMessageType::Request, 7, MacAddr::local(7));
        assert_eq!(
            s.handle(&req, Nanos::ZERO).unwrap().msg_type,
            DhcpMessageType::Nak
        );
    }

    #[test]
    fn replies_carry_network_options() {
        let mut s = server();
        let o = s.handle(&discover(1, 1), Nanos::ZERO).unwrap();
        assert_eq!(o.server_id, Some(s.config.server_ip));
        assert_eq!(o.subnet_mask, Some(s.config.subnet_mask));
        assert_eq!(o.router, Some(s.config.router));
        assert_eq!(o.lease_secs, Some(3600));
    }
}
