//! Driver-domain configuration — the analog of `kite_dd.cfg`.
//!
//! The paper's artifact boots Kite domains from `xl` config files naming
//! the image, memory, vCPUs and the passthrough PCI BDF. This module is
//! that file as a typed struct plus a minimal parser for the `key = value`
//! format the artifact uses.

use kite_xen::Bdf;

/// What kind of driver domain to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DriverDomainKind {
    /// Network domain: netback + NIC driver + bridge app.
    Network,
    /// Storage domain: blkback + NVMe driver + block status app.
    Storage,
}

/// A driver-domain configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainConfig {
    /// Domain name (`xl list`).
    pub name: String,
    /// Kind.
    pub kind: DriverDomainKind,
    /// Memory in MiB (the paper gives Kite domains 1 GiB vs Linux's 2 GiB).
    pub memory_mib: u64,
    /// Virtual CPUs (1 suffices per the paper; more supported).
    pub vcpus: u32,
    /// Passthrough device BDF.
    pub pci: Bdf,
}

impl DomainConfig {
    /// The paper's Kite network-domain configuration.
    pub fn kite_network(bdf: Bdf) -> DomainConfig {
        DomainConfig {
            name: "netbackend".into(),
            kind: DriverDomainKind::Network,
            memory_mib: 1024,
            vcpus: 1,
            pci: bdf,
        }
    }

    /// The paper's Kite storage-domain configuration.
    pub fn kite_storage(bdf: Bdf) -> DomainConfig {
        DomainConfig {
            name: "blkbackend".into(),
            kind: DriverDomainKind::Storage,
            memory_mib: 1024,
            vcpus: 1,
            pci: bdf,
        }
    }

    /// Parses an `xl`-style config fragment:
    ///
    /// ```text
    /// name = "netbackend"
    /// kind = "network"
    /// memory = 1024
    /// vcpus = 1
    /// pci = ["03:00.0,permissive=1"]
    /// ```
    pub fn parse(text: &str) -> Result<DomainConfig, String> {
        let mut name = None;
        let mut kind = None;
        let mut memory = 1024u64;
        let mut vcpus = 1u32;
        let mut pci = None;
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("bad line: {line}"))?;
            let k = k.trim();
            let v = v.trim().trim_matches(|c| c == '"' || c == '[' || c == ']');
            match k {
                "name" => name = Some(v.trim_matches('"').to_string()),
                "kind" => {
                    kind = Some(match v.trim_matches('"') {
                        "network" => DriverDomainKind::Network,
                        "storage" => DriverDomainKind::Storage,
                        other => return Err(format!("unknown kind: {other}")),
                    })
                }
                "memory" => memory = v.parse().map_err(|e| format!("memory: {e}"))?,
                "vcpus" => vcpus = v.parse().map_err(|e| format!("vcpus: {e}"))?,
                "pci" => {
                    let bdf_str = v.trim_matches('"').split(',').next().ok_or("empty pci")?;
                    pci = Some(bdf_str.parse::<Bdf>().map_err(|e| format!("pci: {e}"))?);
                }
                other => return Err(format!("unknown key: {other}")),
            }
        }
        Ok(DomainConfig {
            name: name.ok_or("missing name")?,
            kind: kind.ok_or("missing kind")?,
            memory_mib: memory,
            vcpus,
            pci: pci.ok_or("missing pci")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_setup() {
        let c = DomainConfig::kite_network("03:00.0".parse().unwrap());
        assert_eq!(c.memory_mib, 1024, "paper: Kite domains get 1GB");
        assert_eq!(c.vcpus, 1, "paper: one vCPU suffices");
        let s = DomainConfig::kite_storage("04:00.0".parse().unwrap());
        assert_eq!(s.kind, DriverDomainKind::Storage);
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"
            # Kite network domain
            name = "netbackend"
            kind = "network"
            memory = 1024
            vcpus = 1
            pci = ["03:00.0,permissive=1"]
        "#;
        let c = DomainConfig::parse(text).unwrap();
        assert_eq!(c, DomainConfig::kite_network("03:00.0".parse().unwrap()));
    }

    #[test]
    fn parse_errors() {
        assert!(DomainConfig::parse("kind = \"network\"").is_err()); // no name/pci
        assert!(DomainConfig::parse("name = \"x\"\nkind = \"weird\"\npci = [\"0:0.0\"]").is_err());
        assert!(DomainConfig::parse("garbage").is_err());
        assert!(
            DomainConfig::parse("name = \"x\"\nkind = \"network\"\npci = [\"zz:00.0\"]").is_err()
        );
    }

    #[test]
    fn defaults_applied() {
        let c =
            DomainConfig::parse("name = \"n\"\nkind = \"storage\"\npci = [\"01:00.0\"]").unwrap();
        assert_eq!(c.memory_mib, 1024);
        assert_eq!(c.vcpus, 1);
    }
}
