//! The Kite blkback driver (§3.3, §4.4 of the paper).
//!
//! One instance serves one blkfront. The paper's three storage
//! optimizations are all implemented and individually switchable (for
//! the ablation benches):
//!
//! * **request batching** — consecutive-sector segments from one or more
//!   requests merge into fewer, larger device operations;
//! * **persistent grant references** — mappings of frequently reused guest
//!   pages are cached, avoiding the map/unmap hypercalls (and their TLB
//!   shootdowns) per request;
//! * **indirect segments** — requests carrying up to 32 segments (the
//!   Linux-compatible cap) via descriptor pages, lifting the 11-segment /
//!   44 KiB direct-request limit that starves NVMe devices.
//!
//! Threading follows the paper: the event handler wakes one request
//! thread; responses are pushed asynchronously from device-completion
//! callbacks so later requests are never blocked behind earlier ones.
//!
//! The device side is submit-then-reap over NVMe queue pairs: each ring
//! lazily creates one I/O SQ/CQ pair whose completion vector is steered
//! to the ring's own vCPU, posts its whole merged batch, rings the
//! doorbell once, and later reaps CQ entries in
//! [`BlkbackInstance::reap_completions`] when the system layer delivers
//! the completion interrupt. Each queue pair keeps its own sequential
//! cursor inside the controller, so rings never poison each other's
//! sequential detection.
//!
//! When the frontend negotiated `multi-queue-num-queues = n`, the
//! instance runs `n` independent rings, each with its own event channel,
//! request thread, persistent-grant cache and bounce pool (per-ring, as
//! in Linux `xen-blkback` — caches are never shared across rings, so no
//! cross-ring locking). Responses always return on the ring the request
//! arrived on.

use std::collections::HashMap;

use kite_devices::{NvmeCmd, NvmeController, NvmeOp, QueueId};
use kite_rumprun::OsProfile;
use kite_sim::Nanos;
use kite_trace::EventKind;
use kite_xen::blkif::{
    unpack_indirect_segments, BlkifRequest, BlkifResponse, BlkifSegment, BLKIF_OP_FLUSH_DISKCACHE,
    BLKIF_OP_READ, BLKIF_OP_WRITE, BLKIF_RSP_ERROR, BLKIF_RSP_OKAY, SECTOR_SIZE,
};
use kite_xen::ring::BackRing;
use kite_xen::xenbus::{MQ_MAX_QUEUES_KEY, MQ_NUM_QUEUES_KEY};
use kite_xen::{
    CopyMode, CopySide, DevicePaths, DomainId, GrantCopyOp, GrantRef, Hypervisor, MapHandle,
    PageId, Port, ReqId, ReqStage, Result, SlotClass, XenError, XenbusState, PAGE_SIZE,
};

use crate::netback::DEFAULT_MAX_QUEUES;
use crate::stats::CopyStats;

/// The indirect-segment cap Kite advertises (Linux-compatible, §3.3).
pub const MAX_INDIRECT_SEGMENTS: usize = 32;

/// Optimization switches (all on by default; benches ablate them).
#[derive(Clone, Copy, Debug)]
pub struct BlkbackTuning {
    /// Merge consecutive-sector segments into larger device ops.
    pub batching: bool,
    /// Cache grant mappings across requests.
    pub persistent_grants: bool,
    /// Accept indirect-segment requests.
    pub indirect_segments: bool,
    /// Persistent-grant cache capacity (mappings), per ring.
    pub persistent_cap: usize,
    /// Move segment payloads with batched `GNTTABOP_copy` instead of
    /// map/memcpy/unmap. Only effective when `persistent_grants` is off:
    /// a negotiated persistent mapping is always cheaper than a copy, so
    /// (as in real blkback) the persistent data path wins when enabled.
    pub grant_copy: bool,
}

impl Default for BlkbackTuning {
    fn default() -> Self {
        BlkbackTuning {
            batching: true,
            persistent_grants: true,
            indirect_segments: true,
            persistent_cap: 1056,
            grant_copy: true,
        }
    }
}

/// Statistics of one blkback instance (summed across its rings).
#[derive(Clone, Copy, Debug, Default)]
pub struct BlkbackStats {
    /// Requests processed.
    pub requests: u64,
    /// Device operations issued (affected by batching).
    pub device_ops: u64,
    /// Bytes read from the device for the guest.
    pub read_bytes: u64,
    /// Bytes written to the device for the guest.
    pub write_bytes: u64,
    /// Persistent-grant cache hits.
    pub persistent_hits: u64,
    /// Grant map hypercalls issued.
    pub grant_maps: u64,
    /// Malformed or out-of-range requests rejected.
    pub errors: u64,
    /// Grant-copy hypercall accounting for the segment data paths.
    pub copy: CopyStats,
}

impl BlkbackStats {
    /// Mean bytes moved per grant-copy hypercall.
    pub fn bytes_per_hypercall(&self) -> f64 {
        self.copy.bytes_per_hypercall()
    }

    /// Folds another instance's counters into this one — used by the
    /// system layer to keep lifetime stats across backend restarts.
    pub fn merge(&mut self, other: &BlkbackStats) {
        self.requests += other.requests;
        self.device_ops += other.device_ops;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.persistent_hits += other.persistent_hits;
        self.grant_maps += other.grant_maps;
        self.errors += other.errors;
        self.copy.merge(&other.copy);
    }

    /// Appends the request counters and copy accounting to a snapshot.
    pub fn append_metrics(&self, snap: &mut kite_trace::MetricsSnapshot) {
        snap.push_int("requests", "count", self.requests);
        snap.push_int("device_ops", "count", self.device_ops);
        snap.push_int("read_bytes", "bytes", self.read_bytes);
        snap.push_int("write_bytes", "bytes", self.write_bytes);
        snap.push_int("persistent_hits", "count", self.persistent_hits);
        snap.push_int("grant_maps", "count", self.grant_maps);
        snap.push_int("errors", "count", self.errors);
        self.copy.append_metrics(snap, "copy_");
    }
}

/// A request that failed validation and never reached the device; the
/// system layer schedules its error response at `respond_at`.
#[derive(Clone, Copy, Debug)]
pub struct BlkFailure {
    /// The frontend's request id.
    pub req_id: u64,
    /// When the error response becomes deliverable.
    pub respond_at: Nanos,
}

/// Result of one request-thread batch.
#[derive(Debug, Default)]
pub struct BlkBatch {
    /// Requests rejected during validation — they bypass the device and
    /// complete through [`BlkbackInstance::complete`].
    pub failures: Vec<BlkFailure>,
    /// Completion interrupts to schedule: `(ring, fire_at)` per CQ entry
    /// the doorbell posted. The system layer delivers each by calling
    /// [`BlkbackInstance::reap_completions`] on the vCPU of the queue
    /// pair's MSI-X vector.
    pub cq_irqs: Vec<(usize, Nanos)>,
    /// vCPU cost of parsing, mapping and copying.
    pub cost: Nanos,
    /// More ring requests remain after the budget.
    pub more: bool,
}

/// Result of a completion callback or CQ reap.
#[derive(Debug, Default)]
pub struct BlkComplete {
    /// Bitmask of rings whose frontend must be notified (bit `q` →
    /// notify on [`BlkbackInstance::port_of`]`(q)`). A reap normally
    /// touches only its own ring; rings sharing a queue pair (controller
    /// cap exhausted) can fan out.
    pub notify_rings: u64,
    /// Requests completed by this call.
    pub completed: u32,
    /// vCPU cost of the callback (response pushes, unmaps).
    pub cost: Nanos,
}

struct InFlight {
    op: u8,
    /// Ring the request arrived on — its response returns there.
    ring: usize,
    unmap: Vec<MapHandle>,
    status: i16,
}

struct PersistentCache {
    map: HashMap<GrantRef, (MapHandle, PageId, u64)>,
    cap: usize,
    tick: u64,
}

impl PersistentCache {
    fn new(cap: usize) -> Self {
        PersistentCache {
            map: HashMap::new(),
            cap,
            tick: 0,
        }
    }

    fn get(&mut self, gref: GrantRef) -> Option<PageId> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&gref).map(|e| {
            e.2 = tick;
            e.1
        })
    }

    /// Inserts; returns an evicted mapping handle the caller must unmap.
    fn insert(&mut self, gref: GrantRef, handle: MapHandle, page: PageId) -> Option<MapHandle> {
        self.tick += 1;
        let mut evicted = None;
        if self.map.len() >= self.cap {
            if let Some((&old, _)) = self.map.iter().min_by_key(|&(_, &(_, _, t))| t) {
                evicted = self.map.remove(&old).map(|(h, _, _)| h);
            }
        }
        self.map.insert(gref, (handle, page, self.tick));
        evicted
    }
}

/// One ring of a blkback instance: the shared ring mapped from the
/// frontend, its event channel, and the ring-private persistent-grant
/// cache and bounce pool its request thread works through.
struct BbRing {
    evtchn: Port,
    ring: BackRing<BlkifRequest, BlkifResponse>,
    ring_page: PageId,
    _ring_map: MapHandle,
    persistent: PersistentCache,
    /// Lazily grown bounce pages staging grant-copy payloads.
    bounce: Vec<PageId>,
    /// The NVMe I/O queue pair this ring submits through, created on the
    /// first drain (connect has no device access). The completion vector
    /// is steered to this ring's vCPU.
    qid: Option<QueueId>,
    /// Fault-injection: a wedged ring's request thread never runs.
    wedged: bool,
}

/// One blkback instance.
pub struct BlkbackInstance {
    /// Driver domain running this backend.
    pub back: DomainId,
    /// Guest domain of the paired frontend.
    pub front: DomainId,
    /// Device index.
    pub index: u32,
    rings: Vec<BbRing>,
    tuning: BlkbackTuning,
    in_flight: HashMap<u64, InFlight>,
    /// NVMe command id → the frontend request ids a merged run carries.
    cids: HashMap<u64, Vec<u64>>,
    profile: OsProfile,
    stats: BlkbackStats,
    device_sectors: u64,
    copy_mode: CopyMode,
    // Drain-path scratch, recycled across calls so a warmed-up request
    // thread performs no bookkeeping allocations.
    scratch_runs: Vec<Run>,
    scratch_run_reqs: Vec<u64>,
    scratch_flushes: Vec<u64>,
    spare_cid_reqs: Vec<Vec<u64>>,
    /// Traced requests consumed in the current batch — `(frontend id,
    /// req)` pairs kept so merged-run submission can hand each sample to
    /// its NVMe command id. Empty whenever request tracing is off.
    scratch_req: Vec<(u64, ReqId)>,
}

/// A mergeable device run pending submission: contiguous same-op
/// requests batched into one NVMe operation. The owning request ids
/// live in a shared scratch buffer (`scratch_run_reqs`) starting at
/// `reqs_start` — runs are built append-only, so each run's ids are a
/// contiguous slice ending where the next run's begin.
struct Run {
    sector: u64,
    bytes: usize,
    op: u8,
    reqs_start: usize,
}

impl BlkbackInstance {
    /// Connects to a frontend: advertises device properties and features
    /// in xenstore, maps every negotiated ring, binds its event channels,
    /// switches the backend state to `Connected`.
    ///
    /// The ring count is the frontend's `multi-queue-num-queues` (1 when
    /// absent — the legacy flat layout), validated against this backend's
    /// own `multi-queue-max-queues` advertisement.
    pub fn connect(
        hv: &mut Hypervisor,
        paths: &DevicePaths,
        profile: OsProfile,
        tuning: BlkbackTuning,
        device_sectors: u64,
    ) -> Result<Self> {
        let back = paths.back;
        let front = paths.front;
        let be = paths.backend();
        // Advertise properties first (§4.4 initialization order).
        hv.store.write(
            back,
            None,
            &format!("{be}/sectors"),
            &device_sectors.to_string(),
        )?;
        hv.store.write(
            back,
            None,
            &format!("{be}/sector-size"),
            &SECTOR_SIZE.to_string(),
        )?;
        hv.store
            .write(back, None, &format!("{be}/feature-flush-cache"), "1")?;
        hv.store.write(
            back,
            None,
            &format!("{be}/feature-persistent"),
            if tuning.persistent_grants { "1" } else { "0" },
        )?;
        hv.store.write(
            back,
            None,
            &format!("{be}/feature-max-indirect-segments"),
            &if tuning.indirect_segments {
                MAX_INDIRECT_SEGMENTS.to_string()
            } else {
                "0".to_string()
            },
        )?;
        let fe = paths.frontend();
        let nrings = hv
            .store
            .read(back, None, &format!("{fe}/{MQ_NUM_QUEUES_KEY}"))
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1)
            .max(1);
        let max = hv
            .store
            .read(back, None, &format!("{be}/{MQ_MAX_QUEUES_KEY}"))
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(DEFAULT_MAX_QUEUES);
        if nrings > max {
            return Err(XenError::Inval);
        }
        let mut rings = Vec::with_capacity(nrings as usize);
        for k in 0..nrings {
            let root = paths.frontend_queue_root(nrings, k);
            let ring_ref = GrantRef(
                hv.store
                    .read(back, None, &format!("{root}/ring-ref"))?
                    .parse()
                    .map_err(|_| XenError::Inval)?,
            );
            let remote_port = Port(
                hv.store
                    .read(back, None, &format!("{root}/event-channel"))?
                    .parse()
                    .map_err(|_| XenError::Inval)?,
            );
            let (ring_map, _) = hv.map_grant(back, front, ring_ref)?;
            let (evtchn, _) = hv.evtchn_bind(back, front, remote_port)?;
            rings.push(BbRing {
                evtchn,
                ring: BackRing::attach(),
                ring_page: ring_map.page,
                _ring_map: ring_map.handle,
                persistent: PersistentCache::new(tuning.persistent_cap),
                bounce: Vec::new(),
                qid: None,
                wedged: false,
            });
        }
        hv.switch_state(back, &paths.backend_state(), XenbusState::Connected)?;
        Ok(BlkbackInstance {
            back,
            front,
            index: paths.index,
            rings,
            tuning,
            in_flight: HashMap::new(),
            cids: HashMap::new(),
            profile,
            stats: BlkbackStats::default(),
            device_sectors,
            copy_mode: CopyMode::Batched,
            scratch_runs: Vec::new(),
            scratch_run_reqs: Vec::new(),
            scratch_flushes: Vec::new(),
            spare_cid_reqs: Vec::new(),
            scratch_req: Vec::new(),
        })
    }

    /// Instance statistics.
    pub fn stats(&self) -> BlkbackStats {
        self.stats
    }

    /// Number of negotiated rings.
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// Ring `q`'s backend-local event-channel port.
    pub fn port_of(&self, q: usize) -> Port {
        self.rings[q].evtchn
    }

    /// The NVMe queue pair ring `q` submits through, once its first
    /// drain has created it.
    pub fn qid_of(&self, q: usize) -> Option<QueueId> {
        self.rings[q].qid
    }

    /// Ensures ring `q` has an I/O queue pair, creating one with its
    /// completion vector steered to vCPU `q` (one ring ↔ one vCPU in the
    /// driver domain's `CpuPool`). If the controller's queue cap is
    /// already exhausted, the ring shares an existing pair round-robin —
    /// the same degradation blk-mq applies when a device offers fewer
    /// hardware queues than there are contexts.
    fn ensure_queue(&mut self, device: &mut NvmeController, q: usize) -> QueueId {
        if let Some(qid) = self.rings[q].qid {
            return qid;
        }
        let qid = device.create_io_queues(q).unwrap_or_else(|| {
            let shared: Vec<QueueId> = self.rings.iter().filter_map(|r| r.qid).collect();
            assert!(
                !shared.is_empty(),
                "NVMe controller has no I/O queue pair available for blkback"
            );
            shared[q % shared.len()]
        });
        self.rings[q].qid = Some(qid);
        qid
    }

    /// True if `port` belongs to any of this instance's rings.
    pub fn owns_port(&self, port: Port) -> bool {
        self.rings.iter().any(|r| r.evtchn == port)
    }

    /// How grant copies are issued (batched vs. one hypercall per op).
    pub fn copy_mode(&self) -> CopyMode {
        self.copy_mode
    }

    /// Switches between batched and single-op grant copies (ablation).
    pub fn set_copy_mode(&mut self, mode: CopyMode) {
        self.copy_mode = mode;
    }

    /// Wedges (or unwedges) one ring's request thread (fault injection).
    pub fn set_queue_wedged(&mut self, q: usize, wedged: bool) {
        self.rings[q].wedged = wedged;
    }

    /// Whether the grant-copy data path is active (copies are only used
    /// when persistent grants are not negotiated).
    fn use_copy(&self) -> bool {
        self.tuning.grant_copy && !self.tuning.persistent_grants
    }

    fn ensure_bounce(&mut self, hv: &mut Hypervisor, q: usize, n: usize) -> Result<()> {
        while self.rings[q].bounce.len() < n {
            let page = hv.alloc_page(self.back)?;
            self.rings[q].bounce.push(page);
        }
        Ok(())
    }

    /// The event handler's cost (ack + wake the request thread).
    pub fn irq_handler_cost(&self) -> Nanos {
        self.profile.irq_overhead
    }

    /// The trace label for ring-drain events (`None` keeps single-ring
    /// exports byte-identical to the legacy layout).
    fn qid(&self, q: usize) -> Option<u16> {
        if self.rings.len() > 1 {
            Some(q as u16)
        } else {
            None
        }
    }

    /// Resolves a guest data page through ring `q`'s cache: persistent
    /// hit or a fresh map.
    ///
    /// Returns the page plus the handle to unmap at completion when the
    /// mapping is *not* persistent.
    fn resolve_page(
        &mut self,
        hv: &mut Hypervisor,
        q: usize,
        gref: GrantRef,
        cost: &mut Nanos,
    ) -> Result<(PageId, Option<MapHandle>)> {
        if self.tuning.persistent_grants {
            if let Some(page) = self.rings[q].persistent.get(gref) {
                self.stats.persistent_hits += 1;
                return Ok((page, None));
            }
        }
        let (mapping, c) = hv.map_grant(self.back, self.front, gref)?;
        self.stats.grant_maps += 1;
        *cost += c;
        if self.tuning.persistent_grants {
            if let Some(evicted) =
                self.rings[q]
                    .persistent
                    .insert(gref, mapping.handle, mapping.page)
            {
                *cost += hv.unmap_grant(self.back, evicted)?;
            }
            Ok((mapping.page, None))
        } else {
            Ok((mapping.page, Some(mapping.handle)))
        }
    }

    /// Extracts the effective segment list of a request, mapping indirect
    /// descriptor pages as needed.
    fn segments_of(
        &mut self,
        hv: &mut Hypervisor,
        q: usize,
        req: &BlkifRequest,
        cost: &mut Nanos,
    ) -> Result<Vec<BlkifSegment>> {
        match req {
            BlkifRequest::Direct { segments, .. } => Ok(segments.clone()),
            BlkifRequest::Indirect {
                nr_segments,
                indirect_grefs,
                ..
            } => {
                if !self.tuning.indirect_segments {
                    return Err(XenError::Inval);
                }
                let n = *nr_segments as usize;
                if n > MAX_INDIRECT_SEGMENTS {
                    return Err(XenError::Inval);
                }
                if self.use_copy() {
                    // Pull all descriptor pages with one batched copy
                    // instead of a map/unmap pair per page.
                    let per_frame = kite_xen::blkif::SEGS_PER_INDIRECT_FRAME;
                    let frames = n.div_ceil(per_frame).min(indirect_grefs.len());
                    self.ensure_bounce(hv, q, frames)?;
                    let ops: Vec<GrantCopyOp> = indirect_grefs[..frames]
                        .iter()
                        .enumerate()
                        .map(|(i, gref)| GrantCopyOp {
                            src: CopySide::Grant {
                                granter: self.front,
                                gref: *gref,
                                offset: 0,
                            },
                            dst: CopySide::Local {
                                page: self.rings[q].bounce[i],
                                offset: 0,
                            },
                            len: PAGE_SIZE,
                        })
                        .collect();
                    let result = hv.grant_copy_ops(self.back, &ops, self.copy_mode);
                    self.stats.copy.record(self.copy_mode, ops.len(), &result);
                    *cost += result.cost;
                    if !result.all_ok() {
                        return Err(XenError::BadGrant);
                    }
                    let mut segs = Vec::with_capacity(n);
                    let mut remaining = n;
                    for i in 0..frames {
                        let take = remaining.min(per_frame);
                        let bytes = hv.mem.page(self.rings[q].bounce[i])?;
                        segs.extend(unpack_indirect_segments(bytes, take));
                        remaining -= take;
                    }
                    return Ok(segs);
                }
                let mut segs = Vec::with_capacity(n);
                let mut remaining = n;
                for gref in indirect_grefs {
                    if remaining == 0 {
                        break;
                    }
                    let (page, unmap) = self.resolve_page(hv, q, *gref, cost)?;
                    let take = remaining.min(kite_xen::blkif::SEGS_PER_INDIRECT_FRAME);
                    let bytes = hv.mem.page(page)?;
                    segs.extend(unpack_indirect_segments(bytes, take));
                    remaining -= take;
                    if let Some(h) = unmap {
                        *cost += hv.unmap_grant(self.back, h)?;
                    }
                }
                Ok(segs)
            }
        }
    }

    /// The request thread body for ring `q`: drains up to `budget` ring
    /// requests, validates them, moves data and submits device
    /// operations.
    pub fn request_thread_run(
        &mut self,
        hv: &mut Hypervisor,
        device: &mut NvmeController,
        q: usize,
        now: Nanos,
        budget: usize,
    ) -> Result<BlkBatch> {
        let _prof = kite_prof::span(kite_prof::Phase::BlkbackSubmit);
        let mut batch = BlkBatch::default();
        if self.rings[q].wedged {
            return Ok(batch);
        }
        let mut runs = std::mem::take(&mut self.scratch_runs);
        let mut run_reqs = std::mem::take(&mut self.scratch_run_reqs);
        let mut flushes = std::mem::take(&mut self.scratch_flushes);

        for _ in 0..budget {
            let req = {
                let rq = &mut self.rings[q];
                let page = hv.mem.page(rq.ring_page)?;
                match rq.ring.consume_request(page)? {
                    Some(r) => r,
                    None => break,
                }
            };
            batch.cost += self.profile.per_block_request;
            self.stats.requests += 1;
            let id = req.id();
            let op = req.io_op();
            if let Some(r) = hv.req.take(SlotClass::BlkReq, id) {
                hv.req.stamp_at(
                    r,
                    ReqStage::BackendFetch,
                    self.back.0,
                    self.qid(q),
                    now + batch.cost,
                );
                self.scratch_req.push((id, r));
            }
            if op == BLKIF_OP_FLUSH_DISKCACHE {
                self.in_flight.insert(
                    id,
                    InFlight {
                        op,
                        ring: q,
                        unmap: Vec::new(),
                        status: BLKIF_RSP_OKAY,
                    },
                );
                flushes.push(id);
                continue;
            }
            if op != BLKIF_OP_READ && op != BLKIF_OP_WRITE {
                self.fail_request(id, op, q);
                batch.failures.push(BlkFailure {
                    req_id: id,
                    respond_at: now + batch.cost,
                });
                continue;
            }
            let segs = match self.segments_of(hv, q, &req, &mut batch.cost) {
                Ok(s) => s,
                Err(_) => {
                    self.fail_request(id, op, q);
                    batch.failures.push(BlkFailure {
                        req_id: id,
                        respond_at: now + batch.cost,
                    });
                    continue;
                }
            };
            let total_sectors: u64 = segs.iter().map(|s| s.sectors()).sum();
            if segs.iter().any(|s| s.is_empty() || s.last_sect > 7)
                || req.sector() + total_sectors > self.device_sectors
            {
                self.fail_request(id, op, q);
                batch.failures.push(BlkFailure {
                    req_id: id,
                    respond_at: now + batch.cost,
                });
                continue;
            }
            // Move data between guest pages and the (real) device bytes:
            // one batched grant copy per request's segment list, or the
            // legacy per-segment map/memcpy/unmap path.
            let mut unmap = Vec::new();
            let ok = if self.use_copy() {
                self.copy_request_data(hv, device, q, &segs, req.sector(), op, &mut batch.cost)?
            } else {
                self.map_request_data(
                    hv,
                    device,
                    q,
                    &segs,
                    req.sector(),
                    op,
                    &mut batch.cost,
                    &mut unmap,
                )?
            };
            if !ok {
                self.fail_request(id, op, q);
                batch.failures.push(BlkFailure {
                    req_id: id,
                    respond_at: now + batch.cost,
                });
                continue;
            }
            if self.use_copy() {
                if let Some(&(sid, r)) = self.scratch_req.last() {
                    if sid == id {
                        hv.req.stamp_at(
                            r,
                            ReqStage::GrantCopy,
                            self.back.0,
                            self.qid(q),
                            now + batch.cost,
                        );
                    }
                }
            }
            self.in_flight.insert(
                id,
                InFlight {
                    op,
                    ring: q,
                    unmap,
                    status: BLKIF_RSP_OKAY,
                },
            );
            // Merge into device runs (batching): a request whose start
            // sector continues the previous run of the same op joins it.
            let bytes = total_sectors as usize * SECTOR_SIZE;
            let start = req.sector();
            match runs.last_mut() {
                Some(r)
                    if self.tuning.batching
                        && r.op == op
                        && r.sector + (r.bytes / SECTOR_SIZE) as u64 == start =>
                {
                    r.bytes += bytes;
                }
                _ => runs.push(Run {
                    sector: start,
                    bytes,
                    op,
                    reqs_start: run_reqs.len(),
                }),
            }
            run_reqs.push(id);
        }

        // Post merged runs to this ring's NVMe queue pair, then ring the
        // doorbell once for the whole batch. The doorbell returns the CQ
        // entries it posted; the system layer turns them into completion
        // interrupts on the queue's MSI-X vCPU (submit-then-reap).
        let submit_at = now + batch.cost;
        if !runs.is_empty() || !flushes.is_empty() {
            let qid = self.ensure_queue(device, q);
            for (k, r) in runs.iter().enumerate() {
                let kind = if r.op == BLKIF_OP_READ {
                    NvmeOp::Read
                } else {
                    NvmeOp::Write
                };
                let cid = device.sq_push(
                    qid,
                    NvmeCmd {
                        op: kind,
                        sector: r.sector,
                        len_bytes: r.bytes,
                    },
                );
                self.stats.device_ops += 1;
                let reqs_end = runs.get(k + 1).map_or(run_reqs.len(), |n| n.reqs_start);
                let merged = &run_reqs[r.reqs_start..reqs_end];
                if let Some(&(_, tr)) = self.scratch_req.iter().find(|(id, _)| merged.contains(id))
                {
                    hv.req.map(SlotClass::NvmeCid, cid.0, tr);
                }
                let mut ids = self.spare_cid_reqs.pop().unwrap_or_default();
                ids.extend_from_slice(merged);
                self.cids.insert(cid.0, ids);
            }
            for &id in &flushes {
                let cid = device.sq_push(qid, NvmeCmd::flush());
                self.stats.device_ops += 1;
                if let Some(&(_, tr)) = self.scratch_req.iter().find(|(fid, _)| *fid == id) {
                    hv.req.map(SlotClass::NvmeCid, cid.0, tr);
                }
                let mut ids = self.spare_cid_reqs.pop().unwrap_or_default();
                ids.push(id);
                self.cids.insert(cid.0, ids);
            }
            for e in device.ring_doorbell(qid, submit_at) {
                batch.cq_irqs.push((q, e.completes_at));
            }
        }
        let consumed = (batch.failures.len() + run_reqs.len() + flushes.len()) as u32;
        let rq = &mut self.rings[q];
        let page = hv.mem.page_mut(rq.ring_page)?;
        batch.more = rq.ring.final_check_for_requests(page);
        if consumed > 0 {
            let delivered = runs.len() as u32;
            let qid = self.qid(q);
            hv.trace.emit_with(self.back.0, || EventKind::RingDrain {
                queue: "blkback_req",
                qid,
                consumed,
                delivered,
                notify: false,
            });
        }
        runs.clear();
        run_reqs.clear();
        flushes.clear();
        self.scratch_req.clear();
        self.scratch_runs = runs;
        self.scratch_run_reqs = run_reqs;
        self.scratch_flushes = flushes;
        Ok(batch)
    }

    /// Legacy data path: maps each segment's page (or hits ring `q`'s
    /// persistent cache) and memcpys between it and the device.
    #[allow(clippy::too_many_arguments)]
    fn map_request_data(
        &mut self,
        hv: &mut Hypervisor,
        device: &mut NvmeController,
        q: usize,
        segs: &[BlkifSegment],
        start_sector: u64,
        op: u8,
        cost: &mut Nanos,
        unmap: &mut Vec<MapHandle>,
    ) -> Result<bool> {
        let mut dev_sector = start_sector;
        for seg in segs {
            let mut c = Nanos::ZERO;
            match self.resolve_page(hv, q, seg.gref, &mut c) {
                Ok((page, h)) => {
                    *cost += c;
                    let off = seg.first_sect as usize * SECTOR_SIZE;
                    let len = seg.len();
                    if op == BLKIF_OP_WRITE {
                        let bytes = hv.mem.page(page)?[off..off + len].to_vec();
                        device.write_data(dev_sector, &bytes);
                        self.stats.write_bytes += len as u64;
                    } else {
                        let mut buf = vec![0u8; len];
                        device.read_data(dev_sector, &mut buf);
                        hv.mem.page_mut(page)?[off..off + len].copy_from_slice(&buf);
                        self.stats.read_bytes += len as u64;
                    }
                    if let Some(h) = h {
                        unmap.push(h);
                    }
                }
                Err(_) => return Ok(false),
            }
            dev_sector += seg.sectors();
        }
        Ok(true)
    }

    /// Grant-copy data path: the whole segment list moves with a single
    /// batched `GNTTABOP_copy` hypercall, staged through ring `q`'s
    /// bounce pages. Writes copy guest→bounce then feed the device;
    /// reads fill the bounce pages from the device then copy
    /// bounce→guest.
    #[allow(clippy::too_many_arguments)]
    fn copy_request_data(
        &mut self,
        hv: &mut Hypervisor,
        device: &mut NvmeController,
        q: usize,
        segs: &[BlkifSegment],
        start_sector: u64,
        op: u8,
        cost: &mut Nanos,
    ) -> Result<bool> {
        self.ensure_bounce(hv, q, segs.len())?;
        let ops: Vec<GrantCopyOp> = segs
            .iter()
            .enumerate()
            .map(|(i, seg)| {
                let guest = CopySide::Grant {
                    granter: self.front,
                    gref: seg.gref,
                    offset: seg.first_sect as usize * SECTOR_SIZE,
                };
                let local = CopySide::Local {
                    page: self.rings[q].bounce[i],
                    offset: 0,
                };
                let (src, dst) = if op == BLKIF_OP_WRITE {
                    (guest, local)
                } else {
                    (local, guest)
                };
                GrantCopyOp {
                    src,
                    dst,
                    len: seg.len(),
                }
            })
            .collect();
        if op == BLKIF_OP_WRITE {
            let result = hv.grant_copy_ops(self.back, &ops, self.copy_mode);
            self.stats.copy.record(self.copy_mode, ops.len(), &result);
            *cost += result.cost;
            if !result.all_ok() {
                return Ok(false);
            }
            let mut dev_sector = start_sector;
            for (i, seg) in segs.iter().enumerate() {
                let len = seg.len();
                let bytes = hv.mem.page(self.rings[q].bounce[i])?[..len].to_vec();
                device.write_data(dev_sector, &bytes);
                self.stats.write_bytes += len as u64;
                dev_sector += seg.sectors();
            }
        } else {
            let mut dev_sector = start_sector;
            for (i, seg) in segs.iter().enumerate() {
                let len = seg.len();
                let mut buf = vec![0u8; len];
                device.read_data(dev_sector, &mut buf);
                hv.mem.page_mut(self.rings[q].bounce[i])?[..len].copy_from_slice(&buf);
                dev_sector += seg.sectors();
            }
            let result = hv.grant_copy_ops(self.back, &ops, self.copy_mode);
            self.stats.copy.record(self.copy_mode, ops.len(), &result);
            *cost += result.cost;
            if !result.all_ok() {
                return Ok(false);
            }
            for seg in segs {
                self.stats.read_bytes += seg.len() as u64;
            }
        }
        Ok(true)
    }

    fn fail_request(&mut self, id: u64, op: u8, q: usize) {
        self.stats.errors += 1;
        self.in_flight.insert(
            id,
            InFlight {
                op,
                ring: q,
                unmap: Vec::new(),
                status: BLKIF_RSP_ERROR,
            },
        );
    }

    /// Completion callback for one request that never reached the device
    /// (validation failure): pushes the error response on the ring the
    /// request arrived on and reports which rings to notify.
    pub fn complete(&mut self, hv: &mut Hypervisor, req_id: u64) -> Result<BlkComplete> {
        let mut out = BlkComplete::default();
        self.complete_one(hv, req_id, &mut out)?;
        self.check_notify(hv, &mut out)?;
        Ok(out)
    }

    /// Pushes one request's response (completion bookkeeping shared by
    /// the reap and failure paths); notify checks are batched separately.
    fn complete_one(
        &mut self,
        hv: &mut Hypervisor,
        req_id: u64,
        out: &mut BlkComplete,
    ) -> Result<()> {
        let fl = self.in_flight.remove(&req_id).ok_or(XenError::Inval)?;
        for h in fl.unmap {
            out.cost += hv.unmap_grant(self.back, h)?;
        }
        let rq = &mut self.rings[fl.ring];
        let page = hv.mem.page_mut(rq.ring_page)?;
        rq.ring.push_response(
            page,
            &BlkifResponse {
                id: req_id,
                operation: fl.op,
                status: fl.status,
            },
        )?;
        out.notify_rings |= 1u64 << fl.ring;
        out.completed += 1;
        out.cost += self.profile.per_block_request / 2;
        Ok(())
    }

    /// Runs the ring notification protocol once per ring that received
    /// responses, replacing the touched bits with the rings whose
    /// frontend actually needs an event.
    fn check_notify(&mut self, hv: &mut Hypervisor, out: &mut BlkComplete) -> Result<()> {
        let touched = out.notify_rings;
        out.notify_rings = 0;
        for q in 0..self.rings.len() {
            if touched & (1u64 << q) == 0 {
                continue;
            }
            let rq = &mut self.rings[q];
            let page = hv.mem.page_mut(rq.ring_page)?;
            if rq.ring.push_responses(page) {
                out.notify_rings |= 1u64 << q;
            }
        }
        Ok(())
    }

    /// The completion-interrupt handler for ring `q`: reaps every CQ
    /// entry due at `now` from the ring's queue pair, unmaps
    /// non-persistent grants, pushes responses on the rings the requests
    /// arrived on, and reports which frontends to notify. Runs on the
    /// vCPU the queue pair's MSI-X vector is steered to.
    pub fn reap_completions(
        &mut self,
        hv: &mut Hypervisor,
        device: &mut NvmeController,
        q: usize,
        now: Nanos,
    ) -> Result<BlkComplete> {
        let _prof = kite_prof::span(kite_prof::Phase::BlkbackReap);
        let mut out = BlkComplete::default();
        let Some(qid) = self.rings[q].qid else {
            return Ok(out);
        };
        while let Some(entry) = device.cq_pop(qid, now) {
            if let Some(r) = hv.req.take(SlotClass::NvmeCid, entry.cid.0) {
                let rq = self.qid(q);
                hv.req
                    .stamp_at(r, ReqStage::NvmeSubmit, self.back.0, rq, entry.submitted_at);
                hv.req
                    .stamp_at(r, ReqStage::NvmeComplete, self.back.0, rq, now);
            }
            let mut ids = self.cids.remove(&entry.cid.0).ok_or(XenError::Inval)?;
            for &id in &ids {
                self.complete_one(hv, id, &mut out)?;
            }
            ids.clear();
            self.spare_cid_reqs.push(ids);
        }
        if out.completed > 0 {
            self.check_notify(hv, &mut out)?;
        }
        Ok(out)
    }

    /// Requests currently on the device.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Ring-progress sample for health monitoring, aggregated across
    /// rings: `(consumed, pending)`.
    pub fn progress(&self, hv: &Hypervisor) -> (u64, u64) {
        self.queue_progress(hv)
            .into_iter()
            .fold((0, 0), |(c, p), (qc, qp)| (c + qc, p + qp))
    }

    /// Per-ring progress watermarks: `(consumed, pending)` for each ring.
    ///
    /// `consumed` is the ring's lifetime consumer watermark — it only
    /// advances when that ring's request thread runs, so successive
    /// samples distinguish one livelocked ring from its idle or busy
    /// siblings. `pending` counts submitted requests not yet consumed.
    pub fn queue_progress(&self, hv: &Hypervisor) -> Vec<(u64, u64)> {
        self.rings
            .iter()
            .map(|rq| {
                let pending = match hv.mem.page(rq.ring_page) {
                    Ok(page) => rq.ring.unconsumed_requests(page) as u64,
                    Err(_) => 0,
                };
                (rq.ring.req_cons() as u64, pending)
            })
            .collect()
    }

    /// Quiesces the instance ahead of teardown: announces `Closing` so the
    /// frontend stops submitting. Mappings stay live until
    /// [`BlkbackInstance::close`] so in-flight completions can finish.
    pub fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()> {
        let paths = DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vbd, self.index);
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closing)
    }

    /// Tears the instance down: closes every ring's channel, releases
    /// every grant mapping (rings, persistent caches, any in-flight
    /// request pages), frees the bounce pools, and walks the backend
    /// state to `Closed`.
    pub fn close(self, hv: &mut Hypervisor) -> Result<()> {
        let paths = DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vbd, self.index);
        for (_, fl) in self.in_flight {
            for h in fl.unmap {
                hv.unmap_grant(self.back, h)?;
            }
        }
        for rq in self.rings {
            let _ = hv.evtchn.close(self.back, rq.evtchn);
            for (_, (h, _, _)) in rq.persistent.map {
                hv.unmap_grant(self.back, h)?;
            }
            hv.unmap_grant(self.back, rq._ring_map)?;
            for page in rq.bounce {
                hv.free_page(self.back, page)?;
            }
        }
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closing)?;
        hv.switch_state(self.back, &paths.backend_state(), XenbusState::Closed)?;
        Ok(())
    }
}

/// Everything a blkback needs besides its device pair: the OS profile,
/// the optimization switches and the backing device's size.
#[derive(Clone, Debug)]
pub struct BlkbackConfig {
    /// Driver-domain OS cost profile.
    pub profile: OsProfile,
    /// Optimization switches.
    pub tuning: BlkbackTuning,
    /// Size of the backing device in sectors.
    pub device_sectors: u64,
}

impl crate::lifecycle::BackendDevice for BlkbackInstance {
    type Config = BlkbackConfig;
    type RunCtx = NvmeController;
    type RunOutput = BlkBatch;
    const KIND: kite_xen::DeviceKind = kite_xen::DeviceKind::Vbd;

    fn connect(hv: &mut Hypervisor, paths: &DevicePaths, cfg: &BlkbackConfig) -> Result<Self> {
        BlkbackInstance::connect(
            hv,
            paths,
            cfg.profile.clone(),
            cfg.tuning,
            cfg.device_sectors,
        )
    }

    fn device_paths(&self) -> DevicePaths {
        DevicePaths::new(self.front, self.back, kite_xen::DeviceKind::Vbd, self.index)
    }

    fn run(
        &mut self,
        hv: &mut Hypervisor,
        device: &mut NvmeController,
        now: Nanos,
        budget: usize,
    ) -> Result<BlkBatch> {
        let mut out = BlkBatch::default();
        for q in 0..self.rings.len() {
            let b = self.request_thread_run(hv, device, q, now, budget)?;
            out.failures.extend(b.failures);
            out.cq_irqs.extend(b.cq_irqs);
            out.cost += b.cost;
            out.more |= b.more;
        }
        Ok(out)
    }

    fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()> {
        BlkbackInstance::suspend(self, hv)
    }

    fn close(self, hv: &mut Hypervisor) -> Result<()> {
        BlkbackInstance::close(self, hv)
    }
}
