//! The unified backend lifecycle API.
//!
//! Netback and blkback used to expose ad-hoc `connect`/`disconnect`
//! pairs; everything that managed them (the backend manager, the system
//! scenarios, the tests) re-implemented the same state walk by hand. This
//! module gives every backend driver one shape:
//!
//! * [`BackendDevice`] — the hooks a driver implements: `connect`, `run`,
//!   `suspend`, `close`, and a provided `reconnect`;
//! * [`DeviceLifecycle`] — the state driver that owns one device slot and
//!   performs the legal transitions (connect when the frontend published,
//!   orderly close, crash abandonment, reconnect after a driver-domain
//!   restart — possibly to a *different* backend domain);
//! * [`RecoveryStats`] — what a system scenario reports about outages:
//!   reconnects, downtime, retried and dropped work.

use kite_sim::Nanos;
use kite_trace::EventKind;
use kite_xen::xenbus::read_state;
use kite_xen::{DeviceKind, DevicePaths, Hypervisor, Result, XenError, XenbusState};

/// Trace identity of a device slot: `<kind>/<frontend-domain>/<index>`.
fn device_label(kind: DeviceKind, paths: &DevicePaths) -> String {
    format!("{}/{}/{}", kind.as_str(), paths.front.0, paths.index)
}

/// Emits a [`EventKind::Lifecycle`] event for a slot transition,
/// attributed to the backend domain.
fn trace_transition(
    hv: &mut Hypervisor,
    kind: DeviceKind,
    paths: &DevicePaths,
    transition: &'static str,
) {
    let back = paths.back.0;
    hv.trace.emit_with(back, || EventKind::Lifecycle {
        device: device_label(kind, paths),
        transition,
    });
}

/// The lifecycle hooks every backend driver implements.
///
/// `run` is the driver's thread body — netback's pusher/soft_start pass,
/// blkback's request thread — parameterized by the external resource it
/// drives (`RunCtx`: nothing for netback, the NVMe device for blkback).
pub trait BackendDevice: Sized {
    /// Everything `connect` needs besides the device pair.
    type Config: Clone;
    /// External resource the run hook drives.
    type RunCtx;
    /// What one run quantum produces for the system layer to schedule.
    type RunOutput;
    /// The xenstore device kind this driver serves.
    const KIND: DeviceKind;

    /// Connects to a frontend that has published its details and flips
    /// the backend state to `Connected`.
    fn connect(hv: &mut Hypervisor, paths: &DevicePaths, cfg: &Self::Config) -> Result<Self>;

    /// The device pair this instance serves.
    fn device_paths(&self) -> DevicePaths;

    /// One bounded work quantum of the driver's thread.
    fn run(
        &mut self,
        hv: &mut Hypervisor,
        ctx: &mut Self::RunCtx,
        now: Nanos,
        budget: usize,
    ) -> Result<Self::RunOutput>;

    /// Quiesces the device and announces `Closing`; resources stay held.
    fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()>;

    /// Full teardown: releases every resource, walks the backend state to
    /// `Closed`.
    fn close(self, hv: &mut Hypervisor) -> Result<()>;

    /// Orderly teardown followed by a fresh connect — the non-crash
    /// reconfiguration path.
    fn reconnect(
        self,
        hv: &mut Hypervisor,
        paths: &DevicePaths,
        cfg: &Self::Config,
    ) -> Result<Self> {
        self.close(hv)?;
        Self::connect(hv, paths, cfg)
    }
}

/// Drives one [`BackendDevice`] slot through its lifecycle.
pub struct DeviceLifecycle<D: BackendDevice> {
    paths: DevicePaths,
    cfg: D::Config,
    device: Option<D>,
    /// Successful connects performed over this slot's lifetime.
    pub connects: u64,
}

impl<D: BackendDevice> DeviceLifecycle<D> {
    /// Creates an empty (disconnected) slot for the device pair.
    pub fn new(paths: DevicePaths, cfg: D::Config) -> DeviceLifecycle<D> {
        DeviceLifecycle {
            paths,
            cfg,
            device: None,
            connects: 0,
        }
    }

    /// The device pair this slot serves.
    pub fn paths(&self) -> &DevicePaths {
        &self.paths
    }

    /// Points the slot at a new device pair — the driver-domain restart
    /// case, where the replacement backend has a fresh domain id. Only
    /// legal while disconnected.
    pub fn retarget(&mut self, hv: &mut Hypervisor, paths: DevicePaths) -> Result<()> {
        if self.device.is_some() {
            return Err(XenError::Inval);
        }
        self.paths = paths;
        trace_transition(hv, D::KIND, &self.paths, "retarget");
        Ok(())
    }

    /// The connected device, if any.
    pub fn device(&self) -> Option<&D> {
        self.device.as_ref()
    }

    /// The connected device, if any.
    pub fn device_mut(&mut self) -> Option<&mut D> {
        self.device.as_mut()
    }

    /// Whether a device is currently connected.
    pub fn is_connected(&self) -> bool {
        self.device.is_some()
    }

    /// The frontend's current xenbus state.
    pub fn frontend_state(&self, hv: &mut Hypervisor) -> XenbusState {
        read_state(&mut hv.store, self.paths.back, &self.paths.frontend_state())
    }

    /// Connects the slot. The frontend must have published its details
    /// (state `Initialised`); connecting an occupied slot is an error.
    pub fn connect(&mut self, hv: &mut Hypervisor) -> Result<&mut D> {
        if self.device.is_some() {
            return Err(XenError::Inval);
        }
        if self.frontend_state(hv) != XenbusState::Initialised {
            return Err(XenError::Again);
        }
        let d = D::connect(hv, &self.paths, &self.cfg)?;
        self.connects += 1;
        self.device = Some(d);
        trace_transition(hv, D::KIND, &self.paths, "connect");
        Ok(self.device.as_mut().expect("just set"))
    }

    /// Quiesces the connected device (`Closing` announced, still held).
    pub fn suspend(&mut self, hv: &mut Hypervisor) -> Result<()> {
        match self.device.as_mut() {
            Some(d) => {
                d.suspend(hv)?;
                trace_transition(hv, D::KIND, &self.paths, "suspend");
                Ok(())
            }
            None => Err(XenError::Inval),
        }
    }

    /// Orderly teardown of the connected device (no-op when empty).
    pub fn close(&mut self, hv: &mut Hypervisor) -> Result<()> {
        match self.device.take() {
            Some(d) => {
                d.close(hv)?;
                trace_transition(hv, D::KIND, &self.paths, "close");
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Crash path: the backend domain died, so no teardown hypercalls can
    /// be issued on its behalf — the slot just abandons the instance
    /// (Xen reclaims a dead domain's grants, maps and ports). Returns the
    /// abandoned instance so the caller can harvest final stats.
    pub fn abandon(&mut self, hv: &mut Hypervisor) -> Option<D> {
        let d = self.device.take();
        if d.is_some() {
            trace_transition(hv, D::KIND, &self.paths, "abandon");
        }
        d
    }

    /// Orderly close (if connected) followed by a fresh connect against
    /// the current paths — [`BackendDevice::reconnect`] driven from the
    /// slot.
    pub fn reconnect(&mut self, hv: &mut Hypervisor) -> Result<&mut D> {
        self.close(hv)?;
        self.connect(hv)
    }
}

/// What a system scenario reports about backend outages and recovery.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Driver-domain crashes observed.
    pub crashes: u64,
    /// Driver-domain livelocks (hang faults) observed.
    pub hangs: u64,
    /// Successful frontend reconnects after a crash.
    pub reconnects: u64,
    /// Total time the backend was down (crash to reconnect).
    pub downtime: Nanos,
    /// Acknowledged-but-unfinished operations replayed after reconnect
    /// (unacked Tx frames, in-flight block requests).
    pub retried_ops: u64,
    /// Frames dropped while the backend was away (world -> guest traffic
    /// has nowhere to go during the outage).
    pub dropped_frames: u64,
    /// Virtual time of the most recent crash.
    pub last_crash_at: Option<Nanos>,
    /// Virtual time the most recent fault was *detected* — when the
    /// toolstack learned the backend was gone and started recovery. The
    /// oracle detector sets this at the fault timestamp; the watchdog
    /// sets it when the health monitor's verdict turns `Failed`.
    pub detect_at: Option<Nanos>,
    /// Virtual time the first payload moved end-to-end after the most
    /// recent crash.
    pub first_byte_at: Option<Nanos>,
}

impl RecoveryStats {
    /// Crash-to-first-byte recovery time of the most recent crash — the
    /// reproduction's analog of the paper's reboot-time table.
    pub fn crash_to_first_byte(&self) -> Option<Nanos> {
        Some(self.first_byte_at? - self.last_crash_at?)
    }

    /// Fault-to-detection latency of the most recent outage: zero for
    /// the oracle, up to `probe_interval × (miss_threshold + 1)` for the
    /// watchdog.
    pub fn detect_latency(&self) -> Option<Nanos> {
        Some(self.detect_at? - self.last_crash_at?)
    }

    /// Marks a crash at `now`, resetting the detection and first-byte
    /// markers.
    pub fn record_crash(&mut self, now: Nanos) {
        self.crashes += 1;
        self.last_crash_at = Some(now);
        self.detect_at = None;
        self.first_byte_at = None;
    }

    /// Marks a livelock at `now`. The hung domain still runs (and beats),
    /// so this is not a crash — but it starts an outage, so the detection
    /// and first-byte markers reset just like [`RecoveryStats::record_crash`].
    pub fn record_hang(&mut self, now: Nanos) {
        self.hangs += 1;
        self.last_crash_at = Some(now);
        self.detect_at = None;
        self.first_byte_at = None;
    }

    /// Marks the moment the most recent fault was detected.
    pub fn record_detect(&mut self, now: Nanos) {
        if self.last_crash_at.is_some() && self.detect_at.is_none() {
            self.detect_at = Some(now);
        }
    }

    /// Marks the first end-to-end payload after the most recent crash.
    ///
    /// Returns whether this call set the marker — the system layer emits
    /// its `first_byte` trace milestone exactly when it did.
    pub fn record_first_byte(&mut self, now: Nanos) -> bool {
        if self.last_crash_at.is_some() && self.first_byte_at.is_none() {
            self.first_byte_at = Some(now);
            return true;
        }
        false
    }

    /// Appends the recovery counters and timings to a snapshot.
    pub fn append_metrics(&self, snap: &mut kite_trace::MetricsSnapshot) {
        snap.push_int("crashes", "count", self.crashes);
        snap.push_int("hangs", "count", self.hangs);
        snap.push_int("reconnects", "count", self.reconnects);
        snap.push_int("downtime", "ns", self.downtime.as_nanos());
        snap.push_int("retried_ops", "count", self.retried_ops);
        snap.push_int("dropped_frames", "count", self.dropped_frames);
        if let Some(lat) = self.detect_latency() {
            snap.push_int("detect_latency", "ns", lat.as_nanos());
        }
        if let Some(cfb) = self.crash_to_first_byte() {
            snap.push_int("crash_to_first_byte", "ns", cfb.as_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{provision_device, BackendManager};
    use crate::netback::NetbackInstance;
    use kite_frontends::Netfront;
    use kite_net::MacAddr;
    use kite_rumprun::kite_profile;
    use kite_xen::{DomainId, DomainKind};

    fn machine() -> (Hypervisor, DomainId, DomainId) {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
        let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);
        (hv, dd, gu)
    }

    #[test]
    fn lifecycle_connect_close_reconnect() {
        let (mut hv, dd, gu) = machine();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        mgr.drain_events(&mut hv).unwrap();

        let mut lc: DeviceLifecycle<NetbackInstance> =
            DeviceLifecycle::new(paths.clone(), kite_profile());
        // Frontend has not published yet: connect must refuse, not panic.
        assert_eq!(lc.connect(&mut hv).err(), Some(XenError::Again));

        let _nf = Netfront::connect(&mut hv, &paths, MacAddr::local(1)).unwrap();
        assert_eq!(mgr.drain_events(&mut hv).unwrap(), vec![paths.clone()]);
        lc.connect(&mut hv).unwrap();
        assert!(lc.is_connected());
        assert_eq!(lc.device().unwrap().device_paths(), paths);
        // Double connect is rejected.
        assert_eq!(lc.connect(&mut hv).err(), Some(XenError::Inval));

        // Suspend announces Closing; close finishes the walk and frees
        // everything the backend mapped.
        lc.suspend(&mut hv).unwrap();
        assert_eq!(
            read_state(&mut hv.store, dd, &paths.backend_state()),
            XenbusState::Closing
        );
        lc.close(&mut hv).unwrap();
        assert!(!lc.is_connected());
        assert_eq!(hv.grants.active_maps(dd), 0);
        assert_eq!(
            read_state(&mut hv.store, dd, &paths.backend_state()),
            XenbusState::Closed
        );

        // Reconnect: the toolstack clears and re-provisions the pair, the
        // frontend republishes, and the same slot connects again.
        mgr.forget(&mut hv, gu, 0).unwrap();
        provision_device(&mut hv, &paths).unwrap();
        let _nf2 = Netfront::connect(&mut hv, &paths, MacAddr::local(1)).unwrap();
        mgr.drain_events(&mut hv).unwrap();
        lc.connect(&mut hv).unwrap();
        assert_eq!(lc.connects, 2);
    }

    #[test]
    fn abandon_gives_back_the_instance_without_teardown() {
        let (mut hv, dd, gu) = machine();
        let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        mgr.drain_events(&mut hv).unwrap();
        let _nf = Netfront::connect(&mut hv, &paths, MacAddr::local(1)).unwrap();
        let mut lc: DeviceLifecycle<NetbackInstance> =
            DeviceLifecycle::new(paths.clone(), kite_profile());
        lc.connect(&mut hv).unwrap();
        let maps = hv.grants.active_maps(dd);
        assert!(maps >= 2);
        let inst = lc.abandon(&mut hv).expect("was connected");
        // No hypercalls ran: mappings are still accounted to the (dead)
        // domain until Xen reclaims it.
        assert_eq!(hv.grants.active_maps(dd), maps);
        assert_eq!(inst.stats().tx_packets, 0);
        assert!(!lc.is_connected());
        // Retarget is now legal.
        let p2 = DevicePaths::new(gu, DomainId(9), DeviceKind::Vif, 0);
        lc.retarget(&mut hv, p2.clone()).unwrap();
        assert_eq!(lc.paths(), &p2);
    }

    #[test]
    fn recovery_stats_first_byte_arithmetic() {
        let mut rs = RecoveryStats::default();
        assert_eq!(rs.crash_to_first_byte(), None);
        assert!(!rs.record_first_byte(Nanos::from_millis(1)));
        assert_eq!(rs.first_byte_at, None, "no crash yet: nothing to mark");
        rs.record_crash(Nanos::from_millis(10));
        assert!(rs.record_first_byte(Nanos::from_millis(17)));
        assert!(!rs.record_first_byte(Nanos::from_millis(25)));
        assert_eq!(rs.crash_to_first_byte(), Some(Nanos::from_millis(7)));
        // A second crash resets the marker.
        rs.record_crash(Nanos::from_millis(40));
        assert_eq!(rs.crash_to_first_byte(), None);
        assert_eq!(rs.crashes, 2);
    }

    #[test]
    fn recovery_stats_detect_latency_arithmetic() {
        let mut rs = RecoveryStats::default();
        assert_eq!(rs.detect_latency(), None);
        rs.record_detect(Nanos::from_millis(1));
        assert_eq!(rs.detect_at, None, "no fault yet: nothing to detect");
        rs.record_crash(Nanos::from_millis(10));
        rs.record_detect(Nanos::from_millis(12));
        // Only the first detection after a fault counts.
        rs.record_detect(Nanos::from_millis(99));
        assert_eq!(rs.detect_latency(), Some(Nanos::from_millis(2)));
        // A new fault resets the marker; a hang counts separately.
        rs.record_hang(Nanos::from_millis(40));
        assert_eq!(rs.detect_latency(), None);
        assert_eq!(rs.crash_to_first_byte(), None);
        assert_eq!((rs.crashes, rs.hangs), (1, 1));
        rs.record_detect(Nanos::from_millis(41));
        assert_eq!(rs.detect_latency(), Some(Nanos::from_millis(1)));
    }
}
