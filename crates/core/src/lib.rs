//! **kite-core**: the paper's contribution — unikernel driver domains.
//!
//! Everything Table 1 lists is here:
//!
//! | Paper component | Module |
//! |---|---|
//! | Blkback (1904 LoC) | [`blkback`] — batching, persistent grants, indirect segments |
//! | Netback (2791 LoC) | [`netback`] — Tx/Rx rings, hypervisor copy, pusher/soft_start threads |
//! | HVM extension (xenbus/xenstore use) | [`backend`] — watch-driven backend invocation |
//! | Configuration apps (450 LoC) | [`netapp`] (bridge + ifconfig/brconfig), [`blockapp`] |
//! | Daemon VM (OpenDHCP) | [`dhcpd`] |
//! | Domain configs (`kite_dd.cfg`) | [`config`] |
//!
//! The drivers are written once and parameterized by an
//! [`kite_rumprun::OsProfile`], so the identical mechanism runs under the
//! Kite profile and the Linux baseline profile — mirroring the paper's
//! statement that Kite mirrors Linux's backend design and optimizations.

pub mod backend;
pub mod blkback;
pub mod blockapp;
pub mod config;
pub mod dhcpd;
pub mod lifecycle;
pub mod netapp;
pub mod netback;
pub mod stats;
pub mod utils;
pub mod xl;

pub use backend::{provision_device, BackendManager};
pub use blkback::{
    BlkBatch, BlkComplete, BlkFailure, BlkbackConfig, BlkbackInstance, BlkbackStats, BlkbackTuning,
    MAX_INDIRECT_SEGMENTS,
};
pub use blockapp::{BlockApp, VbdStatus};
pub use config::{DomainConfig, DriverDomainKind};
pub use dhcpd::{DhcpConfig, DhcpServer, DhcpStats, Lease};
pub use lifecycle::{BackendDevice, DeviceLifecycle, RecoveryStats};
pub use netapp::NetworkApp;
pub use netback::{NetbackInstance, NetbackStats, RxBatch, TxBatch};
pub use stats::CopyStats;
pub use utils::{brconfig, ifconfig, BridgeTable, UtilError};
pub use xl::{Xl, XlDomain, XlError};
