//! Backend invocation: discovering frontends via xenstore watches.
//!
//! §4.1 of the paper: the backend driver sets a watch on its backend root
//! in xenstore; the dedicated watch-handler thread wakes on any path change,
//! queries xenbus for unpaired frontends, and creates a backend instance
//! for each. This module implements that flow plus the toolstack-side
//! provisioning (what `xl` does in Dom0 when a guest config lists a device).

use std::collections::{HashMap, HashSet};

use kite_xen::xenbus::{read_state, switch_state};
use kite_xen::{
    DeviceKind, DevicePaths, DomainId, Hypervisor, Perm, Result, WatchEvent, XenError, XenbusState,
};

/// Provisions the xenstore areas for one device pair, as the toolstack in
/// Dom0 does: creates both directories, grants each side access to the
/// other's area, and sets both states to `Initialising`.
///
/// The state writes go through [`switch_state`], so re-provisioning a
/// device whose previous incarnation is still mid-handshake is rejected;
/// a torn-down (`Closed`) or cleared (`Unknown`) pair re-enters
/// `Initialising` legally.
pub fn provision_device(hv: &mut Hypervisor, paths: &DevicePaths) -> Result<()> {
    let d0 = DomainId::DOM0;
    let fe = paths.frontend();
    let be = paths.backend();
    hv.store.write(d0, None, &format!("{fe}/backend"), &be)?;
    hv.store.write(d0, None, &format!("{be}/frontend"), &fe)?;
    switch_state(
        &mut hv.store,
        d0,
        &paths.frontend_state(),
        XenbusState::Initialising,
    )?;
    switch_state(
        &mut hv.store,
        d0,
        &paths.backend_state(),
        XenbusState::Initialising,
    )?;
    // The frontend's area is writable by the guest, readable by the driver
    // domain — and vice versa.
    hv.store.set_perm(d0, &fe, paths.front, Perm::ReadWrite)?;
    hv.store.set_perm(d0, &fe, paths.back, Perm::Read)?;
    hv.store.set_perm(d0, &be, paths.back, Perm::ReadWrite)?;
    hv.store.set_perm(d0, &be, paths.front, Perm::Read)?;
    Ok(())
}

/// The per-driver-domain backend manager: one watch on the backend root
/// plus one watch per discovered device on the peer frontend's `state`
/// node (as real netback does), one handler thread, instances spawned on
/// demand.
pub struct BackendManager {
    /// The driver domain this manager runs in.
    pub domain: DomainId,
    /// The device kind it serves.
    pub kind: DeviceKind,
    watch: Option<kite_xen::WatchId>,
    /// Per-device frontend-state watches: how the handler learns the
    /// frontend went `Initialised` without rescanning the root.
    front_watches: HashMap<kite_xen::WatchId, (DomainId, u32)>,
    known: HashSet<(DomainId, u32)>,
}

impl BackendManager {
    /// Creates a manager; call [`BackendManager::start`] to arm the watch.
    pub fn new(domain: DomainId, kind: DeviceKind) -> BackendManager {
        BackendManager {
            domain,
            kind,
            watch: None,
            front_watches: HashMap::new(),
            known: HashSet::new(),
        }
    }

    /// Registers the xenstore watch on the backend root. The registration
    /// itself fires once (Xen semantics), which triggers the initial scan.
    pub fn start(&mut self, hv: &mut Hypervisor) -> Result<()> {
        let root = DevicePaths::backend_root(self.domain, self.kind);
        // Ensure the root exists so the directory scan works even before
        // the first device is provisioned.
        let _ = hv.store.write(DomainId::DOM0, None, &root, "");
        hv.store
            .set_perm(DomainId::DOM0, &root, self.domain, Perm::ReadWrite)?;
        let w = hv.store.watch(self.domain, &root, "backend-root")?;
        self.watch = Some(w);
        Ok(())
    }

    /// True when the event is for this manager's root watch or one of its
    /// per-device frontend watches.
    pub fn owns_event(&self, ev: &WatchEvent) -> bool {
        ev.domain == self.domain
            && (Some(ev.watch) == self.watch || self.front_watches.contains_key(&ev.watch))
    }

    /// The watch-handler thread body: scans the backend root for frontends
    /// that published their details (state `Initialised`) and are not yet
    /// paired. Returns the device coordinates to instantiate.
    ///
    /// Also advertises `InitWait` on freshly provisioned devices so the
    /// frontend knows the backend exists.
    ///
    /// A missing root means "no devices yet"; every other xenstore error
    /// (permission, quota…) is real and propagates.
    pub fn scan(&mut self, hv: &mut Hypervisor) -> Result<Vec<DevicePaths>> {
        let root = DevicePaths::backend_root(self.domain, self.kind);
        let mut ready = Vec::new();
        let fronts = match hv.xs_directory(self.domain, &root).0 {
            Ok(v) => v,
            Err(XenError::NoEnt) => return Ok(ready),
            Err(e) => return Err(e),
        };
        for f in fronts {
            let front: DomainId = match f.parse::<u16>() {
                Ok(n) => DomainId(n),
                Err(_) => continue,
            };
            let indices = match hv.xs_directory(self.domain, &format!("{root}/{f}")).0 {
                Ok(v) => v,
                Err(XenError::NoEnt) => continue,
                Err(e) => return Err(e),
            };
            for idx in indices {
                let index: u32 = match idx.parse() {
                    Ok(n) => n,
                    Err(_) => continue,
                };
                let paths = DevicePaths::new(front, self.domain, self.kind, index);
                if let Some(p) = self.examine(hv, paths)? {
                    ready.push(p);
                }
            }
        }
        Ok(ready)
    }

    /// Inspects one device pair: advertises `InitWait` on a freshly
    /// provisioned backend, arms a watch on the peer frontend's `state`
    /// node, and returns the paths when the frontend has published its
    /// details and the pair is not yet instantiated.
    fn examine(&mut self, hv: &mut Hypervisor, paths: DevicePaths) -> Result<Option<DevicePaths>> {
        let bstate = read_state(&mut hv.store, self.domain, &paths.backend_state());
        if bstate == XenbusState::Unknown {
            // The backend area is gone (removal event): nothing to serve.
            return Ok(None);
        }
        if bstate == XenbusState::Initialising {
            // Announce ourselves; frontend proceeds on seeing this.
            switch_state(
                &mut hv.store,
                self.domain,
                &paths.backend_state(),
                XenbusState::InitWait,
            )?;
        }
        let key = (paths.front, paths.index);
        if !self.known.contains(&key) && !self.front_watches.values().any(|&k| k == key) {
            // Watch the frontend's state so its `Initialised` (and later
            // `Closing`) writes reach this handler directly. The
            // registration fire re-examines the device, which also covers
            // a frontend that published before the watch was armed.
            let w = hv
                .store
                .watch(self.domain, &paths.frontend_state(), "frontend-state")?;
            self.front_watches.insert(w, key);
        }
        if self.known.contains(&key) {
            return Ok(None);
        }
        let fstate = read_state(&mut hv.store, self.domain, &paths.frontend_state());
        if fstate == XenbusState::Initialised {
            self.known.insert(key);
            return Ok(Some(paths));
        }
        Ok(None)
    }

    /// Handles one watch event. Frontend-state events map straight to
    /// their device; backend-area events naming a specific device are
    /// examined via [`DevicePaths::parse_backend_path`] — no whole-root
    /// rescan; only events at the watch root itself (the registration
    /// fire, subtree removals) fall back to a full scan.
    pub fn process_event(
        &mut self,
        hv: &mut Hypervisor,
        ev: &WatchEvent,
    ) -> Result<Vec<DevicePaths>> {
        if !self.owns_event(ev) {
            return Ok(Vec::new());
        }
        if let Some(&(front, index)) = self.front_watches.get(&ev.watch) {
            let paths = DevicePaths::new(front, self.domain, self.kind, index);
            return Ok(self.examine(hv, paths)?.into_iter().collect());
        }
        match DevicePaths::parse_backend_path(&ev.path) {
            Some(paths) if paths.back == self.domain && paths.kind == self.kind => {
                Ok(self.examine(hv, paths)?.into_iter().collect())
            }
            _ => self.scan(hv),
        }
    }

    /// Drains pending watch events through
    /// [`BackendManager::process_event`] until the queue is quiet,
    /// returning every device pair that became ready. Events belonging to
    /// other watchers are discarded (this manager's thread is the only
    /// watch consumer in a Kite driver domain).
    pub fn drain_events(&mut self, hv: &mut Hypervisor) -> Result<Vec<DevicePaths>> {
        let mut ready: Vec<DevicePaths> = Vec::new();
        // Processing may arm new watches, whose registration fires queue
        // further events; loop until quiescent (bounded: one registration
        // per device).
        loop {
            let events = hv.store.take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                for p in self.process_event(hv, &ev)? {
                    if !ready.contains(&p) {
                        ready.push(p);
                    }
                }
            }
        }
        Ok(ready)
    }

    /// Forgets a device after teardown: drops it from the paired set,
    /// disarms its frontend watch, and clears the pair's xenstore areas
    /// (as the toolstack does when the device is deprovisioned), so a
    /// later provision starts from clean state and re-pairing is a real
    /// reconnect.
    pub fn forget(&mut self, hv: &mut Hypervisor, front: DomainId, index: u32) -> Result<()> {
        let key = (front, index);
        self.known.remove(&key);
        if let Some(w) = self
            .front_watches
            .iter()
            .find(|&(_, &k)| k == key)
            .map(|(&w, _)| w)
        {
            self.front_watches.remove(&w);
            let _ = hv.store.unwatch(w);
        }
        let paths = DevicePaths::new(front, self.domain, self.kind, index);
        // Deprovisioning is a toolstack (Dom0) action: the driver domain
        // has no write access to the frontend's area.
        for area in [paths.frontend(), paths.backend()] {
            match hv.store.rm(DomainId::DOM0, None, &area) {
                Ok(()) | Err(XenError::NoEnt) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_xen::DomainKind;

    fn machine() -> (Hypervisor, DomainId, DomainId) {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
        let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);
        (hv, dd, gu)
    }

    #[test]
    fn provisioning_sets_states_and_links() {
        let (mut hv, dd, gu) = machine();
        let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        assert_eq!(
            read_state(&mut hv.store, DomainId::DOM0, &paths.frontend_state()),
            XenbusState::Initialising
        );
        let (backlink, _) = hv.xs_read(gu, &format!("{}/backend", paths.frontend()));
        assert_eq!(backlink.unwrap(), paths.backend());
    }

    #[test]
    fn watch_fires_and_scan_finds_initialised_frontend() {
        let (mut hv, dd, gu) = machine();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        // Registration fire.
        let evs = hv.store.take_events();
        assert!(evs.iter().any(|e| mgr.owns_event(e)));
        // Nothing yet.
        assert!(mgr.scan(&mut hv).unwrap().is_empty());

        let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        // Provisioning changed paths under the watch root.
        let evs = hv.store.take_events();
        assert!(evs.iter().any(|e| mgr.owns_event(e)));
        // Backend sees Initialising, advertises InitWait, no pairing yet.
        assert!(mgr.scan(&mut hv).unwrap().is_empty());
        assert_eq!(
            read_state(&mut hv.store, dd, &paths.backend_state()),
            XenbusState::InitWait
        );

        // Frontend publishes its details.
        switch_state(
            &mut hv.store,
            gu,
            &paths.frontend_state(),
            XenbusState::Initialised,
        )
        .unwrap();
        let found = mgr.scan(&mut hv).unwrap();
        assert_eq!(found, vec![paths]);
        // Idempotent: a second scan does not re-create the instance.
        assert!(mgr.scan(&mut hv).unwrap().is_empty());
    }

    #[test]
    fn multiple_frontends_discovered_independently() {
        let (mut hv, dd, gu) = machine();
        let gu2 = hv.create_domain("guest2", DomainKind::Guest, 1024, 2);
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        let mut found = 0;
        for (g, i) in [(gu, 0u32), (gu2, 0u32), (gu, 1u32)] {
            let p = DevicePaths::new(g, dd, DeviceKind::Vif, i);
            provision_device(&mut hv, &p).unwrap();
            found += mgr.scan(&mut hv).unwrap().len();
            switch_state(
                &mut hv.store,
                g,
                &p.frontend_state(),
                XenbusState::Initialised,
            )
            .unwrap();
        }
        found += mgr.scan(&mut hv).unwrap().len();
        assert_eq!(found, 3);
    }

    #[test]
    fn forget_allows_reconnect() {
        let (mut hv, dd, gu) = machine();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        let p = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &p).unwrap();
        mgr.scan(&mut hv).unwrap();
        switch_state(
            &mut hv.store,
            gu,
            &p.frontend_state(),
            XenbusState::Initialised,
        )
        .unwrap();
        assert_eq!(mgr.scan(&mut hv).unwrap().len(), 1);

        // Teardown: forget clears the pair's xenstore areas entirely.
        mgr.forget(&mut hv, gu, 0).unwrap();
        assert_eq!(
            read_state(&mut hv.store, DomainId::DOM0, &p.frontend_state()),
            XenbusState::Unknown,
            "frontend area cleared"
        );
        assert_eq!(
            read_state(&mut hv.store, DomainId::DOM0, &p.backend_state()),
            XenbusState::Unknown,
            "backend area cleared"
        );
        assert!(
            mgr.scan(&mut hv).unwrap().is_empty(),
            "no stale pair resurrected from leftover state"
        );

        // A real reconnect: provision again, walk the handshake again.
        provision_device(&mut hv, &p).unwrap();
        assert!(mgr.scan(&mut hv).unwrap().is_empty(), "InitWait advertised");
        assert_eq!(
            read_state(&mut hv.store, dd, &p.backend_state()),
            XenbusState::InitWait
        );
        switch_state(
            &mut hv.store,
            gu,
            &p.frontend_state(),
            XenbusState::Initialised,
        )
        .unwrap();
        assert_eq!(
            mgr.scan(&mut hv).unwrap().len(),
            1,
            "re-paired after full re-handshake"
        );
    }

    #[test]
    fn scan_propagates_real_directory_errors() {
        let (mut hv, dd, _gu) = machine();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        assert!(mgr.scan(&mut hv).unwrap().is_empty());
        // A failing xenstore op (here injected) must surface from the
        // scan, not be swallowed as "no devices".
        hv.faults = kite_xen::FaultPlan::seeded(7).with_xs_failures(1.0);
        assert_eq!(mgr.scan(&mut hv), Err(XenError::Again));
        hv.faults = kite_xen::FaultPlan::none();
        assert!(mgr.scan(&mut hv).unwrap().is_empty());
    }

    #[test]
    fn scan_on_missing_root_is_empty_not_an_error() {
        let (mut hv, dd, _gu) = machine();
        // No start(): the backend root was never created.
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        assert!(mgr.scan(&mut hv).unwrap().is_empty());
    }

    #[test]
    fn events_pair_devices_without_rescans() {
        let (mut hv, dd, gu) = machine();
        let gu2 = hv.create_domain("guest2", DomainKind::Guest, 1024, 2);
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        // Registration fire resolves to the root path -> full-scan path.
        assert!(mgr.drain_events(&mut hv).unwrap().is_empty());

        let p1 = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        let p2 = DevicePaths::new(gu2, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &p1).unwrap();
        provision_device(&mut hv, &p2).unwrap();
        assert!(
            mgr.drain_events(&mut hv).unwrap().is_empty(),
            "nothing ready before frontends publish"
        );
        assert_eq!(
            read_state(&mut hv.store, dd, &p1.backend_state()),
            XenbusState::InitWait,
            "event-driven path still advertises InitWait"
        );

        // Only guest 1 publishes. Its frontend-state watch (armed when the
        // backend event was examined) delivers the transition; no event
        // under the backend root is involved.
        switch_state(
            &mut hv.store,
            gu,
            &p1.frontend_state(),
            XenbusState::Initialised,
        )
        .unwrap();
        let ready = mgr.drain_events(&mut hv).unwrap();
        assert_eq!(ready, vec![p1.clone()]);
        // Re-draining discovers nothing new.
        assert!(mgr.drain_events(&mut hv).unwrap().is_empty());

        // Guest 2 publishes later and pairs independently.
        switch_state(
            &mut hv.store,
            gu2,
            &p2.frontend_state(),
            XenbusState::Initialised,
        )
        .unwrap();
        assert_eq!(mgr.drain_events(&mut hv).unwrap(), vec![p2]);

        // A foreign watcher's event is ignored.
        let foreign = hv.store.watch(gu, "/local", "other").unwrap();
        let ev = WatchEvent {
            domain: gu,
            watch: foreign,
            token: "other".into(),
            path: p1.backend_state(),
        };
        assert!(mgr.process_event(&mut hv, &ev).unwrap().is_empty());
    }
}
