//! Backend invocation: discovering frontends via xenstore watches.
//!
//! §4.1 of the paper: the backend driver sets a watch on its backend root
//! in xenstore; the dedicated watch-handler thread wakes on any path change,
//! queries xenbus for unpaired frontends, and creates a backend instance
//! for each. This module implements that flow plus the toolstack-side
//! provisioning (what `xl` does in Dom0 when a guest config lists a device).

use std::collections::HashSet;

use kite_xen::xenbus::{read_state, switch_state};
use kite_xen::{
    DeviceKind, DevicePaths, DomainId, Hypervisor, Perm, Result, WatchEvent, XenbusState,
};

/// Provisions the xenstore areas for one device pair, as the toolstack in
/// Dom0 does: creates both directories, grants each side access to the
/// other's area, and sets both states to `Initialising`.
pub fn provision_device(hv: &mut Hypervisor, paths: &DevicePaths) -> Result<()> {
    let d0 = DomainId::DOM0;
    let fe = paths.frontend();
    let be = paths.backend();
    hv.store.write(d0, None, &format!("{fe}/backend"), &be)?;
    hv.store.write(d0, None, &format!("{be}/frontend"), &fe)?;
    hv.store.write(
        d0,
        None,
        &paths.frontend_state(),
        &XenbusState::Initialising.value().to_string(),
    )?;
    hv.store.write(
        d0,
        None,
        &paths.backend_state(),
        &XenbusState::Initialising.value().to_string(),
    )?;
    // The frontend's area is writable by the guest, readable by the driver
    // domain — and vice versa.
    hv.store.set_perm(d0, &fe, paths.front, Perm::ReadWrite)?;
    hv.store.set_perm(d0, &fe, paths.back, Perm::Read)?;
    hv.store.set_perm(d0, &be, paths.back, Perm::ReadWrite)?;
    hv.store.set_perm(d0, &be, paths.front, Perm::Read)?;
    Ok(())
}

/// The per-driver-domain backend manager: one watch, one handler thread,
/// instances spawned on demand.
pub struct BackendManager {
    /// The driver domain this manager runs in.
    pub domain: DomainId,
    /// The device kind it serves.
    pub kind: DeviceKind,
    watch: Option<kite_xen::WatchId>,
    known: HashSet<(DomainId, u32)>,
}

impl BackendManager {
    /// Creates a manager; call [`BackendManager::start`] to arm the watch.
    pub fn new(domain: DomainId, kind: DeviceKind) -> BackendManager {
        BackendManager {
            domain,
            kind,
            watch: None,
            known: HashSet::new(),
        }
    }

    /// Registers the xenstore watch on the backend root. The registration
    /// itself fires once (Xen semantics), which triggers the initial scan.
    pub fn start(&mut self, hv: &mut Hypervisor) -> Result<()> {
        let root = DevicePaths::backend_root(self.domain, self.kind);
        // Ensure the root exists so the directory scan works even before
        // the first device is provisioned.
        let _ = hv.store.write(DomainId::DOM0, None, &root, "");
        hv.store
            .set_perm(DomainId::DOM0, &root, self.domain, Perm::ReadWrite)?;
        let w = hv.store.watch(self.domain, &root, "backend-root")?;
        self.watch = Some(w);
        Ok(())
    }

    /// True when the event is for this manager's watch.
    pub fn owns_event(&self, ev: &WatchEvent) -> bool {
        Some(ev.watch) == self.watch && ev.domain == self.domain
    }

    /// The watch-handler thread body: scans the backend root for frontends
    /// that published their details (state `Initialised`) and are not yet
    /// paired. Returns the device coordinates to instantiate.
    ///
    /// Also advertises `InitWait` on freshly provisioned devices so the
    /// frontend knows the backend exists.
    pub fn scan(&mut self, hv: &mut Hypervisor) -> Result<Vec<DevicePaths>> {
        let root = DevicePaths::backend_root(self.domain, self.kind);
        let mut ready = Vec::new();
        let fronts = match hv.store.directory(self.domain, &root) {
            Ok(v) => v,
            Err(_) => return Ok(ready),
        };
        for f in fronts {
            let front: DomainId = match f.parse::<u16>() {
                Ok(n) => DomainId(n),
                Err(_) => continue,
            };
            let indices = hv
                .store
                .directory(self.domain, &format!("{root}/{f}"))
                .unwrap_or_default();
            for idx in indices {
                let index: u32 = match idx.parse() {
                    Ok(n) => n,
                    Err(_) => continue,
                };
                let paths = DevicePaths::new(front, self.domain, self.kind, index);
                let bstate = read_state(&mut hv.store, self.domain, &paths.backend_state());
                if bstate == XenbusState::Initialising {
                    // Announce ourselves; frontend proceeds on seeing this.
                    switch_state(
                        &mut hv.store,
                        self.domain,
                        &paths.backend_state(),
                        XenbusState::InitWait,
                    )?;
                }
                if self.known.contains(&(front, index)) {
                    continue;
                }
                let fstate = read_state(&mut hv.store, self.domain, &paths.frontend_state());
                if fstate == XenbusState::Initialised {
                    self.known.insert((front, index));
                    ready.push(paths);
                }
            }
        }
        Ok(ready)
    }

    /// Forgets a device (teardown), allowing re-pairing after reconnect.
    pub fn forget(&mut self, front: DomainId, index: u32) {
        self.known.remove(&(front, index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_xen::DomainKind;

    fn machine() -> (Hypervisor, DomainId, DomainId) {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
        let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);
        (hv, dd, gu)
    }

    #[test]
    fn provisioning_sets_states_and_links() {
        let (mut hv, dd, gu) = machine();
        let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        assert_eq!(
            read_state(&mut hv.store, DomainId::DOM0, &paths.frontend_state()),
            XenbusState::Initialising
        );
        let (backlink, _) = hv.xs_read(gu, &format!("{}/backend", paths.frontend()));
        assert_eq!(backlink.unwrap(), paths.backend());
    }

    #[test]
    fn watch_fires_and_scan_finds_initialised_frontend() {
        let (mut hv, dd, gu) = machine();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        // Registration fire.
        let evs = hv.store.take_events();
        assert!(evs.iter().any(|e| mgr.owns_event(e)));
        // Nothing yet.
        assert!(mgr.scan(&mut hv).unwrap().is_empty());

        let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        // Provisioning changed paths under the watch root.
        let evs = hv.store.take_events();
        assert!(evs.iter().any(|e| mgr.owns_event(e)));
        // Backend sees Initialising, advertises InitWait, no pairing yet.
        assert!(mgr.scan(&mut hv).unwrap().is_empty());
        assert_eq!(
            read_state(&mut hv.store, dd, &paths.backend_state()),
            XenbusState::InitWait
        );

        // Frontend publishes its details.
        switch_state(
            &mut hv.store,
            gu,
            &paths.frontend_state(),
            XenbusState::Initialised,
        )
        .unwrap();
        let found = mgr.scan(&mut hv).unwrap();
        assert_eq!(found, vec![paths]);
        // Idempotent: a second scan does not re-create the instance.
        assert!(mgr.scan(&mut hv).unwrap().is_empty());
    }

    #[test]
    fn multiple_frontends_discovered_independently() {
        let (mut hv, dd, gu) = machine();
        let gu2 = hv.create_domain("guest2", DomainKind::Guest, 1024, 2);
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        let mut found = 0;
        for (g, i) in [(gu, 0u32), (gu2, 0u32), (gu, 1u32)] {
            let p = DevicePaths::new(g, dd, DeviceKind::Vif, i);
            provision_device(&mut hv, &p).unwrap();
            found += mgr.scan(&mut hv).unwrap().len();
            switch_state(
                &mut hv.store,
                g,
                &p.frontend_state(),
                XenbusState::Initialised,
            )
            .unwrap();
        }
        found += mgr.scan(&mut hv).unwrap().len();
        assert_eq!(found, 3);
    }

    #[test]
    fn forget_allows_reconnect() {
        let (mut hv, dd, gu) = machine();
        let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
        mgr.start(&mut hv).unwrap();
        let p = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &p).unwrap();
        mgr.scan(&mut hv).unwrap();
        switch_state(
            &mut hv.store,
            gu,
            &p.frontend_state(),
            XenbusState::Initialised,
        )
        .unwrap();
        assert_eq!(mgr.scan(&mut hv).unwrap().len(), 1);
        mgr.forget(gu, 0);
        assert_eq!(
            mgr.scan(&mut hv).unwrap().len(),
            1,
            "re-discovered after forget"
        );
    }
}
