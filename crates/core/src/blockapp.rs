//! The block status application (§3.3): the storage domain's counterpart
//! to the network app.
//!
//! Reads the physical device's geometry from the (NetBSD) driver, publishes
//! it in xenstore for blkback instances to advertise, and monitors
//! connected devices — again as part of the single unikernel process,
//! yielding explicitly.

use kite_xen::{DeviceKind, DevicePaths, DomainId, Hypervisor, Result};

/// Per-device status row the app maintains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VbdStatus {
    /// Guest domain.
    pub front: DomainId,
    /// Device index.
    pub index: u32,
    /// Connection state value read from xenstore.
    pub state: u8,
}

/// The block status application.
pub struct BlockApp {
    /// The driver domain it runs in.
    pub domain: DomainId,
    /// Device capacity in sectors (probed from the NVMe driver).
    pub sectors: u64,
    /// Sector size.
    pub sector_size: u32,
    yields: u64,
}

impl BlockApp {
    /// Probes the device (geometry comes from the NVMe driver) and
    /// publishes it under the driver domain's home for blkbacks to use.
    pub fn start(hv: &mut Hypervisor, domain: DomainId, sectors: u64) -> Result<BlockApp> {
        let home = format!("/local/domain/{}/device-info", domain.0);
        hv.store.write(
            domain,
            None,
            &format!("{home}/sectors"),
            &sectors.to_string(),
        )?;
        hv.store
            .write(domain, None, &format!("{home}/sector-size"), "512")?;
        hv.store
            .write(domain, None, &format!("{home}/mode"), "rw")?;
        Ok(BlockApp {
            domain,
            sectors,
            sector_size: 512,
            yields: 0,
        })
    }

    /// Scans xenstore for this domain's vbd backends and their states.
    pub fn status(&self, hv: &mut Hypervisor) -> Vec<VbdStatus> {
        let root = DevicePaths::backend_root(self.domain, DeviceKind::Vbd);
        let mut out = Vec::new();
        let fronts = match hv.store.directory(self.domain, &root) {
            Ok(v) => v,
            Err(_) => return out,
        };
        for f in fronts {
            let Ok(front) = f.parse::<u16>() else {
                continue;
            };
            let idxs = hv
                .store
                .directory(self.domain, &format!("{root}/{f}"))
                .unwrap_or_default();
            for i in idxs {
                let Ok(index) = i.parse::<u32>() else {
                    continue;
                };
                let paths = DevicePaths::new(DomainId(front), self.domain, DeviceKind::Vbd, index);
                let state = hv
                    .store
                    .read(self.domain, None, &paths.backend_state())
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                out.push(VbdStatus {
                    front: DomainId(front),
                    index,
                    state,
                });
            }
        }
        out
    }

    /// Main-loop yield (cooperative scheduling).
    pub fn yield_cpu(&mut self) {
        self.yields += 1;
    }

    /// Yield count.
    pub fn yields(&self) -> u64 {
        self.yields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_xen::DomainKind;

    #[test]
    fn publishes_device_info() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("blkbackend", DomainKind::Driver, 1024, 1);
        let app = BlockApp::start(&mut hv, dd, 976_773_168).unwrap(); // 500GB
        assert_eq!(app.sector_size, 512);
        let (v, _) = hv.xs_read(dd, &format!("/local/domain/{}/device-info/sectors", dd.0));
        assert_eq!(v.unwrap(), "976773168");
    }

    #[test]
    fn status_reflects_backends() {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("blkbackend", DomainKind::Driver, 1024, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 1024, 2);
        let app = BlockApp::start(&mut hv, dd, 1000).unwrap();
        assert!(app.status(&mut hv).is_empty());
        let paths = DevicePaths::new(gu, dd, DeviceKind::Vbd, 0);
        hv.store
            .write(DomainId::DOM0, None, &paths.backend_state(), "4")
            .unwrap();
        let st = app.status(&mut hv);
        assert_eq!(
            st,
            vec![VbdStatus {
                front: gu,
                index: 0,
                state: 4
            }]
        );
    }
}
