//! A minimal `xl`-style toolstack front end.
//!
//! The artifact appendix drives everything through `xl`:
//! `xl pci-assignable-add`, `xl create -c <cfg>`, `xl list`,
//! `xl pci-attach`, `xl destroy`. This module interprets those commands
//! against the simulated hypervisor so the examples and tests can follow
//! the appendix verbatim. (Kite's whole point is that the *driver domain*
//! needs none of this machinery — `xl` runs in Dom0.)

use kite_xen::{Bdf, DomainId, DomainKind, Hypervisor, XenError};

use crate::config::{DomainConfig, DriverDomainKind};

/// Toolstack errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XlError {
    /// Malformed command line.
    Usage(String),
    /// Config parse failure.
    BadConfig(String),
    /// Named domain not found.
    NoSuchDomain(String),
    /// Underlying hypervisor error.
    Xen(XenError),
}

impl core::fmt::Display for XlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            XlError::Usage(s) => write!(f, "usage: {s}"),
            XlError::BadConfig(s) => write!(f, "config: {s}"),
            XlError::NoSuchDomain(s) => write!(f, "no such domain: {s}"),
            XlError::Xen(e) => write!(f, "xen: {e}"),
        }
    }
}

impl std::error::Error for XlError {}

impl From<XenError> for XlError {
    fn from(e: XenError) -> XlError {
        XlError::Xen(e)
    }
}

/// One created domain's record.
#[derive(Clone, Debug)]
pub struct XlDomain {
    /// Domain id.
    pub id: DomainId,
    /// Name from the config.
    pub name: String,
    /// The parsed config (for driver domains).
    pub config: Option<DomainConfig>,
}

/// The toolstack's own state (what `xl` remembers between commands).
#[derive(Default)]
pub struct Xl {
    domains: Vec<XlDomain>,
}

impl Xl {
    /// Creates a fresh toolstack state.
    pub fn new() -> Xl {
        Xl::default()
    }

    /// Looks a domain up by name or numeric id.
    pub fn find(&self, name_or_id: &str) -> Option<&XlDomain> {
        if let Ok(n) = name_or_id.parse::<u16>() {
            return self.domains.iter().find(|d| d.id.0 == n);
        }
        self.domains.iter().find(|d| d.name == name_or_id)
    }

    /// `xl pci-assignable-add <BDF>`.
    pub fn pci_assignable_add(&mut self, hv: &mut Hypervisor, bdf: &str) -> Result<(), XlError> {
        let bdf: Bdf = bdf
            .parse()
            .map_err(|_| XlError::Usage("xl pci-assignable-add <bb:dd.f>".into()))?;
        hv.pci.make_assignable(bdf)?;
        Ok(())
    }

    /// `xl create -c <config text>`: creates the domain, assigns its PCI
    /// device, and registers it with the toolstack.
    pub fn create(&mut self, hv: &mut Hypervisor, config_text: &str) -> Result<DomainId, XlError> {
        let cfg = DomainConfig::parse(config_text).map_err(XlError::BadConfig)?;
        let id = hv.create_domain(
            cfg.name.clone(),
            DomainKind::Driver,
            cfg.memory_mib,
            cfg.vcpus,
        );
        hv.pci.assign(cfg.pci, id)?;
        self.domains.push(XlDomain {
            id,
            name: cfg.name.clone(),
            config: Some(cfg),
        });
        Ok(id)
    }

    /// Registers an externally created guest so `xl list` shows it.
    pub fn adopt(&mut self, id: DomainId, name: impl Into<String>) {
        self.domains.push(XlDomain {
            id,
            name: name.into(),
            config: None,
        });
    }

    /// `xl list`: formatted like the real tool.
    pub fn list(&self, hv: &Hypervisor) -> String {
        let mut out = String::from("Name                ID   Mem VCPUs\n");
        out.push_str("Domain-0             0  8192     4\n");
        for d in &self.domains {
            if let Ok(dom) = hv.domains.get(d.id) {
                out.push_str(&format!(
                    "{:<20}{:>2} {:>5} {:>5}\n",
                    d.name, d.id.0, dom.mem_mib, dom.vcpus
                ));
            }
        }
        out
    }

    /// `xl pci-attach <domain> <BDF>`.
    pub fn pci_attach(
        &mut self,
        hv: &mut Hypervisor,
        domain: &str,
        bdf: &str,
    ) -> Result<(), XlError> {
        let id = self
            .find(domain)
            .map(|d| d.id)
            .ok_or_else(|| XlError::NoSuchDomain(domain.to_string()))?;
        let bdf: Bdf = bdf
            .parse()
            .map_err(|_| XlError::Usage("xl pci-attach <domain> <bb:dd.f>".into()))?;
        hv.pci.assign(bdf, id)?;
        Ok(())
    }

    /// `xl destroy <domain>`: detaches PCI devices and kills the domain.
    pub fn destroy(&mut self, hv: &mut Hypervisor, domain: &str) -> Result<(), XlError> {
        let idx = self
            .domains
            .iter()
            .position(|d| d.name == domain || domain.parse() == Ok(d.id.0))
            .ok_or_else(|| XlError::NoSuchDomain(domain.to_string()))?;
        let d = self.domains.remove(idx);
        let bdfs: Vec<Bdf> = hv.pci.devices_of(d.id).iter().map(|p| p.bdf).collect();
        for bdf in bdfs {
            hv.pci.detach(bdf, d.id)?;
        }
        hv.domains.destroy(d.id)?;
        Ok(())
    }

    /// The kind of driver domain a config created (for orchestration).
    pub fn kind_of(&self, domain: &str) -> Option<DriverDomainKind> {
        self.find(domain)?.config.as_ref().map(|c| c.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_xen::{PciClass, PciDevice};

    const KITE_CFG: &str = r#"
        name = "netbackend"
        kind = "network"
        memory = 1024
        vcpus = 1
        pci = ["03:00.0,permissive=1"]
    "#;

    fn machine() -> Hypervisor {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
        hv.pci.add_device(PciDevice {
            bdf: "03:00.0".parse().unwrap(),
            class: PciClass::Network,
            name: "Intel 82599ES".into(),
        });
        hv.pci.add_device(PciDevice {
            bdf: "04:00.0".parse().unwrap(),
            class: PciClass::Nvme,
            name: "Samsung 970 EVO Plus".into(),
        });
        hv
    }

    #[test]
    fn artifact_appendix_workflow() {
        let mut hv = machine();
        let mut xl = Xl::new();
        // # xl pci-assignable-add 03:00.0
        xl.pci_assignable_add(&mut hv, "03:00.0").unwrap();
        // # xl create -c config/network/kite_dd.cfg
        let id = xl.create(&mut hv, KITE_CFG).unwrap();
        assert_eq!(hv.pci.owner("03:00.0".parse().unwrap()), Some(id));
        // # xl list
        let listing = xl.list(&hv);
        assert!(listing.contains("netbackend"), "{listing}");
        assert!(listing.contains("Domain-0"));
        // # xl destroy netbackend
        xl.destroy(&mut hv, "netbackend").unwrap();
        assert!(!hv.domains.alive(id));
        assert_eq!(hv.pci.owner("03:00.0".parse().unwrap()), None);
        assert!(!xl.list(&hv).contains("netbackend"));
    }

    #[test]
    fn create_requires_assignable_device() {
        let mut hv = machine();
        let mut xl = Xl::new();
        // Without pci-assignable-add, create fails like the real flow.
        assert!(matches!(
            xl.create(&mut hv, KITE_CFG),
            Err(XlError::Xen(XenError::PciUnavailable))
        ));
    }

    #[test]
    fn pci_attach_post_boot() {
        // The artifact attaches the NVMe to the storage domain after boot.
        let mut hv = machine();
        let mut xl = Xl::new();
        xl.pci_assignable_add(&mut hv, "03:00.0").unwrap();
        xl.pci_assignable_add(&mut hv, "04:00.0").unwrap();
        let id = xl.create(&mut hv, KITE_CFG).unwrap();
        xl.pci_attach(&mut hv, "netbackend", "04:00.0").unwrap();
        assert_eq!(hv.pci.owner("04:00.0".parse().unwrap()), Some(id));
        assert_eq!(hv.pci.devices_of(id).len(), 2);
    }

    #[test]
    fn lookup_by_name_or_id() {
        let mut hv = machine();
        let mut xl = Xl::new();
        xl.pci_assignable_add(&mut hv, "03:00.0").unwrap();
        let id = xl.create(&mut hv, KITE_CFG).unwrap();
        assert_eq!(xl.find("netbackend").unwrap().id, id);
        assert_eq!(xl.find(&id.0.to_string()).unwrap().name, "netbackend");
        assert!(xl.find("ghost").is_none());
        assert_eq!(
            xl.kind_of("netbackend"),
            Some(crate::config::DriverDomainKind::Network)
        );
    }

    #[test]
    fn bad_inputs() {
        let mut hv = machine();
        let mut xl = Xl::new();
        assert!(matches!(
            xl.pci_assignable_add(&mut hv, "zz:00.0"),
            Err(XlError::Usage(_))
        ));
        assert!(matches!(
            xl.create(&mut hv, "nonsense"),
            Err(XlError::BadConfig(_))
        ));
        assert!(matches!(
            xl.destroy(&mut hv, "ghost"),
            Err(XlError::NoSuchDomain(_))
        ));
        assert!(matches!(
            xl.pci_attach(&mut hv, "ghost", "03:00.0"),
            Err(XlError::NoSuchDomain(_))
        ));
    }
}
