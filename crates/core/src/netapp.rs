//! The network application (§3.2, §4.3): Kite's single-process replacement
//! for Linux's xen driver-domain scripts.
//!
//! On launch it creates a bridge, assigns the gateway IP to the physical
//! interface with the ported `ifconfig(8)`, adds the IF to the bridge with
//! the ported `brconfig(8)`, then loops: watch for new VIFs and hotplug
//! them into the bridge — yielding the CPU explicitly between iterations so
//! netback, the NIC driver and the network stack make progress on the
//! non-preemptive scheduler.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use kite_net::{
    Bridge, BridgePort, Endpoint, EtherType, EthernetFrame, IfKind, IfTable, IpProto, Ipv4Packet,
    MacAddr, Nat, UdpDatagram,
};

/// How the network application links VIFs to the physical NIC (§3.1
/// names both techniques; bridging is the default, NAT the alternative).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkMode {
    /// L2 learning bridge (NetBSD `bridge(4)` + `brconfig`).
    Bridge,
    /// L3 source NAT behind the gateway address.
    Nat,
}

/// The network application's state.
pub struct NetworkApp {
    /// The bridge connecting the IF and all VIFs.
    pub bridge: Bridge,
    /// The interface table (`ifconfig` view).
    pub ifs: IfTable,
    /// Physical interface name.
    pub phys_if: String,
    /// VIF↔NIC linking technique.
    pub mode: LinkMode,
    /// The SNAT table (used in [`LinkMode::Nat`]).
    pub nat: Nat,
    ports: HashMap<String, BridgePort>,
    yields: u64,
}

impl NetworkApp {
    /// Boots the application: creates `bridge0`, registers and configures
    /// the physical interface, and attaches it to the bridge.
    pub fn start(phys_if: &str, phys_mac: MacAddr, gateway: Ipv4Addr, netmask: Ipv4Addr) -> Self {
        let mut ifs = IfTable::new();
        let mut bridge = Bridge::new("bridge0");
        ifs.attach(phys_if, IfKind::Physical, phys_mac);
        // `ifconfig ixg0 <gateway> netmask <mask> up`
        ifs.set_addr(phys_if, gateway, netmask);
        ifs.set_up(phys_if, true);
        ifs.attach("bridge0", IfKind::Bridge, MacAddr::ZERO);
        ifs.set_up("bridge0", true);
        // `brconfig bridge0 add ixg0 up`
        let port = bridge.add_port(phys_if);
        let mut ports = HashMap::new();
        ports.insert(phys_if.to_string(), port);
        NetworkApp {
            bridge,
            ifs,
            phys_if: phys_if.to_string(),
            mode: LinkMode::Bridge,
            nat: Nat::new(gateway),
            ports,
            yields: 0,
        }
    }

    /// Switches to NAT linking (call before traffic starts).
    pub fn use_nat(&mut self) {
        self.mode = LinkMode::Nat;
    }

    /// NAT translation for a guest→world frame: rewrites the source
    /// IP/port to the gateway and re-encodes checksums. Returns `None`
    /// for frames NAT cannot carry (non-IPv4/UDP here).
    pub fn nat_outbound(&mut self, frame: &[u8]) -> Option<Vec<u8>> {
        let eth = EthernetFrame::decode(frame)?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::decode(&eth.payload)?;
        let udp = match ip.proto {
            IpProto::Udp => UdpDatagram::decode(&ip.payload, ip.src, ip.dst)?,
            _ => return None,
        };
        let ext = self.nat.translate_out(
            IpProto::Udp,
            Endpoint {
                ip: ip.src,
                port: udp.src_port,
            },
        );
        let new_udp = UdpDatagram::new(ext.port, udp.dst_port, udp.payload);
        let new_ip = Ipv4Packet::new(ext.ip, ip.dst, IpProto::Udp, new_udp.encode(ext.ip, ip.dst));
        Some(EthernetFrame::new(eth.dst, eth.src, EtherType::Ipv4, new_ip.encode()).encode())
    }

    /// NAT translation for a world→gateway frame: rewrites the
    /// destination back to the inside endpoint. Returns `None` for
    /// unsolicited traffic (dropped, as a NAT does).
    pub fn nat_inbound(&mut self, frame: &[u8], guest_mac: MacAddr) -> Option<Vec<u8>> {
        let eth = EthernetFrame::decode(frame)?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::decode(&eth.payload)?;
        let udp = match ip.proto {
            IpProto::Udp => UdpDatagram::decode(&ip.payload, ip.src, ip.dst)?,
            _ => return None,
        };
        let inside = self.nat.translate_in(IpProto::Udp, udp.dst_port)?;
        let new_udp = UdpDatagram::new(udp.src_port, inside.port, udp.payload);
        let new_ip = Ipv4Packet::new(
            ip.src,
            inside.ip,
            IpProto::Udp,
            new_udp.encode(ip.src, inside.ip),
        );
        Some(EthernetFrame::new(guest_mac, eth.src, EtherType::Ipv4, new_ip.encode()).encode())
    }

    /// Hotplug: a new netback VIF appeared — register it and add it to the
    /// bridge (`brconfig bridge0 add vifN.M`).
    pub fn add_vif(&mut self, vif: &str, mac: MacAddr) -> BridgePort {
        self.ifs.attach(vif, IfKind::Vif, mac);
        self.ifs.set_up(vif, true);
        let port = self.bridge.add_port(vif);
        self.ports.insert(vif.to_string(), port);
        port
    }

    /// Hot-unplug: the frontend disconnected.
    pub fn remove_vif(&mut self, vif: &str) {
        if let Some(port) = self.ports.remove(vif) {
            self.bridge.remove_port(port);
        }
        self.ifs.detach(vif);
    }

    /// The bridge port of an interface.
    pub fn port_of(&self, ifname: &str) -> Option<BridgePort> {
        self.ports.get(ifname).copied()
    }

    /// The interface name owning a bridge port.
    pub fn if_of(&self, port: BridgePort) -> Option<&str> {
        self.ports
            .iter()
            .find(|&(_, &p)| p == port)
            .map(|(n, _)| n.as_str())
    }

    /// The app's main-loop yield: cooperates with the scheduler. Counted
    /// so tests can assert the app never monopolizes the CPU.
    pub fn yield_cpu(&mut self) {
        self.yields += 1;
    }

    /// Yield count.
    pub fn yields(&self) -> u64 {
        self.yields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_net::Forward;
    use kite_sim::Nanos;

    fn gw() -> Ipv4Addr {
        "192.168.1.50".parse().unwrap()
    }

    fn mask() -> Ipv4Addr {
        "255.255.255.0".parse().unwrap()
    }

    #[test]
    fn startup_configures_if_and_bridge() {
        let app = NetworkApp::start("ixg0", MacAddr::local(1), gw(), mask());
        let i = app.ifs.get("ixg0").unwrap();
        assert!(i.up);
        assert_eq!(i.addr, Some(gw()));
        assert_eq!(app.bridge.members(), vec!["ixg0"]);
        assert!(app.port_of("ixg0").is_some());
    }

    #[test]
    fn vif_hotplug_and_forwarding() {
        let mut app = NetworkApp::start("ixg0", MacAddr::local(1), gw(), mask());
        let vif_port = app.add_vif("vif2.0", MacAddr::local(2));
        assert_eq!(app.bridge.members(), vec!["ixg0", "vif2.0"]);
        assert_eq!(app.if_of(vif_port), Some("vif2.0"));
        // Guest talks out through the VIF; bridge learns.
        let guest_mac = MacAddr::local(100);
        let ext_mac = MacAddr::local(200);
        app.bridge
            .input(vif_port, guest_mac, MacAddr::BROADCAST, Nanos::ZERO);
        let phys = app.port_of("ixg0").unwrap();
        assert_eq!(
            app.bridge.input(phys, ext_mac, guest_mac, Nanos(1)),
            Forward::Unicast(vif_port)
        );
    }

    #[test]
    fn vif_unplug_cleans_up() {
        let mut app = NetworkApp::start("ixg0", MacAddr::local(1), gw(), mask());
        app.add_vif("vif2.0", MacAddr::local(2));
        app.remove_vif("vif2.0");
        assert_eq!(app.bridge.members(), vec!["ixg0"]);
        assert!(app.ifs.get("vif2.0").is_none());
        assert!(app.port_of("vif2.0").is_none());
    }

    #[test]
    fn nat_rewrites_and_reverses() {
        let mut app = NetworkApp::start("ixg0", MacAddr::local(1), gw(), mask());
        app.use_nat();
        assert_eq!(app.mode, LinkMode::Nat);
        let guest_ip: Ipv4Addr = "192.168.1.100".parse().unwrap();
        let client_ip: Ipv4Addr = "192.168.1.10".parse().unwrap();
        let udp = kite_net::UdpDatagram::new(5555, 80, b"req".to_vec());
        let ip = kite_net::Ipv4Packet::new(
            guest_ip,
            client_ip,
            kite_net::IpProto::Udp,
            udp.encode(guest_ip, client_ip),
        );
        let frame = kite_net::EthernetFrame::new(
            MacAddr::local(9),
            MacAddr::local(100),
            kite_net::EtherType::Ipv4,
            ip.encode(),
        )
        .encode();
        // Outbound: source becomes the gateway, checksums stay valid.
        let out = app.nat_outbound(&frame).unwrap();
        let eth = kite_net::EthernetFrame::decode(&out).unwrap();
        let ip2 = kite_net::Ipv4Packet::decode(&eth.payload).unwrap();
        assert_eq!(ip2.src, gw());
        let udp2 = kite_net::UdpDatagram::decode(&ip2.payload, ip2.src, ip2.dst).unwrap();
        assert_eq!(udp2.payload, b"req");
        assert_ne!(udp2.src_port, 5555, "source port rewritten");

        // The client replies to the gateway endpoint; inbound restores
        // the guest address/port.
        let reply = kite_net::UdpDatagram::new(80, udp2.src_port, b"rsp".to_vec());
        let rip = kite_net::Ipv4Packet::new(
            client_ip,
            gw(),
            kite_net::IpProto::Udp,
            reply.encode(client_ip, gw()),
        );
        let rframe = kite_net::EthernetFrame::new(
            MacAddr::local(1),
            MacAddr::local(9),
            kite_net::EtherType::Ipv4,
            rip.encode(),
        )
        .encode();
        let back = app.nat_inbound(&rframe, MacAddr::local(100)).unwrap();
        let eth3 = kite_net::EthernetFrame::decode(&back).unwrap();
        assert_eq!(eth3.dst, MacAddr::local(100));
        let ip3 = kite_net::Ipv4Packet::decode(&eth3.payload).unwrap();
        assert_eq!(ip3.dst, guest_ip);
        let udp3 = kite_net::UdpDatagram::decode(&ip3.payload, ip3.src, ip3.dst).unwrap();
        assert_eq!(udp3.dst_port, 5555);
        assert_eq!(udp3.payload, b"rsp");
    }

    #[test]
    fn nat_drops_unsolicited_inbound() {
        let mut app = NetworkApp::start("ixg0", MacAddr::local(1), gw(), mask());
        app.use_nat();
        let udp = kite_net::UdpDatagram::new(80, 44444, b"scan".to_vec());
        let client_ip: Ipv4Addr = "192.168.1.10".parse().unwrap();
        let ip = kite_net::Ipv4Packet::new(
            client_ip,
            gw(),
            kite_net::IpProto::Udp,
            udp.encode(client_ip, gw()),
        );
        let frame = kite_net::EthernetFrame::new(
            MacAddr::local(1),
            MacAddr::local(9),
            kite_net::EtherType::Ipv4,
            ip.encode(),
        )
        .encode();
        assert!(app.nat_inbound(&frame, MacAddr::local(100)).is_none());
    }

    #[test]
    fn yields_are_counted() {
        let mut app = NetworkApp::start("ixg0", MacAddr::local(1), gw(), mask());
        for _ in 0..5 {
            app.yield_cpu();
        }
        assert_eq!(app.yields(), 5);
    }
}
