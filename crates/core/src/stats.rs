//! Shared driver statistics types.
//!
//! Netback and blkback both move payloads with batched `GNTTABOP_copy`
//! and account for the hypercalls identically; [`CopyStats`] is that
//! shared accounting, embedded in each driver's stats struct.

use kite_sim::BatchHistogram;
use kite_trace::MetricsSnapshot;
use kite_xen::{BatchResult, CopyMode};

/// Grant-copy hypercall accounting, shared by netback and blkback.
#[derive(Clone, Copy, Debug, Default)]
pub struct CopyStats {
    /// Grant-copy hypercalls issued (one per batch when batched).
    pub batches: u64,
    /// Individual copy descriptors carried by those hypercalls.
    pub ops: u64,
    /// Hypercalls avoided relative to the one-op-per-call shape.
    pub hypercalls_saved: u64,
    /// Bytes moved by grant copies.
    pub bytes: u64,
    /// Ops-per-batch distribution.
    pub batch_hist: BatchHistogram,
}

impl CopyStats {
    /// Mean payload bytes moved per grant-copy hypercall.
    pub fn bytes_per_hypercall(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.bytes as f64 / self.batches as f64
        }
    }

    /// Accounts one drain's copy issue under `mode`.
    pub fn record(&mut self, mode: CopyMode, nops: usize, result: &BatchResult) {
        if nops == 0 {
            return;
        }
        self.ops += nops as u64;
        self.bytes += result.bytes as u64;
        match mode {
            CopyMode::Batched => {
                self.batches += 1;
                self.hypercalls_saved += nops as u64 - 1;
                self.batch_hist.record(nops);
            }
            CopyMode::SingleOp => {
                self.batches += nops as u64;
                for _ in 0..nops {
                    self.batch_hist.record(1);
                }
            }
        }
    }

    /// Folds another instance's counters into this one (stats continuity
    /// across a backend teardown/reconnect).
    pub fn merge(&mut self, other: &CopyStats) {
        self.batches += other.batches;
        self.ops += other.ops;
        self.hypercalls_saved += other.hypercalls_saved;
        self.bytes += other.bytes;
        self.batch_hist.merge(&other.batch_hist);
    }

    /// Appends this accounting to a snapshot under `prefix` (e.g.
    /// `"copy_"` → `copy_hypercalls`, `copy_ops`, ...).
    pub fn append_metrics(&self, snap: &mut MetricsSnapshot, prefix: &str) {
        snap.push_int(format!("{prefix}hypercalls"), "count", self.batches);
        snap.push_int(format!("{prefix}ops"), "count", self.ops);
        snap.push_int(
            format!("{prefix}hypercalls_saved"),
            "count",
            self.hypercalls_saved,
        );
        snap.push_int(format!("{prefix}bytes"), "bytes", self.bytes);
        snap.push_float(
            format!("{prefix}bytes_per_hypercall"),
            "bytes",
            self.bytes_per_hypercall(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kite_sim::Nanos;

    fn result(bytes: usize) -> BatchResult {
        BatchResult {
            statuses: Vec::new(),
            bytes,
            cost: Nanos::ZERO,
        }
    }

    #[test]
    fn batched_counts_one_hypercall_per_drain() {
        let mut s = CopyStats::default();
        s.record(CopyMode::Batched, 8, &result(8 * 64));
        s.record(CopyMode::Batched, 4, &result(4 * 64));
        assert_eq!(s.batches, 2);
        assert_eq!(s.ops, 12);
        assert_eq!(s.hypercalls_saved, 10);
        assert_eq!(s.bytes, 12 * 64);
        assert_eq!(s.bytes_per_hypercall(), 6.0 * 64.0);
    }

    #[test]
    fn single_op_counts_one_hypercall_per_op() {
        let mut s = CopyStats::default();
        s.record(CopyMode::SingleOp, 8, &result(8 * 64));
        assert_eq!(s.batches, 8);
        assert_eq!(s.ops, 8);
        assert_eq!(s.hypercalls_saved, 0);
        assert_eq!(s.bytes_per_hypercall(), 64.0);
    }

    #[test]
    fn empty_drain_records_nothing() {
        let mut s = CopyStats::default();
        s.record(CopyMode::Batched, 0, &result(0));
        assert_eq!(
            (s.batches, s.ops, s.hypercalls_saved, s.bytes),
            (0, 0, 0, 0)
        );
    }

    fn sample_a() -> CopyStats {
        let mut s = CopyStats::default();
        s.record(CopyMode::Batched, 8, &result(512));
        s.record(CopyMode::SingleOp, 3, &result(96));
        s
    }

    fn sample_b() -> CopyStats {
        let mut s = CopyStats::default();
        s.record(CopyMode::Batched, 4, &result(256));
        s.record(CopyMode::Batched, 16, &result(2048));
        s
    }

    fn fields(s: &CopyStats) -> (u64, u64, u64, u64, BatchHistogram) {
        (s.batches, s.ops, s.hypercalls_saved, s.bytes, s.batch_hist)
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut s = sample_a();
        let before = fields(&s);
        s.merge(&CopyStats::default());
        assert_eq!(fields(&s), before);

        let mut empty = CopyStats::default();
        empty.merge(&sample_a());
        assert_eq!(fields(&empty), before);
    }

    #[test]
    fn merge_is_commutative() {
        let mut ab = sample_a();
        ab.merge(&sample_b());
        let mut ba = sample_b();
        ba.merge(&sample_a());
        assert_eq!(fields(&ab), fields(&ba));
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = CopyStats::default();
        a.record(CopyMode::Batched, 8, &result(512));
        let mut b = CopyStats::default();
        b.record(CopyMode::Batched, 4, &result(256));
        b.record(CopyMode::SingleOp, 2, &result(64));
        a.merge(&b);
        assert_eq!(a.batches, 4);
        assert_eq!(a.ops, 14);
        assert_eq!(a.bytes, 832);
        assert_eq!(a.hypercalls_saved, 10);
    }
}
