//! Deterministic RSS-style flow steering.
//!
//! Multi-queue VIFs spread packets across queues with a hash of the flow
//! identity — exactly what hardware receive-side scaling (RSS) and Xen's
//! multi-queue netback do. The hash here is the classic Toeplitz
//! construction over the IPv4 4-tuple `(src ip, dst ip, src port,
//! dst port)` with a *fixed* key, so steering is a pure function of the
//! packet bytes: the same flow always lands on the same queue (per-flow
//! ordering is preserved) and every run of the simulator steers
//! identically (seed-stable by construction — the key never changes).
//!
//! Non-IP traffic (ARP, unknown ethertypes) and IP traffic without ports
//! hashes over what identity it has (MAC pair, IP pair), so all traffic
//! steers deterministically, not just UDP/TCP.

use crate::ether::ETH_HEADER_LEN;

/// The 40-byte Toeplitz key from the Microsoft RSS verification suite —
/// fixed so steering never depends on a scenario seed.
pub const RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// The Toeplitz hash of `data` under `key`.
///
/// For every set bit of the input (most-significant first), the 32-bit
/// window of the key starting at that bit position is XORed into the
/// result. `data` may be at most `key.len() - 4` bytes.
pub fn toeplitz(key: &[u8], data: &[u8]) -> u32 {
    debug_assert!(data.len() + 4 <= key.len(), "key too short for input");
    // 64-bit shift register: the top 32 bits are the current key window.
    let mut reg = u64::from_be_bytes(key[..8].try_into().expect("key >= 8 bytes"));
    let mut next_key_byte = 8;
    let mut hash = 0u32;
    for &b in data {
        for bit in (0..8).rev() {
            if (b >> bit) & 1 == 1 {
                hash ^= (reg >> 32) as u32;
            }
            reg <<= 1;
        }
        // The byte's 8 shifts cleared the low 8 bits; refill them with
        // the next key byte so the window keeps sliding.
        if next_key_byte < key.len() {
            reg |= key[next_key_byte] as u64;
            next_key_byte += 1;
        }
    }
    hash
}

/// The flow hash of a raw Ethernet frame.
///
/// IPv4 TCP/UDP hashes the 4-tuple; other IPv4 traffic hashes the
/// address pair; everything else (ARP and friends) hashes the MAC pair.
/// All paths go through [`toeplitz`] with [`RSS_KEY`].
pub fn flow_hash(frame: &[u8]) -> u32 {
    if frame.len() >= ETH_HEADER_LEN {
        let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
        let ip = &frame[ETH_HEADER_LEN..];
        // IPv4, version 4, IHL >= 5, header present.
        if ethertype == 0x0800 && ip.len() >= 20 && ip[0] >> 4 == 4 {
            let ihl = (ip[0] & 0x0f) as usize * 4;
            let proto = ip[9];
            let mut input = [0u8; 12];
            input[0..4].copy_from_slice(&ip[12..16]);
            input[4..8].copy_from_slice(&ip[16..20]);
            // src ip, dst ip, then for TCP (6) / UDP (17) the ports —
            // the first 4 bytes past the IP header.
            if (proto == 6 || proto == 17) && ip.len() >= ihl + 4 {
                input[8..12].copy_from_slice(&ip[ihl..ihl + 4]);
                return toeplitz(&RSS_KEY, &input);
            }
            return toeplitz(&RSS_KEY, &input[..8]);
        }
        // Non-IP: steer on the MAC pair (dst + src).
        return toeplitz(&RSS_KEY, &frame[..12]);
    }
    toeplitz(&RSS_KEY, frame)
}

/// The queue a frame steers to under an `nqueues`-queue layout.
pub fn steer(frame: &[u8], nqueues: u32) -> u32 {
    if nqueues <= 1 {
        0
    } else {
        flow_hash(frame) % nqueues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ether::{EtherType, EthernetFrame, MacAddr};
    use crate::ipv4::{IpProto, Ipv4Packet};
    use crate::udp::UdpDatagram;
    use std::net::Ipv4Addr;

    /// The published Microsoft RSS verification vector: src
    /// 66.9.149.187:2794 → dst 161.142.100.80:1766.
    #[test]
    fn toeplitz_matches_rss_verification_suite() {
        let with_ports = [66, 9, 149, 187, 161, 142, 100, 80, 0x0a, 0xea, 0x06, 0xe6];
        assert_eq!(toeplitz(&RSS_KEY, &with_ports), 0x51cc_c178);
        assert_eq!(toeplitz(&RSS_KEY, &with_ports[..8]), 0x323e_8fc2);
    }

    fn udp_frame(src_port: u16, dst_port: u16) -> Vec<u8> {
        let src = Ipv4Addr::new(10, 0, 0, 2);
        let dst = Ipv4Addr::new(10, 0, 0, 9);
        let udp = UdpDatagram::new(src_port, dst_port, vec![0xab; 64]).encode(src, dst);
        let ip = Ipv4Packet::new(src, dst, IpProto::Udp, udp).encode();
        EthernetFrame::new(MacAddr::local(9), MacAddr::local(2), EtherType::Ipv4, ip).encode()
    }

    #[test]
    fn same_flow_same_queue_different_flows_spread() {
        let n = 4;
        let q = steer(&udp_frame(5000, 9999), n);
        // Identical 4-tuple (payload differs) → identical queue.
        assert_eq!(steer(&udp_frame(5000, 9999), n), q);
        // A sweep of source ports must hit more than one queue.
        let mut seen = std::collections::BTreeSet::new();
        for p in 5000..5032 {
            seen.insert(steer(&udp_frame(p, 9999), n));
        }
        assert!(seen.len() > 1, "steering never spread: {seen:?}");
        assert!(seen.iter().all(|&q| q < n));
    }

    #[test]
    fn single_queue_layout_always_steers_to_zero() {
        for p in 5000..5008 {
            assert_eq!(steer(&udp_frame(p, 9999), 1), 0);
            assert_eq!(steer(&udp_frame(p, 9999), 0), 0);
        }
    }

    #[test]
    fn non_ip_frames_steer_on_mac_pair() {
        let arp = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::local(7),
            EtherType::Arp,
            vec![0; 28],
        )
        .encode();
        let a = steer(&arp, 8);
        assert_eq!(steer(&arp, 8), a);
        // A short/garbage frame still hashes without panicking.
        let _ = steer(&[1, 2, 3], 8);
    }
}
