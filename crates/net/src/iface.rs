//! Network interface descriptors — what `ifconfig(8)` manipulates.
//!
//! Kite ports NetBSD's `ifconfig` and `brconfig` into the unikernel; this
//! module is the state those tools operate on: a table of named interfaces
//! (the physical `ixg0` IF plus one `vif<n>` per netback instance), each
//! with a MAC, optional IPv4 address and up/down flag.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use crate::ether::MacAddr;

/// The role an interface plays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IfKind {
    /// A physical NIC (driver-domain side of PCI passthrough).
    Physical,
    /// A netback virtual interface (one per connected frontend).
    Vif,
    /// A bridge interface.
    Bridge,
}

/// One interface's configuration.
#[derive(Clone, Debug)]
pub struct Interface {
    /// Name, e.g. `ixg0`, `vif2.0`, `bridge0`.
    pub name: String,
    /// Role.
    pub kind: IfKind,
    /// Hardware address.
    pub mac: MacAddr,
    /// Assigned IPv4 address, if any.
    pub addr: Option<Ipv4Addr>,
    /// Netmask, if an address is assigned.
    pub netmask: Option<Ipv4Addr>,
    /// Administrative up/down.
    pub up: bool,
    /// MTU.
    pub mtu: usize,
}

/// The interface table of one network stack instance.
#[derive(Clone, Debug, Default)]
pub struct IfTable {
    ifs: BTreeMap<String, Interface>,
}

impl IfTable {
    /// Creates an empty table.
    pub fn new() -> IfTable {
        IfTable::default()
    }

    /// Registers an interface (driver attach); starts down, unnumbered.
    pub fn attach(&mut self, name: impl Into<String>, kind: IfKind, mac: MacAddr) -> &Interface {
        let name = name.into();
        self.ifs.insert(
            name.clone(),
            Interface {
                name: name.clone(),
                kind,
                mac,
                addr: None,
                netmask: None,
                up: false,
                mtu: crate::ether::ETH_MTU,
            },
        );
        &self.ifs[&name]
    }

    /// Removes an interface (driver detach).
    pub fn detach(&mut self, name: &str) -> bool {
        self.ifs.remove(name).is_some()
    }

    /// `ifconfig <if> <addr> netmask <mask>`.
    pub fn set_addr(&mut self, name: &str, addr: Ipv4Addr, netmask: Ipv4Addr) -> bool {
        if let Some(i) = self.ifs.get_mut(name) {
            i.addr = Some(addr);
            i.netmask = Some(netmask);
            true
        } else {
            false
        }
    }

    /// `ifconfig <if> up` / `down`.
    pub fn set_up(&mut self, name: &str, up: bool) -> bool {
        if let Some(i) = self.ifs.get_mut(name) {
            i.up = up;
            true
        } else {
            false
        }
    }

    /// `ifconfig <if> mtu <n>`: raises (jumbo/GSO super-frames) or
    /// lowers the largest frame the interface accepts. Bounded by the
    /// minimum IPv4 MTU below and the 64 KiB GSO super-frame above.
    pub fn set_mtu(&mut self, name: &str, mtu: usize) -> bool {
        if !(68..=65536).contains(&mtu) {
            return false;
        }
        if let Some(i) = self.ifs.get_mut(name) {
            i.mtu = mtu;
            true
        } else {
            false
        }
    }

    /// Looks up an interface.
    pub fn get(&self, name: &str) -> Option<&Interface> {
        self.ifs.get(name)
    }

    /// All interfaces, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &Interface> {
        self.ifs.values()
    }

    /// The interface owning `addr`, if any.
    pub fn by_addr(&self, addr: Ipv4Addr) -> Option<&Interface> {
        self.ifs.values().find(|i| i.addr == Some(addr))
    }

    /// Names matching a kind (e.g. every VIF, for bridge hotplug).
    pub fn names_of_kind(&self, kind: IfKind) -> Vec<String> {
        self.ifs
            .values()
            .filter(|i| i.kind == kind)
            .map(|i| i.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_configure_lookup() {
        let mut t = IfTable::new();
        t.attach("ixg0", IfKind::Physical, MacAddr::local(1));
        assert!(!t.get("ixg0").unwrap().up);
        assert!(t.set_addr(
            "ixg0",
            "192.168.1.50".parse().unwrap(),
            "255.255.255.0".parse().unwrap()
        ));
        assert!(t.set_up("ixg0", true));
        let i = t.get("ixg0").unwrap();
        assert!(i.up);
        assert_eq!(i.addr, Some("192.168.1.50".parse().unwrap()));
        assert_eq!(
            t.by_addr("192.168.1.50".parse().unwrap()).unwrap().name,
            "ixg0"
        );
    }

    #[test]
    fn mtu_knob_accepts_jumbo_and_rejects_nonsense() {
        let mut t = IfTable::new();
        t.attach("ixg0", IfKind::Physical, MacAddr::local(1));
        assert_eq!(t.get("ixg0").unwrap().mtu, crate::ether::ETH_MTU);
        assert!(t.set_mtu("ixg0", 9000), "jumbo frames");
        assert_eq!(t.get("ixg0").unwrap().mtu, 9000);
        assert!(t.set_mtu("ixg0", 65536), "GSO super-frame ceiling");
        assert!(!t.set_mtu("ixg0", 65537));
        assert!(!t.set_mtu("ixg0", 0));
        assert!(!t.set_mtu("nope0", 1500));
        assert_eq!(t.get("ixg0").unwrap().mtu, 65536, "rejects leave mtu");
    }

    #[test]
    fn unknown_interface_ops_fail() {
        let mut t = IfTable::new();
        assert!(!t.set_up("nope0", true));
        assert!(!t.set_addr(
            "nope0",
            "1.2.3.4".parse().unwrap(),
            "255.0.0.0".parse().unwrap()
        ));
        assert!(!t.detach("nope0"));
    }

    #[test]
    fn kind_filtering_for_hotplug() {
        let mut t = IfTable::new();
        t.attach("ixg0", IfKind::Physical, MacAddr::local(1));
        t.attach("vif2.0", IfKind::Vif, MacAddr::local(2));
        t.attach("vif3.0", IfKind::Vif, MacAddr::local(3));
        t.attach("bridge0", IfKind::Bridge, MacAddr::ZERO);
        assert_eq!(t.names_of_kind(IfKind::Vif), vec!["vif2.0", "vif3.0"]);
        assert_eq!(t.names_of_kind(IfKind::Physical), vec!["ixg0"]);
    }

    #[test]
    fn detach_removes() {
        let mut t = IfTable::new();
        t.attach("vif2.0", IfKind::Vif, MacAddr::local(2));
        assert!(t.detach("vif2.0"));
        assert!(t.get("vif2.0").is_none());
    }
}
