//! IPv4 header encoding/decoding with real checksums.

use std::net::Ipv4Addr;

use crate::checksum;

/// IP protocol numbers used here.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProto {
    /// Wire value.
    pub fn value(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// Parses a wire value.
    pub fn from_value(v: u8) -> IpProto {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// Length of the option-less IPv4 header.
pub const IPV4_HEADER_LEN: usize = 20;

/// A parsed IPv4 packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub proto: IpProto,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by fragmentation; we never fragment).
    pub ident: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Builds a packet with a default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload: Vec<u8>) -> Ipv4Packet {
        Ipv4Packet {
            src,
            dst,
            proto,
            ttl: 64,
            ident: 0,
            payload,
        }
    }

    /// Serializes with a correct header checksum.
    pub fn encode(&self) -> Vec<u8> {
        let total = IPV4_HEADER_LEN + self.payload.len();
        let mut h = [0u8; IPV4_HEADER_LEN];
        h[0] = 0x45; // version 4, IHL 5
        h[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        h[4..6].copy_from_slice(&self.ident.to_be_bytes());
        h[6] = 0x40; // DF
        h[8] = self.ttl;
        h[9] = self.proto.value();
        h[12..16].copy_from_slice(&self.src.octets());
        h[16..20].copy_from_slice(&self.dst.octets());
        let c = checksum::checksum(&h);
        h[10..12].copy_from_slice(&c.to_be_bytes());
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&h);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and validates header length + checksum.
    pub fn decode(bytes: &[u8]) -> Option<Ipv4Packet> {
        if bytes.len() < IPV4_HEADER_LEN || bytes[0] != 0x45 {
            return None;
        }
        if !checksum::verify(&bytes[..IPV4_HEADER_LEN]) {
            return None;
        }
        let total = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if total < IPV4_HEADER_LEN || total > bytes.len() {
            return None;
        }
        Some(Ipv4Packet {
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
            proto: IpProto::from_value(bytes[9]),
            ttl: bytes[8],
            ident: u16::from_be_bytes([bytes[4], bytes[5]]),
            payload: bytes[IPV4_HEADER_LEN..total].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip() {
        let p = Ipv4Packet::new(
            ip("192.168.0.10"),
            ip("192.168.0.1"),
            IpProto::Udp,
            vec![1, 2, 3],
        );
        let bytes = p.encode();
        assert_eq!(Ipv4Packet::decode(&bytes), Some(p));
    }

    #[test]
    fn checksum_corruption_detected() {
        let p = Ipv4Packet::new(ip("10.0.0.1"), ip("10.0.0.2"), IpProto::Tcp, vec![0; 8]);
        let mut bytes = p.encode();
        bytes[15] ^= 0xff; // mangle src
        assert_eq!(Ipv4Packet::decode(&bytes), None);
    }

    #[test]
    fn truncated_rejected() {
        let p = Ipv4Packet::new(ip("10.0.0.1"), ip("10.0.0.2"), IpProto::Udp, vec![0; 100]);
        let bytes = p.encode();
        assert_eq!(Ipv4Packet::decode(&bytes[..50]), None);
    }

    #[test]
    fn trailing_padding_ignored() {
        // Ethernet pads short frames; decode must use the total-length field.
        let p = Ipv4Packet::new(ip("10.0.0.1"), ip("10.0.0.2"), IpProto::Udp, vec![7; 4]);
        let mut bytes = p.encode();
        bytes.extend_from_slice(&[0u8; 22]); // pad to 60
        let q = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(q.payload, vec![7; 4]);
    }

    #[test]
    fn proto_values() {
        assert_eq!(IpProto::Udp.value(), 17);
        assert_eq!(IpProto::from_value(6), IpProto::Tcp);
        assert_eq!(IpProto::from_value(89), IpProto::Other(89));
    }
}
