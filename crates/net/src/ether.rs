//! Ethernet II framing.

use core::fmt;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (unset).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Locally administered unicast address derived from a small id —
    /// handy for deterministic scenario construction.
    pub fn local(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values used by the reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// The wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Parses a wire value.
    pub fn from_value(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// Length of the Ethernet II header.
pub const ETH_HEADER_LEN: usize = 14;
/// Standard Ethernet MTU (payload bytes).
pub const ETH_MTU: usize = 1500;
/// Per-frame wire overhead beyond the header+payload: preamble (8) +
/// FCS (4) + inter-frame gap (12).
pub const ETH_WIRE_OVERHEAD: usize = 24;
/// Largest standard (non-jumbo) frame: header + one MTU of payload.
pub const ETH_FRAME_MAX: usize = ETH_HEADER_LEN + ETH_MTU;
/// IPv4 header length (no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;
/// Ethernet + IPv4 + UDP headers — what a TSO engine replicates onto
/// every segment it cuts from a super-frame.
pub const TSO_HEADERS_LEN: usize = ETH_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN;
/// Largest per-segment payload a TSO engine emits: one MTU minus the
/// replicated L3/L4 headers.
pub const TSO_MSS: usize = ETH_MTU - IPV4_HEADER_LEN - UDP_HEADER_LEN;

/// Wire cost of transmitting `frame_len` bytes of guest-visible frame.
///
/// A frame that fits the standard MTU serializes as-is. A super-frame
/// is cut into MSS-sized segments by the NIC's TSO engine, which
/// replicates the Ethernet/IP/UDP headers onto each extra segment and
/// pays [`ETH_WIRE_OVERHEAD`] per segment. Returns
/// `(total wire bytes, segment count)`; the receive side coalesces the
/// segments back into one frame (LRO), so the segment count never
/// appears above the NIC on either end.
pub fn tso_wire_cost(frame_len: usize) -> (u64, u32) {
    if frame_len <= ETH_FRAME_MAX {
        return ((frame_len + ETH_WIRE_OVERHEAD) as u64, 1);
    }
    let payload = frame_len - TSO_HEADERS_LEN;
    let segs = payload.div_ceil(TSO_MSS);
    let bytes = frame_len + (segs - 1) * TSO_HEADERS_LEN + segs * ETH_WIRE_OVERHEAD;
    (bytes as u64, segs as u32)
}

/// A parsed Ethernet frame (borrowing nothing; payload owned).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Builds a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Serializes into wire bytes (header + payload, no FCS).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETH_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.value().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses wire bytes.
    pub fn decode(bytes: &[u8]) -> Option<EthernetFrame> {
        if bytes.len() < ETH_HEADER_LEN {
            return None;
        }
        Some(EthernetFrame {
            dst: MacAddr(bytes[0..6].try_into().ok()?),
            src: MacAddr(bytes[6..12].try_into().ok()?),
            ethertype: EtherType::from_value(u16::from_be_bytes([bytes[12], bytes[13]])),
            payload: bytes[ETH_HEADER_LEN..].to_vec(),
        })
    }

    /// Total bytes this frame occupies on the wire, including preamble,
    /// FCS, inter-frame gap and minimum-frame padding.
    pub fn wire_len(&self) -> usize {
        let body = (ETH_HEADER_LEN + self.payload.len()).max(60);
        body + ETH_WIRE_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0x02, 0, 0, 0, 0, 0x2a]);
        assert_eq!(m.to_string(), "02:00:00:00:00:2a");
        assert!(!m.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn local_macs_unique_and_unicast() {
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
    }

    #[test]
    fn tso_wire_cost_segments_super_frames() {
        // An MTU-sized frame is one segment with flat overhead.
        assert_eq!(
            tso_wire_cost(ETH_FRAME_MAX),
            ((ETH_FRAME_MAX + ETH_WIRE_OVERHEAD) as u64, 1)
        );
        assert_eq!(tso_wire_cost(98), (122, 1));
        // One byte over: two segments, one replicated header stack.
        let (bytes, segs) = tso_wire_cost(ETH_FRAME_MAX + 1);
        assert_eq!(segs, 2);
        assert_eq!(
            bytes,
            (ETH_FRAME_MAX + 1 + TSO_HEADERS_LEN + 2 * ETH_WIRE_OVERHEAD) as u64
        );
        // A 64 KiB super-frame cuts into ceil(payload / MSS) segments
        // and every segment fits the wire MTU.
        let frame = 61824 + TSO_HEADERS_LEN;
        let (bytes, segs) = tso_wire_cost(frame);
        assert_eq!(segs, (61824_u32).div_ceil(TSO_MSS as u32));
        assert!(bytes > frame as u64);
        let per_seg_payload = 61824_usize.div_ceil(segs as usize);
        assert!(per_seg_payload + TSO_HEADERS_LEN <= ETH_FRAME_MAX);
    }

    #[test]
    fn frame_roundtrip() {
        let f = EthernetFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            EtherType::Ipv4,
            b"hello world".to_vec(),
        );
        let bytes = f.encode();
        assert_eq!(EthernetFrame::decode(&bytes), Some(f));
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(EthernetFrame::decode(&[0u8; 13]), None);
    }

    #[test]
    fn ethertype_values() {
        assert_eq!(EtherType::Ipv4.value(), 0x0800);
        assert_eq!(EtherType::from_value(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_value(0x86dd), EtherType::Other(0x86dd));
    }

    #[test]
    fn wire_len_includes_overhead_and_min_frame() {
        // Tiny payload pads to 60 + 24 overhead.
        let f = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4, vec![0; 10]);
        assert_eq!(f.wire_len(), 84);
        // Full MTU: 14 + 1500 + 24.
        let f = EthernetFrame::new(
            MacAddr::ZERO,
            MacAddr::ZERO,
            EtherType::Ipv4,
            vec![0; ETH_MTU],
        );
        assert_eq!(f.wire_len(), 1538);
    }
}
