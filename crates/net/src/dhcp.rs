//! DHCP wire format (RFC 2131) — full BOOTP framing plus the option TLVs
//! the daemon-VM experiment needs (§5.5 of the paper: an OpenDHCP-style
//! server running as a rumprun unikernel, benchmarked with perfdhcp).

use std::net::Ipv4Addr;

use crate::ether::MacAddr;

/// DHCP message types (option 53).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DhcpMessageType {
    /// Client broadcast looking for servers.
    Discover,
    /// Server offer of an address.
    Offer,
    /// Client requesting the offered address.
    Request,
    /// Client declining.
    Decline,
    /// Server acknowledgment (lease granted).
    Ack,
    /// Server negative acknowledgment.
    Nak,
    /// Client releasing its lease.
    Release,
}

impl DhcpMessageType {
    /// Wire value.
    pub fn value(self) -> u8 {
        match self {
            DhcpMessageType::Discover => 1,
            DhcpMessageType::Offer => 2,
            DhcpMessageType::Request => 3,
            DhcpMessageType::Decline => 4,
            DhcpMessageType::Ack => 5,
            DhcpMessageType::Nak => 6,
            DhcpMessageType::Release => 7,
        }
    }

    /// Parses a wire value.
    pub fn from_value(v: u8) -> Option<DhcpMessageType> {
        Some(match v {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            4 => DhcpMessageType::Decline,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            _ => return None,
        })
    }
}

/// The RFC 2131 magic cookie preceding options.
pub const DHCP_MAGIC: [u8; 4] = [0x63, 0x82, 0x53, 0x63];
/// UDP port the server listens on.
pub const DHCP_SERVER_PORT: u16 = 67;
/// UDP port the client listens on.
pub const DHCP_CLIENT_PORT: u16 = 68;
/// Fixed BOOTP header length before options.
pub const BOOTP_LEN: usize = 236;

/// A parsed DHCP message (the fields this reproduction uses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DhcpMessage {
    /// Message type (option 53).
    pub msg_type: DhcpMessageType,
    /// Transaction id chosen by the client.
    pub xid: u32,
    /// Client's current address (`ciaddr`).
    pub ciaddr: Ipv4Addr,
    /// "Your" address offered/assigned by the server (`yiaddr`).
    pub yiaddr: Ipv4Addr,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// Requested IP (option 50), if present.
    pub requested_ip: Option<Ipv4Addr>,
    /// Server identifier (option 54), if present.
    pub server_id: Option<Ipv4Addr>,
    /// Lease time in seconds (option 51), if present.
    pub lease_secs: Option<u32>,
    /// Subnet mask (option 1), if present.
    pub subnet_mask: Option<Ipv4Addr>,
    /// Default router (option 3), if present.
    pub router: Option<Ipv4Addr>,
}

impl DhcpMessage {
    /// A minimal client message of the given type.
    pub fn client(msg_type: DhcpMessageType, xid: u32, chaddr: MacAddr) -> DhcpMessage {
        DhcpMessage {
            msg_type,
            xid,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            requested_ip: None,
            server_id: None,
            lease_secs: None,
            subnet_mask: None,
            router: None,
        }
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; BOOTP_LEN];
        let is_reply = matches!(
            self.msg_type,
            DhcpMessageType::Offer | DhcpMessageType::Ack | DhcpMessageType::Nak
        );
        out[0] = if is_reply { 2 } else { 1 }; // op
        out[1] = 1; // htype ethernet
        out[2] = 6; // hlen
        out[4..8].copy_from_slice(&self.xid.to_be_bytes());
        out[12..16].copy_from_slice(&self.ciaddr.octets());
        out[16..20].copy_from_slice(&self.yiaddr.octets());
        out[28..34].copy_from_slice(&self.chaddr.0);
        out.extend_from_slice(&DHCP_MAGIC);
        out.extend_from_slice(&[53, 1, self.msg_type.value()]);
        if let Some(ip) = self.requested_ip {
            out.push(50);
            out.push(4);
            out.extend_from_slice(&ip.octets());
        }
        if let Some(ip) = self.server_id {
            out.push(54);
            out.push(4);
            out.extend_from_slice(&ip.octets());
        }
        if let Some(t) = self.lease_secs {
            out.push(51);
            out.push(4);
            out.extend_from_slice(&t.to_be_bytes());
        }
        if let Some(ip) = self.subnet_mask {
            out.push(1);
            out.push(4);
            out.extend_from_slice(&ip.octets());
        }
        if let Some(ip) = self.router {
            out.push(3);
            out.push(4);
            out.extend_from_slice(&ip.octets());
        }
        out.push(255);
        out
    }

    /// Parses wire bytes.
    pub fn decode(bytes: &[u8]) -> Option<DhcpMessage> {
        if bytes.len() < BOOTP_LEN + 4 {
            return None;
        }
        if bytes[BOOTP_LEN..BOOTP_LEN + 4] != DHCP_MAGIC {
            return None;
        }
        let xid = u32::from_be_bytes(bytes[4..8].try_into().ok()?);
        let ciaddr = Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]);
        let yiaddr = Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]);
        let chaddr = MacAddr(bytes[28..34].try_into().ok()?);
        let mut msg_type = None;
        let mut requested_ip = None;
        let mut server_id = None;
        let mut lease_secs = None;
        let mut subnet_mask = None;
        let mut router = None;
        let mut i = BOOTP_LEN + 4;
        while i < bytes.len() {
            let code = bytes[i];
            if code == 255 {
                break;
            }
            if code == 0 {
                i += 1;
                continue;
            }
            if i + 1 >= bytes.len() {
                return None;
            }
            let len = bytes[i + 1] as usize;
            if i + 2 + len > bytes.len() {
                return None;
            }
            let val = &bytes[i + 2..i + 2 + len];
            let as_ip = |v: &[u8]| -> Option<Ipv4Addr> {
                if v.len() == 4 {
                    Some(Ipv4Addr::new(v[0], v[1], v[2], v[3]))
                } else {
                    None
                }
            };
            match code {
                53 if len == 1 => msg_type = DhcpMessageType::from_value(val[0]),
                50 => requested_ip = as_ip(val),
                54 => server_id = as_ip(val),
                51 if len == 4 => lease_secs = Some(u32::from_be_bytes(val.try_into().ok()?)),
                1 => subnet_mask = as_ip(val),
                3 => router = as_ip(val),
                _ => {}
            }
            i += 2 + len;
        }
        Some(DhcpMessage {
            msg_type: msg_type?,
            xid,
            ciaddr,
            yiaddr,
            chaddr,
            requested_ip,
            server_id,
            lease_secs,
            subnet_mask,
            router,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn discover_roundtrip() {
        let d = DhcpMessage::client(DhcpMessageType::Discover, 0xdead_beef, MacAddr::local(7));
        let bytes = d.encode();
        assert_eq!(DhcpMessage::decode(&bytes), Some(d));
    }

    #[test]
    fn offer_with_all_options_roundtrip() {
        let mut m = DhcpMessage::client(DhcpMessageType::Offer, 42, MacAddr::local(1));
        m.yiaddr = ip("10.0.0.100");
        m.server_id = Some(ip("10.0.0.1"));
        m.lease_secs = Some(86400);
        m.subnet_mask = Some(ip("255.255.255.0"));
        m.router = Some(ip("10.0.0.1"));
        let bytes = m.encode();
        assert_eq!(DhcpMessage::decode(&bytes), Some(m.clone()));
        // Replies carry op=2.
        assert_eq!(bytes[0], 2);
    }

    #[test]
    fn request_carries_requested_ip() {
        let mut m = DhcpMessage::client(DhcpMessageType::Request, 42, MacAddr::local(1));
        m.requested_ip = Some(ip("10.0.0.100"));
        m.server_id = Some(ip("10.0.0.1"));
        let bytes = m.encode();
        assert_eq!(bytes[0], 1, "requests carry op=1");
        let back = DhcpMessage::decode(&bytes).unwrap();
        assert_eq!(back.requested_ip, Some(ip("10.0.0.100")));
    }

    #[test]
    fn bad_magic_rejected() {
        let d = DhcpMessage::client(DhcpMessageType::Discover, 1, MacAddr::local(1));
        let mut bytes = d.encode();
        bytes[BOOTP_LEN] = 0;
        assert_eq!(DhcpMessage::decode(&bytes), None);
    }

    #[test]
    fn truncated_option_rejected() {
        let d = DhcpMessage::client(DhcpMessageType::Discover, 1, MacAddr::local(1));
        let mut bytes = d.encode();
        // Remove the end marker and add a length running past the end.
        bytes.pop();
        bytes.push(50);
        bytes.push(40);
        assert_eq!(DhcpMessage::decode(&bytes), None);
    }

    #[test]
    fn missing_message_type_rejected() {
        let mut bytes = vec![0u8; BOOTP_LEN];
        bytes[0] = 1;
        bytes.extend_from_slice(&DHCP_MAGIC);
        bytes.push(255);
        assert_eq!(DhcpMessage::decode(&bytes), None);
    }

    #[test]
    fn pad_options_skipped() {
        let d = DhcpMessage::client(DhcpMessageType::Discover, 9, MacAddr::local(2));
        let mut bytes = d.encode();
        let end = bytes.pop().unwrap();
        bytes.extend_from_slice(&[0, 0, 0]); // pad
        bytes.push(end);
        assert_eq!(DhcpMessage::decode(&bytes).unwrap().xid, 9);
    }
}
