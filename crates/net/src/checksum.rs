//! The Internet checksum (RFC 1071) shared by IPv4/ICMP/UDP/TCP.

use std::net::Ipv4Addr;

/// Computes the one's-complement sum over `data`, folded to 16 bits,
/// starting from `initial` (an unfolded partial sum).
pub fn sum(data: &[u8], initial: u32) -> u32 {
    let mut acc = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a partial sum and complements it into a checksum field value.
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// One-shot checksum of a buffer.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(data, 0))
}

/// Partial sum of the TCP/UDP pseudo-header.
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) -> u32 {
    let mut acc = 0u32;
    acc = sum(&src.octets(), acc);
    acc = sum(&dst.octets(), acc);
    acc += u32::from(proto);
    acc += u32::from(len);
    acc
}

/// Verifies a buffer whose checksum field is included: valid iff the
/// folded sum is zero.
pub fn verify(data: &[u8]) -> bool {
    finish(sum(data, 0)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(checksum(&[0xff]), finish(sum(&[0xff, 0x00], 0)));
    }

    #[test]
    fn verify_detects_corruption() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11];
        // Append a checksum making the whole thing sum to zero.
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_changes_sum() {
        let a = pseudo_header_sum(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            17,
            8,
        );
        let b = pseudo_header_sum(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.3".parse().unwrap(),
            17,
            8,
        );
        assert_ne!(finish(a), finish(b));
    }
}
