//! A learning Ethernet bridge.
//!
//! This is the heart of Kite's network application: the driver domain
//! creates one bridge, attaches the physical NIC interface (IF) and every
//! netback virtual interface (VIF), and lets MAC learning route frames
//! between guests and the outside world — exactly NetBSD's `bridge(4)`
//! behaviour that the ported `brconfig(8)` drives.

use std::collections::HashMap;

use kite_sim::Nanos;

use crate::ether::MacAddr;

/// A bridge port handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BridgePort(pub u32);

/// Where the bridge decided a frame should go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Forward {
    /// Send out exactly one port.
    Unicast(BridgePort),
    /// Flood out all listed ports (unknown destination or broadcast).
    Flood(Vec<BridgePort>),
    /// Drop (destination learned on the ingress port itself).
    Drop,
}

#[derive(Clone, Debug)]
struct FdbEntry {
    port: BridgePort,
    last_seen: Nanos,
}

/// A learning bridge with forwarding-database aging.
#[derive(Clone, Debug)]
pub struct Bridge {
    name: String,
    ports: Vec<(BridgePort, String)>,
    next_port: u32,
    fdb: HashMap<MacAddr, FdbEntry>,
    /// FDB entry lifetime (NetBSD default: 240 s).
    pub aging: Nanos,
    frames_forwarded: u64,
    frames_flooded: u64,
}

impl Bridge {
    /// Creates an empty bridge named e.g. `bridge0`.
    pub fn new(name: impl Into<String>) -> Bridge {
        Bridge {
            name: name.into(),
            ports: Vec::new(),
            next_port: 0,
            fdb: HashMap::new(),
            aging: Nanos::from_secs(240),
            frames_forwarded: 0,
            frames_flooded: 0,
        }
    }

    /// The bridge's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches an interface (`brconfig add`); returns its port handle.
    pub fn add_port(&mut self, ifname: impl Into<String>) -> BridgePort {
        let p = BridgePort(self.next_port);
        self.next_port += 1;
        self.ports.push((p, ifname.into()));
        p
    }

    /// Detaches a port (`brconfig delete`); its learned MACs are flushed.
    pub fn remove_port(&mut self, port: BridgePort) {
        self.ports.retain(|&(p, _)| p != port);
        self.fdb.retain(|_, e| e.port != port);
    }

    /// Member interface names, in attach order.
    pub fn members(&self) -> Vec<&str> {
        self.ports.iter().map(|(_, n)| n.as_str()).collect()
    }

    /// Processes a frame arriving on `ingress`: learns the source and
    /// returns the forwarding decision for the destination.
    pub fn input(
        &mut self,
        ingress: BridgePort,
        src: MacAddr,
        dst: MacAddr,
        now: Nanos,
    ) -> Forward {
        // Learn (or migrate) the source address.
        if !src.is_multicast() {
            self.fdb.insert(
                src,
                FdbEntry {
                    port: ingress,
                    last_seen: now,
                },
            );
        }
        if dst.is_multicast() {
            self.frames_flooded += 1;
            return Forward::Flood(self.flood_ports(ingress));
        }
        match self.fdb.get(&dst) {
            Some(e) if now.saturating_sub(e.last_seen) < self.aging => {
                if e.port == ingress {
                    Forward::Drop
                } else {
                    self.frames_forwarded += 1;
                    Forward::Unicast(e.port)
                }
            }
            _ => {
                self.frames_flooded += 1;
                Forward::Flood(self.flood_ports(ingress))
            }
        }
    }

    fn flood_ports(&self, ingress: BridgePort) -> Vec<BridgePort> {
        self.ports
            .iter()
            .map(|&(p, _)| p)
            .filter(|&p| p != ingress)
            .collect()
    }

    /// Where a MAC is currently learned, if fresh.
    pub fn lookup(&self, mac: MacAddr, now: Nanos) -> Option<BridgePort> {
        self.fdb
            .get(&mac)
            .filter(|e| now.saturating_sub(e.last_seen) < self.aging)
            .map(|e| e.port)
    }

    /// Unicast-forwarded frame count.
    pub fn forwarded(&self) -> u64 {
        self.frames_forwarded
    }

    /// Flooded frame count.
    pub fn flooded(&self) -> u64 {
        self.frames_flooded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u32) -> MacAddr {
        MacAddr::local(i)
    }

    #[test]
    fn unknown_destination_floods_except_ingress() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        let p1 = b.add_port("vif0");
        let p2 = b.add_port("vif1");
        match b.input(p1, mac(1), mac(99), Nanos::ZERO) {
            Forward::Flood(ports) => {
                assert!(ports.contains(&p0));
                assert!(ports.contains(&p2));
                assert!(!ports.contains(&p1));
            }
            other => panic!("expected flood, got {other:?}"),
        }
    }

    #[test]
    fn learning_enables_unicast() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        let p1 = b.add_port("vif0");
        // Host 1 talks from p1 — learned.
        b.input(p1, mac(1), MacAddr::BROADCAST, Nanos::ZERO);
        // Traffic to host 1 from p0 now unicasts to p1.
        assert_eq!(b.input(p0, mac(2), mac(1), Nanos(1)), Forward::Unicast(p1));
        assert_eq!(b.lookup(mac(1), Nanos(1)), Some(p1));
        assert_eq!(b.forwarded(), 1);
    }

    #[test]
    fn hairpin_dropped() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        b.add_port("vif0");
        b.input(p0, mac(1), MacAddr::BROADCAST, Nanos::ZERO);
        // Destination learned on the same port the frame came from.
        assert_eq!(b.input(p0, mac(2), mac(1), Nanos(1)), Forward::Drop);
    }

    #[test]
    fn broadcast_always_floods() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        let p1 = b.add_port("vif0");
        match b.input(p0, mac(1), MacAddr::BROADCAST, Nanos::ZERO) {
            Forward::Flood(ports) => assert_eq!(ports, vec![p1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fdb_ages_out() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        let p1 = b.add_port("vif0");
        b.input(p1, mac(1), MacAddr::BROADCAST, Nanos::ZERO);
        let stale = Nanos::from_secs(241);
        assert_eq!(b.lookup(mac(1), stale), None);
        match b.input(p0, mac(2), mac(1), stale) {
            Forward::Flood(_) => {}
            other => panic!("expected flood after aging, got {other:?}"),
        }
    }

    #[test]
    fn station_migration_updates_fdb() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        let p1 = b.add_port("vif0");
        let p2 = b.add_port("vif1");
        b.input(p1, mac(1), MacAddr::BROADCAST, Nanos::ZERO);
        // The same MAC now appears on p2 (guest migrated).
        b.input(p2, mac(1), MacAddr::BROADCAST, Nanos(5));
        assert_eq!(b.input(p0, mac(2), mac(1), Nanos(6)), Forward::Unicast(p2));
    }

    #[test]
    fn remove_port_flushes_fdb() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        let p1 = b.add_port("vif0");
        b.input(p1, mac(1), MacAddr::BROADCAST, Nanos::ZERO);
        b.remove_port(p1);
        assert_eq!(b.lookup(mac(1), Nanos(1)), None);
        assert_eq!(b.members(), vec!["ixg0"]);
        // Flooding no longer includes the removed port.
        match b.input(p0, mac(2), mac(1), Nanos(2)) {
            Forward::Flood(ports) => assert!(ports.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multicast_source_not_learned() {
        let mut b = Bridge::new("bridge0");
        let p0 = b.add_port("ixg0");
        b.add_port("vif0");
        b.input(p0, MacAddr::BROADCAST, mac(1), Nanos::ZERO);
        assert_eq!(b.lookup(MacAddr::BROADCAST, Nanos(1)), None);
    }
}
