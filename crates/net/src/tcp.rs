//! TCP: header codec plus a window-limited flow model.
//!
//! The macro-benchmarks (Apache, Redis, MySQL) run over TCP in the paper.
//! We encode real TCP headers on the wire but model the transport as a
//! sliding window over a reliable substrate (the simulated datacenter link
//! is lossless once past the NIC queue), which captures what matters to the
//! figures: per-segment costs through the netback path, MSS segmentation,
//! and window-bounded bytes in flight.

use std::net::Ipv4Addr;

use crate::checksum;

/// Length of the option-less TCP header.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// A parsed TCP segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flag bits.
    pub flags: u8,
    /// Advertised receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Serializes with a pseudo-header checksum.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = TCP_HEADER_LEN + self.payload.len();
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((TCP_HEADER_LEN / 4) as u8) << 4);
        out.push(self.flags);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        out.extend_from_slice(&self.payload);
        let mut acc = checksum::pseudo_header_sum(src, dst, 6, len as u16);
        acc = checksum::sum(&out, acc);
        let c = checksum::finish(acc);
        out[16..18].copy_from_slice(&c.to_be_bytes());
        out
    }

    /// Parses and verifies.
    pub fn decode(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Option<TcpSegment> {
        if bytes.len() < TCP_HEADER_LEN {
            return None;
        }
        let data_off = ((bytes[12] >> 4) as usize) * 4;
        if data_off < TCP_HEADER_LEN || data_off > bytes.len() {
            return None;
        }
        let acc = checksum::pseudo_header_sum(src, dst, 6, bytes.len() as u16);
        if checksum::finish(checksum::sum(bytes, acc)) != 0 {
            return None;
        }
        Some(TcpSegment {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes(bytes[4..8].try_into().ok()?),
            ack: u32::from_be_bytes(bytes[8..12].try_into().ok()?),
            flags: bytes[13],
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            payload: bytes[data_off..].to_vec(),
        })
    }
}

/// A one-direction sliding-window sender model.
///
/// Tracks bytes in flight against a window; the caller segments at `mss`
/// and acknowledges as the receiver drains. This is deliberately simpler
/// than full TCP — loss recovery never triggers on the lossless simulated
/// path — but it bounds in-flight data exactly the way a real connection's
/// receive window does.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    /// Maximum segment size.
    pub mss: usize,
    /// Window size in bytes.
    pub window: usize,
    sent: u64,
    acked: u64,
}

impl SlidingWindow {
    /// Creates a flow with the given MSS and window.
    pub fn new(mss: usize, window: usize) -> SlidingWindow {
        SlidingWindow {
            mss,
            window,
            sent: 0,
            acked: 0,
        }
    }

    /// Bytes currently unacknowledged.
    pub fn in_flight(&self) -> usize {
        (self.sent - self.acked) as usize
    }

    /// How many bytes may be sent right now.
    pub fn sendable(&self) -> usize {
        self.window.saturating_sub(self.in_flight())
    }

    /// Largest segment that may be sent now (capped at MSS).
    pub fn next_segment(&self, remaining: usize) -> usize {
        remaining.min(self.mss).min(self.sendable())
    }

    /// Records `n` bytes sent.
    pub fn on_send(&mut self, n: usize) {
        debug_assert!(n <= self.sendable());
        self.sent += n as u64;
    }

    /// Records `n` bytes acknowledged.
    pub fn on_ack(&mut self, n: usize) {
        self.acked = (self.acked + n as u64).min(self.sent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn segment_roundtrip() {
        let s = TcpSegment {
            src_port: 43210,
            dst_port: 80,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            flags: flags::ACK | flags::PSH,
            window: 65535,
            payload: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        };
        let bytes = s.encode(ip("10.0.0.2"), ip("10.0.0.1"));
        assert_eq!(
            TcpSegment::decode(&bytes, ip("10.0.0.2"), ip("10.0.0.1")),
            Some(s)
        );
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let s = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: flags::SYN,
            window: 1000,
            payload: vec![],
        };
        let bytes = s.encode(ip("10.0.0.2"), ip("10.0.0.1"));
        assert_eq!(
            TcpSegment::decode(&bytes, ip("10.0.0.3"), ip("10.0.0.1")),
            None
        );
    }

    #[test]
    fn window_bounds_in_flight() {
        let mut w = SlidingWindow::new(1460, 4 * 1460);
        assert_eq!(w.next_segment(100_000), 1460);
        for _ in 0..4 {
            let n = w.next_segment(100_000);
            w.on_send(n);
        }
        assert_eq!(w.sendable(), 0);
        assert_eq!(w.next_segment(100_000), 0);
        w.on_ack(1460);
        assert_eq!(w.sendable(), 1460);
        assert_eq!(w.in_flight(), 3 * 1460);
    }

    #[test]
    fn short_tail_segment() {
        let w = SlidingWindow::new(1460, 100_000);
        assert_eq!(w.next_segment(100), 100);
    }

    #[test]
    fn over_ack_clamped() {
        let mut w = SlidingWindow::new(1000, 5000);
        w.on_send(500);
        w.on_ack(9999);
        assert_eq!(w.in_flight(), 0);
    }
}
